// Direct verification of the paper's formal claims (Lemmas 1-3, Theorem 1)
// on randomized inputs, complementing the example-based tests in
// embed_test.cc.

#include <algorithm>
#include <map>
#include <queue>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embed/lcag_search.h"
#include "kg/graph_stats.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"

namespace newslink {
namespace embed {
namespace {

struct LemmaWorld {
  kg::KnowledgeGraph graph;
  kg::LabelIndex index;
};

LemmaWorld MakeRandomWorld(uint64_t seed, int n) {
  Rng rng(seed);
  kg::KgBuilder b;
  for (int i = 0; i < n; ++i) {
    b.AddNode("node" + std::to_string(i), kg::EntityType::kGpe);
  }
  for (int i = 1; i < n; ++i) {
    EXPECT_TRUE(
        b.AddEdge(i, static_cast<kg::NodeId>(rng.Uniform(i)), "p").ok());
  }
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<kg::NodeId>(rng.Uniform(n));
    const auto v = static_cast<kg::NodeId>(rng.Uniform(n));
    if (u != v) {
      EXPECT_TRUE(b.AddEdge(u, v, "q").ok());
    }
  }
  LemmaWorld world{b.Build(), {}};
  world.index = kg::LabelIndex(world.graph);
  return world;
}

std::vector<std::string> RandomLabels(Rng* rng, int n, size_t m) {
  std::vector<std::string> labels;
  for (size_t idx : rng->SampleWithoutReplacement(n, m)) {
    labels.push_back("node" + std::to_string(idx));
  }
  return labels;
}

class LemmaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaTest, Lemma1GStarHasMinimumDepth) {
  LemmaWorld world = MakeRandomWorld(GetParam(), 28);
  Rng rng(GetParam() + 500);
  LcagSearch search(&world.graph, &world.index);
  const std::vector<std::string> labels = RandomLabels(&rng, 28, 3);

  const LcagResult fast = search.Find(labels);
  ASSERT_TRUE(fast.found);

  // Compute every common ancestor's depth via the exhaustive machinery.
  std::vector<std::vector<kg::NodeId>> sources;
  for (const auto& l : labels) {
    auto s = world.index.Lookup(l);
    sources.emplace_back(s.begin(), s.end());
  }
  MultiLabelDijkstra dijkstra(&world.graph, std::move(sources));
  MultiLabelDijkstra::PopEvent event;
  while (dijkstra.PopNext(&event)) {
  }
  double min_depth = kInfDistance;
  for (kg::NodeId v = 0; v < world.graph.num_nodes(); ++v) {
    if (dijkstra.SettledCount(v) != 3) continue;
    double depth = 0;
    for (size_t i = 0; i < 3; ++i) {
      depth = std::max(depth, dijkstra.Distance(i, v));
    }
    min_depth = std::min(min_depth, depth);
  }
  EXPECT_DOUBLE_EQ(fast.graph.depth(), min_depth);  // Lemma 1
}

TEST_P(LemmaTest, Lemma2DiameterAtMostTwiceDepth) {
  LemmaWorld world = MakeRandomWorld(GetParam() + 1000, 28);
  Rng rng(GetParam() + 1500);
  LcagSearch search(&world.graph, &world.index);
  const std::vector<std::string> labels = RandomLabels(&rng, 28, 4);
  const LcagResult result = search.Find(labels);
  ASSERT_TRUE(result.found);
  const AncestorGraph& g = result.graph;

  // Pairwise BFS inside the materialized subgraph (unit weights, the
  // setting of the paper's illustrative example).
  std::map<kg::NodeId, std::vector<kg::NodeId>> adj;
  for (const PathEdge& e : g.edges) {
    adj[e.from].push_back(e.to);
    adj[e.to].push_back(e.from);
  }
  for (kg::NodeId start : g.nodes) {
    std::map<kg::NodeId, double> dist = {{start, 0}};
    std::queue<kg::NodeId> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const kg::NodeId v = frontier.front();
      frontier.pop();
      for (kg::NodeId nb : adj[v]) {
        if (!dist.contains(nb)) {
          dist[nb] = dist[v] + 1;
          frontier.push(nb);
        }
      }
    }
    for (kg::NodeId other : g.nodes) {
      ASSERT_TRUE(dist.contains(other));
      EXPECT_LE(dist[other], 2 * g.depth() + 1e-9);  // Lemma 2
    }
  }
}

TEST_P(LemmaTest, Lemma3PopOrderIsMonotone) {
  LemmaWorld world = MakeRandomWorld(GetParam() + 2000, 32);
  Rng rng(GetParam() + 2500);
  std::vector<std::vector<kg::NodeId>> sources;
  for (size_t idx : rng.SampleWithoutReplacement(32, 3)) {
    sources.push_back({static_cast<kg::NodeId>(idx)});
  }
  MultiLabelDijkstra dijkstra(&world.graph, std::move(sources));
  MultiLabelDijkstra::PopEvent event;
  double last = 0.0;
  while (dijkstra.PopNext(&event)) {
    EXPECT_GE(event.distance, last);  // Lemma 3
    last = event.distance;
  }
}

TEST_P(LemmaTest, Theorem1SourceDistancesAreTrueShortestPaths) {
  // The distance vector of the returned root must equal independent BFS
  // distances in the bi-directed graph (unit weights).
  LemmaWorld world = MakeRandomWorld(GetParam() + 3000, 26);
  Rng rng(GetParam() + 3500);
  LcagSearch search(&world.graph, &world.index);
  const std::vector<std::string> labels = RandomLabels(&rng, 26, 3);
  const LcagResult result = search.Find(labels);
  ASSERT_TRUE(result.found);

  for (size_t i = 0; i < labels.size(); ++i) {
    const auto sources = world.index.Lookup(labels[i]);
    size_t best = SIZE_MAX;
    for (kg::NodeId s : sources) {
      best = std::min(best, kg::BfsDistance(world.graph, s, result.graph.root));
    }
    EXPECT_DOUBLE_EQ(result.graph.label_distances[i],
                     static_cast<double>(best));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaTest, ::testing::Range<uint64_t>(0, 10));

// ---------------------------------------------------------------------------
// Coverage property: G* retains every tied shortest path
// ---------------------------------------------------------------------------

TEST(CoverageTest, AllParallelShortestPathsRetained) {
  // A --m1--> R and A --m2--> R (two tied 2-hop paths), B --> R directly.
  // R's compactness vector [2,1] ties with m1/m2 but R has the smallest id,
  // so it becomes the root and must retain BOTH A-paths (Def. 3 keeps the
  // full P(l -> r, D)).
  kg::KgBuilder b;
  const kg::NodeId a = b.AddNode("LabelA", kg::EntityType::kGpe);   // 0
  const kg::NodeId r = b.AddNode("Root", kg::EntityType::kGpe);     // 1
  const kg::NodeId m1 = b.AddNode("MidOne", kg::EntityType::kGpe);  // 2
  const kg::NodeId m2 = b.AddNode("MidTwo", kg::EntityType::kGpe);  // 3
  const kg::NodeId bb = b.AddNode("LabelB", kg::EntityType::kGpe);  // 4
  ASSERT_TRUE(b.AddEdge(a, m1, "p").ok());
  ASSERT_TRUE(b.AddEdge(m1, r, "p").ok());
  ASSERT_TRUE(b.AddEdge(a, m2, "p").ok());
  ASSERT_TRUE(b.AddEdge(m2, r, "p").ok());
  ASSERT_TRUE(b.AddEdge(bb, r, "p").ok());
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);
  LcagSearch search(&g, &index);
  const LcagResult result = search.Find({"labela", "labelb"});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.graph.root, r);
  EXPECT_EQ(result.graph.nodes.size(), 5u);  // both mids retained
  EXPECT_EQ(result.graph.edges.size(), 5u);
}

}  // namespace
}  // namespace embed
}  // namespace newslink
