// The versioned shard RPC surface, end to end: codec round-trips that
// keep scores bit-exact across the JSON wire, strict unknown-field and
// api_version rejection (409, not silent drift), the /v1/shard handlers'
// epoch-echo check, and a real scatter-gather coordinator over loopback
// sockets — parity with a single engine over the union while every shard
// answers, graceful degradation (HTTP 200, degraded: true) when one dies.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/synthetic_news.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "net/api_json.h"
#include "net/coordinator_service.h"
#include "net/http_server.h"
#include "net/search_service.h"
#include "net/shard_client.h"
#include "net/status_http.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Codec round-trips and version handshake (no engine, no sockets).
// ---------------------------------------------------------------------------

ShardQuery SampleQuery() {
  ShardQuery query;
  query.text_stems = {{"flood", 2}, {"rescu", 1}};
  query.node_terms = {{7, 3}, {19, 1}};
  query.use_bow = true;
  query.use_bon = true;
  query.kprime = 37;
  query.exhaustive = true;
  return query;
}

/// Full wire trip: encode → Dump → Parse → decode, like an actual RPC.
template <typename T, typename Encode, typename Decode>
T WireTrip(const T& message, Encode encode, Decode decode) {
  Result<json::Value> parsed = json::Parse(encode(message).Dump());
  NL_CHECK(parsed.ok()) << parsed.status().ToString();
  Result<T> decoded = decode(*parsed);
  NL_CHECK(decoded.ok()) << decoded.status().ToString();
  return std::move(*decoded);
}

TEST(ShardCodecs, PlanMessagesRoundTripExactly) {
  ShardPlanRpcRequest request;
  request.shard = 3;
  request.deadline_seconds = 0.125;
  request.query = SampleQuery();
  const ShardPlanRpcRequest back = WireTrip(
      request, ShardPlanRequestToJson, ShardPlanRequestFromJson);
  EXPECT_EQ(back.shard, request.shard);
  EXPECT_EQ(back.deadline_seconds, request.deadline_seconds);
  EXPECT_EQ(back.query.text_stems, request.query.text_stems);
  EXPECT_EQ(back.query.node_terms, request.query.node_terms);
  EXPECT_EQ(back.query.kprime, request.query.kprime);
  EXPECT_EQ(back.query.exhaustive, request.query.exhaustive);

  ShardPlanRpcResponse response;
  response.shard = 3;
  response.plan.epoch = 41;
  response.plan.num_docs = 1000;
  response.plan.text_total_length = 123456;
  response.plan.node_total_length = 7890;
  response.plan.text_min_doc_length = 4;
  response.plan.node_min_doc_length = 1;
  response.plan.text_df = {500, 17};
  response.plan.node_df = {3, 0};
  response.plan.text_max_tf = {9, 2};
  response.plan.node_max_tf = {5, 0};
  const ShardPlanRpcResponse rback = WireTrip(
      response, ShardPlanResponseToJson, ShardPlanResponseFromJson);
  EXPECT_EQ(rback.plan.epoch, response.plan.epoch);
  EXPECT_EQ(rback.plan.num_docs, response.plan.num_docs);
  EXPECT_EQ(rback.plan.text_df, response.plan.text_df);
  EXPECT_EQ(rback.plan.node_max_tf, response.plan.node_max_tf);
  EXPECT_EQ(rback.plan.text_min_doc_length, response.plan.text_min_doc_length);
}

TEST(ShardCodecs, SearchMessagesKeepScoresBitExact) {
  ShardSearchRpcRequest request;
  request.shard = 1;
  request.expected_epoch = 17;
  request.query = SampleQuery();
  request.global.num_docs = 2000;
  request.global.text_total_length = 99991;
  request.global.text_df = {1000, 34};
  const ShardSearchRpcRequest back = WireTrip(
      request, ShardSearchRequestToJson, ShardSearchRequestFromJson);
  EXPECT_EQ(back.expected_epoch, request.expected_epoch);
  EXPECT_EQ(back.global.num_docs, request.global.num_docs);
  EXPECT_EQ(back.global.text_df, request.global.text_df);

  // Awkward doubles that lose bits under %.17g-naive printing schemes;
  // shortest-round-trip rendering must reproduce them EXACTLY, or the
  // distributed merge stops being bit-identical to the in-process one.
  ShardSearchRpcResponse response;
  response.shard = 1;
  response.result.epoch = 17;
  response.result.snapshot_docs = 1000;
  response.result.bow_max = 0.1 + 0.2;
  response.result.bon_max = 1.0 / 3.0;
  response.result.bow_scored = 321;
  response.result.bon_scored = 12;
  response.result.candidates = {
      {42, 3.0000000000000004, 0.0},
      {77, 2.718281828459045, 0.30000000000000004},
  };
  const ShardSearchRpcResponse rback = WireTrip(
      response, ShardSearchResponseToJson, ShardSearchResponseFromJson);
  EXPECT_EQ(rback.result.bow_max, response.result.bow_max);
  EXPECT_EQ(rback.result.bon_max, response.result.bon_max);
  ASSERT_EQ(rback.result.candidates.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(rback.result.candidates[i].doc,
              response.result.candidates[i].doc);
    EXPECT_EQ(rback.result.candidates[i].bow,
              response.result.candidates[i].bow);
    EXPECT_EQ(rback.result.candidates[i].bon,
              response.result.candidates[i].bon);
  }
}

TEST(ShardCodecs, TimeFieldsRoundTripExactly) {
  // The v2 time-aware fields: window, half-life, and pinned now on the
  // query; has_timestamps on plans; per-candidate timestamps on results.
  ShardQuery query = SampleQuery();
  query.has_time_range = true;
  query.after_ms = 1699999999999;
  query.before_ms = 1700000360000;
  query.recency_half_life_s = 0.1 + 0.2;  // awkward double, must survive
  query.now_ms = 1700000400123;

  ShardPlanRpcRequest request;
  request.shard = 2;
  request.query = query;
  const ShardPlanRpcRequest back = WireTrip(
      request, ShardPlanRequestToJson, ShardPlanRequestFromJson);
  EXPECT_TRUE(back.query.has_time_range);
  EXPECT_EQ(back.query.after_ms, query.after_ms);
  EXPECT_EQ(back.query.before_ms, query.before_ms);
  EXPECT_EQ(back.query.recency_half_life_s, query.recency_half_life_s);
  EXPECT_EQ(back.query.now_ms, query.now_ms);

  ShardPlanRpcResponse plan_response;
  plan_response.plan.has_timestamps = true;
  const ShardPlanRpcResponse pback = WireTrip(
      plan_response, ShardPlanResponseToJson, ShardPlanResponseFromJson);
  EXPECT_TRUE(pback.plan.has_timestamps);

  ShardSearchRpcRequest search_request;
  search_request.query = query;
  search_request.global.has_timestamps = true;
  const ShardSearchRpcRequest sback = WireTrip(
      search_request, ShardSearchRequestToJson, ShardSearchRequestFromJson);
  EXPECT_TRUE(sback.global.has_timestamps);
  EXPECT_EQ(sback.query.before_ms, query.before_ms);

  ShardSearchRpcResponse response;
  response.result.candidates = {
      {42, 1.5, 0.25, 1700000000001},
      {77, 2.5, 0.125, 0},  // unknown timestamp stays 0
  };
  const ShardSearchRpcResponse rback = WireTrip(
      response, ShardSearchResponseToJson, ShardSearchResponseFromJson);
  ASSERT_EQ(rback.result.candidates.size(), 2u);
  EXPECT_EQ(rback.result.candidates[0].ts, 1700000000001);
  EXPECT_EQ(rback.result.candidates[1].ts, 0);
}

TEST(ShardCodecs, UnknownFieldsAreRejectedEverywhere) {
  ShardPlanRpcRequest plan_request;
  plan_request.query = SampleQuery();
  json::Value wire = ShardPlanRequestToJson(plan_request);
  wire.Set("shard_idx", json::Value::Uint(0));  // typo'd field
  EXPECT_TRUE(ShardPlanRequestFromJson(wire).status().IsInvalidArgument());

  json::Value response_wire = ShardPlanResponseToJson({});
  response_wire.Set("docs", json::Value::Uint(5));
  EXPECT_TRUE(
      ShardPlanResponseFromJson(response_wire).status().IsInvalidArgument());

  ShardSearchRpcRequest search_request;
  search_request.query = SampleQuery();
  json::Value search_wire = ShardSearchRequestToJson(search_request);
  search_wire.Set("epoch", json::Value::Uint(1));  // belongs to responses
  EXPECT_TRUE(
      ShardSearchRequestFromJson(search_wire).status().IsInvalidArgument());

  json::Value result_wire = ShardSearchResponseToJson({});
  result_wire.Set("hits", json::Value::Array());
  EXPECT_TRUE(
      ShardSearchResponseFromJson(result_wire).status().IsInvalidArgument());
}

TEST(ShardCodecs, ApiVersionSkewFailsLoudlyInBothDirections) {
  // Old client → new server: a request with no api_version at all.
  json::Value unversioned = ShardPlanRequestToJson({});
  json::Value stripped = json::Value::Object();
  for (const auto& [key, field] : unversioned.members()) {
    if (key != "api_version") stripped.Set(key, json::Value(field));
  }
  const Status missing = ShardPlanRequestFromJson(stripped).status();
  EXPECT_TRUE(missing.IsFailedPrecondition()) << missing.ToString();
  EXPECT_EQ(StatusToHttp(missing), 409);

  // New client → old server (or vice versa): wrong version number. The
  // check applies to requests AND responses, so either peer notices.
  json::Value skewed = ShardPlanRequestToJson({});
  skewed.Set("api_version", json::Value::Uint(kShardApiVersion + 1));
  const Status mismatch = ShardPlanRequestFromJson(skewed).status();
  EXPECT_TRUE(mismatch.IsFailedPrecondition()) << mismatch.ToString();
  EXPECT_EQ(StatusToHttp(mismatch), 409);

  json::Value skewed_response = ShardSearchResponseToJson({});
  skewed_response.Set("api_version", json::Value::Uint(kShardApiVersion + 1));
  EXPECT_TRUE(ShardSearchResponseFromJson(skewed_response)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ShardCodecs, SearchResponseShardBlockIsAdditive) {
  baselines::SearchResponse response;
  response.epoch = 1;
  // A single-index engine (shards_total == 0) keeps the legacy shape.
  json::Value solo = SearchResponseToJson(response, nullptr, nullptr);
  EXPECT_EQ(solo.Find("shards_total"), nullptr);
  EXPECT_EQ(solo.Find("shards_answered"), nullptr);
  EXPECT_EQ(solo.Find("degraded"), nullptr);

  response.shards_total = 3;
  response.shards_answered = 2;
  response.degraded = true;
  json::Value sharded = SearchResponseToJson(response, nullptr, nullptr);
  ASSERT_NE(sharded.Find("shards_total"), nullptr);
  EXPECT_EQ(sharded.Find("shards_total")->AsDouble(), 3);
  EXPECT_EQ(sharded.Find("shards_answered")->AsDouble(), 2);
  EXPECT_TRUE(sharded.Find("degraded")->AsBool());
}

// ---------------------------------------------------------------------------
// Fixture: a corpus round-robin split over two shard servers, plus a
// single engine over the union as ground truth.
// ---------------------------------------------------------------------------

class ShardServingTest : public ::testing::Test {
 protected:
  static constexpr size_t kNumShards = 2;

  ShardServingTest() : kg_(MakeKg()), labels_(kg_.graph) {
    corpus::SyntheticNewsConfig corpus_config = corpus::CnnLikeConfig();
    corpus_config.num_stories = 10;
    news_ = corpus::SyntheticNewsGenerator(&kg_, corpus_config).Generate("sh");
    union_corpus_ = news_.corpus;

    config_.beta = 0.2;
    config_.num_threads = 2;
    single_ = std::make_unique<NewsLinkEngine>(&kg_.graph, &labels_, config_);
    NL_CHECK(single_->Index(union_corpus_).ok());

    // Round-robin slices: shard s holds global rows s, s+N, s+2N, ... —
    // exactly the layout `newslink_cli serve --shard-index s --shard-count
    // N` builds and the coordinator's l*N + s merge assumes.
    for (size_t s = 0; s < kNumShards; ++s) {
      corpus::Corpus slice;
      for (size_t row = s; row < union_corpus_.size(); row += kNumShards) {
        slice.Add(union_corpus_.doc(row));
      }
      slices_.push_back(std::move(slice));
      shard_engines_.push_back(
          std::make_unique<NewsLinkEngine>(&kg_.graph, &labels_, config_));
      NL_CHECK(shard_engines_[s]->Index(slices_[s]).ok());
    }
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 1311;
    config.num_countries = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  /// Start one /v1 server per shard and build a coordinator over them.
  void StartCluster() {
    std::vector<std::unique_ptr<ShardClient>> clients;
    for (size_t s = 0; s < kNumShards; ++s) {
      shard_services_.push_back(std::make_unique<SearchService>(
          shard_engines_[s].get(), &slices_[s], &kg_.graph));
      HttpServerOptions options;
      options.port = 0;
      options.num_workers = 4;
      shard_servers_.push_back(std::make_unique<HttpServer>(
          options, shard_engines_[s]->mutable_metrics()));
      shard_services_[s]->RegisterRoutes(shard_servers_[s].get());
      ASSERT_TRUE(shard_servers_[s]->Start().ok());
      clients.push_back(std::make_unique<ShardClient>(
          s, "127.0.0.1", shard_servers_[s]->port()));
    }
    prep_ = std::make_unique<NewsLinkEngine>(&kg_.graph, &labels_, config_);
    CoordinatorOptions options;
    options.shard_deadline_seconds = 5.0;
    coordinator_ = std::make_unique<CoordinatorService>(
        prep_.get(), config_, std::move(clients), options);
  }

  void TearDown() override {
    for (auto& server : shard_servers_) {
      if (server != nullptr) server->Shutdown();
    }
  }

  std::string QueryFor(size_t doc) const {
    const std::string& text = union_corpus_.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  static HttpRequest PostJson(const std::string& target,
                              const json::Value& body) {
    HttpRequest request;
    request.method = "POST";
    request.target = target;
    request.version = "HTTP/1.1";
    request.body = body.Dump();
    return request;
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex labels_;
  corpus::SyntheticCorpus news_;
  corpus::Corpus union_corpus_;
  NewsLinkConfig config_;
  std::unique_ptr<NewsLinkEngine> single_;
  std::vector<corpus::Corpus> slices_;
  std::vector<std::unique_ptr<NewsLinkEngine>> shard_engines_;
  std::vector<std::unique_ptr<SearchService>> shard_services_;
  std::vector<std::unique_ptr<HttpServer>> shard_servers_;
  std::unique_ptr<NewsLinkEngine> prep_;
  std::unique_ptr<CoordinatorService> coordinator_;
};

TEST_F(ShardServingTest, ShardHandlersSpeakTheTwoPhaseProtocol) {
  NewsLinkEngine* engine = shard_engines_[0].get();
  SearchService service(engine, &slices_[0], &kg_.graph);

  baselines::SearchRequest request;
  request.query = QueryFor(0);
  request.k = 5;
  request.beta = 0.3;
  const ShardQuery query =
      engine->PrepareShardQuery(request, engine->EmbedText(request.query));

  ShardPlanRpcRequest plan_request;
  plan_request.shard = 0;
  plan_request.query = query;
  const HttpResponse plan_http = service.HandleShardPlan(
      PostJson("/v1/shard/plan", ShardPlanRequestToJson(plan_request)));
  ASSERT_EQ(plan_http.status, 200) << plan_http.body;
  Result<json::Value> plan_body = json::Parse(plan_http.body);
  ASSERT_TRUE(plan_body.ok());
  Result<ShardPlanRpcResponse> plan = ShardPlanResponseFromJson(*plan_body);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // The served plan is the direct PlanShard answer, field for field.
  const ShardPlan direct = engine->PlanShard(query, engine->PinEpoch());
  EXPECT_EQ(plan->plan.epoch, direct.epoch);
  EXPECT_EQ(plan->plan.num_docs, direct.num_docs);
  EXPECT_EQ(plan->plan.text_total_length, direct.text_total_length);
  EXPECT_EQ(plan->plan.text_df, direct.text_df);
  EXPECT_EQ(plan->plan.node_df, direct.node_df);
  EXPECT_EQ(plan->plan.text_max_tf, direct.text_max_tf);

  ShardGlobalStats global;
  MergeShardPlan(plan->plan, &global);
  ShardSearchRpcRequest search_request;
  search_request.shard = 0;
  search_request.expected_epoch = plan->plan.epoch;
  search_request.query = query;
  search_request.global = global;
  const HttpResponse search_http = service.HandleShardSearch(
      PostJson("/v1/shard/search", ShardSearchRequestToJson(search_request)));
  ASSERT_EQ(search_http.status, 200) << search_http.body;
  Result<json::Value> search_body = json::Parse(search_http.body);
  ASSERT_TRUE(search_body.ok());
  Result<ShardSearchRpcResponse> result =
      ShardSearchResponseFromJson(*search_body);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Candidates and raw scores survive the wire bit-exactly.
  const ShardSearchResult direct_result =
      engine->SearchShard(query, global, engine->PinEpoch());
  ASSERT_EQ(result->result.candidates.size(),
            direct_result.candidates.size());
  EXPECT_EQ(result->result.bow_max, direct_result.bow_max);
  EXPECT_EQ(result->result.bon_max, direct_result.bon_max);
  for (size_t i = 0; i < direct_result.candidates.size(); ++i) {
    EXPECT_EQ(result->result.candidates[i].doc,
              direct_result.candidates[i].doc);
    EXPECT_EQ(result->result.candidates[i].bow,
              direct_result.candidates[i].bow);
    EXPECT_EQ(result->result.candidates[i].bon,
              direct_result.candidates[i].bon);
  }

  // Epoch moved between PLAN and SEARCH → 409, so a coordinator re-plans
  // instead of merging statistics across epochs.
  corpus::Document doc;
  doc.id = "live-1";
  doc.title = "late breaking";
  doc.text = "Late breaking update arrives after the plan.";
  engine->AddDocument(doc);
  const HttpResponse stale = service.HandleShardSearch(
      PostJson("/v1/shard/search", ShardSearchRequestToJson(search_request)));
  EXPECT_EQ(stale.status, 409) << stale.body;
}

TEST_F(ShardServingTest, CoordinatorMatchesSingleEngineOverTheUnion) {
  StartCluster();
  for (const size_t doc : {0UL, 3UL, 7UL}) {
    for (const double beta : {0.0, 0.3, 1.0}) {
      baselines::SearchRequest request;
      request.query = QueryFor(doc);
      request.k = 5;
      request.beta = beta;
      const baselines::SearchResponse expected = single_->Search(request);
      const baselines::SearchResponse actual = coordinator_->Search(request);
      const std::string what = StrCat("doc ", doc, " beta ", beta);
      EXPECT_EQ(actual.shards_total, kNumShards) << what;
      EXPECT_EQ(actual.shards_answered, kNumShards) << what;
      EXPECT_FALSE(actual.degraded) << what;
      EXPECT_EQ(actual.snapshot_docs, union_corpus_.size()) << what;
      ASSERT_EQ(actual.hits.size(), expected.hits.size()) << what;
      for (size_t i = 0; i < expected.hits.size(); ++i) {
        EXPECT_EQ(actual.hits[i].doc_index, expected.hits[i].doc_index)
            << what << " hit " << i;
        EXPECT_EQ(actual.hits[i].score, expected.hits[i].score)
            << what << " hit " << i;
      }
    }
  }
}

TEST_F(ShardServingTest, CoordinatorDegradesWhenAShardDies) {
  StartCluster();
  baselines::SearchRequest request;
  request.query = QueryFor(2);
  request.k = 5;

  // Healthy cluster first, so the stats below show a transition.
  const baselines::SearchResponse healthy = coordinator_->Search(request);
  EXPECT_FALSE(healthy.degraded);

  shard_servers_[1]->Shutdown();
  shard_servers_[1].reset();

  const HttpResponse http = coordinator_->HandleSearch(
      PostJson("/v1/search", [&] {
        json::Value body = json::Value::Object();
        body.Set("query", json::Value::Str(request.query));
        body.Set("k", json::Value::Uint(5));
        return body;
      }()));
  // Partial results are still a 200 — degradation is flagged in-band.
  ASSERT_EQ(http.status, 200) << http.body;
  Result<json::Value> body = json::Parse(http.body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE(body->Find("degraded")->AsBool());
  EXPECT_EQ(body->Find("shards_answered")->AsDouble(), 1);
  EXPECT_EQ(body->Find("shards_total")->AsDouble(), 2);

  // Every surviving hit comes from shard 0's rows (even global rows under
  // the round-robin split).
  const baselines::SearchResponse degraded = coordinator_->Search(request);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.shards_answered, 1u);
  ASSERT_FALSE(degraded.hits.empty());
  for (const baselines::SearchHit& hit : degraded.hits) {
    EXPECT_EQ(hit.doc_index % kNumShards, 0u) << hit.doc_index;
  }

  // /v1/stats reports the per-shard health split.
  const HttpResponse stats_http = coordinator_->HandleStats(HttpRequest{});
  ASSERT_EQ(stats_http.status, 200);
  Result<json::Value> stats = json::Parse(stats_http.body);
  ASSERT_TRUE(stats.ok());
  const json::Value* shards = stats->Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->size(), kNumShards);
  EXPECT_TRUE(shards->at(0).Find("healthy")->AsBool());
  EXPECT_FALSE(shards->at(1).Find("healthy")->AsBool());
  EXPECT_NE(shards->at(1).Find("last_error"), nullptr);
}

TEST_F(ShardServingTest, CoordinatorRejectsExplainLoudly) {
  StartCluster();
  json::Value body = json::Value::Object();
  body.Set("query", json::Value::Str(QueryFor(1)));
  body.Set("explain", json::Value::Bool(true));
  const HttpResponse http =
      coordinator_->HandleSearch(PostJson("/v1/search", body));
  EXPECT_EQ(http.status, 400) << http.body;
}

}  // namespace
}  // namespace net
}  // namespace newslink
