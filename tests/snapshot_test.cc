// Tests for the versioned engine snapshot format (DESIGN.md Sec. 9):
// build -> save -> load round trips, live ingestion on top of a loaded
// snapshot, fingerprint-based staleness rejection, and the hardened
// readers' behaviour under truncation and bit flips. Every failure path
// must return Status — never crash — and leave the engine untouched.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/binary_io.h"
#include "common/snapshot_file.h"
#include "corpus/corpus.h"
#include "corpus/corpus_io.h"
#include "corpus/synthetic_news.h"
#include "embed/embedding_io.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// One world + corpus + indexed engine + saved snapshot, built once and
// shared read-only by every test (indexing runs the full NLP/NE pipeline
// and dominates suite runtime).
struct SharedState {
  SharedState()
      : world(MakeWorld()),
        labels(world.graph),
        news(MakeNews(&world)),
        engine(&world.graph, &labels, NewsLinkConfig{}) {
    NL_CHECK(engine.Index(news.corpus).ok());
    snapshot_path = testing::TempDir() + "snapshot_test_main.snap";
    save_status = engine.SaveSnapshot(snapshot_path);
    if (save_status.ok()) snapshot_bytes = ReadFileBytes(snapshot_path);
  }

  static kg::SyntheticKg MakeWorld() {
    kg::SyntheticKgConfig config;
    config.seed = 1234;
    config.num_countries = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  static corpus::SyntheticCorpus MakeNews(const kg::SyntheticKg* world) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 25;
    return corpus::SyntheticNewsGenerator(world, config).Generate("it");
  }

  // First sentence of a document: a query with known relevant results.
  std::string Sentence(size_t doc) const {
    const std::string& text = news.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  std::vector<std::string> Queries() const {
    std::vector<std::string> queries;
    for (size_t d : {size_t{0}, size_t{3}, size_t{7}, size_t{12}}) {
      queries.push_back(Sentence(d));
    }
    return queries;
  }

  kg::SyntheticKg world;
  kg::LabelIndex labels;
  corpus::SyntheticCorpus news;
  NewsLinkEngine engine;
  std::string snapshot_path;
  Status save_status;
  std::string snapshot_bytes;
};

SharedState& State() {
  static SharedState* state = new SharedState();
  return *state;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(State().save_status.ok()) << State().save_status.ToString();
    ASSERT_FALSE(State().snapshot_bytes.empty());
  }
};

TEST_F(SnapshotTest, HeaderCarriesFingerprints) {
  SharedState& s = State();
  Result<SnapshotHeader> header = ReadSnapshotHeader(s.snapshot_path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->format_version, kSnapshotFormatVersion);
  EXPECT_EQ(header->kg_fingerprint, s.world.graph.Fingerprint());
  EXPECT_EQ(header->corpus_fingerprint, s.engine.corpus_fingerprint());
  EXPECT_EQ(header->config_fingerprint,
            NewsLinkEngine::ConfigFingerprint(NewsLinkConfig{}));
  EXPECT_EQ(header->num_docs, s.news.corpus.size());
}

TEST_F(SnapshotTest, LoadReproducesExactSearchResults) {
  SharedState& s = State();
  NewsLinkEngine loaded(&s.world.graph, &s.labels, NewsLinkConfig{});
  const Status status = loaded.LoadSnapshot(s.snapshot_path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(loaded.num_indexed_docs(), s.engine.num_indexed_docs());
  EXPECT_EQ(loaded.corpus_fingerprint(), s.engine.corpus_fingerprint());

  for (const std::string& query : s.Queries()) {
    for (bool exhaustive : {false, true}) {
      baselines::SearchRequest request;
      request.query = query;
      request.k = 10;
      request.exhaustive_fusion = exhaustive;
      const baselines::SearchResponse expected = s.engine.Search(request);
      const baselines::SearchResponse actual = loaded.Search(request);
      ASSERT_EQ(actual.hits.size(), expected.hits.size())
          << "query: " << query << " exhaustive: " << exhaustive;
      for (size_t i = 0; i < expected.hits.size(); ++i) {
        EXPECT_EQ(actual.hits[i].doc_index, expected.hits[i].doc_index)
            << "rank " << i << " query: " << query;
        // Bit-exact, not approximately equal: the snapshot restores the
        // very same index contents and statistics.
        EXPECT_EQ(actual.hits[i].score, expected.hits[i].score)
            << "rank " << i << " query: " << query;
      }
    }
  }
}

TEST_F(SnapshotTest, ResaveOfLoadedSnapshotIsByteIdentical) {
  SharedState& s = State();
  NewsLinkEngine loaded(&s.world.graph, &s.labels, NewsLinkConfig{});
  ASSERT_TRUE(loaded.LoadSnapshot(s.snapshot_path).ok());
  const std::string resave_path = testing::TempDir() + "snapshot_resave.snap";
  const Status status = loaded.SaveSnapshot(resave_path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ReadFileBytes(resave_path), s.snapshot_bytes);
}

TEST_F(SnapshotTest, IngestionContinuesOnLoadedSnapshot) {
  SharedState& s = State();
  const corpus::Corpus& full = s.news.corpus;
  ASSERT_GT(full.size(), 4u);
  const size_t cut = full.size() - 2;
  corpus::Corpus partial;
  for (size_t i = 0; i < cut; ++i) partial.Add(full.doc(i));

  // Build + save over the truncated corpus, then load and ingest the tail.
  const std::string path = testing::TempDir() + "snapshot_partial.snap";
  {
    NewsLinkEngine builder(&s.world.graph, &s.labels, NewsLinkConfig{});
    ASSERT_TRUE(builder.Index(partial).ok());
    ASSERT_TRUE(builder.SaveSnapshot(path).ok());
  }
  NewsLinkEngine loaded(&s.world.graph, &s.labels, NewsLinkConfig{});
  ASSERT_TRUE(loaded.LoadSnapshot(path).ok());
  for (size_t i = cut; i < full.size(); ++i) {
    EXPECT_EQ(loaded.AddDocument(full.doc(i)), i);
  }
  EXPECT_EQ(loaded.num_indexed_docs(), full.size());
  // The chained fingerprint after live ingestion matches the bulk build's.
  EXPECT_EQ(loaded.corpus_fingerprint(), s.engine.corpus_fingerprint());

  // And the loaded-then-ingested engine ranks like the bulk-built one —
  // including for a query drawn from an ingested document.
  std::vector<std::string> queries = s.Queries();
  queries.push_back(s.Sentence(full.size() - 1));
  for (const std::string& query : queries) {
    const auto expected = s.engine.Search({query, 10}).hits;
    const auto actual = loaded.Search({query, 10}).hits;
    ASSERT_EQ(actual.size(), expected.size()) << "query: " << query;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].doc_index, expected[i].doc_index)
          << "rank " << i << " query: " << query;
      EXPECT_DOUBLE_EQ(actual[i].score, expected[i].score)
          << "rank " << i << " query: " << query;
    }
  }
}

TEST_F(SnapshotTest, LoadRejectsNonEmptyEngine) {
  SharedState& s = State();
  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  engine.AddDocument(s.news.corpus.doc(0));
  const Status status = engine.LoadSnapshot(s.snapshot_path);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
  EXPECT_EQ(engine.num_indexed_docs(), 1u);
}

TEST_F(SnapshotTest, LoadRejectsDifferentKnowledgeGraph) {
  SharedState& s = State();
  kg::SyntheticKgConfig config;
  config.seed = 99;
  config.num_countries = 2;
  kg::SyntheticKg other = kg::SyntheticKgGenerator(config).Generate();
  kg::LabelIndex other_labels(other.graph);
  ASSERT_NE(other.graph.Fingerprint(), s.world.graph.Fingerprint());

  NewsLinkEngine engine(&other.graph, &other_labels, NewsLinkConfig{});
  const Status status = engine.LoadSnapshot(s.snapshot_path);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
  EXPECT_EQ(engine.num_indexed_docs(), 0u);
}

TEST_F(SnapshotTest, LoadRejectsDifferentConfig) {
  SharedState& s = State();
  NewsLinkConfig config;
  config.bon_doc_tf_cap = 5;  // artifact-shaping: changes index contents
  ASSERT_NE(NewsLinkEngine::ConfigFingerprint(config),
            NewsLinkEngine::ConfigFingerprint(NewsLinkConfig{}));
  NewsLinkEngine engine(&s.world.graph, &s.labels, config);
  const Status status = engine.LoadSnapshot(s.snapshot_path);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST_F(SnapshotTest, QueryOnlyConfigChangesDoNotInvalidateSnapshots) {
  SharedState& s = State();
  NewsLinkConfig config;
  config.beta = 0.7;        // query-side fusion weight
  config.rerank_depth = 8;  // query-side candidate depth
  EXPECT_EQ(NewsLinkEngine::ConfigFingerprint(config),
            NewsLinkEngine::ConfigFingerprint(NewsLinkConfig{}));
  NewsLinkEngine engine(&s.world.graph, &s.labels, config);
  EXPECT_TRUE(engine.LoadSnapshot(s.snapshot_path).ok());
}

TEST_F(SnapshotTest, LoadRejectsMissingFile) {
  SharedState& s = State();
  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  const Status status =
      engine.LoadSnapshot(testing::TempDir() + "no_such_snapshot.snap");
  EXPECT_FALSE(status.ok());
}

TEST_F(SnapshotTest, TruncatedSnapshotsAlwaysFailCleanly) {
  SharedState& s = State();
  const std::string path = testing::TempDir() + "snapshot_truncated.snap";
  // One engine reused across the whole sweep: a failed load must leave it
  // empty and usable, so hundreds of failures in a row are fine.
  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  const size_t size = s.snapshot_bytes.size();
  std::vector<size_t> cuts = {0, 1, 2, 5, size / 2, size - 1};
  for (size_t cut = 3; cut < size; cut += 97) cuts.push_back(cut);
  for (size_t cut : cuts) {
    WriteFileBytes(path, s.snapshot_bytes.substr(0, cut));
    const Status status = engine.LoadSnapshot(path);
    EXPECT_FALSE(status.ok()) << "prefix of " << cut << " bytes loaded";
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  // After every rejection the engine still accepts the intact snapshot.
  ASSERT_TRUE(engine.LoadSnapshot(s.snapshot_path).ok());
  EXPECT_EQ(engine.num_indexed_docs(), s.news.corpus.size());
  EXPECT_FALSE(engine.Search({s.Sentence(0), 5}).hits.empty());
}

TEST_F(SnapshotTest, BitFlippedSnapshotsAlwaysFailCleanly) {
  SharedState& s = State();
  const std::string path = testing::TempDir() + "snapshot_bitflip.snap";
  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  // Every byte of the file is covered by the magic check, the per-section
  // CRCs, or the whole-file CRC, so ANY single-bit flip must be rejected.
  for (size_t offset = 0; offset < s.snapshot_bytes.size(); offset += 131) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string corrupt = s.snapshot_bytes;
      corrupt[offset] = static_cast<char>(
          static_cast<uint8_t>(corrupt[offset]) ^ bit);
      WriteFileBytes(path, corrupt);
      const Status status = engine.LoadSnapshot(path);
      EXPECT_FALSE(status.ok())
          << "bit flip at offset " << offset << " accepted";
      EXPECT_EQ(engine.num_indexed_docs(), 0u);
    }
  }
}

TEST_F(SnapshotTest, StaleFormatVersionIsRejectedOutright) {
  // A v1 file (pre doc-map) with a VALID file CRC must still be refused:
  // the version gate, not checksumming, is what protects against silently
  // mis-reading an older layout.
  SharedState& s = State();
  std::string stale = s.snapshot_bytes;
  ASSERT_GT(stale.size(), 12u);
  // Bytes 6-7 hold the little-endian format version, right after "NLSNAP".
  stale[6] = 1;
  stale[7] = 0;
  const uint32_t crc = Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(stale.data()), stale.size() - 4));
  for (int i = 0; i < 4; ++i) {
    stale[stale.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  const std::string path = testing::TempDir() + "snapshot_stale_version.snap";
  WriteFileBytes(path, stale);

  const Result<SnapshotFile> parsed = ReadSnapshotFile(path);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("format version"),
            std::string::npos)
      << parsed.status().ToString();

  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  EXPECT_FALSE(engine.LoadSnapshot(path).ok());
  EXPECT_EQ(engine.num_indexed_docs(), 0u);
}

TEST_F(SnapshotTest, CorruptDocMapSectionIsRejected) {
  // CRC-clean but semantically invalid doc maps (not a permutation, or the
  // wrong cardinality) must fail the load and leave the engine empty.
  SharedState& s = State();
  const Result<SnapshotFile> file = ReadSnapshotFile(s.snapshot_path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_NE(file->Find("doc_map"), nullptr);

  const auto rewrite = [&](const std::vector<uint8_t>& payload,
                           bool drop_section, const std::string& path) {
    std::vector<SnapshotSection> sections;
    for (const SnapshotSection& section : file->sections) {
      if (section.name == "doc_map") {
        if (drop_section) continue;
        sections.push_back({section.name, payload});
      } else {
        sections.push_back(section);
      }
    }
    NL_CHECK(WriteSnapshotFile(path, file->header, sections).ok());
  };

  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  const size_t n = file->header.num_docs;
  const std::string path = testing::TempDir() + "snapshot_bad_docmap.snap";

  {
    // Right count, but every entry is 0: not a permutation.
    ByteWriter out;
    out.WriteU64(n);
    for (size_t i = 0; i < n; ++i) out.WriteVarint(0);
    rewrite(out.TakeBytes(), false, path);
    const Status status = engine.LoadSnapshot(path);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("permutation"), std::string::npos)
        << status.ToString();
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  {
    // A valid permutation of the WRONG cardinality.
    ByteWriter out;
    out.WriteU64(n - 1);
    for (size_t i = 0; i + 1 < n; ++i) {
      out.WriteVarint(static_cast<uint32_t>(i));
    }
    rewrite(out.TakeBytes(), false, path);
    EXPECT_FALSE(engine.LoadSnapshot(path).ok());
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  {
    // Section missing entirely (a hand-rolled v2 file without it).
    rewrite({}, true, path);
    EXPECT_FALSE(engine.LoadSnapshot(path).ok());
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  // The engine remains usable after the rejections.
  ASSERT_TRUE(engine.LoadSnapshot(s.snapshot_path).ok());
  EXPECT_EQ(engine.num_indexed_docs(), s.news.corpus.size());
}

TEST_F(SnapshotTest, ReorderedEngineRoundTripsThroughSnapshot) {
  // Save from a reorder_docs engine, load into a default-config engine:
  // hits (corpus rows) and scores must match the source engine exactly,
  // and a re-save must be byte-identical (the doc map is persisted
  // as-written, not recomputed from the loader's config).
  SharedState& s = State();
  NewsLinkConfig config;
  config.reorder_docs = true;
  NewsLinkEngine source(&s.world.graph, &s.labels, config);
  ASSERT_TRUE(source.Index(s.news.corpus).ok());
  const std::string path = testing::TempDir() + "snapshot_reordered.snap";
  ASSERT_TRUE(source.SaveSnapshot(path).ok());

  NewsLinkEngine loaded(&s.world.graph, &s.labels, NewsLinkConfig{});
  const Status status = loaded.LoadSnapshot(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(loaded.num_indexed_docs(), s.news.corpus.size());

  for (const std::string& query : s.Queries()) {
    const auto expected = source.Search({query, 10}).hits;
    const auto actual = loaded.Search({query, 10}).hits;
    ASSERT_EQ(actual.size(), expected.size()) << "query: " << query;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].doc_index, expected[i].doc_index) << "rank " << i;
      EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
    }
  }

  const std::string resave = testing::TempDir() + "snapshot_reordered2.snap";
  ASSERT_TRUE(loaded.SaveSnapshot(resave).ok());
  EXPECT_EQ(ReadFileBytes(resave), ReadFileBytes(path));
}

// ---------------------------------------------------------------------------
// The v3 "lcag_sketch" section (DESIGN.md Sec. 14).
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, SketchSnapshotRoundTripsAndResavesByteIdentical) {
  SharedState& s = State();
  NewsLinkConfig sketch_config;
  sketch_config.lcag_sketch.enabled = true;
  NewsLinkEngine source(&s.world.graph, &s.labels, sketch_config);
  ASSERT_TRUE(source.Index(s.news.corpus).ok());
  const std::string path = testing::TempDir() + "snapshot_sketch.snap";
  ASSERT_TRUE(source.SaveSnapshot(path).ok());

  const Result<SnapshotFile> file = ReadSnapshotFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_NE(file->Find("lcag_sketch"), nullptr);
  // Sketches are result-invariant, so the config fingerprint ignores them:
  // the sketch snapshot is loadable by a sketch-free engine (and serves
  // the persisted fast path regardless of that engine's flag).
  EXPECT_EQ(file->header.config_fingerprint,
            NewsLinkEngine::ConfigFingerprint(NewsLinkConfig{}));

  NewsLinkEngine plain(&s.world.graph, &s.labels, NewsLinkConfig{});
  ASSERT_TRUE(plain.LoadSnapshot(path).ok());
  EXPECT_EQ(plain.num_indexed_docs(), s.news.corpus.size());
  for (const std::string& query : s.Queries()) {
    const auto expected = source.Search({query, 10}).hits;
    const auto actual = plain.Search({query, 10}).hits;
    ASSERT_EQ(actual.size(), expected.size()) << "query: " << query;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].doc_index, expected[i].doc_index) << "rank " << i;
      EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
    }
  }

  // Byte-identical re-save: the loader installed the persisted sketches
  // (it did not rebuild them) and the codec is deterministic.
  const std::string resave = testing::TempDir() + "snapshot_sketch2.snap";
  ASSERT_TRUE(plain.SaveSnapshot(resave).ok());
  EXPECT_EQ(ReadFileBytes(resave), ReadFileBytes(path));
}

TEST_F(SnapshotTest, CorruptSketchSectionIsRejected) {
  // CRC-clean but semantically broken sketch sections must fail the load
  // and leave the engine empty (parse-all-then-commit).
  SharedState& s = State();
  NewsLinkConfig sketch_config;
  sketch_config.lcag_sketch.enabled = true;
  NewsLinkEngine source(&s.world.graph, &s.labels, sketch_config);
  ASSERT_TRUE(source.Index(s.news.corpus).ok());
  const std::string path = testing::TempDir() + "snapshot_sketch_bad0.snap";
  ASSERT_TRUE(source.SaveSnapshot(path).ok());
  const Result<SnapshotFile> file = ReadSnapshotFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const SnapshotSection* sketch_section = file->Find("lcag_sketch");
  ASSERT_NE(sketch_section, nullptr);

  const auto rewrite = [&](const std::vector<uint8_t>& payload,
                           const std::string& out_path) {
    std::vector<SnapshotSection> sections;
    for (const SnapshotSection& section : file->sections) {
      sections.push_back(section.name == "lcag_sketch"
                             ? SnapshotSection{section.name, payload}
                             : section);
    }
    NL_CHECK(WriteSnapshotFile(out_path, file->header, sections).ok());
  };

  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  const std::string bad = testing::TempDir() + "snapshot_sketch_bad.snap";
  {
    // Truncated payload: the codec's declared counts over-promise.
    std::vector<uint8_t> cut(sketch_section->payload.begin(),
                             sketch_section->payload.end() - 9);
    rewrite(cut, bad);
    EXPECT_FALSE(engine.LoadSnapshot(bad).ok());
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  {
    // A VALID sketch over the wrong graph (2 nodes): node-count mismatch.
    kg::KgBuilder b;
    b.AddNode("a", kg::EntityType::kGpe);
    b.AddNode("b", kg::EntityType::kGpe);
    const kg::KnowledgeGraph tiny = b.Build();
    ByteWriter out;
    embed::LcagSketchIndex::Build(tiny, embed::LcagSketchOptions{})
        .Serialize(&out);
    rewrite(out.TakeBytes(), bad);
    const Status status = engine.LoadSnapshot(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  {
    // Flip one distance sign bit inside an entry: rejected by the range
    // check even though the section CRC was rewritten to match.
    std::vector<uint8_t> flipped = sketch_section->payload;
    flipped[flipped.size() - 1] ^= 0x80;
    rewrite(flipped, bad);
    EXPECT_FALSE(engine.LoadSnapshot(bad).ok());
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  // The engine remains usable and accepts the intact sketch snapshot.
  ASSERT_TRUE(engine.LoadSnapshot(path).ok());
  EXPECT_EQ(engine.num_indexed_docs(), s.news.corpus.size());
}

// ---------------------------------------------------------------------------
// The v3 "timestamps" section (DESIGN.md Sec. 15).
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, TimestampsSurviveSnapshotRoundTrip) {
  // The section is always written, and a loaded engine answers time-aware
  // requests (recency decay + time_range pushdown) bit-identically to the
  // engine that built the index.
  SharedState& s = State();
  const Result<SnapshotFile> file = ReadSnapshotFile(s.snapshot_path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_NE(file->Find("timestamps"), nullptr);

  int64_t ts_min = std::numeric_limits<int64_t>::max();
  int64_t ts_max = 0;
  for (size_t d = 0; d < s.news.corpus.size(); ++d) {
    ts_min = std::min(ts_min, s.news.corpus.doc(d).timestamp_ms);
    ts_max = std::max(ts_max, s.news.corpus.doc(d).timestamp_ms);
  }
  ASSERT_GT(ts_min, 0) << "synthetic corpus should carry real timestamps";
  ASSERT_LT(ts_min, ts_max);

  NewsLinkEngine loaded(&s.world.graph, &s.labels, NewsLinkConfig{});
  ASSERT_TRUE(loaded.LoadSnapshot(s.snapshot_path).ok());

  size_t total_hits = 0;
  for (const std::string& query : s.Queries()) {
    baselines::SearchRequest request;
    request.query = query;
    request.k = 10;
    request.recency_half_life_seconds = 6.0 * 3600.0;
    request.now_ms = ts_max + 1000;  // pinned: decay values are exact
    request.time_range = baselines::TimeRange{ts_min, ts_min + (ts_max - ts_min) / 2 + 1};
    const auto expected = s.engine.Search(request).hits;
    const auto actual = loaded.Search(request).hits;
    ASSERT_EQ(actual.size(), expected.size()) << "query: " << query;
    total_hits += actual.size();
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].doc_index, expected[i].doc_index)
          << "rank " << i << " query: " << query;
      EXPECT_EQ(actual[i].score, expected[i].score)
          << "rank " << i << " query: " << query;
    }
  }
  // The windows above cover the older half of the stream; at least one
  // query must actually return something or the comparison was vacuous.
  EXPECT_GT(total_hits, 0u);
}

TEST_F(SnapshotTest, TimestampCountMismatchIsRejected) {
  // CRC-clean but wrong-cardinality timestamp sections must fail the load
  // with a diagnostic and leave the engine empty.
  SharedState& s = State();
  const Result<SnapshotFile> file = ReadSnapshotFile(s.snapshot_path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  const auto rewrite = [&](uint64_t count, const std::string& path) {
    ByteWriter out;
    out.WriteU64(count);
    for (uint64_t i = 0; i < count; ++i) out.WriteU64(0);
    std::vector<SnapshotSection> sections;
    for (const SnapshotSection& section : file->sections) {
      sections.push_back(section.name == "timestamps"
                             ? SnapshotSection{section.name, out.TakeBytes()}
                             : section);
    }
    NL_CHECK(WriteSnapshotFile(path, file->header, sections).ok());
  };

  NewsLinkEngine engine(&s.world.graph, &s.labels, NewsLinkConfig{});
  const std::string path = testing::TempDir() + "snapshot_bad_ts.snap";
  const uint64_t n = file->header.num_docs;
  for (uint64_t count : {n - 1, n + 1, uint64_t{0}}) {
    rewrite(count, path);
    const Status status = engine.LoadSnapshot(path);
    ASSERT_FALSE(status.ok()) << "count " << count << " accepted";
    EXPECT_TRUE(status.IsIOError()) << status.ToString();
    EXPECT_NE(status.ToString().find("timestamps section covers"),
              std::string::npos)
        << status.ToString();
    EXPECT_EQ(engine.num_indexed_docs(), 0u);
  }
  // The engine remains usable after the rejections.
  ASSERT_TRUE(engine.LoadSnapshot(s.snapshot_path).ok());
  EXPECT_EQ(engine.num_indexed_docs(), s.news.corpus.size());
}

TEST_F(SnapshotTest, MissingTimestampsSectionLoadsWithRecencyDisabled) {
  // A hand-rolled v3 file without the section (e.g. produced by an older
  // writer) still loads; the engine just has no publication times, so
  // recency requests score like plain ones and any real window is empty.
  SharedState& s = State();
  const Result<SnapshotFile> file = ReadSnapshotFile(s.snapshot_path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  std::vector<SnapshotSection> sections;
  for (const SnapshotSection& section : file->sections) {
    if (section.name != "timestamps") sections.push_back(section);
  }
  ASSERT_LT(sections.size(), file->sections.size());
  const std::string path = testing::TempDir() + "snapshot_no_ts.snap";
  ASSERT_TRUE(WriteSnapshotFile(path, file->header, sections).ok());

  NewsLinkEngine loaded(&s.world.graph, &s.labels, NewsLinkConfig{});
  const Status status = loaded.LoadSnapshot(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(loaded.num_indexed_docs(), s.news.corpus.size());

  for (const std::string& query : s.Queries()) {
    baselines::SearchRequest plain;
    plain.query = query;
    plain.k = 10;
    baselines::SearchRequest recency = plain;
    recency.recency_half_life_seconds = 3600.0;
    recency.now_ms = 1700000000000;
    const auto expected = loaded.Search(plain).hits;
    const auto actual = loaded.Search(recency).hits;
    ASSERT_EQ(actual.size(), expected.size()) << "query: " << query;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].doc_index, expected[i].doc_index) << "rank " << i;
      EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
    }

    // Every surviving timestamp is 0, so a window excluding 0 is empty.
    baselines::SearchRequest windowed = plain;
    windowed.time_range =
        baselines::TimeRange{1, std::numeric_limits<int64_t>::max()};
    EXPECT_TRUE(loaded.Search(windowed).hits.empty()) << "query: " << query;
  }

  // A re-save writes the (all-zero) section back: the format always
  // carries it going forward.
  const std::string resave = testing::TempDir() + "snapshot_no_ts2.snap";
  ASSERT_TRUE(loaded.SaveSnapshot(resave).ok());
  const Result<SnapshotFile> rewritten = ReadSnapshotFile(resave);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_NE(rewritten->Find("timestamps"), nullptr);
}

// ---------------------------------------------------------------------------
// Hardened readers: embeddings (text + binary) and corpus TSV.
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, LoadEmbeddingsRejectsTruncatedRecord) {
  SharedState& s = State();
  const std::string path = testing::TempDir() + "embeddings_trunc.txt";
  const std::vector<embed::DocumentEmbedding> embeddings =
      s.engine.SnapshotEmbeddings();
  ASSERT_TRUE(embed::SaveEmbeddings(embeddings, path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(embed::LoadEmbeddings(path).ok());

  // Cut inside a segment record ("nodes" line onward missing): the loader
  // must report truncation, not return a silently incomplete embedding.
  const size_t cut = bytes.find("nodes ");
  ASSERT_NE(cut, std::string::npos);
  WriteFileBytes(path, bytes.substr(0, cut + 2));
  const Result<std::vector<embed::DocumentEmbedding>> truncated =
      embed::LoadEmbeddings(path);
  EXPECT_FALSE(truncated.ok());
}

TEST_F(SnapshotTest, LoadEmbeddingsRejectsCorruptNumbers) {
  SharedState& s = State();
  const std::string path = testing::TempDir() + "embeddings_corrupt.txt";
  const std::vector<embed::DocumentEmbedding> embeddings =
      s.engine.SnapshotEmbeddings();
  ASSERT_TRUE(embed::SaveEmbeddings(embeddings, path).ok());
  const std::string bytes = ReadFileBytes(path);

  // Non-numeric junk inside a dists line.
  const size_t dists = bytes.find("dists ");
  ASSERT_NE(dists, std::string::npos);
  const std::string corrupt =
      bytes.substr(0, dists + 6) + "x" + bytes.substr(dists + 6);
  WriteFileBytes(path, corrupt);
  EXPECT_FALSE(embed::LoadEmbeddings(path).ok());

  // Segment count that overflows uint64.
  const size_t eol = bytes.find('\n');
  ASSERT_NE(eol, std::string::npos);
  WriteFileBytes(path,
                 "doc 99999999999999999999999" + bytes.substr(eol));
  EXPECT_FALSE(embed::LoadEmbeddings(path).ok());
}

TEST_F(SnapshotTest, BinaryEmbeddingCodecRoundTripsAndRejectsTruncation) {
  SharedState& s = State();
  const std::vector<embed::DocumentEmbedding> embeddings =
      s.engine.SnapshotEmbeddings();
  ByteWriter writer;
  embed::SerializeEmbeddings(embeddings, &writer);
  const std::vector<uint8_t>& bytes = writer.bytes();

  std::vector<embed::DocumentEmbedding> decoded;
  ByteReader full(bytes);
  ASSERT_TRUE(embed::DeserializeEmbeddings(&full, &decoded).ok());
  ASSERT_TRUE(full.ExpectEnd().ok());
  ASSERT_EQ(decoded.size(), embeddings.size());
  for (size_t i = 0; i < embeddings.size(); ++i) {
    EXPECT_EQ(decoded[i].segment_graphs.size(),
              embeddings[i].segment_graphs.size());
  }

  // The stream has no slack: every strict prefix must fail (the declared
  // counts always promise more data than remains).
  std::vector<size_t> cuts = {0, 1, 7, 8, 9, bytes.size() / 2,
                              bytes.size() - 1};
  for (size_t cut = 13; cut < bytes.size(); cut += 211) cuts.push_back(cut);
  for (size_t cut : cuts) {
    std::vector<embed::DocumentEmbedding> out;
    ByteReader reader(std::span<const uint8_t>(bytes.data(), cut));
    const Status status = embed::DeserializeEmbeddings(&reader, &out);
    EXPECT_FALSE(status.ok() && reader.ExpectEnd().ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST_F(SnapshotTest, CorpusLoaderRejectsCorruptStoryId) {
  const std::string path = testing::TempDir() + "corpus_corrupt.tsv";
  WriteFileBytes(path, "d1\t2x\t0\tTitle\tBody\n");
  const Result<corpus::Corpus> loaded = corpus::LoadTsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status().ToString();

  // > uint32 max
  WriteFileBytes(path, "d1\t4294967296\t0\tTitle\tBody\n");
  EXPECT_FALSE(corpus::LoadTsv(path).ok());
}

}  // namespace
}  // namespace newslink
