// The exploration subsystem end to end (DESIGN.md §13): FacetHierarchy
// invariants (deterministic parent forest, root/depth consistency, cycle
// safety), the bucket PARTITION property over random corpora at every drill
// level, session lifecycle (TTL expiry and LRU eviction are NotFound, never
// stale data), drill-down pinned to its session's epoch while AddDocument
// ingestion races (and the explore_retrievals counter proving navigation
// never re-runs retrieval), and the strict /v1 envelope codecs: unknown
// fields rejected, api_version skew rejected, old field-free bodies kept.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/synthetic_news.h"
#include "kg/facet_hierarchy.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "net/api_json.h"
#include "newslink/explore_engine.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace {

// ---------------------------------------------------------------------------
// FacetHierarchy: forest invariants over the synthetic KG.
// ---------------------------------------------------------------------------

kg::SyntheticKg MakeWorld(uint64_t seed = 909) {
  kg::SyntheticKgConfig config;
  config.seed = seed;
  config.num_countries = 3;
  return kg::SyntheticKgGenerator(config).Generate();
}

TEST(FacetHierarchy, ForestIsConsistentAndDeterministic) {
  const kg::SyntheticKg world = MakeWorld();
  const kg::FacetHierarchy forest(&world.graph);
  ASSERT_EQ(forest.num_nodes(), world.graph.num_nodes());

  for (kg::NodeId v = 0; v < forest.num_nodes(); ++v) {
    const kg::NodeId parent = forest.parent(v);
    if (parent == kg::kInvalidNode) {
      EXPECT_EQ(forest.depth(v), 0);
      EXPECT_EQ(forest.Root(v), v);
    } else {
      EXPECT_EQ(forest.depth(v), forest.depth(parent) + 1);
      EXPECT_EQ(forest.Root(v), forest.Root(parent));
      EXPECT_TRUE(forest.DescendsFrom(v, parent));
    }
    EXPECT_EQ(forest.depth(forest.Root(v)), 0);
    EXPECT_FALSE(forest.DescendsFrom(v, v));
  }

  // A pure function of the graph: rebuilding yields the identical forest.
  const kg::FacetHierarchy again(&world.graph);
  for (kg::NodeId v = 0; v < forest.num_nodes(); ++v) {
    EXPECT_EQ(forest.parent(v), again.parent(v));
  }
}

TEST(FacetHierarchy, ChildTowardWalksTheRootPath) {
  const kg::SyntheticKg world = MakeWorld();
  const kg::FacetHierarchy forest(&world.graph);

  size_t deep_nodes = 0;
  for (kg::NodeId v = 0; v < forest.num_nodes(); ++v) {
    if (forest.depth(v) < 2) continue;
    ++deep_nodes;
    const kg::NodeId root = forest.Root(v);
    ASSERT_TRUE(forest.DescendsFrom(v, root));
    const kg::NodeId child = forest.ChildToward(root, v);
    ASSERT_NE(child, kg::kInvalidNode);
    EXPECT_EQ(forest.parent(child), root);
    EXPECT_TRUE(child == v || forest.DescendsFrom(v, child));
    // Immediately below the parent, ChildToward returns v itself.
    EXPECT_EQ(forest.ChildToward(forest.parent(v), v), v);
  }
  ASSERT_GT(deep_nodes, 0u) << "synthetic KG should have depth >= 2";

  // Not a strict descendant -> kInvalidNode (including v == ancestor).
  const kg::NodeId v = 0;
  EXPECT_EQ(forest.ChildToward(v, v), kg::kInvalidNode);
}

TEST(FacetHierarchy, CyclesAreCutNotLoopedForever) {
  kg::KgBuilder builder;
  const kg::NodeId a = builder.AddNode("A", kg::EntityType::kGpe);
  const kg::NodeId b = builder.AddNode("B", kg::EntityType::kGpe);
  const kg::NodeId c = builder.AddNode("C", kg::EntityType::kGpe);
  NL_CHECK(builder.AddEdge(a, b, "located_in").ok());
  NL_CHECK(builder.AddEdge(b, c, "located_in").ok());
  NL_CHECK(builder.AddEdge(c, a, "located_in").ok());
  const kg::KnowledgeGraph graph = builder.Build();

  const kg::FacetHierarchy forest(&graph);
  // One cycle member was promoted to root; the other two roll up to it.
  size_t roots = 0;
  for (kg::NodeId v : {a, b, c}) {
    if (forest.parent(v) == kg::kInvalidNode) ++roots;
    EXPECT_EQ(forest.Root(v), forest.Root(a));
  }
  EXPECT_EQ(roots, 1u);
}

// ---------------------------------------------------------------------------
// ExploreEngine: one indexed world shared by the session tests.
// ---------------------------------------------------------------------------

class ExploreTest : public ::testing::Test {
 protected:
  ExploreTest() : world_(MakeWorld()), labels_(world_.graph) {
    corpus::SyntheticNewsConfig config = corpus::DueDiligenceConfig();
    config.num_stories = 30;
    news_ = corpus::SyntheticNewsGenerator(&world_, config).Generate("ex");

    NewsLinkConfig engine_config;
    engine_config.beta = 0.2;
    engine_config.num_threads = 2;
    engine_ = std::make_unique<NewsLinkEngine>(&world_.graph, &labels_,
                                               engine_config);
    NL_CHECK(engine_->Index(news_.corpus).ok());
    hierarchy_ = std::make_unique<kg::FacetHierarchy>(&world_.graph);
  }

  std::string QueryFor(size_t doc) const {
    const std::string& text = news_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  static void ExpectPartition(const ExploreResult& view) {
    size_t sum = 0;
    for (const ExploreBucket& bucket : view.buckets) {
      sum += bucket.doc_count;
      EXPECT_GT(bucket.doc_count, 0u);
      EXPECT_LE(bucket.top_hits.size(), bucket.doc_count);
    }
    EXPECT_EQ(sum, view.total_hits);
    // Deterministic order: doc count desc (score mass breaks ties), and the
    // "other" bucket, when present, strictly last.
    for (size_t i = 0; i + 1 < view.buckets.size(); ++i) {
      EXPECT_FALSE(view.buckets[i].other());
      if (!view.buckets[i + 1].other()) {
        EXPECT_GE(view.buckets[i].doc_count, view.buckets[i + 1].doc_count);
      }
    }
  }

  kg::SyntheticKg world_;
  kg::LabelIndex labels_;
  corpus::SyntheticCorpus news_;
  std::unique_ptr<NewsLinkEngine> engine_;
  std::unique_ptr<kg::FacetHierarchy> hierarchy_;
};

TEST_F(ExploreTest, BucketsPartitionEveryViewAtEveryDrillLevel) {
  // Property: for random corpora (several query entry points into the shared
  // world), buckets partition the scoped result set EXACTLY, at the top
  // level and after every drill, and roll-up restores the parent view.
  ExploreEngine explore(engine_.get(), hierarchy_.get());
  for (size_t q = 0; q < 8; ++q) {
    baselines::SearchRequest request;
    request.query = QueryFor(q * 7 % news_.corpus.size());
    Result<ExploreResult> top = explore.StartSession(request);
    ASSERT_TRUE(top.ok()) << top.status().ToString();
    ASSERT_GT(top->total_hits, 0u);
    ExpectPartition(*top);

    const std::string session = top->session_id;
    // Drill into every bucket of the top view in turn (roll up between),
    // then one level deeper along the first child — partitions must hold
    // everywhere.
    for (const ExploreBucket& bucket : top->buckets) {
      if (bucket.other()) continue;
      Result<ExploreResult> drilled = explore.DrillDown(session, bucket.node);
      ASSERT_TRUE(drilled.ok()) << drilled.status().ToString();
      EXPECT_EQ(drilled->total_hits, bucket.doc_count);
      ASSERT_EQ(drilled->scope.size(), 1u);
      EXPECT_EQ(drilled->scope[0], bucket.node);
      ExpectPartition(*drilled);

      if (!drilled->buckets.empty() && !drilled->buckets[0].other()) {
        Result<ExploreResult> deeper =
            explore.DrillDown(session, drilled->buckets[0].node);
        ASSERT_TRUE(deeper.ok()) << deeper.status().ToString();
        ExpectPartition(*deeper);
        ASSERT_TRUE(explore.RollUp(session).ok());
      }

      Result<ExploreResult> back = explore.RollUp(session);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_TRUE(back->scope.empty());
      EXPECT_EQ(back->total_hits, top->total_hits);
      ASSERT_EQ(back->buckets.size(), top->buckets.size());
      for (size_t i = 0; i < back->buckets.size(); ++i) {
        EXPECT_EQ(back->buckets[i].node, top->buckets[i].node);
        EXPECT_EQ(back->buckets[i].doc_count, top->buckets[i].doc_count);
      }
    }
  }
}

TEST_F(ExploreTest, NavigationErrorsAreTypedAndUniform) {
  ExploreEngine explore(engine_.get(), hierarchy_.get());
  baselines::SearchRequest request;
  request.query = QueryFor(0);
  Result<ExploreResult> top = explore.StartSession(request);
  ASSERT_TRUE(top.ok());
  const std::string session = top->session_id;

  // The "other" bucket is not drillable; neither is a non-bucket node.
  EXPECT_TRUE(explore.DrillDown(session, kg::kInvalidNode)
                  .status()
                  .IsInvalidArgument());
  kg::NodeId not_a_bucket = 0;
  while (true) {
    bool used = false;
    for (const ExploreBucket& bucket : top->buckets) {
      used = used || bucket.node == not_a_bucket;
    }
    if (!used) break;
    ++not_a_bucket;
  }
  EXPECT_TRUE(
      explore.DrillDown(session, not_a_bucket).status().IsInvalidArgument());

  // Roll-up above the top level; unknown session.
  EXPECT_TRUE(explore.RollUp(session).status().IsInvalidArgument());
  EXPECT_TRUE(explore.View("nope").status().IsNotFound());
  EXPECT_TRUE(explore.DrillDown("nope", 0).status().IsNotFound());
}

TEST_F(ExploreTest, ExpiredSessionsAreNotFoundAndLeaveNoTrace) {
  ExploreOptions options;
  options.session_ttl_seconds = 0.02;
  ExploreEngine explore(engine_.get(), hierarchy_.get(), options);

  baselines::SearchRequest request;
  request.query = QueryFor(1);
  Result<ExploreResult> top = explore.StartSession(request);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(explore.ActiveSessions(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(explore.View(top->session_id).status().IsNotFound());
  EXPECT_EQ(explore.ActiveSessions(), 0u);
  EXPECT_EQ(engine_->Metrics().CounterValue(kExploreSessionsExpired), 1u);
}

TEST_F(ExploreTest, LruEvictsTheColdestSessionAtCapacity) {
  ExploreOptions options;
  options.max_sessions = 2;
  ExploreEngine explore(engine_.get(), hierarchy_.get(), options);

  std::vector<std::string> ids;
  for (size_t q = 0; q < 3; ++q) {
    baselines::SearchRequest request;
    request.query = QueryFor(q);
    Result<ExploreResult> view = explore.StartSession(request);
    ASSERT_TRUE(view.ok());
    ids.push_back(view->session_id);
  }
  EXPECT_EQ(explore.ActiveSessions(), 2u);
  EXPECT_TRUE(explore.View(ids[0]).status().IsNotFound());  // evicted
  EXPECT_TRUE(explore.View(ids[1]).ok());
  EXPECT_TRUE(explore.View(ids[2]).ok());
  EXPECT_EQ(engine_->Metrics().CounterValue(kExploreSessionsEvicted), 1u);
}

TEST_F(ExploreTest, DrillDownIsPinnedToItsEpochUnderConcurrentIngest) {
  ExploreEngine explore(engine_.get(), hierarchy_.get());
  baselines::SearchRequest request;
  request.query = QueryFor(2);
  Result<ExploreResult> top = explore.StartSession(request);
  ASSERT_TRUE(top.ok());
  const uint64_t pinned_epoch = top->epoch;
  const size_t pinned_docs = top->snapshot_docs;
  const uint64_t retrievals_after_start =
      engine_->Metrics().CounterValue(kExploreRetrievals);
  ASSERT_GE(retrievals_after_start, 1u);

  // Race ingestion against navigation: a writer appends fresh documents
  // while the session drills and rolls up.
  corpus::SyntheticNewsConfig fresh_config = corpus::CnnLikeConfig();
  fresh_config.num_stories = 6;
  fresh_config.seed = 4242;
  const corpus::SyntheticCorpus fresh =
      corpus::SyntheticNewsGenerator(&world_, fresh_config).Generate("in");
  std::thread writer([&] {
    for (const corpus::Document& doc : fresh.corpus.docs()) {
      engine_->AddDocument(doc);
    }
  });

  for (int round = 0; round < 20; ++round) {
    Result<ExploreResult> view = explore.View(top->session_id);
    ASSERT_TRUE(view.ok());
    if (!view->buckets.empty() && !view->buckets[0].other()) {
      view = explore.DrillDown(top->session_id, view->buckets[0].node);
      ASSERT_TRUE(view.ok());
      ASSERT_TRUE(explore.RollUp(top->session_id).ok());
    }
    // The session's view is frozen at its start epoch: same epoch, same
    // snapshot bound, every representative hit inside it.
    EXPECT_EQ(view->epoch, pinned_epoch);
    EXPECT_EQ(view->snapshot_docs, pinned_docs);
    for (const ExploreBucket& bucket : view->buckets) {
      for (const ExploreHit& hit : bucket.top_hits) {
        EXPECT_LT(hit.doc_index, pinned_docs);
      }
    }
  }
  writer.join();
  ASSERT_GT(engine_->num_indexed_docs(), pinned_docs);

  // Navigation never re-ran retrieval.
  EXPECT_EQ(engine_->Metrics().CounterValue(kExploreRetrievals),
            retrievals_after_start);

  // A session started NOW sees the new epoch.
  Result<ExploreResult> now = explore.StartSession(request);
  ASSERT_TRUE(now.ok());
  EXPECT_GT(now->epoch, pinned_epoch);
  EXPECT_GT(now->snapshot_docs, pinned_docs);
}

// ---------------------------------------------------------------------------
// /v1 envelope codecs: strict fields, api_version skew, old clients.
// ---------------------------------------------------------------------------

Result<net::ExploreRpcRequest> DecodeExplore(const std::string& body) {
  NL_ASSIGN_OR_RETURN(json::Value value, net::DecodeEnvelope(body));
  return net::ExploreRequestFromJson(value);
}

TEST(ExploreCodec, AcceptsEveryOperationShape) {
  Result<net::ExploreRpcRequest> start =
      DecodeExplore(R"({"query": "flood rescue", "k": 20, "beta": 0.3})");
  ASSERT_TRUE(start.ok()) << start.status().ToString();
  EXPECT_EQ(start->query, "flood rescue");
  EXPECT_EQ(start->k, 20u);
  ASSERT_TRUE(start->beta.has_value());

  Result<net::ExploreRpcRequest> drill =
      DecodeExplore(R"({"session": "x1", "drill": 42})");
  ASSERT_TRUE(drill.ok());
  EXPECT_TRUE(drill->has_drill);
  EXPECT_EQ(drill->drill, 42u);

  Result<net::ExploreRpcRequest> up =
      DecodeExplore(R"({"session": "x1", "up": true})");
  ASSERT_TRUE(up.ok());
  EXPECT_TRUE(up->up);

  // Versioned client, same body: accepted when the version matches.
  EXPECT_TRUE(
      DecodeExplore(
          StrCat(R"({"query": "q", "api_version": )", net::kApiVersion, "}"))
          .ok());
}

TEST(ExploreCodec, RejectsInvalidShapesWithInvalidArgument) {
  const char* bad[] = {
      R"({"query": "q", "session": "x1"})",       // exactly one of the two
      R"({})",                                    // neither
      R"({"session": "x1", "drill": 1, "up": true})",  // drill xor up
      R"({"drill": 1})",                          // navigation needs session
      R"({"up": true})",
      R"({"query": 7})",                          // type errors
      R"({"session": "x1", "drill": "a"})",
      R"([1, 2])",                                // not an object
      R"("q")",
  };
  for (const char* body : bad) {
    EXPECT_TRUE(DecodeExplore(body).status().IsInvalidArgument())
        << "body: " << body;
  }
}

TEST(ExploreCodec, UnknownFieldFuzzIsRejectedNotIgnored) {
  // Strictness property: take valid bodies, inject one unknown key each —
  // every mutation must be InvalidArgument (a typo'd knob must never be
  // silently dropped).
  const std::string valid[] = {
      R"({"query": "flood rescue", "k": 5})",
      R"({"session": "x1", "drill": 3})",
      R"({"session": "x1", "up": true})",
      R"({"session": "x1"})",
  };
  const std::string unknown[] = {"querry", "sess", "drilldown", "K",
                                 "version", "page", "offset"};
  for (const std::string& body : valid) {
    ASSERT_TRUE(DecodeExplore(body).ok()) << body;
    for (const std::string& key : unknown) {
      const std::string mutated =
          StrCat(body.substr(0, body.size() - 1), R"(, ")", key, R"(": 1})");
      EXPECT_TRUE(DecodeExplore(mutated).status().IsInvalidArgument())
          << "mutated body: " << mutated;
    }
  }
}

TEST(ExploreCodec, ApiVersionSkewIsFailedPreconditionEverywhere) {
  // One envelope rule for every /v1 codec: absent -> accepted (old
  // clients), matching -> accepted, skewed -> FailedPrecondition (409).
  const std::string skew = StrCat(net::kApiVersion + 1);

  EXPECT_TRUE(DecodeExplore(StrCat(R"({"query": "q", "api_version": )", skew,
                                   "}"))
                  .status()
                  .IsFailedPrecondition());

  Result<net::SearchEnvelope> search = net::DecodeSearchEnvelope(
      StrCat(R"({"query": "q", "api_version": )", skew, "}"), 8);
  EXPECT_TRUE(search.status().IsFailedPrecondition());
  EXPECT_TRUE(net::DecodeSearchEnvelope(R"({"query": "q"})", 8).ok());
  EXPECT_TRUE(net::DecodeSearchEnvelope(
                  StrCat(R"({"query": "q", "api_version": )",
                         net::kApiVersion, "}"),
                  8)
                  .ok());

  Result<json::Value> doc = json::Parse(
      StrCat(R"({"id": "d1", "text": "t", "api_version": )", skew, "}"));
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(net::DocumentFromJson(*doc).status().IsFailedPrecondition());
}

TEST(ExploreCodec, SearchEnvelopeKeepsBatchSemantics) {
  Result<net::SearchEnvelope> one =
      net::DecodeSearchEnvelope(R"({"query": "q"})", 4);
  ASSERT_TRUE(one.ok());
  EXPECT_FALSE(one->batched);
  ASSERT_EQ(one->requests.size(), 1u);

  Result<net::SearchEnvelope> batch = net::DecodeSearchEnvelope(
      R"([{"query": "a"}, {"query": "b"}])", 4);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->batched);
  ASSERT_EQ(batch->requests.size(), 2u);

  EXPECT_TRUE(net::DecodeSearchEnvelope(R"([])", 4)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(net::DecodeSearchEnvelope(
                  R"([{"query": "a"}, {"query": "b"}, {"query": "c"}])", 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      net::DecodeSearchEnvelope("not json", 4).status().IsInvalidArgument());
}

}  // namespace
}  // namespace newslink
