// Tests for the MaxScore document-at-a-time retriever: exact agreement
// with exhaustive TAAT scoring (including tie order), plus evidence that
// pruning actually skips work.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ir/max_score.h"
#include "ir/scorer.h"
#include "ir/top_k.h"

namespace newslink {
namespace ir {
namespace {

/// DAAT sums term contributions in a different order than TAAT, so scores
/// can differ by a few ULPs; compare with tolerance. Ranks may swap only
/// between docs whose scores tie within the tolerance.
void ExpectSameTopK(const std::vector<ScoredDoc>& actual,
                    const std::vector<ScoredDoc>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  std::map<DocId, double> expected_scores;
  for (const ScoredDoc& s : expected) expected_scores[s.doc] = s.score;
  for (size_t i = 0; i < actual.size(); ++i) {
    auto it = expected_scores.find(actual[i].doc);
    if (it != expected_scores.end()) {
      EXPECT_NEAR(actual[i].score, it->second, 1e-9) << "doc " << actual[i].doc;
    } else {
      // Doc differs: must be a near-tie swap at the boundary.
      EXPECT_NEAR(actual[i].score, expected[i].score, 1e-9) << "rank " << i;
    }
    if (i > 0) {
      EXPECT_LE(actual[i].score, actual[i - 1].score + 1e-9);
    }
  }
}

InvertedIndex MakeRandomIndex(uint64_t seed, size_t num_docs, size_t vocab,
                              size_t terms_per_doc) {
  Rng rng(seed);
  ZipfTable zipf(vocab, 1.0);
  InvertedIndex index;
  for (size_t d = 0; d < num_docs; ++d) {
    std::map<TermId, uint32_t> counts;
    for (size_t t = 0; t < terms_per_doc; ++t) {
      ++counts[static_cast<TermId>(zipf.Sample(&rng))];
    }
    index.AddDocument(TermCounts(counts.begin(), counts.end()));
  }
  return index;
}

TEST(MaxScoreTest, EmptyQueryAndUnknownTerms) {
  InvertedIndex index = MakeRandomIndex(1, 50, 100, 20);
  MaxScoreRetriever retriever(&index);
  EXPECT_TRUE(retriever.TopK({}, 10).empty());
  EXPECT_TRUE(retriever.TopK({{9999, 1}}, 10).empty());
  EXPECT_TRUE(retriever.TopK({{0, 1}}, 0).empty());
}

TEST(MaxScoreTest, SingleTermMatchesTaat) {
  InvertedIndex index = MakeRandomIndex(2, 100, 50, 15);
  Bm25Scorer scorer(&index);
  MaxScoreRetriever retriever(&index);
  const TermCounts query = {{3, 1}};
  ExpectSameTopK(retriever.TopK(query, 5),
                 SelectTopK(scorer.ScoreAll(query), 5));
}

TEST(MaxScoreTest, KLargerThanMatches) {
  InvertedIndex index = MakeRandomIndex(3, 20, 200, 10);
  Bm25Scorer scorer(&index);
  MaxScoreRetriever retriever(&index);
  const TermCounts query = {{0, 1}, {1, 2}};
  ExpectSameTopK(retriever.TopK(query, 1000),
                 SelectTopK(scorer.ScoreAll(query), 1000));
}

struct RandomQueryCase {
  uint64_t seed;
  size_t query_terms;
  size_t k;
};

class MaxScoreAgreementTest
    : public ::testing::TestWithParam<RandomQueryCase> {};

TEST_P(MaxScoreAgreementTest, IdenticalToExhaustiveTaat) {
  const RandomQueryCase param = GetParam();
  InvertedIndex index = MakeRandomIndex(param.seed, 400, 300, 40);
  Bm25Scorer scorer(&index);
  MaxScoreRetriever retriever(&index);
  Rng rng(param.seed * 31 + 7);

  for (int trial = 0; trial < 10; ++trial) {
    TermCounts query;
    std::set<TermId> used;
    while (query.size() < param.query_terms) {
      const TermId t = static_cast<TermId>(rng.Uniform(300));
      if (used.insert(t).second) {
        query.push_back({t, 1 + static_cast<uint32_t>(rng.Uniform(3))});
      }
    }
    std::sort(query.begin(), query.end());
    ExpectSameTopK(retriever.TopK(query, param.k),
                   SelectTopK(scorer.ScoreAll(query), param.k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MaxScoreAgreementTest,
    ::testing::Values(RandomQueryCase{11, 2, 10}, RandomQueryCase{12, 4, 10},
                      RandomQueryCase{13, 8, 5}, RandomQueryCase{14, 8, 50},
                      RandomQueryCase{15, 16, 10},
                      RandomQueryCase{16, 3, 1}));

TEST(MaxScoreTest, PruningSkipsDocuments) {
  // A highly selective rare term + broad common terms: once the heap is
  // full of rare-term docs, common-only docs should be skipped.
  InvertedIndex index;
  // 500 docs with common term 0; every 50th also has rare term 1.
  for (int d = 0; d < 500; ++d) {
    TermCounts counts = {{0, 1}};
    if (d % 50 == 0) counts.push_back({1, 5});
    index.AddDocument(counts);
  }
  MaxScoreRetriever retriever(&index);
  const auto top = retriever.TopK({{0, 1}, {1, 1}}, 5);
  ASSERT_EQ(top.size(), 5u);
  for (const ScoredDoc& s : top) {
    EXPECT_EQ(s.doc % 50, 0u);  // all winners carry the rare term
  }
  EXPECT_LT(retriever.last_docs_scored(), 500u)
      << "MaxScore must not fully score every document";
}

TEST(MaxScoreTest, EquivalencePropertyRandomCorporaAndQueries) {
  // Property sweep: on random corpora and random queries the pruned
  // retriever returns the SAME document set as exhaustive TAAT, each score
  // within 1e-9, with ties broken towards smaller doc ids on both sides.
  for (const uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    const size_t num_docs = 100 + (seed % 7) * 50;
    InvertedIndex index = MakeRandomIndex(seed, num_docs, 250, 30);
    Bm25Scorer scorer(&index);
    MaxScoreRetriever retriever(&index);
    Rng rng(seed * 977 + 13);

    for (int trial = 0; trial < 20; ++trial) {
      TermCounts query;
      std::set<TermId> used;
      const size_t num_terms = 1 + rng.Uniform(10);
      while (query.size() < num_terms) {
        const TermId t = static_cast<TermId>(rng.Uniform(250));
        if (used.insert(t).second) {
          query.push_back({t, 1 + static_cast<uint32_t>(rng.Uniform(4))});
        }
      }
      std::sort(query.begin(), query.end());
      const size_t k = 1 + rng.Uniform(30);

      const auto pruned = retriever.TopK(query, k);
      const auto exact = SelectTopK(scorer.ScoreAll(query), k);
      ASSERT_EQ(pruned.size(), exact.size()) << "seed " << seed;

      std::vector<DocId> pruned_docs, exact_docs;
      for (const ScoredDoc& s : pruned) pruned_docs.push_back(s.doc);
      for (const ScoredDoc& s : exact) exact_docs.push_back(s.doc);
      std::vector<DocId> pruned_sorted = pruned_docs;
      std::vector<DocId> exact_sorted = exact_docs;
      std::sort(pruned_sorted.begin(), pruned_sorted.end());
      std::sort(exact_sorted.begin(), exact_sorted.end());
      ASSERT_EQ(pruned_sorted, exact_sorted)
          << "seed " << seed << " trial " << trial << ": doc sets differ";

      for (size_t i = 0; i < pruned.size(); ++i) {
        EXPECT_NEAR(pruned[i].score, exact[i].score, 1e-9);
        if (i > 0 && pruned[i].score == pruned[i - 1].score) {
          EXPECT_LT(pruned[i - 1].doc, pruned[i].doc)
              << "exact ties must order by doc id";
        }
      }
    }
  }
}

TEST(MaxScoreTest, BlockMaxAgreesWithPlainMaxScoreAndScoresFewerDocs) {
  // Three-way agreement — Block-Max MaxScore, classic MaxScore, exhaustive
  // TAAT — plus the monotone work bound: per-block upper bounds are at
  // least as tight as whole-list bounds, so block-max never scores more.
  for (const uint64_t seed : {61u, 62u, 63u}) {
    InvertedIndex index = MakeRandomIndex(seed, 600, 200, 35);
    Bm25Scorer scorer(&index);
    MaxScoreRetriever block_max(&index, {}, MaxScoreOptions{true});
    MaxScoreRetriever plain(&index, {}, MaxScoreOptions{false});
    Rng rng(seed * 131 + 5);

    for (int trial = 0; trial < 10; ++trial) {
      TermCounts query;
      std::set<TermId> used;
      const size_t num_terms = 2 + rng.Uniform(6);
      while (query.size() < num_terms) {
        const TermId t = static_cast<TermId>(rng.Uniform(200));
        if (used.insert(t).second) {
          query.push_back({t, 1 + static_cast<uint32_t>(rng.Uniform(3))});
        }
      }
      std::sort(query.begin(), query.end());
      const size_t k = 1 + rng.Uniform(20);

      size_t blocked_scored = 0, blocks_skipped = 0, plain_scored = 0;
      const auto blocked = block_max.TopK(query, k, &blocked_scored,
                                          &blocks_skipped);
      const auto unblocked = plain.TopK(query, k, &plain_scored);
      const auto exact = SelectTopK(scorer.ScoreAll(query), k);
      ExpectSameTopK(blocked, exact);
      ExpectSameTopK(unblocked, exact);
      EXPECT_LE(blocked_scored, plain_scored)
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(MaxScoreTest, BlockMaxSkipsWholeBlocks) {
  // term 1's first posting block is all tf == 10 and every later block is
  // tf == 1. Once the heap fills from the first block, every tf == 1
  // block's upper bound falls below the threshold and classic MaxScore's
  // doc-at-a-time walk turns into whole-block skips. (b must stay well
  // inside (0, 1): at b == 0 the bound is exact and the threshold ties the
  // total bound, ending the walk via the essential split instead.)
  InvertedIndex index;
  const int n = 64 * static_cast<int>(kPostingBlockSize);
  for (int d = 0; d < n; ++d) {
    TermCounts counts = {{0, 1}};
    if (d % 4 == 0) {
      counts.push_back(
          {1, d < 4 * static_cast<int>(kPostingBlockSize) ? 10u : 1u});
    }
    index.AddDocument(counts);
  }
  const Bm25Params params{1.2, 0.5};
  Bm25Scorer scorer(&index, params);
  MaxScoreRetriever retriever(&index, params);
  size_t docs_scored = 0, blocks_skipped = 0;
  const TermCounts query = {{0, 1}, {1, 1}};
  const auto top = retriever.TopK(query, 5, &docs_scored, &blocks_skipped);
  ExpectSameTopK(top, SelectTopK(scorer.ScoreAll(query), 5));
  ASSERT_EQ(top.size(), 5u);
  for (const ScoredDoc& s : top) {
    EXPECT_LT(s.doc, static_cast<DocId>(4 * kPostingBlockSize));
  }
  EXPECT_GT(blocks_skipped, 0u) << "range skips must cross block boundaries";
  EXPECT_EQ(blocks_skipped, retriever.last_blocks_skipped());
  EXPECT_LT(docs_scored, static_cast<size_t>(n) / 8)
      << "block-max should prune nearly all tf == 1 blocks";

  // Classic MaxScore on the same query cannot skip those blocks: the term
  // bound (tf == 10) keeps every candidate's upper estimate above the
  // threshold, so it scores far more documents.
  MaxScoreRetriever plain(&index, params, MaxScoreOptions{false});
  size_t plain_scored = 0;
  ExpectSameTopK(plain.TopK(query, 5, &plain_scored),
                 SelectTopK(scorer.ScoreAll(query), 5));
  EXPECT_GT(plain_scored, 2 * docs_scored)
      << "the per-block bound must beat the whole-list bound here";
}

TEST(MaxScoreTest, BlockMaxHandlesPartialTailBlock) {
  // List lengths deliberately not multiples of kPostingBlockSize: the tail
  // postings past the last recorded block max fall back to the term bound.
  InvertedIndex index =
      MakeRandomIndex(71, 3 * kPostingBlockSize + 17, 40, 12);
  Bm25Scorer scorer(&index);
  MaxScoreRetriever retriever(&index);
  const TermCounts query = {{0, 1}, {3, 2}, {8, 1}};
  ExpectSameTopK(retriever.TopK(query, 7),
                 SelectTopK(scorer.ScoreAll(query), 7));
}

namespace {

/// Parity filter used by the DocFilter tests: ctx points at a DocId
/// modulus; only documents with doc % modulus == 0 are accepted.
bool AcceptMultiplesOf(const void* ctx, DocId doc) {
  return doc % *static_cast<const DocId*>(ctx) == 0;
}

}  // namespace

TEST(MaxScoreTest, DocFilterMatchesPostHocFilteredExhaustive) {
  // The pushed-down filter must select exactly the documents a post-hoc
  // filter of the exhaustive ranking would keep — pruning, not truncating
  // an unfiltered top-k.
  for (const uint64_t seed : {81u, 82u, 83u}) {
    InvertedIndex index = MakeRandomIndex(seed, 300, 150, 25);
    Bm25Scorer scorer(&index);
    MaxScoreRetriever retriever(&index);
    Rng rng(seed * 53 + 3);
    const DocId modulus = 3;
    const DocFilter filter{&AcceptMultiplesOf, &modulus};

    for (int trial = 0; trial < 10; ++trial) {
      TermCounts query;
      std::set<TermId> used;
      const size_t num_terms = 1 + rng.Uniform(6);
      while (query.size() < num_terms) {
        const TermId t = static_cast<TermId>(rng.Uniform(150));
        if (used.insert(t).second) {
          query.push_back({t, 1 + static_cast<uint32_t>(rng.Uniform(3))});
        }
      }
      std::sort(query.begin(), query.end());
      const size_t k = 1 + rng.Uniform(20);
      const IndexSnapshot snapshot = index.Capture();

      std::vector<ScoredDoc> reference = scorer.ScoreAll(query, snapshot);
      reference.erase(std::remove_if(reference.begin(), reference.end(),
                                     [&](const ScoredDoc& s) {
                                       return s.doc % modulus != 0;
                                     }),
                      reference.end());
      const auto expected = SelectTopK(reference, k);

      const auto pruned =
          retriever.TopK(query, k, snapshot, nullptr, nullptr, nullptr,
                         &filter);
      ExpectSameTopK(pruned, expected);
      for (const ScoredDoc& s : pruned) {
        EXPECT_EQ(s.doc % modulus, 0u);
      }

      // TAAT with the same pushed-down filter agrees too.
      const auto taat =
          SelectTopK(scorer.ScoreAll(query, snapshot, nullptr, &filter), k);
      ExpectSameTopK(taat, expected);
    }
  }
}

TEST(MaxScoreTest, DocFilterPrunesScoringWork) {
  InvertedIndex index = MakeRandomIndex(91, 400, 60, 20);
  MaxScoreRetriever retriever(&index);
  const TermCounts query = {{0, 1}, {1, 1}, {2, 1}};
  const IndexSnapshot snapshot = index.Capture();

  size_t unfiltered_scored = 0;
  (void)retriever.TopK(query, 10, snapshot, &unfiltered_scored);

  const DocId modulus = 4;
  const DocFilter filter{&AcceptMultiplesOf, &modulus};
  size_t filtered_scored = 0;
  (void)retriever.TopK(query, 10, snapshot, &filtered_scored, nullptr,
                       nullptr, &filter);
  ASSERT_GT(unfiltered_scored, 0u);
  EXPECT_LT(filtered_scored, unfiltered_scored)
      << "rejected documents must never be scored";
}

TEST(MaxScoreTest, DocFilterRejectingEverythingYieldsEmpty) {
  InvertedIndex index = MakeRandomIndex(92, 50, 40, 15);
  MaxScoreRetriever retriever(&index);
  const DocFilter reject_all{
      [](const void*, DocId) { return false; }, nullptr};
  const auto top = retriever.TopK({{0, 1}, {1, 1}}, 10, index.Capture(),
                                  nullptr, nullptr, nullptr, &reject_all);
  EXPECT_TRUE(top.empty());
}

TEST(MaxScoreTest, WithBonStyleParams) {
  // The BON index uses k1 = 0.8, b = 0; agreement must hold there too.
  InvertedIndex index = MakeRandomIndex(17, 200, 100, 25);
  const Bm25Params params{0.8, 0.0};
  Bm25Scorer scorer(&index, params);
  MaxScoreRetriever retriever(&index, params);
  const TermCounts query = {{1, 3}, {5, 1}, {17, 1}};
  ExpectSameTopK(retriever.TopK(query, 10),
                 SelectTopK(scorer.ScoreAll(query), 10));
}

}  // namespace
}  // namespace ir
}  // namespace newslink
