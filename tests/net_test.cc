// net wire layer, no sockets: the incremental HTTP request parser (valid
// requests, pipelining, keep-alive headers, and a malformed-input sweep
// that must produce 4xx/5xx verdicts — never a crash), the response
// serializer, the Status → HTTP mapping, and the /v1 JSON codecs.

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/search_engine.h"
#include "common/json.h"
#include "corpus/corpus.h"
#include "net/api_json.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/status_http.h"

namespace newslink {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Request parser
// ---------------------------------------------------------------------------

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /v1/search HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 14\r\n"
      "\r\n"
      "{\"query\":\"x\"}\n";
  ASSERT_EQ(parser.Consume(wire), HttpRequestParser::State::kComplete);
  const HttpRequest& r = parser.request();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/v1/search");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.body, "{\"query\":\"x\"}\n");
  ASSERT_NE(r.FindHeader("content-type"), nullptr);  // case-insensitive
  EXPECT_EQ(*r.FindHeader("CONTENT-TYPE"), "application/json");
  EXPECT_TRUE(r.KeepAlive());
}

TEST(HttpParserTest, ParsesGetWithoutBodyByteByByte) {
  HttpRequestParser parser;
  const std::string wire = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.Consume(wire.substr(i, 1)),
              HttpRequestParser::State::kNeedMore)
        << "completed early at byte " << i;
  }
  ASSERT_EQ(parser.Consume(wire.substr(wire.size() - 1)),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, PipelinedRequestsCarryOverAfterReset) {
  HttpRequestParser parser;
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parser.Consume(two), HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  parser.Reset();
  // The second request was already consumed; Reset must replay it.
  ASSERT_EQ(parser.Consume(""), HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, ConnectionHeaderControlsKeepAlive) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_FALSE(parser.request().KeepAlive());

  HttpRequestParser old10;
  ASSERT_EQ(old10.Consume("GET / HTTP/1.0\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_FALSE(old10.request().KeepAlive());

  HttpRequestParser old10keep;
  ASSERT_EQ(
      old10keep.Consume("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
      HttpRequestParser::State::kComplete);
  EXPECT_TRUE(old10keep.request().KeepAlive());
}

/// Every malformed input must land in kError with a 4xx/5xx verdict —
/// kComplete or a crash is a parser bug.
void ExpectRejected(const std::string& wire, int want_status = 0) {
  HttpRequestParser parser;
  const auto state = parser.Consume(wire);
  ASSERT_EQ(state, HttpRequestParser::State::kError) << "accepted: " << wire;
  EXPECT_GE(parser.error_status(), 400) << wire;
  EXPECT_LT(parser.error_status(), 600) << wire;
  if (want_status != 0) EXPECT_EQ(parser.error_status(), want_status) << wire;
}

TEST(HttpParserTest, MalformedRequestsAreRejectedNotCrashed) {
  ExpectRejected("GARBAGE\r\n\r\n");
  ExpectRejected("GET\r\n\r\n");
  ExpectRejected("GET /\r\n\r\n");                         // no version
  ExpectRejected("GET / HTTP/2.0\r\n\r\n", 505);           // unsupported
  ExpectRejected("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
  ExpectRejected("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
  ExpectRejected("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
  ExpectRejected(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501);
  ExpectRejected("POST / HTTP/1.1\r\n\r\n", 411);  // body with no length
  ExpectRejected(std::string("\0\0\0\0", 4) + "\r\n\r\n");
}

TEST(HttpParserTest, FuzzSweepNeverCrashes) {
  // Deterministic xorshift byte soup, fed in uneven chunks: the parser must
  // always answer kNeedMore / kComplete / kError, never crash or loop.
  uint64_t state = 0x243f6a8885a308d3ull;
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    for (int i = 0; i < 120; ++i) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      soup.push_back(static_cast<char>(state & 0xff));
    }
    // Half the rounds get a plausible prefix so parsing reaches the header
    // and body machinery instead of dying on the request line.
    if (round % 2 == 0) soup = "POST /v1/search HTTP/1.1\r\n" + soup;
    HttpRequestParser parser;
    size_t offset = 0;
    size_t chunk = 1 + (round % 7);
    while (offset < soup.size() &&
           parser.state() == HttpRequestParser::State::kNeedMore) {
      parser.Consume(soup.substr(offset, chunk));
      offset += chunk;
    }
    if (parser.state() == HttpRequestParser::State::kError) {
      EXPECT_GE(parser.error_status(), 400);
      EXPECT_LT(parser.error_status(), 600);
    }
  }
}

TEST(HttpParserTest, EnforcesHeadAndBodyLimits) {
  HttpParserLimits limits;
  limits.max_head_bytes = 64;
  limits.max_body_bytes = 8;
  limits.max_headers = 2;

  HttpRequestParser big_head(limits);
  ASSERT_EQ(big_head.Consume("GET / HTTP/1.1\r\nX-Pad: " +
                             std::string(128, 'a') + "\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(big_head.error_status(), 431);

  HttpRequestParser big_body(limits);
  ASSERT_EQ(big_body.Consume("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(big_body.error_status(), 413);

  HttpRequestParser many(limits);
  ASSERT_EQ(many.Consume("GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(many.error_status(), 431);
}

// ---------------------------------------------------------------------------
// Response serializer + routing helpers
// ---------------------------------------------------------------------------

TEST(HttpSerializerTest, SerializesStatusHeadersAndBody) {
  HttpResponse response;
  response.status = 201;
  response.body = "{\"ok\":true}";
  response.headers.emplace_back("X-Custom", "yes");
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 201 Created\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("X-Custom: yes\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  HttpResponse empty;
  empty.status = 503;
  const std::string closed = SerializeResponse(empty, /*keep_alive=*/false);
  EXPECT_NE(closed.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(closed.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpRoutingTest, PathOfStripsQueryString) {
  EXPECT_EQ(PathOf("/v1/stats?format=json"), "/v1/stats");
  EXPECT_EQ(PathOf("/healthz"), "/healthz");
  EXPECT_EQ(QueryParam("/v1/stats?format=json&x=1", "format"), "json");
  EXPECT_EQ(QueryParam("/v1/stats?format=json&x=1", "x"), "1");
  EXPECT_EQ(QueryParam("/v1/stats?format=json", "missing"), "");
  EXPECT_EQ(QueryParam("/v1/stats", "format"), "");
}

// ---------------------------------------------------------------------------
// Status → HTTP mapping (the one place engine errors meet the wire)
// ---------------------------------------------------------------------------

TEST(StatusHttpTest, MapsEveryCode) {
  EXPECT_EQ(StatusToHttp(Status::OK()), 200);
  EXPECT_EQ(StatusToHttp(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(StatusToHttp(Status::OutOfRange("x")), 400);
  EXPECT_EQ(StatusToHttp(Status::NotFound("x")), 404);
  EXPECT_EQ(StatusToHttp(Status::AlreadyExists("x")), 409);
  EXPECT_EQ(StatusToHttp(Status::FailedPrecondition("x")), 409);
  EXPECT_EQ(StatusToHttp(Status::Timeout("x")), 408);
  EXPECT_EQ(StatusToHttp(Status::Unimplemented("x")), 501);
  EXPECT_EQ(StatusToHttp(Status::Internal("x")), 500);
  EXPECT_EQ(StatusToHttp(Status::IOError("x")), 500);
}

TEST(StatusHttpTest, ErrorResponseCarriesStableJsonShape) {
  const HttpResponse r = ErrorResponse(Status::InvalidArgument("bad k"));
  EXPECT_EQ(r.status, 400);
  const Result<json::Value> body = json::Parse(r.body);
  ASSERT_TRUE(body.ok()) << r.body;
  const json::Value* error = body->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->AsString(), "InvalidArgument");
  EXPECT_EQ(error->Find("status")->AsInt(), 400);
  EXPECT_EQ(error->Find("message")->AsString(), "bad k");

  const HttpResponse at = ErrorResponseAt(503, "draining");
  EXPECT_EQ(at.status, 503);
  const Result<json::Value> at_body = json::Parse(at.body);
  ASSERT_TRUE(at_body.ok());
  EXPECT_EQ(at_body->Find("error")->Find("status")->AsInt(), 503);
}

// ---------------------------------------------------------------------------
// /v1 JSON codecs
// ---------------------------------------------------------------------------

json::Value MustParseJson(const std::string& text) {
  Result<json::Value> v = json::Parse(text);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? std::move(v).value() : json::Value();
}

TEST(ApiJsonTest, SearchRequestDecodesAllFields) {
  const Result<baselines::SearchRequest> r = SearchRequestFromJson(
      MustParseJson("{\"query\":\"berlin\",\"k\":3,\"beta\":0.5,"
                    "\"rerank_depth\":25,\"exhaustive_fusion\":true,"
                    "\"explain\":true,\"max_paths\":2,\"trace\":true,"
                    "\"deadline_seconds\":0.25}"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->query, "berlin");
  EXPECT_EQ(r->k, 3u);
  ASSERT_TRUE(r->beta.has_value());
  EXPECT_DOUBLE_EQ(*r->beta, 0.5);
  ASSERT_TRUE(r->rerank_depth.has_value());
  EXPECT_EQ(*r->rerank_depth, 25u);
  ASSERT_TRUE(r->exhaustive_fusion.has_value());
  EXPECT_TRUE(*r->exhaustive_fusion);
  EXPECT_TRUE(r->explain);
  EXPECT_EQ(r->max_paths_per_result, 2u);
  EXPECT_TRUE(r->trace);
  ASSERT_TRUE(r->deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(*r->deadline_seconds, 0.25);
}

TEST(ApiJsonTest, SearchRequestDefaultsMatchEngineDefaults) {
  const Result<baselines::SearchRequest> r =
      SearchRequestFromJson(MustParseJson("{\"query\":\"q\"}"));
  ASSERT_TRUE(r.ok());
  const baselines::SearchRequest defaults;
  EXPECT_EQ(r->k, defaults.k);
  EXPECT_FALSE(r->beta.has_value());
  EXPECT_EQ(r->explain, defaults.explain);
  EXPECT_EQ(r->max_paths_per_result, defaults.max_paths_per_result);
}

TEST(ApiJsonTest, SearchRequestRejectsBadInput) {
  EXPECT_FALSE(SearchRequestFromJson(MustParseJson("{}")).ok());
  EXPECT_FALSE(SearchRequestFromJson(MustParseJson("{\"query\":\"\"}")).ok());
  EXPECT_FALSE(SearchRequestFromJson(MustParseJson("[1,2]")).ok());
  EXPECT_FALSE(
      SearchRequestFromJson(MustParseJson("{\"query\":\"q\",\"k\":0}")).ok());
  EXPECT_FALSE(
      SearchRequestFromJson(MustParseJson("{\"query\":\"q\",\"k\":-3}")).ok());
  EXPECT_FALSE(SearchRequestFromJson(
                   MustParseJson("{\"query\":\"q\",\"kk\":10}"))
                   .ok());  // typo'd field fails loudly
  EXPECT_FALSE(SearchRequestFromJson(
                   MustParseJson("{\"query\":\"q\",\"deadline_seconds\":0}"))
                   .ok());
  EXPECT_FALSE(SearchRequestFromJson(
                   MustParseJson("{\"query\":\"q\",\"explain\":\"yes\"}"))
                   .ok());
}

TEST(ApiJsonTest, SearchRequestDecodesGroupedRankingAndFilter) {
  const Result<baselines::SearchRequest> r = SearchRequestFromJson(
      MustParseJson("{\"query\":\"berlin\",\"k\":3,"
                    "\"ranking\":{\"beta\":0.4,\"rerank_depth\":50,"
                    "\"exhaustive\":true,\"recency_half_life_s\":7200},"
                    "\"filter\":{\"time_range\":"
                    "{\"after_ms\":1000,\"before_ms\":2000}}}"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->beta.has_value());
  EXPECT_DOUBLE_EQ(*r->beta, 0.4);
  ASSERT_TRUE(r->rerank_depth.has_value());
  EXPECT_EQ(*r->rerank_depth, 50u);
  ASSERT_TRUE(r->exhaustive_fusion.has_value());
  EXPECT_TRUE(*r->exhaustive_fusion);
  ASSERT_TRUE(r->recency_half_life_seconds.has_value());
  EXPECT_DOUBLE_EQ(*r->recency_half_life_seconds, 7200.0);
  ASSERT_TRUE(r->time_range.has_value());
  EXPECT_EQ(r->time_range->after_ms, 1000);
  EXPECT_EQ(r->time_range->before_ms, 2000);

  // Either window bound may be omitted: absence means unbounded.
  const Result<baselines::SearchRequest> open = SearchRequestFromJson(
      MustParseJson("{\"query\":\"q\",\"filter\":"
                    "{\"time_range\":{\"after_ms\":5}}}"));
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(open->time_range.has_value());
  EXPECT_EQ(open->time_range->after_ms, 5);
  EXPECT_EQ(open->time_range->before_ms,
            std::numeric_limits<int64_t>::max());
}

TEST(ApiJsonTest, SearchRequestRejectsMixedLegacyAndGroupedShapes) {
  // Each legacy flat alias still decodes on its own...
  for (const char* flat :
       {"\"beta\":0.5", "\"rerank_depth\":25", "\"exhaustive_fusion\":true"}) {
    const std::string alone =
        std::string("{\"query\":\"q\",") + flat + "}";
    EXPECT_TRUE(SearchRequestFromJson(MustParseJson(alone)).ok()) << alone;

    // ...but mixing it with the grouped object is ambiguous: 400 with a
    // message that names the deprecated alias.
    const std::string mixed = std::string("{\"query\":\"q\",") + flat +
                              ",\"ranking\":{\"beta\":0.5}}";
    const Result<baselines::SearchRequest> r =
        SearchRequestFromJson(MustParseJson(mixed));
    ASSERT_FALSE(r.ok()) << mixed;
    EXPECT_TRUE(r.status().IsInvalidArgument());
    EXPECT_NE(r.status().ToString().find("deprecated alias"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST(ApiJsonTest, TimeRangeValidation) {
  auto parse_range = [](const std::string& range_json) {
    return SearchRequestFromJson(MustParseJson(
        "{\"query\":\"q\",\"filter\":{\"time_range\":" + range_json + "}}"));
  };
  // Degenerate or inverted windows are rejected: the window is half-open,
  // so after_ms == before_ms can never match anything.
  EXPECT_FALSE(parse_range("{\"after_ms\":5,\"before_ms\":5}").ok());
  EXPECT_FALSE(parse_range("{\"after_ms\":9,\"before_ms\":5}").ok());
  // Values JSON doubles cannot carry exactly (> 2^53) are rejected.
  EXPECT_FALSE(parse_range("{\"after_ms\":9007199254740994}").ok());
  EXPECT_FALSE(parse_range("{\"after_ms\":-1}").ok());
  EXPECT_FALSE(parse_range("{\"after_ms\":1.5}").ok());
  EXPECT_FALSE(parse_range("{\"after\":1}").ok());  // unknown field
  EXPECT_FALSE(parse_range("[]").ok());
  // Unknown filter members fail loudly too.
  EXPECT_FALSE(SearchRequestFromJson(
                   MustParseJson("{\"query\":\"q\",\"filter\":{\"tr\":{}}}"))
                   .ok());
  // recency_half_life_s must be non-negative.
  EXPECT_FALSE(SearchRequestFromJson(
                   MustParseJson("{\"query\":\"q\",\"ranking\":"
                                 "{\"recency_half_life_s\":-1}}"))
                   .ok());
}

TEST(ApiJsonTest, DocumentDecodesAndRejects) {
  const Result<corpus::Document> doc = DocumentFromJson(MustParseJson(
      "{\"id\":\"d1\",\"title\":\"T\",\"text\":\"body\",\"story_id\":7}"));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->id, "d1");
  EXPECT_EQ(doc->title, "T");
  EXPECT_EQ(doc->text, "body");
  EXPECT_EQ(doc->story_id, 7u);

  EXPECT_FALSE(DocumentFromJson(MustParseJson("{\"id\":\"d\"}")).ok());
  EXPECT_FALSE(DocumentFromJson(MustParseJson("{\"text\":\"\"}")).ok());
  EXPECT_FALSE(
      DocumentFromJson(MustParseJson("{\"text\":\"x\",\"extra\":1}")).ok());
}

TEST(ApiJsonTest, DocumentCarriesTimestamp) {
  const Result<corpus::Document> doc = DocumentFromJson(MustParseJson(
      "{\"text\":\"body\",\"timestamp_ms\":1700000000000}"));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->timestamp_ms, 1700000000000);

  // Absent timestamp decodes as 0 ("unknown"), never an error.
  const Result<corpus::Document> bare =
      DocumentFromJson(MustParseJson("{\"text\":\"body\"}"));
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->timestamp_ms, 0);

  EXPECT_FALSE(DocumentFromJson(
                   MustParseJson("{\"text\":\"x\",\"timestamp_ms\":-1}"))
                   .ok());
  EXPECT_FALSE(DocumentFromJson(
                   MustParseJson("{\"text\":\"x\",\"timestamp_ms\":1.25}"))
                   .ok());
}

TEST(ApiJsonTest, SearchResponseEncodesHitsAndTimings) {
  baselines::SearchResponse response;
  response.epoch = 4;
  response.snapshot_docs = 100;
  baselines::SearchHit hit;
  hit.doc_index = 13;
  hit.score = 0.75;
  response.hits.push_back(hit);

  corpus::Corpus corpus;
  for (int i = 0; i < 14; ++i) {
    corpus::Document d;
    d.id = "doc-" + std::to_string(i);
    d.title = "Title " + std::to_string(i);
    d.text = "text";
    corpus.Add(d);
  }

  const json::Value v = SearchResponseToJson(response, &corpus, nullptr);
  const json::Value* hits = v.Find("hits");
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(hits->at(0).Find("doc_index")->AsUint(), 13u);
  EXPECT_DOUBLE_EQ(hits->at(0).Find("score")->AsDouble(), 0.75);
  EXPECT_EQ(hits->at(0).Find("doc_id")->AsString(), "doc-13");
  EXPECT_EQ(hits->at(0).Find("title")->AsString(), "Title 13");
  EXPECT_EQ(v.Find("epoch")->AsUint(), 4u);
  EXPECT_EQ(v.Find("snapshot_docs")->AsUint(), 100u);
  EXPECT_EQ(v.Find("deadline_exceeded"), nullptr);  // only when true
  // The document must parse back from its own wire form.
  EXPECT_TRUE(json::Parse(v.Dump()).ok());

  // Without a corpus, hits still carry index + score.
  const json::Value bare = SearchResponseToJson(response, nullptr, nullptr);
  EXPECT_EQ(bare.Find("hits")->at(0).Find("doc_index")->AsUint(), 13u);
  EXPECT_EQ(bare.Find("hits")->at(0).Find("doc_id"), nullptr);
}

}  // namespace
}  // namespace net
}  // namespace newslink
