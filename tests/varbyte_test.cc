// Tests for VByte compression, the block-max posting list, and the
// compressed inverted index — including the malformed-input corpora
// (truncated / overlong / bit-flipped streams) that the Release-mode
// decoder must reject with Status instead of reading out of bounds.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ir/varbyte.h"

namespace newslink {
namespace ir {
namespace {

uint32_t DecodeOk(const std::vector<uint8_t>& bytes, size_t* pos) {
  uint32_t value = 0;
  const Status s = VarByteDecode(bytes, pos, &value);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return value;
}

TEST(VarByteTest, EncodesKnownValues) {
  std::vector<uint8_t> out;
  VarByteEncode(0, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{0}));
  out.clear();
  VarByteEncode(127, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{127}));
  out.clear();
  VarByteEncode(128, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x80, 0x01}));
  out.clear();
  VarByteEncode(300, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xAC, 0x02}));
}

TEST(VarByteTest, RoundTripsRandomValues) {
  Rng rng(3);
  std::vector<uint32_t> values;
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 1000; ++i) {
    // Mix of small and large magnitudes.
    const uint32_t v = static_cast<uint32_t>(
        rng.Next() >> (rng.Uniform(28)));
    values.push_back(v);
    VarByteEncode(v, &bytes);
  }
  size_t pos = 0;
  for (uint32_t expected : values) {
    EXPECT_EQ(DecodeOk(bytes, &pos), expected);
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(VarByteTest, MaxValueRoundTrips) {
  std::vector<uint8_t> bytes;
  VarByteEncode(0xFFFFFFFFu, &bytes);
  EXPECT_EQ(bytes.size(), 5u);
  size_t pos = 0;
  EXPECT_EQ(DecodeOk(bytes, &pos), 0xFFFFFFFFu);
}

TEST(VarByteTest, RejectsEmptyAndTruncatedStreams) {
  // Regression: the decoder used to walk past the buffer in Release builds
  // (the bounds NL_DCHECK compiles away). Every truncation must now be a
  // clean IOError with *pos at the failure point.
  uint32_t value = 0;
  size_t pos = 0;
  EXPECT_TRUE(VarByteDecode(std::span<const uint8_t>(), &pos, &value)
                  .IsIOError());

  std::vector<uint8_t> bytes;
  VarByteEncode(1u << 20, &bytes);  // multi-byte encoding
  for (size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
    const std::span<const uint8_t> truncated(bytes.data(), cut + 1);
    // Keep only continuation bytes: drop the terminator.
    pos = 0;
    const Status s = VarByteDecode(truncated, &pos, &value);
    EXPECT_TRUE(s.IsIOError()) << "cut=" << cut << " " << s.ToString();
    EXPECT_EQ(pos, truncated.size());
  }
}

TEST(VarByteTest, RejectsRunawayContinuationBytes) {
  // All-continuation input: the old decoder would shift past 31 bits (UB)
  // and read forever; the new one must stop at 5 bytes.
  const std::vector<uint8_t> runaway(64, 0xFF);
  size_t pos = 0;
  uint32_t value = 0;
  const Status s = VarByteDecode(runaway, &pos, &value);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(pos, 4u) << "*pos must sit at the offending 5th byte";

  // Continuation bits that survive the overflow check (payload fits) still
  // hit the 5-byte length cap.
  const std::vector<uint8_t> six = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  pos = 0;
  EXPECT_TRUE(VarByteDecode(six, &pos, &value).IsIOError());
  EXPECT_LE(pos, six.size());
}

TEST(VarByteTest, RejectsFifthByteOverflow) {
  // 5 bytes whose last carries more than the top 4 bits of a uint32_t.
  const std::vector<uint8_t> overflow = {0xFF, 0xFF, 0xFF, 0xFF, 0x10};
  size_t pos = 0;
  uint32_t value = 0;
  EXPECT_TRUE(VarByteDecode(overflow, &pos, &value).IsIOError());

  // ... while the largest valid 5th byte decodes fine.
  const std::vector<uint8_t> max = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
  pos = 0;
  EXPECT_EQ(DecodeOk(max, &pos), 0xFFFFFFFFu);
}

TEST(VarByteTest, RejectsOverlongEncodings) {
  // {0x80, 0x00} re-encodes 0 in two bytes; VarByteEncode never produces
  // it, so it marks a stream we did not write.
  const std::vector<uint8_t> overlong_zero = {0x80, 0x00};
  size_t pos = 0;
  uint32_t value = 0;
  EXPECT_TRUE(VarByteDecode(overlong_zero, &pos, &value).IsIOError());

  const std::vector<uint8_t> overlong_127 = {0xFF, 0x00};
  pos = 0;
  EXPECT_TRUE(VarByteDecode(overlong_127, &pos, &value).IsIOError());
}

TEST(VarByteTest, DecodeNeverCrashesOnRandomBytes) {
  // Fuzz under ASan/UBSan: random byte soup either decodes or returns
  // Status — never reads out of bounds, never shifts past 31 bits.
  Rng rng(29);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.Uniform(9));
    for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.Uniform(256));
    size_t pos = 0;
    uint32_t value = 0;
    const Status s = VarByteDecode(junk, &pos, &value);
    if (s.ok()) {
      EXPECT_LE(pos, junk.size());
    }
  }
}

TEST(DecodePostingsTest, ValidatesStructureNotJustVarbytes) {
  // A stream can be varbyte-clean yet structurally corrupt; every such
  // case must surface as IOError, mirroring the snapshot-load validation.
  const auto decode = [](const std::vector<uint8_t>& bytes, size_t count) {
    size_t pos = 0;
    return DecodePostings(std::span<const uint8_t>(bytes), &pos, count, 0,
                          /*allow_zero_first_gap=*/true,
                          [](const Posting&) {});
  };

  std::vector<uint8_t> zero_gap;
  VarByteEncode(3, &zero_gap);  // doc 3
  VarByteEncode(1, &zero_gap);  // tf 1
  VarByteEncode(0, &zero_gap);  // zero gap: duplicate doc id
  VarByteEncode(2, &zero_gap);
  EXPECT_TRUE(decode(zero_gap, 2).IsIOError());

  std::vector<uint8_t> zero_tf;
  VarByteEncode(3, &zero_tf);
  VarByteEncode(0, &zero_tf);  // tf 0
  EXPECT_TRUE(decode(zero_tf, 1).IsIOError());

  std::vector<uint8_t> overflowing;
  VarByteEncode(0xFFFFFFFFu, &overflowing);  // doc 2^32-1 == kInvalidDoc
  VarByteEncode(1, &overflowing);
  EXPECT_TRUE(decode(overflowing, 1).IsIOError());

  std::vector<uint8_t> truncated;
  VarByteEncode(3, &truncated);
  VarByteEncode(1, &truncated);
  EXPECT_TRUE(decode(truncated, 2).IsIOError()) << "count demands more bytes";
}

TEST(CompressedPostingListTest, RoundTripsAndShrinks) {
  Rng rng(7);
  std::vector<Posting> postings;
  uint32_t doc = 0;
  for (int i = 0; i < 500; ++i) {
    doc += 1 + static_cast<uint32_t>(rng.Uniform(30));
    postings.push_back(Posting{doc, 1 + static_cast<uint32_t>(rng.Uniform(5))});
  }
  CompressedPostingList list({postings.data(), postings.size()});
  EXPECT_EQ(list.size(), postings.size());
  std::vector<Posting> decoded;
  ASSERT_TRUE(list.Decode(&decoded).ok());
  ASSERT_EQ(decoded.size(), postings.size());
  for (size_t i = 0; i < postings.size(); ++i) {
    EXPECT_EQ(decoded[i].doc, postings[i].doc);
    EXPECT_EQ(decoded[i].tf, postings[i].tf);
  }
  // Small doc-id gaps + small tfs: ~2 bytes/posting vs 8 raw.
  EXPECT_LT(list.byte_size(), postings.size() * sizeof(Posting) / 2);
}

TEST(CompressedPostingListTest, EmptyList) {
  CompressedPostingList list;
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.num_blocks(), 0u);
  std::vector<Posting> decoded;
  EXPECT_TRUE(list.Decode(&decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(CompressedPostingListTest, ForEachStreams) {
  CompressedPostingList list;
  ASSERT_TRUE(list.Append({5, 2}).ok());
  ASSERT_TRUE(list.Append({9, 1}).ok());
  std::vector<Posting> seen;
  ASSERT_TRUE(list.ForEach([&seen](const Posting& p) { seen.push_back(p); })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].doc, 5u);
  EXPECT_EQ(seen[1].doc, 9u);
  EXPECT_EQ(seen[0].tf, 2u);
}

TEST(CompressedPostingListTest, RejectsNonMonotonicDocIds) {
  // Regression: a non-monotonic doc id used to delta-encode as
  // `doc - last_doc_`, wrapping uint32_t and silently corrupting every
  // posting after it. It must be rejected instead, leaving the list as-is.
  CompressedPostingList list;
  EXPECT_TRUE(list.Append({10, 2}).ok());
  const Status backwards = list.Append({3, 1});
  EXPECT_TRUE(backwards.IsInvalidArgument()) << backwards.ToString();
  const Status duplicate = list.Append({10, 1});
  EXPECT_TRUE(duplicate.IsInvalidArgument()) << duplicate.ToString();
  ASSERT_EQ(list.size(), 1u);
  std::vector<Posting> decoded;
  ASSERT_TRUE(list.Decode(&decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].doc, 10u);
  EXPECT_EQ(decoded[0].tf, 2u);
  // The list stays usable after a rejection.
  EXPECT_TRUE(list.Append({11, 3}).ok());
  EXPECT_EQ(list.size(), 2u);
}

TEST(CompressedPostingListTest, RejectsZeroTermFrequency) {
  CompressedPostingList list;
  EXPECT_TRUE(list.Append({4, 0}).IsInvalidArgument());
  EXPECT_EQ(list.size(), 0u);
}

TEST(CompressedPostingListTest, SpanConstructorSortsAndMerges) {
  // Out-of-order and duplicated doc ids are normalized (sorted, tf summed)
  // rather than corrupting the delta stream.
  const std::vector<Posting> messy = {{9, 1}, {3, 2}, {9, 4}, {1, 1}};
  CompressedPostingList list({messy.data(), messy.size()});
  std::vector<Posting> decoded;
  ASSERT_TRUE(list.Decode(&decoded).ok());
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].doc, 1u);
  EXPECT_EQ(decoded[0].tf, 1u);
  EXPECT_EQ(decoded[1].doc, 3u);
  EXPECT_EQ(decoded[1].tf, 2u);
  EXPECT_EQ(decoded[2].doc, 9u);
  EXPECT_EQ(decoded[2].tf, 5u);
}

TEST(CompressedPostingListTest, BlockMetadataTracksMaxTf) {
  CompressedPostingList list;
  const size_t n = kPostingBlockSize * 3 + 10;  // 3 full blocks + a tail
  for (size_t i = 0; i < n; ++i) {
    const uint32_t tf = static_cast<uint32_t>(1 + i % 7);
    ASSERT_TRUE(list.Append({static_cast<DocId>(i * 2 + 1), tf}).ok());
  }
  ASSERT_EQ(list.num_blocks(), 4u);
  EXPECT_EQ(list.BlockCount(0), kPostingBlockSize);
  EXPECT_EQ(list.BlockCount(3), 10u);
  for (size_t b = 0; b < list.num_blocks(); ++b) {
    const PostingBlock& meta = list.block(b);
    std::vector<Posting> block;
    ASSERT_TRUE(list.DecodeBlock(b, &block).ok()) << "block " << b;
    ASSERT_EQ(block.size(), list.BlockCount(b));
    EXPECT_EQ(block.front().doc, meta.first_doc);
    EXPECT_EQ(block.back().doc, meta.last_doc);
    uint32_t max_tf = 0;
    for (const Posting& p : block) max_tf = std::max(max_tf, p.tf);
    EXPECT_EQ(meta.max_tf, max_tf) << "block " << b;
  }

  // Concatenating the blocks reproduces the full decode.
  std::vector<Posting> whole;
  ASSERT_TRUE(list.Decode(&whole).ok());
  std::vector<Posting> concat;
  for (size_t b = 0; b < list.num_blocks(); ++b) {
    std::vector<Posting> block;
    ASSERT_TRUE(list.DecodeBlock(b, &block).ok());
    concat.insert(concat.end(), block.begin(), block.end());
  }
  ASSERT_EQ(concat.size(), whole.size());
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(concat[i].doc, whole[i].doc);
    EXPECT_EQ(concat[i].tf, whole[i].tf);
  }
  EXPECT_TRUE(list.DecodeBlock(4, &whole).IsInvalidArgument());
}

TEST(CompressedPostingListTest, BitFlipsNeverCrashTheDecoder) {
  // Flip every bit of a real encoded stream, one at a time, and decode the
  // mutated stream both whole (DecodePostings) and per block. Under
  // ASan/UBSan this is the no-OOB/no-UB guarantee; functionally, each
  // mutation either decodes (the flip landed in a tf or produced another
  // valid stream) or returns Status.
  CompressedPostingList list;
  Rng rng(41);
  DocId doc = 0;
  for (int i = 0; i < 200; ++i) {
    doc += 1 + static_cast<uint32_t>(rng.Uniform(1000));
    ASSERT_TRUE(
        list.Append({doc, 1 + static_cast<uint32_t>(rng.Uniform(200))}).ok());
  }
  std::vector<uint8_t> clean;
  {
    // Re-encode through the public API to get the raw stream bytes.
    std::vector<Posting> decoded;
    ASSERT_TRUE(list.Decode(&decoded).ok());
    DocId last = 0;
    for (size_t i = 0; i < decoded.size(); ++i) {
      VarByteEncode(i == 0 ? decoded[i].doc : decoded[i].doc - last, &clean);
      VarByteEncode(decoded[i].tf, &clean);
      last = decoded[i].doc;
    }
  }
  size_t rejected = 0;
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = clean;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      size_t pos = 0;
      size_t count = 0;
      const Status s = DecodePostings(
          std::span<const uint8_t>(mutated), &pos, list.size(), 0,
          /*allow_zero_first_gap=*/true, [&count](const Posting&) { ++count; });
      if (!s.ok()) {
        ++rejected;
      } else {
        EXPECT_EQ(count, list.size());
        EXPECT_LE(pos, mutated.size());
      }
    }
  }
  EXPECT_GT(rejected, 0u) << "some mutations must be structurally invalid";

  // Truncation sweep on the clean stream: every prefix either decodes
  // fewer postings than requested (IOError) or is bit-exact.
  for (size_t cut = 0; cut < clean.size(); ++cut) {
    size_t pos = 0;
    const Status s = DecodePostings(
        std::span<const uint8_t>(clean.data(), cut), &pos, list.size(), 0,
        /*allow_zero_first_gap=*/true, [](const Posting&) {});
    EXPECT_TRUE(s.IsIOError()) << "cut=" << cut;
  }
}

TEST(CompressedInvertedIndexTest, AddDocumentCoalescesDuplicateTerms) {
  // A repeated term in one document's counts used to hit the same posting
  // list twice for one doc id, tripping the monotonicity invariant.
  CompressedInvertedIndex index;
  index.AddDocument({{7, 2}, {3, 1}, {7, 5}});
  const std::vector<Posting> postings = index.Postings(7);
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].doc, 0u);
  EXPECT_EQ(postings[0].tf, 7u);
  EXPECT_EQ(index.DocLength(0), 8u);
}

TEST(CompressedInvertedIndexTest, MirrorsUncompressedIndex) {
  Rng rng(11);
  ZipfTable zipf(200, 1.0);
  InvertedIndex raw;
  for (int d = 0; d < 300; ++d) {
    std::map<TermId, uint32_t> counts;
    for (int t = 0; t < 40; ++t) {
      ++counts[static_cast<TermId>(zipf.Sample(&rng))];
    }
    raw.AddDocument(TermCounts(counts.begin(), counts.end()));
  }
  CompressedInvertedIndex compressed(raw);
  EXPECT_EQ(compressed.num_docs(), raw.num_docs());
  EXPECT_EQ(compressed.num_terms(), raw.num_terms());
  EXPECT_DOUBLE_EQ(compressed.avg_doc_length(), raw.avg_doc_length());
  for (DocId d = 0; d < raw.num_docs(); ++d) {
    EXPECT_EQ(compressed.DocLength(d), raw.DocLength(d));
  }
  for (TermId t = 0; t < raw.num_terms(); ++t) {
    EXPECT_EQ(compressed.DocFreq(t), raw.DocFreq(t));
    const auto expected = raw.Postings(t);
    const auto actual = compressed.Postings(t);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].doc, expected[i].doc);
      EXPECT_EQ(actual[i].tf, expected[i].tf);
    }
  }
  // Space win over raw Posting storage.
  size_t raw_bytes = 0;
  for (TermId t = 0; t < raw.num_terms(); ++t) {
    raw_bytes += raw.Postings(t).size() * sizeof(Posting);
  }
  EXPECT_LT(compressed.PostingBytes(), raw_bytes / 2);
}

TEST(CompressedInvertedIndexTest, IncrementalAddMatchesBulk) {
  Rng rng(13);
  InvertedIndex raw;
  CompressedInvertedIndex incremental;
  for (int d = 0; d < 50; ++d) {
    std::map<TermId, uint32_t> counts;
    for (int t = 0; t < 10; ++t) {
      ++counts[static_cast<TermId>(rng.Uniform(40))];
    }
    const TermCounts tc(counts.begin(), counts.end());
    raw.AddDocument(tc);
    incremental.AddDocument(tc);
  }
  for (TermId t = 0; t < raw.num_terms(); ++t) {
    const auto expected = raw.Postings(t);
    const auto actual = incremental.Postings(t);
    ASSERT_EQ(actual.size(), expected.size()) << "term " << t;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].doc, expected[i].doc);
    }
  }
}

TEST(CompressedInvertedIndexTest, UnknownTermEmpty) {
  CompressedInvertedIndex index;
  EXPECT_TRUE(index.Postings(5).empty());
  EXPECT_EQ(index.DocFreq(5), 0u);
  int visits = 0;
  EXPECT_TRUE(
      index.ForEachPosting(5, [&visits](const Posting&) { ++visits; }).ok());
  EXPECT_EQ(visits, 0);
}

}  // namespace
}  // namespace ir
}  // namespace newslink
