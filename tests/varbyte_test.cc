// Tests for VByte compression and the compressed inverted index.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ir/varbyte.h"

namespace newslink {
namespace ir {
namespace {

TEST(VarByteTest, EncodesKnownValues) {
  std::vector<uint8_t> out;
  VarByteEncode(0, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{0}));
  out.clear();
  VarByteEncode(127, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{127}));
  out.clear();
  VarByteEncode(128, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x80, 0x01}));
  out.clear();
  VarByteEncode(300, &out);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xAC, 0x02}));
}

TEST(VarByteTest, RoundTripsRandomValues) {
  Rng rng(3);
  std::vector<uint32_t> values;
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 1000; ++i) {
    // Mix of small and large magnitudes.
    const uint32_t v = static_cast<uint32_t>(
        rng.Next() >> (rng.Uniform(28)));
    values.push_back(v);
    VarByteEncode(v, &bytes);
  }
  size_t pos = 0;
  for (uint32_t expected : values) {
    EXPECT_EQ(VarByteDecode(bytes, &pos), expected);
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(VarByteTest, MaxValueRoundTrips) {
  std::vector<uint8_t> bytes;
  VarByteEncode(0xFFFFFFFFu, &bytes);
  EXPECT_EQ(bytes.size(), 5u);
  size_t pos = 0;
  EXPECT_EQ(VarByteDecode(bytes, &pos), 0xFFFFFFFFu);
}

TEST(CompressedPostingListTest, RoundTripsAndShrinks) {
  Rng rng(7);
  std::vector<Posting> postings;
  uint32_t doc = 0;
  for (int i = 0; i < 500; ++i) {
    doc += 1 + static_cast<uint32_t>(rng.Uniform(30));
    postings.push_back(Posting{doc, 1 + static_cast<uint32_t>(rng.Uniform(5))});
  }
  CompressedPostingList list({postings.data(), postings.size()});
  EXPECT_EQ(list.size(), postings.size());
  const std::vector<Posting> decoded = list.Decode();
  ASSERT_EQ(decoded.size(), postings.size());
  for (size_t i = 0; i < postings.size(); ++i) {
    EXPECT_EQ(decoded[i].doc, postings[i].doc);
    EXPECT_EQ(decoded[i].tf, postings[i].tf);
  }
  // Small doc-id gaps + small tfs: ~2 bytes/posting vs 8 raw.
  EXPECT_LT(list.byte_size(), postings.size() * sizeof(Posting) / 2);
}

TEST(CompressedPostingListTest, EmptyList) {
  CompressedPostingList list;
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.Decode().empty());
}

TEST(CompressedPostingListTest, ForEachStreams) {
  CompressedPostingList list;
  list.Append({5, 2});
  list.Append({9, 1});
  std::vector<Posting> seen;
  list.ForEach([&seen](const Posting& p) { seen.push_back(p); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].doc, 5u);
  EXPECT_EQ(seen[1].doc, 9u);
  EXPECT_EQ(seen[0].tf, 2u);
}

TEST(CompressedPostingListTest, RejectsNonMonotonicDocIds) {
  // Regression: a non-monotonic doc id used to delta-encode as
  // `doc - last_doc_`, wrapping uint32_t and silently corrupting every
  // posting after it. It must be rejected instead, leaving the list as-is.
  CompressedPostingList list;
  EXPECT_TRUE(list.Append({10, 2}).ok());
  const Status backwards = list.Append({3, 1});
  EXPECT_TRUE(backwards.IsInvalidArgument()) << backwards.ToString();
  const Status duplicate = list.Append({10, 1});
  EXPECT_TRUE(duplicate.IsInvalidArgument()) << duplicate.ToString();
  ASSERT_EQ(list.size(), 1u);
  const std::vector<Posting> decoded = list.Decode();
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].doc, 10u);
  EXPECT_EQ(decoded[0].tf, 2u);
  // The list stays usable after a rejection.
  EXPECT_TRUE(list.Append({11, 3}).ok());
  EXPECT_EQ(list.size(), 2u);
}

TEST(CompressedPostingListTest, RejectsZeroTermFrequency) {
  CompressedPostingList list;
  EXPECT_TRUE(list.Append({4, 0}).IsInvalidArgument());
  EXPECT_EQ(list.size(), 0u);
}

TEST(CompressedPostingListTest, SpanConstructorSortsAndMerges) {
  // Out-of-order and duplicated doc ids are normalized (sorted, tf summed)
  // rather than corrupting the delta stream.
  const std::vector<Posting> messy = {{9, 1}, {3, 2}, {9, 4}, {1, 1}};
  CompressedPostingList list({messy.data(), messy.size()});
  const std::vector<Posting> decoded = list.Decode();
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].doc, 1u);
  EXPECT_EQ(decoded[0].tf, 1u);
  EXPECT_EQ(decoded[1].doc, 3u);
  EXPECT_EQ(decoded[1].tf, 2u);
  EXPECT_EQ(decoded[2].doc, 9u);
  EXPECT_EQ(decoded[2].tf, 5u);
}

TEST(CompressedInvertedIndexTest, AddDocumentCoalescesDuplicateTerms) {
  // A repeated term in one document's counts used to hit the same posting
  // list twice for one doc id, tripping the monotonicity invariant.
  CompressedInvertedIndex index;
  index.AddDocument({{7, 2}, {3, 1}, {7, 5}});
  const std::vector<Posting> postings = index.Postings(7);
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].doc, 0u);
  EXPECT_EQ(postings[0].tf, 7u);
  EXPECT_EQ(index.DocLength(0), 8u);
}

TEST(CompressedInvertedIndexTest, MirrorsUncompressedIndex) {
  Rng rng(11);
  ZipfTable zipf(200, 1.0);
  InvertedIndex raw;
  for (int d = 0; d < 300; ++d) {
    std::map<TermId, uint32_t> counts;
    for (int t = 0; t < 40; ++t) {
      ++counts[static_cast<TermId>(zipf.Sample(&rng))];
    }
    raw.AddDocument(TermCounts(counts.begin(), counts.end()));
  }
  CompressedInvertedIndex compressed(raw);
  EXPECT_EQ(compressed.num_docs(), raw.num_docs());
  EXPECT_EQ(compressed.num_terms(), raw.num_terms());
  EXPECT_DOUBLE_EQ(compressed.avg_doc_length(), raw.avg_doc_length());
  for (DocId d = 0; d < raw.num_docs(); ++d) {
    EXPECT_EQ(compressed.DocLength(d), raw.DocLength(d));
  }
  for (TermId t = 0; t < raw.num_terms(); ++t) {
    EXPECT_EQ(compressed.DocFreq(t), raw.DocFreq(t));
    const auto expected = raw.Postings(t);
    const auto actual = compressed.Postings(t);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].doc, expected[i].doc);
      EXPECT_EQ(actual[i].tf, expected[i].tf);
    }
  }
  // Space win over raw Posting storage.
  size_t raw_bytes = 0;
  for (TermId t = 0; t < raw.num_terms(); ++t) {
    raw_bytes += raw.Postings(t).size() * sizeof(Posting);
  }
  EXPECT_LT(compressed.PostingBytes(), raw_bytes / 2);
}

TEST(CompressedInvertedIndexTest, IncrementalAddMatchesBulk) {
  Rng rng(13);
  InvertedIndex raw;
  CompressedInvertedIndex incremental;
  for (int d = 0; d < 50; ++d) {
    std::map<TermId, uint32_t> counts;
    for (int t = 0; t < 10; ++t) {
      ++counts[static_cast<TermId>(rng.Uniform(40))];
    }
    const TermCounts tc(counts.begin(), counts.end());
    raw.AddDocument(tc);
    incremental.AddDocument(tc);
  }
  for (TermId t = 0; t < raw.num_terms(); ++t) {
    const auto expected = raw.Postings(t);
    const auto actual = incremental.Postings(t);
    ASSERT_EQ(actual.size(), expected.size()) << "term " << t;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].doc, expected[i].doc);
    }
  }
}

TEST(CompressedInvertedIndexTest, UnknownTermEmpty) {
  CompressedInvertedIndex index;
  EXPECT_TRUE(index.Postings(5).empty());
  EXPECT_EQ(index.DocFreq(5), 0u);
  int visits = 0;
  index.ForEachPosting(5, [&visits](const Posting&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

}  // namespace
}  // namespace ir
}  // namespace newslink
