// Tests for src/eval: query selection, SIM@k / HIT@k computation, the
// evaluation runner, and the simulated user study.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/lucene_like_engine.h"
#include "corpus/synthetic_news.h"
#include "embed/document_embedding.h"
#include "eval/evaluation_runner.h"
#include "eval/metrics.h"
#include "eval/query_selection.h"
#include "eval/user_study.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"
#include "text/gazetteer_ner.h"

namespace newslink {
namespace eval {
namespace {

// ---------------------------------------------------------------------------
// Query selection
// ---------------------------------------------------------------------------

class QuerySelectionTest : public ::testing::Test {
 protected:
  QuerySelectionTest() {
    kg::KgBuilder b;
    b.AddNode("Pakistan", kg::EntityType::kGpe);
    b.AddNode("Taliban", kg::EntityType::kNorp);
    EXPECT_TRUE(b.AddEdge(1, 0, "operates_in").ok());
    graph_ = b.Build();
    index_ = kg::LabelIndex(graph_);
    ner_ = std::make_unique<text::GazetteerNer>(&index_);
    segmenter_ = std::make_unique<text::NewsSegmenter>(ner_.get());
  }

  kg::KnowledgeGraph graph_;
  kg::LabelIndex index_;
  std::unique_ptr<text::GazetteerNer> ner_;
  std::unique_ptr<text::NewsSegmenter> segmenter_;
};

TEST_F(QuerySelectionTest, DensestQueryPicksEntityRichSentence) {
  const text::SegmentedDocument doc = segmenter_->Segment(
      "This opening sentence rambles on with no entities whatsoever in it. "
      "Taliban struck Pakistan. "
      "Another empty closing line follows here.");
  const auto q = DensestQuery(doc, 42);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->doc_index, 42u);
  EXPECT_EQ(q->sentence, "Taliban struck Pakistan.");
  EXPECT_GT(q->entity_density, 0.5);
  EXPECT_EQ(q->mentions_identified, 2u);
  EXPECT_EQ(q->mentions_matched, 2u);
}

TEST_F(QuerySelectionTest, DensestQueryNulloptWithoutEntities) {
  const text::SegmentedDocument doc =
      segmenter_->Segment("nothing here. still nothing there.");
  EXPECT_FALSE(DensestQuery(doc, 0).has_value());
}

TEST_F(QuerySelectionTest, RandomQueryIsDeterministicGivenSeed) {
  const text::SegmentedDocument doc = segmenter_->Segment(
      "Taliban struck Pakistan. More text here. Third sentence follows.");
  Rng r1(5), r2(5);
  const auto a = RandomQuery(doc, 1, &r1);
  const auto b = RandomQuery(doc, 1, &r2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->sentence, b->sentence);
}

TEST_F(QuerySelectionTest, RandomQueryNulloptOnEmptyDoc) {
  const text::SegmentedDocument doc = segmenter_->Segment("");
  Rng rng(1);
  EXPECT_FALSE(RandomQuery(doc, 0, &rng).has_value());
}

TEST_F(QuerySelectionTest, EntityDensityComputation) {
  const text::SegmentedDocument doc =
      segmenter_->Segment("Taliban struck Pakistan today.");
  ASSERT_EQ(doc.segments.size(), 1u);
  // 2 mentions over 4 word tokens.
  EXPECT_DOUBLE_EQ(EntityDensity(doc.segments[0]), 0.5);
}

// ---------------------------------------------------------------------------
// MetricsAccumulator
// ---------------------------------------------------------------------------

TEST(MetricsTest, HitAtKCountsSourceDocument) {
  MetricsAccumulator acc({}, {1, 5});
  std::vector<vec::Vector> judge(10, vec::Vector{1.0f, 0.0f});
  // Query doc 3; results rank it second.
  acc.AddQuery(3, {{7, 0.9}, {3, 0.8}, {1, 0.7}}, judge);
  const MetricScores scores = acc.Finalize();
  EXPECT_DOUBLE_EQ(scores.hit_at.at(1), 0.0);
  EXPECT_DOUBLE_EQ(scores.hit_at.at(5), 1.0);
}

TEST(MetricsTest, SimAtKAveragesCosines) {
  MetricsAccumulator acc({2}, {});
  // Orthogonal vs identical judge vectors.
  std::vector<vec::Vector> judge = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 0.0f}};
  acc.AddQuery(0, {{2, 1.0}, {1, 0.9}}, judge);  // cos=1 and cos=0
  const MetricScores scores = acc.Finalize();
  EXPECT_NEAR(scores.sim_at.at(2), 0.5, 1e-9);
}

TEST(MetricsTest, AveragesOverQueries) {
  MetricsAccumulator acc({}, {1});
  std::vector<vec::Vector> judge(4, vec::Vector{1.0f});
  acc.AddQuery(0, {{0, 1.0}}, judge);  // hit
  acc.AddQuery(1, {{0, 1.0}}, judge);  // miss
  const MetricScores scores = acc.Finalize();
  EXPECT_DOUBLE_EQ(scores.hit_at.at(1), 0.5);
  EXPECT_EQ(acc.num_queries(), 2u);
}

TEST(MetricsTest, ShortResultListsPenalizeSim) {
  // Eq. 4 divides by k, so a single result at k=5 contributes 1/5.
  MetricsAccumulator acc({5}, {});
  std::vector<vec::Vector> judge(2, vec::Vector{1.0f});
  acc.AddQuery(0, {{1, 1.0}}, judge);
  EXPECT_NEAR(acc.Finalize().sim_at.at(5), 0.2, 1e-9);
}

TEST(MetricsTest, EmptyFinalizeIsZero) {
  MetricsAccumulator acc({5}, {1});
  const MetricScores scores = acc.Finalize();
  EXPECT_DOUBLE_EQ(scores.sim_at.at(5), 0.0);
  EXPECT_DOUBLE_EQ(scores.hit_at.at(1), 0.0);
}

// ---------------------------------------------------------------------------
// EvaluationRunner end-to-end (small)
// ---------------------------------------------------------------------------

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() : kg_(MakeKg()), index_(kg_.graph), ner_(&index_) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 30;
    sc_ = corpus::SyntheticNewsGenerator(&kg_, config).Generate();
    Rng rng(9);
    split_ = corpus::SplitCorpus(sc_.corpus.size(), 0.8, 0.1, &rng);

    std::vector<std::vector<std::string>> docs;
    for (const auto& d : sc_.corpus.docs()) {
      docs.push_back(vec::TokenizeForVectors(d.text));
    }
    vec::FastTextConfig ft;
    ft.sgns.dim = 16;
    ft.sgns.epochs = 1;
    ft.buckets = 5000;
    judge_.Train(docs, ft);
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 55;
    config.num_countries = 2;
    config.provinces_per_country = 2;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex index_;
  text::GazetteerNer ner_;
  corpus::SyntheticCorpus sc_;
  corpus::CorpusSplit split_;
  vec::FastTextModel judge_;
};

TEST_F(RunnerTest, PrepareBuildsQueriesAndJudgeVectors) {
  EvaluationRunner runner(&sc_.corpus, &split_, &ner_, &judge_);
  runner.Prepare();
  EXPECT_FALSE(runner.density_queries().empty());
  EXPECT_FALSE(runner.random_queries().empty());
  EXPECT_LE(runner.density_queries().size(), split_.test.size());
  EXPECT_EQ(runner.judge_vectors().size(), sc_.corpus.size());
}

TEST_F(RunnerTest, MaxQueriesCapRespected) {
  EvalConfig config;
  config.max_test_queries = 3;
  EvaluationRunner runner(&sc_.corpus, &split_, &ner_, &judge_, config);
  runner.Prepare();
  EXPECT_LE(runner.density_queries().size(), 3u);
}

TEST_F(RunnerTest, LuceneScoresAreSane) {
  EvaluationRunner runner(&sc_.corpus, &split_, &ner_, &judge_);
  runner.Prepare();
  baselines::LuceneLikeEngine lucene;
  ASSERT_TRUE(lucene.Index(sc_.corpus).ok());
  const EngineScores scores = runner.Evaluate(lucene);
  EXPECT_EQ(scores.engine, "Lucene");
  // Partial-sentence queries over this corpus must mostly recover Q.
  EXPECT_GT(scores.density.hit_at.at(5), 0.5);
  for (const auto& [k, v] : scores.density.sim_at) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(RunnerTest, EntityMatchingRatioNearPaperRange) {
  EvaluationRunner runner(&sc_.corpus, &split_, &ner_, &judge_);
  runner.Prepare();
  const double ratio = runner.AverageEntityMatchingRatio();
  EXPECT_GT(ratio, 0.85);
  EXPECT_LE(ratio, 1.0);
}

// ---------------------------------------------------------------------------
// Simulated user study
// ---------------------------------------------------------------------------

class UserStudyTest : public RunnerTest {};

TEST_F(UserStudyTest, FeaturesAndOutcomeAreConsistent) {
  NewsLinkConfig config;
  config.beta = 1.0;  // the paper's study uses embeddings only
  NewsLinkEngine engine(&kg_.graph, &index_, config);
  ASSERT_TRUE(engine.Index(sc_.corpus).ok());

  // The paper presented ten *curated* pairs; mirror that by keeping only
  // pairs whose embeddings contribute substantive induced context.
  SimulatedUserStudy curator(&kg_.graph, 20, 5);
  std::vector<StudyCase> cases;
  std::vector<embed::DocumentEmbedding> query_embeddings;
  query_embeddings.reserve(40);
  for (size_t d = 0; d < 40 && cases.size() < 10; ++d) {
    const std::string& text = sc_.corpus.doc(d).text;
    const std::string query = text.substr(0, text.find('.') + 1);
    const auto results = engine.Search({query, 2}).hits;
    if (results.empty()) continue;
    size_t r = results[0].doc_index;
    if (r == d && results.size() > 1) r = results[1].doc_index;
    query_embeddings.push_back(engine.doc_embedding(d));
    StudyCase candidate{text, sc_.corpus.doc(r).text,
                        &query_embeddings.back(), &engine.doc_embedding(r)};
    if (curator.Features(candidate).novel_nodes >= 3) {
      cases.push_back(std::move(candidate));
    }
  }
  ASSERT_FALSE(cases.empty());

  SimulatedUserStudy study(&kg_.graph, 20, 5);
  for (const StudyCase& c : cases) {
    const CaseFeatures f = study.Features(c);
    EXPECT_GE(f.total_nodes, 0);
    EXPECT_GE(f.novel_nodes, 0);
    EXPECT_LE(f.novel_nodes, f.total_nodes);
    EXPECT_GE(f.redundancy, 0.0);
    EXPECT_LE(f.redundancy, 1.0);
  }

  const StudyOutcome outcome = study.Run(cases);
  EXPECT_EQ(outcome.total(), 20 * static_cast<int>(cases.size()));
  // Paper Fig. 5: "helpful" dominates ("more than half participants think
  // that the subgraph embeddings are helpful").
  EXPECT_GT(outcome.helpful, outcome.neutral);
  EXPECT_GT(outcome.helpful, outcome.not_helpful);
  EXPECT_GE(outcome.helpful, outcome.total() * 45 / 100);
}

TEST_F(UserStudyTest, DeterministicOutcome) {
  NewsLinkConfig config;
  config.beta = 1.0;
  NewsLinkEngine engine(&kg_.graph, &index_, config);
  ASSERT_TRUE(engine.Index(sc_.corpus).ok());
  const embed::DocumentEmbedding& e0 = engine.doc_embedding(0);
  const embed::DocumentEmbedding& e1 = engine.doc_embedding(1);
  StudyCase c{sc_.corpus.doc(0).text, sc_.corpus.doc(1).text, &e0, &e1};
  SimulatedUserStudy study(&kg_.graph, 20, 5);
  const StudyOutcome a = study.Run({c});
  const StudyOutcome b = study.Run({c});
  EXPECT_EQ(a.helpful, b.helpful);
  EXPECT_EQ(a.neutral, b.neutral);
  EXPECT_EQ(a.not_helpful, b.not_helpful);
}

}  // namespace
}  // namespace eval
}  // namespace newslink
