// Tests for src/baselines: the Lucene-like BM25 engine, QEPRF expansion,
// and the dense-vector engines.

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/lucene_like_engine.h"
#include "baselines/qeprf_engine.h"
#include "baselines/vector_engines.h"
#include "corpus/synthetic_news.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "text/gazetteer_ner.h"

namespace newslink {
namespace baselines {
namespace {

corpus::Corpus TinyCorpus() {
  corpus::Corpus c;
  c.Add({"d0", "", "The taliban bombing struck lahore markets today.", 0});
  c.Add({"d1", "", "Election results were announced by the commission.", 1});
  c.Add({"d2", "", "The striker scored in the league match.", 2});
  c.Add({"d3", "", "Bombing attacks continued near the border region.", 0});
  return c;
}

// ---------------------------------------------------------------------------
// LuceneLikeEngine
// ---------------------------------------------------------------------------

TEST(LuceneLikeEngineTest, FindsKeywordMatches) {
  LuceneLikeEngine engine;
  ASSERT_TRUE(engine.Index(TinyCorpus()).ok());
  const auto results = engine.Search({"taliban bombing", 2}).hits;
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc_index, 0u);
}

TEST(LuceneLikeEngineTest, RanksMoreMatchesHigher) {
  LuceneLikeEngine engine;
  ASSERT_TRUE(engine.Index(TinyCorpus()).ok());
  const auto results = engine.Search({"bombing", 4}).hits;
  ASSERT_EQ(results.size(), 2u);  // only two docs mention bombing
  for (const auto& r : results) {
    EXPECT_TRUE(r.doc_index == 0 || r.doc_index == 3);
  }
}

TEST(LuceneLikeEngineTest, NoMatchesYieldsEmpty) {
  LuceneLikeEngine engine;
  ASSERT_TRUE(engine.Index(TinyCorpus()).ok());
  EXPECT_TRUE(engine.Search({"zzzunknownzzz", 5}).hits.empty());
}

TEST(LuceneLikeEngineTest, StemmingBridgesInflections) {
  LuceneLikeEngine engine;
  ASSERT_TRUE(engine.Index(TinyCorpus()).ok());
  // "elections" stems to the same term as "election".
  const auto results = engine.Search({"elections", 2}).hits;
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc_index, 1u);
}

TEST(LuceneLikeEngineTest, NameIsLucene) {
  EXPECT_EQ(LuceneLikeEngine().name(), "Lucene");
}

// ---------------------------------------------------------------------------
// QeprfEngine
// ---------------------------------------------------------------------------

class QeprfTest : public ::testing::Test {
 protected:
  QeprfTest() : kg_(MakeKg()), index_(kg_.graph), ner_(&index_) {}

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 21;
    config.num_countries = 2;
    config.provinces_per_country = 2;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  corpus::Corpus CorpusWithKgEntities() {
    // Build a corpus mentioning real KG entities so descriptions matter.
    const std::string country = kg_.graph.label(kg_.Category("country")[0]);
    const std::string province = kg_.graph.label(kg_.Category("province")[0]);
    const std::string district = kg_.graph.label(kg_.Category("district")[0]);
    corpus::Corpus c;
    c.Add({"d0", "", "Fighting erupted in " + district + " yesterday.", 0});
    c.Add({"d1", "", "Officials of " + province + " spoke after clashes.", 0});
    c.Add({"d2", "", "The " + country + " government issued a statement.", 0});
    c.Add({"d3", "", "Sports league results were published.", 1});
    return c;
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex index_;
  text::GazetteerNer ner_;
};

TEST_F(QeprfTest, ExpansionTermsComeFromDescriptions) {
  QeprfEngine engine(&kg_.graph, &index_, &ner_);
  ASSERT_TRUE(engine.Index(CorpusWithKgEntities()).ok());
  const std::string district = kg_.graph.label(kg_.Category("district")[0]);
  const auto expansions =
      engine.ExpansionTerms("Fighting in " + district + " continues");
  // The district's description mentions its province -> expansion should
  // contain at least one term that is not in the original query.
  EXPECT_FALSE(expansions.empty());
}

TEST_F(QeprfTest, ExpandedQueryStillRanksDirectMatchFirst) {
  QeprfEngine engine(&kg_.graph, &index_, &ner_);
  ASSERT_TRUE(engine.Index(CorpusWithKgEntities()).ok());
  const std::string district = kg_.graph.label(kg_.Category("district")[0]);
  const auto results = engine.Search({"Fighting in " + district, 3}).hits;
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc_index, 0u);
}

TEST_F(QeprfTest, ExpansionCanRecallRelatedDocs) {
  QeprfEngine engine(&kg_.graph, &index_, &ner_);
  ASSERT_TRUE(engine.Index(CorpusWithKgEntities()).ok());
  const std::string district = kg_.graph.label(kg_.Category("district")[0]);
  // The query only names the district, but the province doc shares the
  // expansion terms from the district's KG description.
  const auto results = engine.Search({district + " clashes", 4}).hits;
  std::vector<size_t> docs;
  for (const auto& r : results) docs.push_back(r.doc_index);
  EXPECT_NE(std::find(docs.begin(), docs.end(), 1u), docs.end())
      << "expansion should surface the province document";
}

TEST_F(QeprfTest, QueriesWithoutEntitiesStillWork) {
  QeprfEngine engine(&kg_.graph, &index_, &ner_);
  ASSERT_TRUE(engine.Index(CorpusWithKgEntities()).ok());
  const auto results = engine.Search({"sports league results", 2}).hits;
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc_index, 3u);
}

// ---------------------------------------------------------------------------
// Dense vector engines
// ---------------------------------------------------------------------------

corpus::Corpus TopicCorpus() {
  corpus::Corpus c;
  for (int i = 0; i < 12; ++i) {
    c.Add({"s" + std::to_string(i), "",
           "goal match league striker coach stadium goal match striker "
           "league coach stadium goal striker.",
           0});
    c.Add({"p" + std::to_string(i), "",
           "vote ballot senate motion caucus minister vote ballot motion "
           "senate caucus minister vote senate.",
           1});
  }
  return c;
}

template <typename Engine>
void ExpectTopicRetrieval(Engine&& engine) {
  ASSERT_TRUE(engine.Index(TopicCorpus()).ok());
  const auto results = engine.Search({"goal striker league match", 5}).hits;
  ASSERT_EQ(results.size(), 5u);
  // Majority of the top-5 must be sports docs (story 0 = even indices).
  int sports = 0;
  for (const auto& r : results) {
    if (r.doc_index % 2 == 0) ++sports;
  }
  EXPECT_GE(sports, 4);
}

TEST(VectorEnginesTest, Doc2VecRetrievesTopic) {
  vec::Doc2VecConfig config;
  config.sgns.dim = 16;
  config.sgns.epochs = 6;
  config.sgns.min_count = 1;
  ExpectTopicRetrieval(Doc2VecEngine(config));
}

TEST(VectorEnginesTest, SbertRetrievesTopic) {
  vec::SgnsConfig config;
  config.dim = 16;
  config.epochs = 6;
  config.min_count = 1;
  ExpectTopicRetrieval(SbertLikeEngine(config));
}

TEST(VectorEnginesTest, LdaRetrievesTopic) {
  vec::LdaConfig config;
  config.num_topics = 2;
  config.alpha = 0.1;
  config.iterations = 40;
  config.min_count = 1;
  ExpectTopicRetrieval(LdaEngine(config));
}

TEST(VectorEnginesTest, TrainingIndicesRestrictFitting) {
  vec::SgnsConfig config;
  config.dim = 8;
  config.epochs = 2;
  config.min_count = 1;
  SbertLikeEngine engine(config);
  engine.set_training_indices({0, 1, 2, 3});
  ASSERT_TRUE(engine.Index(TopicCorpus()).ok());
  // Must still answer queries over the full corpus.
  EXPECT_EQ(engine.Search({"goal match", 3}).hits.size(), 3u);
}

TEST(VectorEnginesTest, EngineNames) {
  EXPECT_EQ(Doc2VecEngine().name(), "DOC2VEC");
  EXPECT_EQ(SbertLikeEngine().name(), "SBERT");
  EXPECT_EQ(LdaEngine().name(), "LDA");
}

}  // namespace
}  // namespace baselines
}  // namespace newslink
