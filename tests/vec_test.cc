// Tests for src/vec: dense vector ops, vocabulary / negative sampling,
// skip-gram training, FastText subwords, Doc2Vec inference, the SBERT
// stand-in and Gibbs LDA.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/dense_vector.h"
#include "vec/doc2vec_model.h"
#include "vec/fasttext_model.h"
#include "vec/lda_model.h"
#include "vec/sbert_like_model.h"
#include "vec/sgns_trainer.h"

namespace newslink {
namespace vec {
namespace {

// A tiny two-topic corpus: "sports" docs and "politics" docs. Words within
// a topic co-occur constantly, across topics never — the separation every
// embedding model must learn.
std::vector<std::vector<std::string>> TwoTopicCorpus(int docs_per_topic) {
  std::vector<std::vector<std::string>> docs;
  const std::vector<std::string> sports = {"goal",  "match", "league",
                                           "striker", "coach", "stadium"};
  const std::vector<std::string> politics = {"vote",   "ballot", "senate",
                                             "motion", "caucus", "minister"};
  Rng rng(7);
  for (int d = 0; d < docs_per_topic; ++d) {
    std::vector<std::string> a, b;
    for (int i = 0; i < 30; ++i) {
      a.push_back(sports[rng.Uniform(sports.size())]);
      b.push_back(politics[rng.Uniform(politics.size())]);
    }
    docs.push_back(a);
    docs.push_back(b);
  }
  return docs;
}

// ---------------------------------------------------------------------------
// Dense vector ops
// ---------------------------------------------------------------------------

TEST(DenseVectorTest, DotAndNorm) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 32.0f);
  EXPECT_FLOAT_EQ(Norm(a), std::sqrt(14.0f));
}

TEST(DenseVectorTest, CosineSimilarityProperties) {
  const Vector a = {1, 0};
  const Vector b = {0, 1};
  const Vector c = {2, 0};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0f, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0f, 1e-6);
  const Vector zero = {0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, zero), 0.0f);
}

TEST(DenseVectorTest, AddScaledAndScale) {
  Vector a = {1, 1};
  const Vector b = {2, 4};
  AddScaled(a, b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
  Scale(a, 2.0f);
  EXPECT_FLOAT_EQ(a[0], 4.0f);
}

TEST(DenseVectorTest, NormalizeInPlace) {
  Vector a = {3, 4};
  NormalizeInPlace(a);
  EXPECT_NEAR(Norm(a), 1.0f, 1e-6);
  Vector zero = {0, 0};
  NormalizeInPlace(zero);  // must not divide by zero
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

// ---------------------------------------------------------------------------
// TokenizeForVectors
// ---------------------------------------------------------------------------

TEST(TokenizeForVectorsTest, DropsStopwordsAndShortWords) {
  const auto tokens = TokenizeForVectors("The striker scored a goal!");
  EXPECT_EQ(tokens, (std::vector<std::string>{"striker", "scored", "goal"}));
}

// ---------------------------------------------------------------------------
// WordVocab
// ---------------------------------------------------------------------------

TEST(WordVocabTest, MinCountPrunes) {
  WordVocab vocab;
  vocab.Build({{"rare", "common", "common"}, {"common"}}, 2);
  EXPECT_EQ(vocab.size(), 1u);
  EXPECT_GE(vocab.Find("common"), 0);
  EXPECT_EQ(vocab.Find("rare"), -1);
}

TEST(WordVocabTest, IdsOrderedByFrequency) {
  WordVocab vocab;
  vocab.Build({{"b", "b", "b", "a", "a", "c"}}, 1);
  EXPECT_EQ(vocab.Find("b"), 0);  // most frequent first
  EXPECT_EQ(vocab.word(0), "b");
  EXPECT_EQ(vocab.count(0), 3u);
  EXPECT_EQ(vocab.total_count(), 6u);
}

TEST(WordVocabTest, NegativeSamplingFavoursFrequent) {
  WordVocab vocab;
  std::vector<std::string> doc;
  for (int i = 0; i < 90; ++i) doc.push_back("big");
  for (int i = 0; i < 10; ++i) doc.push_back("small");
  vocab.Build({doc}, 1);
  Rng rng(3);
  int big = 0;
  for (int i = 0; i < 2000; ++i) {
    if (vocab.Find("big") == vocab.SampleNegative(&rng)) ++big;
  }
  EXPECT_GT(big, 1000);
}

TEST(WordVocabTest, KeepProbabilityLowerForFrequentWords) {
  WordVocab vocab;
  std::vector<std::string> doc;
  for (int i = 0; i < 900; ++i) doc.push_back("frequent");
  for (int i = 0; i < 5; ++i) doc.push_back("scarce");
  vocab.Build({doc}, 1);
  const double pf = vocab.KeepProbability(vocab.Find("frequent"), 1e-3);
  const double ps = vocab.KeepProbability(vocab.Find("scarce"), 1e-3);
  EXPECT_LT(pf, ps);
  EXPECT_DOUBLE_EQ(vocab.KeepProbability(0, 0.0), 1.0);  // disabled
}

// ---------------------------------------------------------------------------
// Word2Vec (SGNS)
// ---------------------------------------------------------------------------

TEST(Word2VecTest, LearnsTopicSeparation) {
  Word2VecModel model;
  SgnsConfig config;
  config.dim = 16;
  config.epochs = 6;
  config.min_count = 1;
  model.Train(TwoTopicCorpus(40), config);

  const float* goal = model.WordVector("goal");
  const float* match = model.WordVector("match");
  const float* vote = model.WordVector("vote");
  ASSERT_NE(goal, nullptr);
  ASSERT_NE(match, nullptr);
  ASSERT_NE(vote, nullptr);
  const size_t dim = 16;
  const float same_topic = CosineSimilarity({goal, dim}, {match, dim});
  const float cross_topic = CosineSimilarity({goal, dim}, {vote, dim});
  EXPECT_GT(same_topic, cross_topic + 0.2f);
}

TEST(Word2VecTest, DeterministicTraining) {
  Word2VecModel a, b;
  SgnsConfig config;
  config.dim = 8;
  config.epochs = 2;
  config.min_count = 1;
  const auto corpus = TwoTopicCorpus(10);
  a.Train(corpus, config);
  b.Train(corpus, config);
  const float* va = a.WordVector("goal");
  const float* vb = b.WordVector("goal");
  ASSERT_NE(va, nullptr);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(va[i], vb[i]);
}

TEST(Word2VecTest, OovWordHasNoVector) {
  Word2VecModel model;
  SgnsConfig config;
  config.min_count = 1;
  model.Train({{"alpha", "beta"}}, config);
  EXPECT_EQ(model.WordVector("gamma"), nullptr);
}

TEST(Word2VecTest, AverageVectorOfEmptyTokensIsZero) {
  Word2VecModel model;
  SgnsConfig config;
  config.min_count = 1;
  model.Train({{"alpha", "beta"}}, config);
  const Vector v = model.AverageVector({});
  EXPECT_FLOAT_EQ(Norm(v), 0.0f);
}

TEST(Word2VecTest, SifDownweightsFrequentWords) {
  Word2VecModel model;
  SgnsConfig config;
  config.dim = 8;
  config.min_count = 1;
  config.subsample = 0;
  std::vector<std::vector<std::string>> corpus = TwoTopicCorpus(5);
  model.Train(corpus, config);
  // SIF vector differs from plain average when frequencies are skewed.
  const Vector avg = model.AverageVector({"goal", "vote"});
  const Vector sif = model.SifVector({"goal", "vote"});
  EXPECT_EQ(avg.size(), sif.size());
}

TEST(SigmoidTest, SaturatesAndCenters) {
  EXPECT_FLOAT_EQ(Sigmoid(0.0f), 0.5f);
  EXPECT_FLOAT_EQ(Sigmoid(100.0f), 1.0f);
  EXPECT_FLOAT_EQ(Sigmoid(-100.0f), 0.0f);
  EXPECT_GT(Sigmoid(1.0f), 0.5f);
}

// ---------------------------------------------------------------------------
// FastText
// ---------------------------------------------------------------------------

TEST(FastTextTest, OovWordStillGetsVector) {
  FastTextModel model;
  FastTextConfig config;
  config.sgns.dim = 12;
  config.sgns.min_count = 1;
  config.sgns.epochs = 3;
  config.buckets = 1000;
  model.Train(TwoTopicCorpus(20), config);
  // "goals" is OOV but shares subwords with "goal".
  const Vector oov = model.WordVector("goals");
  EXPECT_GT(Norm(oov), 0.0f);
  const Vector known = model.WordVector("goal");
  EXPECT_GT(CosineSimilarity(oov, known), 0.5f);
}

TEST(FastTextTest, DocumentVectorIsUnitNorm) {
  FastTextModel model;
  FastTextConfig config;
  config.sgns.dim = 12;
  config.sgns.min_count = 1;
  config.buckets = 500;
  model.Train(TwoTopicCorpus(10), config);
  const Vector v = model.EncodeText("the striker scored a goal");
  EXPECT_NEAR(Norm(v), 1.0f, 1e-5);
  const Vector empty = model.DocumentVector({});
  EXPECT_FLOAT_EQ(Norm(empty), 0.0f);
}

TEST(FastTextTest, SimilarTextsCloserThanDissimilar) {
  FastTextModel model;
  FastTextConfig config;
  config.sgns.dim = 16;
  config.sgns.min_count = 1;
  config.sgns.epochs = 6;
  config.buckets = 2000;
  model.Train(TwoTopicCorpus(40), config);
  const Vector a = model.EncodeText("goal match league striker");
  const Vector b = model.EncodeText("coach stadium match goal");
  const Vector c = model.EncodeText("vote ballot senate minister");
  EXPECT_GT(Dot(a, b), Dot(a, c));
}

// ---------------------------------------------------------------------------
// Doc2Vec
// ---------------------------------------------------------------------------

TEST(Doc2VecTest, TrainsAndInfersDeterministically) {
  Doc2VecModel model;
  Doc2VecConfig config;
  config.sgns.dim = 12;
  config.sgns.min_count = 1;
  config.sgns.epochs = 4;
  model.Train(TwoTopicCorpus(20), config);
  EXPECT_EQ(model.num_docs(), 40u);
  EXPECT_EQ(model.DocVector(0).size(), 12u);

  const Vector a = model.Infer({"goal", "match", "striker"});
  const Vector b = model.Infer({"goal", "match", "striker"});
  EXPECT_EQ(a, b);
}

TEST(Doc2VecTest, InferredVectorMatchesTopic) {
  Doc2VecModel model;
  Doc2VecConfig config;
  config.sgns.dim = 16;
  config.sgns.min_count = 1;
  config.sgns.epochs = 8;
  model.Train(TwoTopicCorpus(40), config);
  Vector sports = model.Infer({"goal", "match", "league", "striker"});
  Vector politics = model.Infer({"vote", "ballot", "senate", "caucus"});
  NormalizeInPlace(sports);
  NormalizeInPlace(politics);
  // Doc 0 is a sports doc, doc 1 politics (alternating).
  Vector d0(model.DocVector(0).begin(), model.DocVector(0).end());
  NormalizeInPlace(d0);
  EXPECT_GT(Dot(sports, d0), Dot(politics, d0));
}

TEST(Doc2VecTest, InferWithAllOovTokens) {
  Doc2VecModel model;
  Doc2VecConfig config;
  config.sgns.dim = 8;
  config.sgns.min_count = 1;
  model.Train({{"alpha", "beta", "alpha"}}, config);
  const Vector v = model.Infer({"zzz", "yyy"});
  EXPECT_EQ(v.size(), 8u);  // falls back to the random init, no crash
}

// ---------------------------------------------------------------------------
// SBERT stand-in
// ---------------------------------------------------------------------------

TEST(SbertLikeTest, EncodesToUnitVectors) {
  SbertLikeModel model;
  SgnsConfig config;
  config.dim = 12;
  config.min_count = 1;
  config.epochs = 4;
  model.Pretrain(TwoTopicCorpus(20), config);
  const Vector v = model.Encode("the striker scored a goal in the match");
  EXPECT_NEAR(Norm(v), 1.0f, 1e-5);
}

TEST(SbertLikeTest, TopicSimilarityOrdering) {
  SbertLikeModel model;
  SgnsConfig config;
  config.dim = 16;
  config.min_count = 1;
  config.epochs = 6;
  model.Pretrain(TwoTopicCorpus(40), config);
  const Vector a = model.Encode("goal match league");
  const Vector b = model.Encode("striker coach stadium");
  const Vector c = model.Encode("vote ballot senate");
  EXPECT_GT(Dot(a, b), Dot(a, c));
}

// ---------------------------------------------------------------------------
// LDA
// ---------------------------------------------------------------------------

TEST(LdaTest, ThetaIsADistribution) {
  LdaModel model;
  LdaConfig config;
  config.num_topics = 4;
  config.iterations = 10;
  config.min_count = 1;
  model.Train(TwoTopicCorpus(10), config);
  for (size_t d = 0; d < model.num_docs(); ++d) {
    const Vector theta = model.DocTopics(d);
    float sum = 0;
    for (float p : theta) {
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4);
  }
}

TEST(LdaTest, SeparatesTwoTopics) {
  LdaModel model;
  LdaConfig config;
  config.num_topics = 2;
  config.alpha = 0.1;
  config.iterations = 40;
  config.min_count = 1;
  config.seed = 3;
  model.Train(TwoTopicCorpus(30), config);
  // Same-topic training docs should have more similar mixtures than
  // cross-topic ones (docs alternate sports/politics).
  Vector d0 = model.DocTopics(0);
  Vector d2 = model.DocTopics(2);
  Vector d1 = model.DocTopics(1);
  EXPECT_GT(CosineSimilarity(d0, d2), CosineSimilarity(d0, d1));
}

TEST(LdaTest, InferenceIsDeterministicAndNormalized) {
  LdaModel model;
  LdaConfig config;
  config.num_topics = 3;
  config.iterations = 10;
  config.min_count = 1;
  model.Train(TwoTopicCorpus(10), config);
  const Vector a = model.Infer({"goal", "match"});
  const Vector b = model.Infer({"goal", "match"});
  EXPECT_EQ(a, b);
  float sum = 0;
  for (float p : a) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-4);
}

TEST(LdaTest, InferAllOovStillValid) {
  LdaModel model;
  LdaConfig config;
  config.num_topics = 3;
  config.iterations = 5;
  config.min_count = 1;
  model.Train({{"alpha", "beta", "alpha", "beta"}}, config);
  const Vector theta = model.InferText("zzz qqq");
  float sum = 0;
  for (float p : theta) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-4);
}

}  // namespace
}  // namespace vec
}  // namespace newslink
