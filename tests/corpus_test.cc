// Tests for src/corpus: containers, splitting, and the synthetic news
// generator (determinism, story structure, controlled vocabulary mismatch).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "corpus/synthetic_news.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "text/gazetteer_ner.h"
#include "text/news_segmenter.h"
#include "text/sentence_splitter.h"

namespace newslink {
namespace corpus {
namespace {

kg::SyntheticKg SmallKg() {
  kg::SyntheticKgConfig config;
  config.seed = 11;
  config.num_countries = 2;
  config.provinces_per_country = 3;
  config.districts_per_province = 2;
  config.cities_per_district = 2;
  return kg::SyntheticKgGenerator(config).Generate();
}

SyntheticNewsConfig SmallNewsConfig() {
  SyntheticNewsConfig config = CnnLikeConfig();
  config.num_stories = 20;
  return config;
}

// ---------------------------------------------------------------------------
// Corpus / splits
// ---------------------------------------------------------------------------

TEST(CorpusTest, AddAndAccess) {
  Corpus c;
  EXPECT_TRUE(c.empty());
  const size_t i = c.Add(Document{"d0", "title", "text", 3});
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.doc(0).id, "d0");
  EXPECT_EQ(c.doc(0).story_id, 3u);
}

TEST(SplitCorpusTest, FractionsRespected) {
  Rng rng(1);
  const CorpusSplit split = SplitCorpus(100, 0.8, 0.1, &rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.validation.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
}

TEST(SplitCorpusTest, PartitionIsCompleteAndDisjoint) {
  Rng rng(2);
  const CorpusSplit split = SplitCorpus(57, 0.7, 0.15, &rng);
  std::set<size_t> all;
  for (size_t i : split.train) all.insert(i);
  for (size_t i : split.validation) all.insert(i);
  for (size_t i : split.test) all.insert(i);
  EXPECT_EQ(all.size(), 57u);  // disjoint union covers everything
  EXPECT_EQ(*all.rbegin(), 56u);
}

TEST(SplitCorpusTest, DeterministicGivenRngSeed) {
  Rng a(3), b(3);
  const CorpusSplit s1 = SplitCorpus(30, 0.5, 0.2, &a);
  const CorpusSplit s2 = SplitCorpus(30, 0.5, 0.2, &b);
  EXPECT_EQ(s1.train, s2.train);
  EXPECT_EQ(s1.test, s2.test);
}

TEST(SplitCorpusTest, EmptyCorpus) {
  Rng rng(4);
  const CorpusSplit split = SplitCorpus(0, 0.8, 0.1, &rng);
  EXPECT_TRUE(split.train.empty());
  EXPECT_TRUE(split.test.empty());
}

// ---------------------------------------------------------------------------
// SyntheticNewsGenerator
// ---------------------------------------------------------------------------

TEST(SyntheticNewsTest, DeterministicForSameSeed) {
  const kg::SyntheticKg kg = SmallKg();
  SyntheticNewsGenerator g1(&kg, SmallNewsConfig());
  SyntheticNewsGenerator g2(&kg, SmallNewsConfig());
  const SyntheticCorpus a = g1.Generate();
  const SyntheticCorpus b = g2.Generate();
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus.doc(i).text, b.corpus.doc(i).text);
  }
}

TEST(SyntheticNewsTest, StoryCountAndDocBounds) {
  const kg::SyntheticKg kg = SmallKg();
  const SyntheticNewsConfig config = SmallNewsConfig();
  const SyntheticCorpus sc = SyntheticNewsGenerator(&kg, config).Generate();
  EXPECT_EQ(sc.stories.size(), static_cast<size_t>(config.num_stories));
  EXPECT_GE(sc.corpus.size(),
            static_cast<size_t>(config.num_stories *
                                config.docs_per_story_min));
  EXPECT_LE(sc.corpus.size(),
            static_cast<size_t>(config.num_stories *
                                config.docs_per_story_max));
}

TEST(SyntheticNewsTest, StoryIdsAreValidAndGrouped) {
  const kg::SyntheticKg kg = SmallKg();
  const SyntheticCorpus sc =
      SyntheticNewsGenerator(&kg, SmallNewsConfig()).Generate();
  for (const Document& d : sc.corpus.docs()) {
    EXPECT_LT(d.story_id, sc.stories.size());
  }
}

TEST(SyntheticNewsTest, DocumentsHaveSentences) {
  const kg::SyntheticKg kg = SmallKg();
  const SyntheticNewsConfig config = SmallNewsConfig();
  const SyntheticCorpus sc = SyntheticNewsGenerator(&kg, config).Generate();
  for (const Document& d : sc.corpus.docs()) {
    const auto sentences = text::SentenceStrings(d.text);
    EXPECT_GE(sentences.size(),
              static_cast<size_t>(config.sentences_per_doc_min));
    EXPECT_LE(sentences.size(),
              static_cast<size_t>(config.sentences_per_doc_max));
  }
}

TEST(SyntheticNewsTest, ClusterEntitiesComeFromAnchorNeighbourhood) {
  const kg::SyntheticKg kg = SmallKg();
  const SyntheticCorpus sc =
      SyntheticNewsGenerator(&kg, SmallNewsConfig()).Generate();
  for (const StoryInfo& story : sc.stories) {
    ASSERT_FALSE(story.cluster_entities.empty());
    EXPECT_EQ(story.cluster_entities[0], story.anchor);
    for (kg::NodeId v : story.cluster_entities) {
      EXPECT_LT(v, kg.graph.num_nodes());
    }
  }
}

TEST(SyntheticNewsTest, DocumentsMentionKgEntities) {
  const kg::SyntheticKg kg = SmallKg();
  const SyntheticCorpus sc =
      SyntheticNewsGenerator(&kg, SmallNewsConfig()).Generate();
  kg::LabelIndex index(kg.graph);
  text::GazetteerNer ner(&index);
  text::NewsSegmenter segmenter(&ner);

  size_t docs_with_entities = 0;
  for (size_t i = 0; i < std::min<size_t>(sc.corpus.size(), 30); ++i) {
    const text::SegmentedDocument segmented =
        segmenter.Segment(sc.corpus.doc(i).text);
    if (segmented.MatchedMentions() > 0) ++docs_with_entities;
  }
  EXPECT_GE(docs_with_entities, 28u);  // essentially all
}

TEST(SyntheticNewsTest, MatchingRatioBelowOneButHigh) {
  // The unknown_entity_prob knob produces Table V's ~96-97% ratio.
  const kg::SyntheticKg kg = SmallKg();
  SyntheticNewsConfig config = SmallNewsConfig();
  config.num_stories = 40;
  const SyntheticCorpus sc = SyntheticNewsGenerator(&kg, config).Generate();
  kg::LabelIndex index(kg.graph);
  text::GazetteerNer ner(&index);
  text::NewsSegmenter segmenter(&ner);

  size_t total = 0, matched = 0;
  for (const Document& d : sc.corpus.docs()) {
    const text::SegmentedDocument segmented = segmenter.Segment(d.text);
    total += segmented.TotalMentions();
    matched += segmented.MatchedMentions();
  }
  ASSERT_GT(total, 0u);
  const double ratio = static_cast<double>(matched) / total;
  EXPECT_GT(ratio, 0.90);
  EXPECT_LT(ratio, 1.0);
}

TEST(SyntheticNewsTest, SameStoryDocsShareEntities) {
  const kg::SyntheticKg kg = SmallKg();
  const SyntheticCorpus sc =
      SyntheticNewsGenerator(&kg, SmallNewsConfig()).Generate();
  kg::LabelIndex index(kg.graph);
  text::GazetteerNer ner(&index);
  text::NewsSegmenter segmenter(&ner);

  // Find two docs of the same story and compare entity overlap with a doc
  // from a different story.
  auto entities_of = [&](const Document& d) {
    std::set<std::string> out;
    for (const auto& seg : segmenter.Segment(d.text).segments) {
      out.insert(seg.entities.begin(), seg.entities.end());
    }
    return out;
  };
  size_t same_overlap_total = 0, cases = 0;
  for (size_t i = 0; i + 1 < sc.corpus.size() && cases < 10; ++i) {
    if (sc.corpus.doc(i).story_id == sc.corpus.doc(i + 1).story_id) {
      const auto a = entities_of(sc.corpus.doc(i));
      const auto b = entities_of(sc.corpus.doc(i + 1));
      std::vector<std::string> overlap;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(overlap));
      same_overlap_total += overlap.size();
      ++cases;
    }
  }
  ASSERT_GT(cases, 0u);
  EXPECT_GT(same_overlap_total, cases);  // > 1 shared entity on average
}

TEST(SyntheticNewsTest, PresetsDiffer) {
  const SyntheticNewsConfig cnn = CnnLikeConfig();
  const SyntheticNewsConfig kaggle = KaggleLikeConfig();
  EXPECT_LT(cnn.synonym_registers, kaggle.synonym_registers);
  EXPECT_LT(cnn.unknown_entity_prob, kaggle.unknown_entity_prob);
}

TEST(SyntheticNewsTest, IdPrefixUsed) {
  const kg::SyntheticKg kg = SmallKg();
  SyntheticNewsConfig config = SmallNewsConfig();
  config.num_stories = 2;
  const SyntheticCorpus sc =
      SyntheticNewsGenerator(&kg, config).Generate("cnnx");
  for (const Document& d : sc.corpus.docs()) {
    EXPECT_EQ(d.id.rfind("cnnx-", 0), 0u) << d.id;
  }
}

}  // namespace
}  // namespace corpus
}  // namespace newslink
