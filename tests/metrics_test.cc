// Tests for the observability layer (DESIGN.md Sec. 8): counter/gauge/
// histogram semantics (bucket placement, interpolated percentiles, the
// growth-bounded relative error), registry registration and exposition
// (Prometheus text + JSON), trace span-tree nesting, and the slow-query
// log. The Concurrent* tests run under -fsanitize=thread in CI alongside
// the engine concurrency suite.

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/slow_query_log.h"
#include "common/trace.h"

namespace newslink {
namespace metrics {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
}

TEST(HistogramTest, BucketPlacementFollowsGeometricLayout) {
  HistogramOptions options;
  options.min = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;  // bounds 1, 2, 4, 8; overflow above 8
  Histogram h(options);

  // Finite bucket i covers (min * growth^(i-1), min * growth^i]; values at
  // or below min land in bucket 0.
  h.Observe(0.5);   // bucket 0 (underflow clamps to the first bucket)
  h.Observe(1.0);   // bucket 0 (inclusive upper bound)
  h.Observe(1.5);   // bucket 1
  h.Observe(2.0);   // bucket 1 (inclusive upper bound)
  h.Observe(5.0);   // bucket 3
  h.Observe(100.0); // overflow

  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 1u);

  EXPECT_DOUBLE_EQ(h.BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(3), 8.0);

  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 100.0);
}

TEST(HistogramTest, PercentileRelativeErrorBoundedByGrowth) {
  // 1000 uniform samples in [1ms, 1s): every interpolated quantile must be
  // within a bucket width (relative error <= growth - 1) of the truth.
  HistogramOptions options;
  options.min = 1e-6;
  options.growth = 1.08;
  options.num_buckets = 240;
  Histogram h(options);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(1e-3 + i * (1.0 - 1e-3) / 1000.0);
  }
  for (double v : values) h.Observe(v);

  for (double p : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = values[static_cast<size_t>(p * (values.size() - 1))];
    const double estimated = h.Percentile(p);
    EXPECT_NEAR(estimated / exact, 1.0, options.growth - 1.0)
        << "p=" << p << " exact=" << exact << " estimated=" << estimated;
  }
}

TEST(HistogramTest, EmptyAndOverflowPercentiles) {
  HistogramOptions options;
  options.min = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;  // finite upper bounds 1, 2, 4
  Histogram h(options);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);

  h.Observe(1000.0);  // overflow-only population
  // The overflow bucket has no upper bound: report its lower bound (the
  // last finite bucket's upper bound).
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 4.0);
}

TEST(RegistryTest, GetReturnsStableInstrumentPerName) {
  Registry registry;
  Counter* a = registry.GetCounter("requests_total");
  Counter* b = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(registry.CounterValue("requests_total"), 3u);

  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.CounterValue("missing"), 0u);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("missing"), 0.0);
}

TEST(RegistryTest, PrometheusExpositionListsAllSeries) {
  Registry registry;
  registry.GetCounter("queries_total", "Total queries")->Inc(7);
  registry.GetGauge("current_epoch")->Set(3);
  HistogramOptions options;
  options.min = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;
  Histogram* h = registry.GetHistogram("latency_seconds", options);
  h->Observe(1.5);
  h->Observe(3.0);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("queries_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE current_epoch gauge"), std::string::npos);
  EXPECT_NE(text.find("current_epoch 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram"), std::string::npos);
  // Cumulative buckets: the le="+Inf" bucket equals the total count.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum"), std::string::npos);
}

TEST(RegistryTest, JsonDumpCarriesSummaryStatistics) {
  Registry registry;
  registry.GetCounter("hits_total")->Inc(2);
  registry.GetHistogram("seconds")->Observe(0.25);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"hits_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(RegistryTest, ConcurrentCounterIncrementsLoseNothing) {
  Registry registry;
  Counter* counter = registry.GetCounter("concurrent_total");
  Histogram* histogram = registry.GetHistogram("concurrent_seconds");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Inc();
        histogram->Observe(1e-3);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(histogram->Count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(RegistryTest, ConcurrentRegistrationIsSafe) {
  // Mixed Get (registration mutex) and Inc (wait-free) from many threads.
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("shared_total")->Inc();
        registry.GetCounter("own_" + std::to_string(t) + "_total")->Inc();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.CounterValue("shared_total"),
            static_cast<uint64_t>(kThreads) * 200);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.CounterValue("own_" + std::to_string(t) + "_total"),
              200u);
  }
}

}  // namespace
}  // namespace metrics

namespace {

TEST(TraceTest, SpansNestLikeBrackets) {
  Trace trace;
  const size_t root = trace.Begin("search");
  {
    const size_t nlp = trace.Begin("nlp");
    trace.Note("segments", "3");
    trace.End(nlp);
    const size_t ne = trace.Begin("ne");
    const size_t segment = trace.Begin("segment");
    trace.Note("cache_hit", "true");
    trace.End(segment);
    trace.End(ne);
  }
  trace.End(root);
  const TraceSpan tree = trace.Finish();

  EXPECT_EQ(tree.name, "search");
  ASSERT_EQ(tree.children.size(), 2u);
  EXPECT_EQ(tree.children[0].name, "nlp");
  ASSERT_EQ(tree.children[0].notes.size(), 1u);
  EXPECT_EQ(tree.children[0].notes[0].first, "segments");
  EXPECT_EQ(tree.children[0].notes[0].second, "3");
  EXPECT_EQ(tree.children[1].name, "ne");
  ASSERT_EQ(tree.children[1].children.size(), 1u);
  EXPECT_EQ(tree.children[1].children[0].name, "segment");

  const TraceSpan* found = tree.Find("segment");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->notes[0].second, "true");
  EXPECT_EQ(tree.Find("absent"), nullptr);

  // Children are fully contained in the root interval.
  EXPECT_LE(tree.ChildrenSeconds(), tree.duration_seconds + 1e-9);
}

TEST(TraceTest, ScopedSpanIsNoOpOnNullTrace) {
  ScopedSpan span(nullptr, "nlp");  // must not crash
  Trace trace;
  {
    ScopedSpan root(&trace, "search");
    ScopedSpan child(&trace, "ns");
  }
  const TraceSpan tree = trace.Finish();
  EXPECT_EQ(tree.name, "search");
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_EQ(tree.children[0].name, "ns");
}

TEST(TraceTest, SpanBreakdownMirrorsDirectChildren) {
  Trace trace;
  const size_t root = trace.Begin("search");
  trace.End(trace.Begin("nlp"));
  trace.End(trace.Begin("ns"));
  trace.End(root);
  const TraceSpan tree = trace.Finish();
  const TimeBreakdown breakdown = SpanBreakdown(tree);
  EXPECT_EQ(breakdown.Count("nlp"), 1);
  EXPECT_EQ(breakdown.Count("ns"), 1);
  EXPECT_EQ(breakdown.Count("ne"), 0);
  EXPECT_GE(breakdown.TotalSeconds("nlp"), 0.0);
}

TEST(TraceTest, ToJsonEscapesAndNests) {
  Trace trace;
  const size_t root = trace.Begin("search");
  trace.Note("query", "say \"hi\"\n");
  trace.End(root);
  const std::string json = trace.Finish().ToJson();
  EXPECT_NE(json.find("\"name\":\"search\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos);
  EXPECT_EQ(JsonEscape("a\tb"), "\"a\\tb\"");
}

TEST(TraceTest, ConcurrentDistinctTracesAreIndependent) {
  // One Trace per request per thread — the concurrency contract. Each
  // thread builds its own tree; none may observe another's spans.
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        Trace trace;
        const size_t root = trace.Begin("search");
        trace.End(trace.Begin("nlp"));
        trace.End(root);
        const TraceSpan tree = trace.Finish();
        if (tree.name != "search" || tree.children.size() != 1) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log(/*threshold_seconds=*/0.010, /*capacity=*/2);
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(0.005));
  EXPECT_TRUE(log.ShouldRecord(0.020));

  SlowQueryRecord fast;
  fast.query = "fast";
  fast.seconds = 0.001;
  log.Record(fast);  // below threshold: dropped
  EXPECT_EQ(log.size(), 0u);

  for (int i = 0; i < 3; ++i) {
    SlowQueryRecord slow;
    slow.query = "slow" + std::to_string(i);
    slow.seconds = 0.020;
    log.Record(slow);
  }
  // Bounded at capacity 2, oldest dropped.
  const std::vector<SlowQueryRecord> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "slow1");
  EXPECT_EQ(entries[1].query, "slow2");
  EXPECT_NE(log.ToJson().find("\"slow2\""), std::string::npos);
}

TEST(SlowQueryLogTest, DisabledByDefault) {
  SlowQueryLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(1e9));
  SlowQueryRecord record;
  record.seconds = 1e9;
  log.Record(record);
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace newslink
