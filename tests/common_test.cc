// Tests for src/common: Status/Result, Rng, string utilities, timers,
// thread pool.

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace newslink {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad beta");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad beta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad beta");
}

TEST(StatusTest, EachCodePredicateMatchesOnlyItself) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailingHelper() { return Status::IOError("disk on fire"); }

Status PropagationSite() {
  NL_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(PropagationSite().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  NL_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(9, &out).ok());
  EXPECT_EQ(out, 9);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reached
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 8);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(21);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ZipfTableFavoursLowRanks) {
  Rng rng(23);
  ZipfTable zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork(1);
  Rng a2(31);
  Rng child2 = a2.Fork(1);
  EXPECT_EQ(child.Next(), child2.Next());  // deterministic
  EXPECT_NE(child.Next(), a.Next());       // diverges from parent
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Swat VALLEY 7"), "swat valley 7");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("newslink", "news"));
  EXPECT_FALSE(StartsWith("news", "newslink"));
  EXPECT_TRUE(EndsWith("newslink", "link"));
  EXPECT_FALSE(EndsWith("link", "newslink"));
}

TEST(StringUtilTest, StrCatMixedTypes) {
  EXPECT_EQ(StrCat("k=", 5, ", b=", 2.5), "k=5, b=2.5");
  EXPECT_EQ(StrCat(), "");
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimeBreakdownTest, AccumulatesBuckets) {
  TimeBreakdown tb;
  tb.Add("ne", 1.0);
  tb.Add("ne", 2.0);
  tb.Add("nlp", 0.5);
  EXPECT_DOUBLE_EQ(tb.TotalSeconds("ne"), 3.0);
  EXPECT_EQ(tb.Count("ne"), 2);
  EXPECT_DOUBLE_EQ(tb.MeanSeconds("ne"), 1.5);
  EXPECT_DOUBLE_EQ(tb.TotalSeconds("missing"), 0.0);
  EXPECT_DOUBLE_EQ(tb.MeanSeconds("missing"), 0.0);
}

TEST(TimeBreakdownTest, MergeCombines) {
  TimeBreakdown a, b;
  a.Add("x", 1.0);
  b.Add("x", 2.0);
  b.Add("y", 3.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.TotalSeconds("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.TotalSeconds("y"), 3.0);
  EXPECT_EQ(a.Count("x"), 2);
}

TEST(TimeBreakdownTest, ScopedTimerRecords) {
  TimeBreakdown tb;
  {
    ScopedTimer t(&tb, "scope");
  }
  EXPECT_EQ(tb.Count("scope"), 1);
  EXPECT_GE(tb.TotalSeconds("scope"), 0.0);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, WaitIdempotent) {
  ThreadPool pool(2);
  pool.Wait();
  pool.Wait();
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForFromWorkerRunsInline) {
  // Regression: ParallelFor called from a pool worker used to Submit its
  // loop tasks behind the caller and then Wait() — with every worker
  // occupied by such a caller, nobody drained the queue and the pool
  // deadlocked. Nested calls must run inline on the calling worker.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<int> outer_done{0};
  for (int outer = 0; outer < 4; ++outer) {
    pool.Submit([&pool, &hits, &outer_done] {
      pool.ParallelFor(hits.size(),
                       [&hits](size_t i) { hits[i].fetch_add(1); });
      outer_done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(outer_done.load(), 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 4);
}

TEST(ThreadPoolTest, ParallelForFromForeignWorkerStillParallel) {
  // A worker of pool A fanning out on pool B is not reentrant — B's
  // workers are free, so the parallel path must still be taken (and must
  // complete).
  ThreadPool a(1);
  ThreadPool b(2);
  std::atomic<int> count{0};
  a.Submit([&b, &count] {
    b.ParallelFor(32, [&count](size_t) { count.fetch_add(1); });
  });
  a.Wait();
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace newslink
