// Concurrency tests for the query path: many threads hammering Search on a
// fully indexed engine must produce exactly the single-threaded results and
// exactly-counted timing buckets (the seed version raced on query_times_),
// and the pruned MaxScore fusion must agree with the exhaustive oracle.
// Run under -fsanitize=thread in CI (see .github/workflows/ci.yml).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/synthetic_news.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace {

class ConcurrentSearchTest : public ::testing::Test {
 protected:
  ConcurrentSearchTest() : kg_(MakeKg()), index_(kg_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 25;
    corpus_ = corpus::SyntheticNewsGenerator(&kg_, config).Generate();
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 77;
    config.num_countries = 2;
    config.provinces_per_country = 3;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  NewsLinkEngine MakeEngine(double beta) {
    NewsLinkConfig config;
    config.beta = beta;
    config.num_threads = 2;
    return NewsLinkEngine(&kg_.graph, &index_, config);
  }

  std::string FirstSentenceOf(size_t doc) const {
    const std::string& text = corpus_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex index_;
  corpus::SyntheticCorpus corpus_;
};

TEST_F(ConcurrentSearchTest, ParallelSearchesMatchSingleThreaded) {
  NewsLinkEngine engine = MakeEngine(0.2);
  engine.Index(corpus_.corpus);

  constexpr size_t kQueries = 8;
  constexpr size_t kK = 10;
  std::vector<std::string> queries;
  std::vector<std::vector<baselines::SearchResult>> reference;
  for (size_t d = 0; d < kQueries; ++d) {
    queries.push_back(FirstSentenceOf(d));
    reference.push_back(engine.Search(queries.back(), kK));
  }

  engine.ResetQueryTimes();
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          // Stagger the query order per thread so different queries overlap.
          const size_t idx = (q + t) % queries.size();
          const auto results = engine.Search(queries[idx], kK);
          bool ok = results.size() == reference[idx].size();
          for (size_t i = 0; ok && i < results.size(); ++i) {
            ok = results[i].doc_index == reference[idx][i].doc_index &&
                 results[i].score == reference[idx][i].score;
          }
          if (!ok) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent Search must return the single-threaded results";

  // The per-call breakdowns merge losslessly under the mutex: exactly one
  // event per bucket per query, none dropped by racing threads.
  const int64_t total = kThreads * kRounds * static_cast<int64_t>(kQueries);
  const TimeBreakdown times = engine.query_times();
  EXPECT_EQ(times.Count("nlp"), total);
  EXPECT_EQ(times.Count("ne"), total);
  EXPECT_EQ(times.Count("ns"), total);
}

TEST_F(ConcurrentSearchTest, StatsCountQueriesAndCacheHits) {
  NewsLinkEngine engine = MakeEngine(0.5);
  engine.Index(corpus_.corpus);
  const EngineStats after_index = engine.stats();
  EXPECT_EQ(after_index.queries, 0u);
  EXPECT_GT(after_index.embedder.segments, 0u);

  const std::string q = FirstSentenceOf(0);
  engine.Search(q, 5);
  engine.Search(q, 5);  // repeated query: its entity groups hit the cache
  const EngineStats after = engine.stats();
  EXPECT_EQ(after.queries, 2u);
  EXPECT_GT(after.bow_docs_scored, 0u);
  EXPECT_GE(after.embedder.cache.hits, after_index.embedder.cache.hits);
}

TEST_F(ConcurrentSearchTest, PrunedFusionMatchesExhaustiveOracle) {
  NewsLinkEngine engine = MakeEngine(0.2);
  engine.Index(corpus_.corpus);

  for (double beta : {0.0, 0.2, 0.5, 1.0}) {
    engine.set_beta(beta);
    for (size_t d = 0; d < 10; ++d) {
      const std::string q = FirstSentenceOf(d);
      engine.set_exhaustive_fusion(false);
      const auto pruned = engine.Search(q, 5);
      engine.set_exhaustive_fusion(true);
      const auto exact = engine.Search(q, 5);
      ASSERT_EQ(pruned.size(), exact.size()) << "beta=" << beta;
      for (size_t i = 0; i < pruned.size(); ++i) {
        EXPECT_EQ(pruned[i].doc_index, exact[i].doc_index)
            << "beta=" << beta << " query " << d << " rank " << i;
        EXPECT_NEAR(pruned[i].score, exact[i].score, 1e-9);
      }
    }
  }
}

TEST_F(ConcurrentSearchTest, PrunedFusionScoresFewerDocuments) {
  // Pruning only has headroom when the corpus is much larger than the
  // rerank depth, so this test uses its own bigger corpus.
  corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
  config.num_stories = 120;
  const corpus::SyntheticCorpus big =
      corpus::SyntheticNewsGenerator(&kg_, config).Generate();

  NewsLinkEngine engine = MakeEngine(0.2);
  engine.Index(big.corpus);

  auto query = [&](size_t doc) {
    const std::string& text = big.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  };

  const uint64_t base_bow = engine.stats().bow_docs_scored;
  engine.set_exhaustive_fusion(true);
  for (size_t d = 0; d < 10; ++d) engine.Search(query(d), 5);
  const uint64_t exhaustive_bow = engine.stats().bow_docs_scored - base_bow;

  engine.set_exhaustive_fusion(false);
  for (size_t d = 0; d < 10; ++d) engine.Search(query(d), 5);
  const uint64_t pruned_bow =
      engine.stats().bow_docs_scored - base_bow - exhaustive_bow;

  EXPECT_LT(pruned_bow, exhaustive_bow)
      << "MaxScore retrieval must score strictly fewer text-side documents";
}

}  // namespace
}  // namespace newslink
