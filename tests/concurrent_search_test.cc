// Concurrency tests for the query path: many threads hammering Search must
// produce exactly the single-threaded results and exactly-counted timing
// buckets, the pruned MaxScore fusion must agree with the exhaustive oracle
// on every published epoch, and queries racing AddDocument must only ever
// observe complete epoch snapshots (no torn reads, no partial documents).
// Run under -fsanitize=thread in CI (see .github/workflows/ci.yml).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/synthetic_news.h"
#include "embed/document_embedding.h"
#include "embed/lcag_cache.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace {

class ConcurrentSearchTest : public ::testing::Test {
 protected:
  ConcurrentSearchTest() : kg_(MakeKg()), index_(kg_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 25;
    corpus_ = corpus::SyntheticNewsGenerator(&kg_, config).Generate();
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 77;
    config.num_countries = 2;
    config.provinces_per_country = 3;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  NewsLinkEngine MakeEngine(double beta) {
    NewsLinkConfig config;
    config.beta = beta;
    config.num_threads = 2;
    return NewsLinkEngine(&kg_.graph, &index_, config);
  }

  std::string FirstSentenceOf(size_t doc) const {
    const std::string& text = corpus_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex index_;
  corpus::SyntheticCorpus corpus_;
};

TEST_F(ConcurrentSearchTest, ParallelSearchesMatchSingleThreaded) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

  constexpr size_t kQueries = 8;
  constexpr size_t kK = 10;
  std::vector<std::string> queries;
  std::vector<std::vector<baselines::SearchHit>> reference;
  for (size_t d = 0; d < kQueries; ++d) {
    queries.push_back(FirstSentenceOf(d));
    reference.push_back(engine.Search({queries.back(), kK}).hits);
  }

  const uint64_t nlp_before =
      engine.Metrics().FindHistogram(kQueryNlpSeconds)->Count();
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          // Stagger the query order per thread so different queries overlap.
          const size_t idx = (q + t) % queries.size();
          const auto results = engine.Search({queries[idx], kK}).hits;
          bool ok = results.size() == reference[idx].size();
          for (size_t i = 0; ok && i < results.size(); ++i) {
            ok = results[i].doc_index == reference[idx][i].doc_index &&
                 results[i].score == reference[idx][i].score;
          }
          if (!ok) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent Search must return the single-threaded results";

  // The sharded registry instruments lose no events under contention:
  // exactly one observation per stage per query across all threads.
  const uint64_t total = kThreads * kRounds * kQueries;
  const metrics::Registry& metrics = engine.Metrics();
  EXPECT_EQ(metrics.FindHistogram(kQueryNlpSeconds)->Count(),
            nlp_before + total);
  EXPECT_EQ(metrics.FindHistogram(kQueryNeSeconds)->Count(),
            nlp_before + total);
  EXPECT_EQ(metrics.FindHistogram(kQueryNsSeconds)->Count(),
            nlp_before + total);
}

TEST_F(ConcurrentSearchTest, MetricsCountQueriesAndCacheHits) {
  NewsLinkEngine engine = MakeEngine(0.5);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const metrics::Registry& metrics = engine.Metrics();
  EXPECT_EQ(metrics.CounterValue(baselines::kEngineQueries), 0u);
  EXPECT_GT(metrics.CounterValue(embed::kEmbedderSegments), 0u);
  const uint64_t hits_after_index =
      metrics.CounterValue(embed::kLcagCacheHits);

  const std::string q = FirstSentenceOf(0);
  engine.Search({q, 5}).hits;
  engine.Search({q, 5}).hits;  // repeated query: its entity groups hit the cache
  EXPECT_EQ(metrics.CounterValue(baselines::kEngineQueries), 2u);
  EXPECT_GT(metrics.CounterValue(kBowDocsScored), 0u);
  EXPECT_GE(metrics.CounterValue(embed::kLcagCacheHits), hits_after_index);
}

TEST_F(ConcurrentSearchTest, PrunedFusionMatchesExhaustiveOracle) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

  for (double beta : {0.0, 0.2, 0.5, 1.0}) {
    for (size_t d = 0; d < 10; ++d) {
      baselines::SearchRequest request;
      request.query = FirstSentenceOf(d);
      request.k = 5;
      request.beta = beta;
      request.exhaustive_fusion = false;
      const auto pruned = engine.Search(request).hits;
      request.exhaustive_fusion = true;
      const auto exact = engine.Search(request).hits;
      ASSERT_EQ(pruned.size(), exact.size()) << "beta=" << beta;
      for (size_t i = 0; i < pruned.size(); ++i) {
        EXPECT_EQ(pruned[i].doc_index, exact[i].doc_index)
            << "beta=" << beta << " query " << d << " rank " << i;
        EXPECT_NEAR(pruned[i].score, exact[i].score, 1e-9);
      }
    }
  }
}

TEST_F(ConcurrentSearchTest, RequestDefaultsMatchLegacySearch) {
  NewsLinkEngine engine = MakeEngine(0.5);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

  for (size_t d = 0; d < 8; ++d) {
    const std::string q = FirstSentenceOf(d);
    const auto legacy = engine.Search({q, 7}).hits;

    baselines::SearchRequest request;
    request.query = q;
    request.k = 7;  // every optional knob unset: inherits the config
    const baselines::SearchResponse response = engine.Search(request);

    ASSERT_EQ(legacy.size(), response.hits.size()) << "query " << d;
    for (size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(legacy[i].doc_index, response.hits[i].doc_index);
      EXPECT_EQ(legacy[i].score, response.hits[i].score);
    }
    EXPECT_EQ(response.snapshot_docs, corpus_.corpus.size());
    EXPECT_GT(response.timings.Count("ns"), 0);
  }
}

TEST_F(ConcurrentSearchTest, WriterVsReadersSeeOnlyCompleteEpochs) {
  // The tentpole TSan scenario: one writer ingesting documents while
  // reader threads query. Every response must be internally consistent —
  // all hits below its snapshot_docs, snapshot at least the pre-ingest
  // corpus, epochs non-decreasing per thread.
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const size_t base_docs = corpus_.corpus.size();

  corpus::SyntheticNewsConfig fresh_config = corpus::CnnLikeConfig();
  fresh_config.num_stories = 8;
  fresh_config.seed = 4242;
  const corpus::SyntheticCorpus fresh =
      corpus::SyntheticNewsGenerator(&kg_, fresh_config).Generate();

  std::atomic<int> violations{0};
  std::atomic<bool> done{false};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_epoch = 0;
      size_t last_docs = 0;
      int round = 0;
      // Keep querying until the writer finishes (and at least once).
      do {
        baselines::SearchRequest request;
        request.query = FirstSentenceOf((t + round++) % 8);
        request.k = 10;
        const baselines::SearchResponse r = engine.Search(request);
        if (r.snapshot_docs < base_docs) violations.fetch_add(1);
        if (r.epoch < last_epoch || r.snapshot_docs < last_docs) {
          violations.fetch_add(1);
        }
        for (const baselines::SearchHit& hit : r.hits) {
          if (hit.doc_index >= r.snapshot_docs) violations.fetch_add(1);
        }
        last_epoch = r.epoch;
        last_docs = r.snapshot_docs;
      } while (!done.load(std::memory_order_acquire));
    });
  }

  size_t added = 0;
  for (size_t d = 0; d < fresh.corpus.size(); ++d) {
    const size_t index = engine.AddDocument(fresh.corpus.doc(d));
    EXPECT_EQ(index, base_docs + added);
    ++added;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(violations.load(), 0)
      << "readers must never observe a half-published epoch";
  EXPECT_EQ(engine.num_indexed_docs(), base_docs + added);

  const metrics::Registry& metrics = engine.Metrics();
  const uint64_t epochs_published = metrics.CounterValue(kEpochsPublished);
  // Epoch 0 (empty) + Index + one per AddDocument.
  EXPECT_EQ(epochs_published, 2 + added);
  EXPECT_EQ(metrics.GaugeValue(kCurrentEpoch), 1.0 + added);
  EXPECT_GT(metrics.CounterValue(kSnapshotAcquisitions), 0u);
  // Every superseded epoch has been reclaimed (no readers left).
  EXPECT_EQ(metrics.CounterValue(kSnapshotsReclaimed), epochs_published - 1);

  // The appended documents are searchable at the final epoch.
  baselines::SearchRequest request;
  const std::string& text = fresh.corpus.doc(0).text;
  request.query = text.substr(0, text.find('.') + 1);
  request.k = 5;
  const baselines::SearchResponse final_response = engine.Search(request);
  EXPECT_EQ(final_response.snapshot_docs, base_docs + added);
}

TEST_F(ConcurrentSearchTest, PrunedMatchesExhaustiveOnEveryPublishedEpoch) {
  // Snapshot-keyed bounds property: after every single published epoch —
  // including mid-ingestion ones — pruned fusion must still equal the
  // exhaustive oracle evaluated at that same epoch.
  NewsLinkEngine engine = MakeEngine(0.2);

  corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
  config.num_stories = 6;
  config.seed = 1234;
  const corpus::SyntheticCorpus stream =
      corpus::SyntheticNewsGenerator(&kg_, config).Generate();

  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  size_t expected_docs = corpus_.corpus.size();
  for (size_t d = 0; d < stream.corpus.size(); ++d) {
    engine.AddDocument(stream.corpus.doc(d));
    ++expected_docs;
    for (double beta : {0.2, 0.7}) {
      baselines::SearchRequest request;
      request.query = FirstSentenceOf(d % 8);
      request.k = 5;
      request.beta = beta;
      request.exhaustive_fusion = false;
      const baselines::SearchResponse pruned = engine.Search(request);
      request.exhaustive_fusion = true;
      const baselines::SearchResponse exact = engine.Search(request);

      EXPECT_EQ(pruned.snapshot_docs, expected_docs);
      EXPECT_EQ(exact.snapshot_docs, expected_docs);
      ASSERT_EQ(pruned.hits.size(), exact.hits.size())
          << "epoch with " << expected_docs << " docs, beta=" << beta;
      for (size_t i = 0; i < pruned.hits.size(); ++i) {
        EXPECT_EQ(pruned.hits[i].doc_index, exact.hits[i].doc_index)
            << "epoch with " << expected_docs << " docs, beta=" << beta
            << " rank " << i;
        EXPECT_NEAR(pruned.hits[i].score, exact.hits[i].score, 1e-9);
      }
    }
  }
}

TEST_F(ConcurrentSearchTest, PrunedFusionScoresFewerDocuments) {
  // Pruning only has headroom when the corpus is much larger than the
  // rerank depth, so this test uses its own bigger corpus.
  corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
  config.num_stories = 120;
  const corpus::SyntheticCorpus big =
      corpus::SyntheticNewsGenerator(&kg_, config).Generate();

  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(big.corpus).ok());

  auto query = [&](size_t doc) {
    const std::string& text = big.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  };

  auto run = [&](size_t doc, bool exhaustive) {
    baselines::SearchRequest request;
    request.query = query(doc);
    request.k = 5;
    request.exhaustive_fusion = exhaustive;
    engine.Search(request);
  };

  auto bow_scored = [&] { return engine.Metrics().CounterValue(kBowDocsScored); };
  const uint64_t base_bow = bow_scored();
  for (size_t d = 0; d < 10; ++d) run(d, /*exhaustive=*/true);
  const uint64_t exhaustive_bow = bow_scored() - base_bow;

  for (size_t d = 0; d < 10; ++d) run(d, /*exhaustive=*/false);
  const uint64_t pruned_bow = bow_scored() - base_bow - exhaustive_bow;

  EXPECT_LT(pruned_bow, exhaustive_bow)
      << "MaxScore retrieval must score strictly fewer text-side documents";
}

}  // namespace
}  // namespace newslink
