// Tests for src/ir: term dictionary, inverted index, BM25 and TF-IDF
// scoring, top-k selection, text vectorization.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ir/inverted_index.h"
#include "ir/scorer.h"
#include "ir/term_dictionary.h"
#include "ir/text_vectorizer.h"
#include "ir/top_k.h"
#include "text/porter_stemmer.h"

namespace newslink {
namespace ir {
namespace {

// ---------------------------------------------------------------------------
// TermDictionary
// ---------------------------------------------------------------------------

TEST(TermDictionaryTest, InternsAndFinds) {
  TermDictionary dict;
  const TermId a = dict.GetOrAdd("attack");
  const TermId b = dict.GetOrAdd("bombing");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.GetOrAdd("attack"), a);
  EXPECT_EQ(dict.Find("attack"), a);
  EXPECT_EQ(dict.Find("unknown"), kInvalidTerm);
  EXPECT_EQ(dict.term(a), "attack");
  EXPECT_EQ(dict.size(), 2u);
}

// ---------------------------------------------------------------------------
// InvertedIndex
// ---------------------------------------------------------------------------

TEST(InvertedIndexTest, SequentialDocIds) {
  InvertedIndex index;
  EXPECT_EQ(index.AddDocument({{0, 1}}), 0u);
  EXPECT_EQ(index.AddDocument({{1, 2}}), 1u);
  EXPECT_EQ(index.num_docs(), 2u);
}

TEST(InvertedIndexTest, DocLengthIsSumOfTf) {
  InvertedIndex index;
  index.AddDocument({{0, 2}, {1, 3}});
  EXPECT_EQ(index.DocLength(0), 5u);
}

TEST(InvertedIndexTest, AvgDocLength) {
  InvertedIndex index;
  index.AddDocument({{0, 2}});
  index.AddDocument({{0, 4}});
  EXPECT_DOUBLE_EQ(index.avg_doc_length(), 3.0);
  InvertedIndex empty;
  EXPECT_DOUBLE_EQ(empty.avg_doc_length(), 0.0);
}

TEST(InvertedIndexTest, PostingsSortedByDocId) {
  InvertedIndex index;
  index.AddDocument({{5, 1}});
  index.AddDocument({{5, 2}});
  index.AddDocument({{5, 3}});
  const auto postings = index.Postings(5);
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      postings.begin(), postings.end(),
      [](const Posting& a, const Posting& b) { return a.doc < b.doc; }));
  EXPECT_EQ(index.DocFreq(5), 3u);
}

TEST(InvertedIndexTest, UnknownTermEmpty) {
  InvertedIndex index;
  index.AddDocument({{0, 1}});
  EXPECT_TRUE(index.Postings(99).empty());
  EXPECT_EQ(index.DocFreq(99), 0u);
}

// ---------------------------------------------------------------------------
// BM25
// ---------------------------------------------------------------------------

class Bm25Test : public ::testing::Test {
 protected:
  Bm25Test() {
    // doc0: "taliban taliban attack", doc1: "attack", doc2: "election".
    index_.AddDocument({{0, 2}, {1, 1}});
    index_.AddDocument({{1, 1}});
    index_.AddDocument({{2, 1}});
    scorer_ = std::make_unique<Bm25Scorer>(&index_);
  }
  InvertedIndex index_;
  std::unique_ptr<Bm25Scorer> scorer_;
};

TEST_F(Bm25Test, IdfDecreasesWithDocFreq) {
  // term 1 (df=2) must have lower idf than term 0 (df=1).
  EXPECT_GT(scorer_->Idf(0), scorer_->Idf(1));
  EXPECT_GT(scorer_->Idf(1), 0.0);
}

TEST_F(Bm25Test, IdfMatchesLuceneFormula) {
  // df=1, N=3: ln(1 + (3 - 1 + 0.5) / (1 + 0.5)) = ln(1 + 5/3).
  EXPECT_NEAR(scorer_->Idf(0), std::log(1.0 + (3.0 - 1 + 0.5) / 1.5), 1e-12);
}

TEST_F(Bm25Test, OnlyMatchingDocsScored) {
  const auto scores = scorer_->ScoreAll({{2, 1}});
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].doc, 2u);
  EXPECT_GT(scores[0].score, 0.0);
}

TEST_F(Bm25Test, HigherTfScoresHigher) {
  const auto scores = scorer_->ScoreAll({{0, 1}, {1, 1}});
  double s0 = 0, s1 = 0;
  for (const auto& s : scores) {
    if (s.doc == 0) s0 = s.score;
    if (s.doc == 1) s1 = s.score;
  }
  EXPECT_GT(s0, s1);  // doc0 matches both terms, one twice
}

TEST_F(Bm25Test, KnownScoreValue) {
  // Hand-computed BM25 for query {term2} on doc2: tf=1, dl=1, avgdl=5/3.
  const double idf = std::log(1.0 + (3.0 - 1 + 0.5) / 1.5);
  const double norm = 1.2 * (1.0 - 0.75 + 0.75 * (1.0 / (5.0 / 3.0)));
  const double expected = idf * 1.0 * 2.2 / (1.0 + norm);
  const auto scores = scorer_->ScoreAll({{2, 1}});
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_NEAR(scores[0].score, expected, 1e-12);
}

TEST_F(Bm25Test, QueryTermMultiplicityScalesLinearly) {
  const auto once = scorer_->ScoreAll({{2, 1}});
  const auto twice = scorer_->ScoreAll({{2, 2}});
  ASSERT_EQ(once.size(), 1u);
  ASSERT_EQ(twice.size(), 1u);
  EXPECT_NEAR(twice[0].score, 2 * once[0].score, 1e-12);
}

TEST_F(Bm25Test, LengthNormalizationPenalizesLongDocs) {
  InvertedIndex index;
  index.AddDocument({{0, 1}});            // short doc
  index.AddDocument({{0, 1}, {1, 50}});   // long doc, same tf for term 0
  Bm25Scorer scorer(&index);
  const auto scores = scorer.ScoreAll({{0, 1}});
  double short_s = 0, long_s = 0;
  for (const auto& s : scores) {
    if (s.doc == 0) short_s = s.score;
    if (s.doc == 1) long_s = s.score;
  }
  EXPECT_GT(short_s, long_s);
}

// ---------------------------------------------------------------------------
// TF-IDF cosine
// ---------------------------------------------------------------------------

TEST(TfIdfCosineTest, IdenticalDocScoresHighest) {
  InvertedIndex index;
  index.AddDocument({{0, 2}, {1, 1}});
  index.AddDocument({{1, 1}, {2, 3}});
  index.AddDocument({{3, 1}});
  TfIdfCosineScorer scorer(&index);
  // Query equal to doc0's term counts.
  const auto scores = scorer.ScoreAll({{0, 2}, {1, 1}});
  double best = -1;
  DocId best_doc = kInvalidDoc;
  for (const auto& s : scores) {
    if (s.score > best) {
      best = s.score;
      best_doc = s.doc;
    }
  }
  EXPECT_EQ(best_doc, 0u);
}

TEST(TfIdfCosineTest, ScoresAreBoundedByOne) {
  InvertedIndex index;
  index.AddDocument({{0, 1}, {1, 4}});
  index.AddDocument({{0, 2}});
  TfIdfCosineScorer scorer(&index);
  for (const auto& s : scorer.ScoreAll({{0, 1}, {1, 4}})) {
    EXPECT_LE(s.score, 1.0 + 1e-9);
    EXPECT_GE(s.score, 0.0);
  }
}

TEST(TfIdfCosineTest, SelfSimilarityIsOne) {
  InvertedIndex index;
  index.AddDocument({{0, 3}, {1, 1}, {2, 2}});
  index.AddDocument({{4, 1}});
  TfIdfCosineScorer scorer(&index);
  const auto scores = scorer.ScoreAll({{0, 3}, {1, 1}, {2, 2}});
  ASSERT_FALSE(scores.empty());
  double doc0 = 0;
  for (const auto& s : scores) {
    if (s.doc == 0) doc0 = s.score;
  }
  EXPECT_NEAR(doc0, 1.0, 1e-9);
}

TEST(TfIdfCosineTest, RecomputesNormsWhenIndexGrows) {
  // Regression: norms used to be sized once at construction, so scoring a
  // document added afterwards read doc_norms_ out of bounds.
  InvertedIndex index;
  index.AddDocument({{0, 2}, {1, 1}});
  index.AddDocument({{1, 3}});
  TfIdfCosineScorer scorer(&index);
  scorer.ScoreAll({{0, 1}});  // norms computed for 2 docs

  index.AddDocument({{0, 1}, {2, 4}});
  index.AddDocument({{2, 1}});

  // Must cover the new documents and agree exactly with a fresh scorer
  // (idf depends on N, so stale norms would skew every cosine).
  TfIdfCosineScorer fresh(&index);
  for (const TermCounts& query :
       {TermCounts{{0, 1}}, TermCounts{{2, 2}}, TermCounts{{0, 1}, {1, 1}}}) {
    auto grown = scorer.ScoreAll(query);
    auto expected = fresh.ScoreAll(query);
    auto by_doc = [](const ScoredDoc& a, const ScoredDoc& b) {
      return a.doc < b.doc;
    };
    std::sort(grown.begin(), grown.end(), by_doc);
    std::sort(expected.begin(), expected.end(), by_doc);
    ASSERT_EQ(grown.size(), expected.size());
    for (size_t i = 0; i < grown.size(); ++i) {
      EXPECT_EQ(grown[i].doc, expected[i].doc);
      EXPECT_DOUBLE_EQ(grown[i].score, expected[i].score);
    }
  }
}

// ---------------------------------------------------------------------------
// TopKHeap / SelectTopK
// ---------------------------------------------------------------------------

TEST(TopKTest, KeepsBestK) {
  TopKHeap heap(2);
  heap.Push({0, 1.0});
  heap.Push({1, 3.0});
  heap.Push({2, 2.0});
  const auto out = heap.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 1u);
  EXPECT_EQ(out[1].doc, 2u);
}

TEST(TopKTest, FewerThanKItems) {
  TopKHeap heap(10);
  heap.Push({0, 1.0});
  const auto out = heap.Take();
  ASSERT_EQ(out.size(), 1u);
}

TEST(TopKTest, KZeroYieldsNothing) {
  TopKHeap heap(0);
  heap.Push({0, 1.0});
  EXPECT_TRUE(heap.Take().empty());
}

TEST(TopKTest, KZeroThresholdIsPlusInfinity) {
  // Regression: with k == 0 the heap is simultaneously "empty" and "full",
  // and Threshold() used to read items_.front() of an empty vector (UB).
  // +inf is the correct bound: no candidate can ever enter the heap, so
  // pruning retrievers may skip every document.
  TopKHeap heap(0);
  EXPECT_EQ(heap.Threshold(), std::numeric_limits<double>::infinity());
  heap.Push({0, 1e30});
  EXPECT_EQ(heap.Threshold(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(heap.Take().empty());
}

TEST(TopKTest, KLargerThanCandidatesKeepsAllSorted) {
  TopKHeap heap(100);
  heap.Push({4, 1.0});
  heap.Push({2, 3.0});
  heap.Push({9, 2.0});
  EXPECT_EQ(heap.Threshold(), -std::numeric_limits<double>::infinity());
  const auto out = heap.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].doc, 2u);
  EXPECT_EQ(out[1].doc, 9u);
  EXPECT_EQ(out[2].doc, 4u);
}

TEST(TopKTest, SelectTopKZeroAndOversized) {
  const std::vector<ScoredDoc> scores = {{0, 1.0}, {1, 2.0}};
  EXPECT_TRUE(SelectTopK(scores, 0).empty());
  const auto all = SelectTopK(scores, 10);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].doc, 1u);
}

TEST(TopKTest, TiesBreakTowardSmallerDocId) {
  TopKHeap heap(2);
  heap.Push({5, 1.0});
  heap.Push({3, 1.0});
  heap.Push({7, 1.0});
  const auto out = heap.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 3u);
  EXPECT_EQ(out[1].doc, 5u);
}

TEST(TopKTest, ThresholdTracksWorstKept) {
  TopKHeap heap(2);
  EXPECT_EQ(heap.Threshold(), -std::numeric_limits<double>::infinity());
  heap.Push({0, 5.0});
  EXPECT_EQ(heap.Threshold(), -std::numeric_limits<double>::infinity());
  heap.Push({1, 3.0});
  EXPECT_DOUBLE_EQ(heap.Threshold(), 3.0);
  heap.Push({2, 4.0});
  EXPECT_DOUBLE_EQ(heap.Threshold(), 4.0);
}

TEST(TopKTest, MatchesFullSortOnRandomData) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ScoredDoc> scores;
    for (int i = 0; i < 100; ++i) {
      scores.push_back({static_cast<DocId>(i),
                        static_cast<double>(rng.Uniform(50))});
    }
    const size_t k = 1 + rng.Uniform(20);
    const auto fast = SelectTopK(scores, k);

    auto sorted = scores;
    std::sort(sorted.begin(), sorted.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    sorted.resize(std::min(k, sorted.size()));
    EXPECT_EQ(fast, sorted);
  }
}

// ---------------------------------------------------------------------------
// TextVectorizer
// ---------------------------------------------------------------------------

TEST(TextVectorizerTest, StemsAndDropsStopwords) {
  TermDictionary dict;
  const TermCounts counts = TextVectorizer::CountsForIndexing(
      "The elections and the election.", &dict);
  // "the"/"and" dropped; "elections" and "election" share one stem.
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].second, 2u);
  EXPECT_EQ(dict.term(counts[0].first), "elect");
}

TEST(TextVectorizerTest, QueryDropsUnknownTerms) {
  TermDictionary dict;
  TextVectorizer::CountsForIndexing("bombing attack", &dict);
  const TermCounts q =
      TextVectorizer::CountsForQuery("bombing earthquake", dict);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(dict.term(q[0].first), text::PorterStem("bombing"));
  EXPECT_EQ(dict.size(), 2u);  // query didn't grow the dictionary
}

TEST(TextVectorizerTest, OutputSortedByTermId) {
  TermDictionary dict;
  const TermCounts counts = TextVectorizer::CountsForIndexing(
      "zebra attack bombing zebra candidate", &dict);
  EXPECT_TRUE(std::is_sorted(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(TextVectorizerTest, SingleCharactersDropped) {
  TermDictionary dict;
  const TermCounts counts =
      TextVectorizer::CountsForIndexing("a b c bombing", &dict);
  ASSERT_EQ(counts.size(), 1u);
}

}  // namespace
}  // namespace ir
}  // namespace newslink
