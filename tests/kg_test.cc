// Tests for src/kg: graph construction, CSR adjacency, bi-direction,
// label index, TSV round-trip, entity types.

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "kg/kg_io.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"
#include "kg/types.h"

namespace newslink {
namespace kg {
namespace {

KnowledgeGraph TriangleGraph() {
  KgBuilder b;
  const NodeId a = b.AddNode("Alpha", EntityType::kGpe, "Alpha place");
  const NodeId c = b.AddNode("Beta", EntityType::kPerson, "Beta person");
  const NodeId d = b.AddNode("Gamma", EntityType::kEvent, "Gamma event");
  EXPECT_TRUE(b.AddEdge(a, c, "knows").ok());
  EXPECT_TRUE(b.AddEdge(c, d, "attended").ok());
  EXPECT_TRUE(b.AddEdge(d, a, "occurred_in").ok());
  return b.Build();
}

// ---------------------------------------------------------------------------
// EntityType
// ---------------------------------------------------------------------------

TEST(EntityTypeTest, NameRoundTrip) {
  for (EntityType t :
       {EntityType::kPerson, EntityType::kNorp, EntityType::kFacility,
        EntityType::kOrganization, EntityType::kGpe, EntityType::kLocation,
        EntityType::kProduct, EntityType::kEvent, EntityType::kWorkOfArt,
        EntityType::kLaw, EntityType::kLanguage}) {
    EXPECT_EQ(ParseEntityType(EntityTypeName(t)), t);
  }
}

TEST(EntityTypeTest, UnknownParsesToOther) {
  EXPECT_EQ(ParseEntityType("SOMETHING_ELSE"), EntityType::kOther);
  EXPECT_EQ(ParseEntityType(""), EntityType::kOther);
}

// ---------------------------------------------------------------------------
// KgBuilder / KnowledgeGraph
// ---------------------------------------------------------------------------

TEST(KgBuilderTest, NodesGetSequentialIds) {
  KgBuilder b;
  EXPECT_EQ(b.AddNode("a", EntityType::kGpe), 0u);
  EXPECT_EQ(b.AddNode("b", EntityType::kGpe), 1u);
  EXPECT_EQ(b.AddNode("c", EntityType::kGpe), 2u);
}

TEST(KgBuilderTest, PredicatesAreInterned) {
  KgBuilder b;
  const PredicateId p1 = b.AddPredicate("located_in");
  const PredicateId p2 = b.AddPredicate("located_in");
  const PredicateId p3 = b.AddPredicate("part_of");
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
}

TEST(KgBuilderTest, RejectsInvalidEdges) {
  KgBuilder b;
  const NodeId a = b.AddNode("a", EntityType::kGpe);
  const NodeId c = b.AddNode("b", EntityType::kGpe);
  EXPECT_TRUE(b.AddEdge(a, 99, "p").ok() == false);
  EXPECT_TRUE(b.AddEdge(a, a, "p").IsInvalidArgument());  // self loop
  EXPECT_TRUE(b.AddEdge(a, c, "p", 0.0f).IsInvalidArgument());
  EXPECT_TRUE(b.AddEdge(a, c, "p", -1.0f).IsInvalidArgument());
  const PredicateId bogus = 42;
  EXPECT_TRUE(b.AddEdge(a, c, bogus).IsInvalidArgument());
}

TEST(KnowledgeGraphTest, BasicCounts) {
  KnowledgeGraph g = TriangleGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_predicates(), 3u);
}

TEST(KnowledgeGraphTest, BiDirectedArcs) {
  KnowledgeGraph g = TriangleGraph();
  // Every node of the triangle has exactly 2 arcs: one forward, one reverse.
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.Degree(v), 2u);
    int forward = 0, reverse = 0;
    for (const Arc& arc : g.OutArcs(v)) {
      (arc.forward ? forward : reverse) += 1;
    }
    EXPECT_EQ(forward, 1);
    EXPECT_EQ(reverse, 1);
  }
}

TEST(KnowledgeGraphTest, ArcsMirrorEdges) {
  KnowledgeGraph g = TriangleGraph();
  // For each original edge src->dst there is a forward arc at src and a
  // reverse arc at dst, with matching predicate.
  for (const EdgeRecord& e : g.edges()) {
    bool found_forward = false;
    for (const Arc& arc : g.OutArcs(e.src)) {
      if (arc.dst == e.dst && arc.forward && arc.predicate == e.predicate) {
        found_forward = true;
      }
    }
    bool found_reverse = false;
    for (const Arc& arc : g.OutArcs(e.dst)) {
      if (arc.dst == e.src && !arc.forward && arc.predicate == e.predicate) {
        found_reverse = true;
      }
    }
    EXPECT_TRUE(found_forward);
    EXPECT_TRUE(found_reverse);
  }
}

TEST(KnowledgeGraphTest, NodeAttributes) {
  KnowledgeGraph g = TriangleGraph();
  EXPECT_EQ(g.label(0), "Alpha");
  EXPECT_EQ(g.type(1), EntityType::kPerson);
  EXPECT_EQ(g.description(2), "Gamma event");
}

TEST(KnowledgeGraphTest, FindPredicate) {
  KnowledgeGraph g = TriangleGraph();
  Result<PredicateId> found = g.FindPredicate("knows");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(g.predicate_name(*found), "knows");
  EXPECT_TRUE(g.FindPredicate("nope").status().IsNotFound());
}

TEST(KnowledgeGraphTest, ArcToStringOrientation) {
  KnowledgeGraph g = TriangleGraph();
  for (const Arc& arc : g.OutArcs(0)) {
    const std::string s = g.ArcToString(0, arc);
    if (arc.forward) {
      EXPECT_NE(s.find("-->"), std::string::npos) << s;
    } else {
      EXPECT_NE(s.find("<--"), std::string::npos) << s;
    }
  }
}

TEST(KnowledgeGraphTest, EmptyGraph) {
  KgBuilder b;
  KnowledgeGraph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(KnowledgeGraphTest, IsolatedNodeHasNoArcs) {
  KgBuilder b;
  b.AddNode("lonely", EntityType::kGpe);
  KnowledgeGraph g = b.Build();
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_TRUE(g.OutArcs(0).empty());
}

TEST(KnowledgeGraphTest, ParallelEdgesWithDistinctPredicatesKept) {
  KgBuilder b;
  const NodeId a = b.AddNode("a", EntityType::kPerson);
  const NodeId e = b.AddNode("e", EntityType::kEvent);
  EXPECT_TRUE(b.AddEdge(a, e, "candidate_in").ok());
  EXPECT_TRUE(b.AddEdge(a, e, "winner_of").ok());
  KnowledgeGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(a), 2u);
  EXPECT_EQ(g.Degree(e), 2u);
}

// ---------------------------------------------------------------------------
// LabelIndex
// ---------------------------------------------------------------------------

TEST(LabelIndexTest, NormalizeLabel) {
  EXPECT_EQ(NormalizeLabel("  Swat   Valley "), "swat valley");
  EXPECT_EQ(NormalizeLabel("UPPER DIR"), "upper dir");
  EXPECT_EQ(NormalizeLabel(""), "");
  EXPECT_EQ(NormalizeLabel("   "), "");
}

TEST(LabelIndexTest, LookupIsCaseAndSpaceInsensitive) {
  KnowledgeGraph g = TriangleGraph();
  LabelIndex index(g);
  EXPECT_EQ(index.Lookup("alpha").size(), 1u);
  EXPECT_EQ(index.Lookup("ALPHA")[0], 0u);
  EXPECT_TRUE(index.Lookup("delta").empty());
}

TEST(LabelIndexTest, MultipleNodesShareLabel) {
  KgBuilder b;
  b.AddNode("Springfield", EntityType::kGpe);
  b.AddNode("Springfield", EntityType::kGpe);
  KnowledgeGraph g = b.Build();
  LabelIndex index(g);
  // S(l) holds both nodes (paper Def. 2 allows |S(l)| > 1).
  EXPECT_EQ(index.Lookup("springfield").size(), 2u);
}

TEST(LabelIndexTest, AliasesResolve) {
  KnowledgeGraph g = TriangleGraph();
  LabelIndex index(g);
  index.AddAlias("The Alpha Republic", 0);
  EXPECT_EQ(index.Lookup("the alpha republic").size(), 1u);
  EXPECT_EQ(index.Lookup("the alpha republic")[0], 0u);
}

TEST(LabelIndexTest, DuplicateAliasNotDoubled) {
  KnowledgeGraph g = TriangleGraph();
  LabelIndex index(g);
  index.AddAlias("Alpha", 0);  // already indexed
  EXPECT_EQ(index.Lookup("alpha").size(), 1u);
}

TEST(LabelIndexTest, ForEachLabelVisitsAll) {
  KnowledgeGraph g = TriangleGraph();
  LabelIndex index(g);
  std::set<std::string> seen;
  index.ForEachLabel(
      [&seen](const std::string& label, const std::vector<NodeId>&) {
        seen.insert(label);
      });
  EXPECT_EQ(seen, (std::set<std::string>{"alpha", "beta", "gamma"}));
}

// ---------------------------------------------------------------------------
// TSV I/O
// ---------------------------------------------------------------------------

TEST(KgIoTest, RoundTripPreservesGraph) {
  KnowledgeGraph g = TriangleGraph();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "nl_kg_test").string();
  ASSERT_TRUE(SaveTsv(g, prefix).ok());

  Result<KnowledgeGraph> loaded = LoadTsv(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const KnowledgeGraph& g2 = *loaded;
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g2.label(v), g.label(v));
    EXPECT_EQ(g2.type(v), g.type(v));
    EXPECT_EQ(g2.description(v), g.description(v));
  }
  for (size_t i = 0; i < g.edges().size(); ++i) {
    EXPECT_EQ(g2.edges()[i].src, g.edges()[i].src);
    EXPECT_EQ(g2.edges()[i].dst, g.edges()[i].dst);
    EXPECT_EQ(g2.predicate_name(g2.edges()[i].predicate),
              g.predicate_name(g.edges()[i].predicate));
  }
}

TEST(KgIoTest, EscapesSpecialCharacters) {
  KgBuilder b;
  b.AddNode("tab\there", EntityType::kGpe, "line\nbreak and \\ backslash");
  b.AddNode("plain", EntityType::kGpe);
  EXPECT_TRUE(b.AddEdge(0, 1, "p").ok());
  KnowledgeGraph g = b.Build();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "nl_kg_escape").string();
  ASSERT_TRUE(SaveTsv(g, prefix).ok());
  Result<KnowledgeGraph> loaded = LoadTsv(prefix);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->label(0), "tab\there");
  EXPECT_EQ(loaded->description(0), "line\nbreak and \\ backslash");
}

TEST(KgIoTest, MissingFileIsIOError) {
  Result<KnowledgeGraph> loaded = LoadTsv("/nonexistent/path/prefix");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

}  // namespace
}  // namespace kg
}  // namespace newslink
