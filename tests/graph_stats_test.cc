// Tests for kg::GraphStats / ConnectedComponents / BfsDistance, plus
// corpus TSV persistence.

#include <filesystem>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "corpus/corpus_io.h"
#include "kg/graph_stats.h"
#include "kg/knowledge_graph.h"
#include "kg/synthetic_kg.h"

namespace newslink {
namespace {

kg::KnowledgeGraph TwoComponentGraph() {
  kg::KgBuilder b;
  // Component A: a path of 3 nodes; component B: a pair.
  for (int i = 0; i < 5; ++i) {
    b.AddNode("n" + std::to_string(i), kg::EntityType::kGpe);
  }
  EXPECT_TRUE(b.AddEdge(0, 1, "p").ok());
  EXPECT_TRUE(b.AddEdge(1, 2, "p").ok());
  EXPECT_TRUE(b.AddEdge(3, 4, "p").ok());
  return b.Build();
}

TEST(ConnectedComponentsTest, FindsBothComponents) {
  const kg::KnowledgeGraph g = TwoComponentGraph();
  const std::vector<uint32_t> comp = kg::ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(BfsDistanceTest, PathAndDisconnected) {
  const kg::KnowledgeGraph g = TwoComponentGraph();
  EXPECT_EQ(kg::BfsDistance(g, 0, 0), 0u);
  EXPECT_EQ(kg::BfsDistance(g, 0, 2), 2u);
  EXPECT_EQ(kg::BfsDistance(g, 2, 0), 2u);  // bi-directed symmetry
  EXPECT_EQ(kg::BfsDistance(g, 0, 4), std::numeric_limits<size_t>::max());
}

TEST(GraphStatsTest, CountsComponentsAndDegrees) {
  const kg::KnowledgeGraph g = TwoComponentGraph();
  const kg::GraphStats stats = kg::ComputeGraphStats(g, 0);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_EQ(stats.num_components, 2u);
  EXPECT_EQ(stats.largest_component, 3u);
  // Total bi-directed degree = 2 * 2 * edges / nodes.
  EXPECT_DOUBLE_EQ(stats.average_degree, 6.0 / 5.0);
  EXPECT_EQ(stats.max_degree, 2u);
}

TEST(GraphStatsTest, SyntheticKgIsOneComponent) {
  kg::SyntheticKgConfig config;
  config.seed = 3;
  config.num_countries = 2;
  const kg::SyntheticKg world = kg::SyntheticKgGenerator(config).Generate();
  const kg::GraphStats stats = kg::ComputeGraphStats(world.graph, 4);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.largest_component, world.graph.num_nodes());
  EXPECT_GT(stats.estimated_mean_distance, 1.0);
  EXPECT_LT(stats.estimated_mean_distance, 12.0);  // shallow hierarchy
}

TEST(GraphStatsTest, EmptyGraph) {
  kg::KgBuilder b;
  const kg::KnowledgeGraph g = b.Build();
  const kg::GraphStats stats = kg::ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_components, 0u);
}

// ---------------------------------------------------------------------------
// Corpus TSV persistence
// ---------------------------------------------------------------------------

TEST(CorpusIoTest, RoundTrip) {
  corpus::Corpus c;
  c.Add({"a-1", "Title One", "Body text. Second sentence.", 7});
  c.Add({"a-2", "Tabs\tand\nnewlines", "weird \\ text\there", 9});

  const std::string path =
      (std::filesystem::temp_directory_path() / "nl_corpus_test.tsv")
          .string();
  ASSERT_TRUE(corpus::SaveTsv(c, path).ok());
  Result<corpus::Corpus> loaded = corpus::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded->doc(i).id, c.doc(i).id);
    EXPECT_EQ(loaded->doc(i).title, c.doc(i).title);
    EXPECT_EQ(loaded->doc(i).text, c.doc(i).text);
    EXPECT_EQ(loaded->doc(i).story_id, c.doc(i).story_id);
  }
}

TEST(CorpusIoTest, MissingFileIsIOError) {
  Result<corpus::Corpus> loaded = corpus::LoadTsv("/no/such/file.tsv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(CorpusIoTest, EmptyCorpusRoundTrips) {
  corpus::Corpus c;
  const std::string path =
      (std::filesystem::temp_directory_path() / "nl_corpus_empty.tsv")
          .string();
  ASSERT_TRUE(corpus::SaveTsv(c, path).ok());
  Result<corpus::Corpus> loaded = corpus::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

namespace {

std::string CorpusTempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteRawTsv(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

}  // namespace

TEST(CorpusIoTest, RoundTripPreservesTimestamps) {
  corpus::Corpus c;
  c.Add({"t-0", "Unknown time", "Body.", 0, 0});
  c.Add({"t-1", "Epoch-ish", "Body.", 0, 1});
  c.Add({"t-2", "Recent", "Body.", 1, 1700000000000});
  c.Add({"t-3", "Far future", "Body.", 1,
         std::numeric_limits<int64_t>::max()});

  const std::string path = CorpusTempPath("nl_corpus_ts.tsv");
  ASSERT_TRUE(corpus::SaveTsv(c, path).ok());
  Result<corpus::Corpus> loaded = corpus::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(loaded->doc(i).timestamp_ms, c.doc(i).timestamp_ms) << i;
  }
}

TEST(CorpusIoTest, RejectsPreTimeFourFieldLines) {
  // The pre-time format (no timestamp column) must be a loud Status, not a
  // silent timestamp of 0 (DESIGN.md Sec. 15).
  const std::string path = CorpusTempPath("nl_corpus_4field.tsv");
  WriteRawTsv(path, "d1\t0\tTitle\tBody\n");
  const Result<corpus::Corpus> loaded = corpus::LoadTsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
  EXPECT_NE(loaded.status().ToString().find("want 5 fields"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(CorpusIoTest, RejectsBadTimestamps) {
  const std::string path = CorpusTempPath("nl_corpus_badts.tsv");
  const char* bad_timestamps[] = {
      "-5",                    // negative
      "12x",                   // trailing junk
      "",                      // empty column
      "9223372036854775808",   // int64 max + 1
      "18446744073709551616",  // uint64 overflow
  };
  for (const char* ts : bad_timestamps) {
    WriteRawTsv(path, std::string("d1\t0\t") + ts + "\tTitle\tBody\n");
    const Result<corpus::Corpus> loaded = corpus::LoadTsv(path);
    ASSERT_FALSE(loaded.ok()) << "timestamp '" << ts << "' accepted";
    EXPECT_NE(loaded.status().ToString().find("bad timestamp"),
              std::string::npos)
        << loaded.status().ToString();
  }
  // Largest representable instant still loads.
  WriteRawTsv(path, "d1\t0\t9223372036854775807\tTitle\tBody\n");
  const Result<corpus::Corpus> ok = corpus::LoadTsv(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->doc(0).timestamp_ms, std::numeric_limits<int64_t>::max());
}

}  // namespace
}  // namespace newslink
