// Edge-case and failure-injection tests across the engine surface:
// degenerate inputs, empty structures, timeouts, and misuse that must fail
// softly instead of corrupting results.

#include <gtest/gtest.h>

#include "baselines/lucene_like_engine.h"
#include "baselines/vector_engines.h"
#include "corpus/synthetic_news.h"
#include "embed/lcag_search.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  EdgeCaseTest() : world_(MakeWorld()), labels_(world_.graph) {}

  static kg::SyntheticKg MakeWorld() {
    kg::SyntheticKgConfig config;
    config.seed = 555;
    config.num_countries = 1;
    config.provinces_per_country = 2;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  corpus::Corpus SmallCorpus() {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 6;
    return corpus::SyntheticNewsGenerator(&world_, config)
        .Generate("edge")
        .corpus;
  }

  kg::SyntheticKg world_;
  kg::LabelIndex labels_;
};

// ---------------------------------------------------------------------------
// NewsLinkEngine degenerate inputs
// ---------------------------------------------------------------------------

TEST_F(EdgeCaseTest, EmptyCorpusIndexAndSearch) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  corpus::Corpus empty;
  ASSERT_TRUE(engine.Index(empty).ok());
  EXPECT_TRUE(engine.Search({"anything", 5}).hits.empty());
  EXPECT_EQ(engine.EmbeddedDocumentFraction(), 0.0);
}

TEST_F(EdgeCaseTest, EmptyQueryReturnsEmpty) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(SmallCorpus()).ok());
  EXPECT_TRUE(engine.Search({"", 5}).hits.empty());
}

TEST_F(EdgeCaseTest, StopwordOnlyQueryReturnsEmpty) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(SmallCorpus()).ok());
  EXPECT_TRUE(engine.Search({"the and of with", 5}).hits.empty());
}

TEST_F(EdgeCaseTest, KZeroReturnsEmpty) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  const corpus::Corpus corpus = SmallCorpus();
  ASSERT_TRUE(engine.Index(corpus).ok());
  const std::string& text = corpus.doc(0).text;
  EXPECT_TRUE(engine.Search({text.substr(0, 60), 0}).hits.empty());
}

TEST_F(EdgeCaseTest, QueryWithOnlyUnknownWordsAtBetaOne) {
  NewsLinkConfig config;
  config.beta = 1.0;
  NewsLinkEngine engine(&world_.graph, &labels_, config);
  ASSERT_TRUE(engine.Index(SmallCorpus()).ok());
  // Nothing links to the KG: BON side is empty and no results leak through.
  EXPECT_TRUE(engine.Search({"zzzz qqqq xxxx", 5}).hits.empty());
}

TEST_F(EdgeCaseTest, PunctuationOnlyDocumentIndexes) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  corpus::Corpus corpus;
  corpus.Add({"p-0", "", "... !!! ???", 0});
  corpus.Add({"p-1", "", "A normal sentence about nothing in particular.", 0});
  engine.Index(corpus);  // must not crash
  EXPECT_EQ(engine.num_indexed_docs(), 2u);
  EXPECT_TRUE(engine.doc_embedding(0).empty());
}

TEST_F(EdgeCaseTest, SearchExplainedOnBetaZero) {
  NewsLinkConfig config;
  config.beta = 0.0;
  NewsLinkEngine engine(&world_.graph, &labels_, config);
  const corpus::Corpus corpus = SmallCorpus();
  ASSERT_TRUE(engine.Index(corpus).ok());
  const std::string& text = corpus.doc(1).text;
  const auto results =
      engine.Search({.query = text.substr(0, text.find('.') + 1), .k = 3, .explain = true, .max_paths_per_result = 3}).hits;
  EXPECT_FALSE(results.empty());  // explanations still computed at beta=0
}

// ---------------------------------------------------------------------------
// LCAG timeout / degenerate labels
// ---------------------------------------------------------------------------

TEST_F(EdgeCaseTest, LcagZeroTimeoutReportsTimedOut) {
  embed::LcagSearch search(&world_.graph, &labels_);
  embed::LcagOptions options;
  options.timeout_seconds = 0.0;
  // Entities far apart force expansion; the 256-pop timeout check fires
  // before any candidate on a graph this size only if labels are far, so
  // use max_expansions to guarantee determinism of the assertion:
  options.max_expansions = 1;
  const std::string l1 = kg::NormalizeLabel(
      world_.graph.label(world_.Category("city")[0]));
  const std::string l2 = kg::NormalizeLabel(
      world_.graph.label(world_.Category("city").back()));
  const embed::LcagResult result = search.Find({l1, l2}, options);
  EXPECT_FALSE(result.found);
}

TEST_F(EdgeCaseTest, DuplicateLabelsInGroupAreHarmless) {
  embed::LcagSearch search(&world_.graph, &labels_);
  const std::string l = kg::NormalizeLabel(
      world_.graph.label(world_.Category("district")[0]));
  const embed::LcagResult result = search.Find({l, l, l});
  ASSERT_TRUE(result.found);
  // Three identical labels: all distances zero.
  for (double d : result.graph.label_distances) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST_F(EdgeCaseTest, EmptyLabelListNotFound) {
  embed::LcagSearch search(&world_.graph, &labels_);
  EXPECT_FALSE(search.Find({}).found);
}

// ---------------------------------------------------------------------------
// Baselines degenerate inputs
// ---------------------------------------------------------------------------

TEST_F(EdgeCaseTest, LuceneEmptyCorpus) {
  baselines::LuceneLikeEngine engine;
  corpus::Corpus empty;
  ASSERT_TRUE(engine.Index(empty).ok());
  EXPECT_TRUE(engine.Search({"anything", 3}).hits.empty());
}

TEST_F(EdgeCaseTest, VectorEngineSingleDocCorpus) {
  corpus::Corpus one;
  one.Add({"solo", "", "striker goal match league goal striker.", 0});
  vec::SgnsConfig config;
  config.dim = 8;
  config.min_count = 1;
  baselines::SbertLikeEngine engine(config);
  ASSERT_TRUE(engine.Index(one).ok());
  const auto results = engine.Search({"goal", 5}).hits;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_index, 0u);
}

// ---------------------------------------------------------------------------
// Fuzz-ish: engine must survive adversarial document content
// ---------------------------------------------------------------------------

TEST_F(EdgeCaseTest, AdversarialDocumentsDoNotBreakIndexing) {
  corpus::Corpus corpus;
  corpus.Add({"a", "", std::string(5000, 'x'), 0});        // one huge token
  corpus.Add({"b", "", "A. B. C. D. E. F. G.", 0});        // initials
  corpus.Add({"c", "", "Mr. Dr. Gen. St. vs. etc.", 0});   // abbreviations
  corpus.Add({"d", "", "\t\n  \n\t", 0});                  // whitespace only
  corpus.Add({"e", "", "Word", 0});                        // no terminator
  std::string tabs = "Tab\tseparated\ttokens\tgalore.";
  corpus.Add({"f", "", tabs, 0});
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(corpus).ok());
  EXPECT_EQ(engine.num_indexed_docs(), 6u);
  EXPECT_FALSE(engine.Search({"word", 3}).hits.empty());
}

}  // namespace
}  // namespace newslink
