// common/json: the wire document model. Round trips must be lossless for
// every shape the /v1 protocol uses, the writer must emit valid JSON for
// hostile strings, and the strict parser must reject malformed documents
// with a useful byte offset instead of guessing.

#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace newslink {
namespace json {
namespace {

/// Parse `text` or fail the test with the parser's message.
Value MustParse(const std::string& text) {
  Result<Value> parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " for " << text;
  return parsed.ok() ? std::move(parsed).value() : Value();
}

TEST(JsonWriterTest, Scalars) {
  EXPECT_EQ(Value::Null().Dump(), "null");
  EXPECT_EQ(Value::Bool(true).Dump(), "true");
  EXPECT_EQ(Value::Bool(false).Dump(), "false");
  EXPECT_EQ(Value::Str("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Value::Number(1.5).Dump(), "1.5");
}

TEST(JsonWriterTest, IntegralNumbersRenderWithoutDecimalPoint) {
  EXPECT_EQ(Value::Int(0).Dump(), "0");
  EXPECT_EQ(Value::Int(-42).Dump(), "-42");
  EXPECT_EQ(Value::Uint(9007199254740992ull).Dump(), "9007199254740992");
}

TEST(JsonWriterTest, NonFiniteNumbersRenderAsNull) {
  EXPECT_EQ(Value::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(Value::Number(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
}

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(Value::Str("a\"b\\c").Dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Value::Str("line\nbreak\ttab").Dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Value::Str(std::string("nul\0byte", 8)).Dump(),
            "\"nul\\u0000byte\"");
}

TEST(JsonWriterTest, Utf8PassesThroughVerbatim) {
  const std::string s = "caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x97\x9e";
  EXPECT_EQ(Value::Str(s).Dump(), "\"" + s + "\"");
}

TEST(JsonWriterTest, ObjectsPreserveInsertionOrder) {
  Value v = Value::Object();
  v.Set("zebra", Value::Int(1));
  v.Set("alpha", Value::Int(2));
  v.Set("mid", Value::Str("x"));
  EXPECT_EQ(v.Dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":\"x\"}");
}

TEST(JsonParserTest, ScalarsAndWhitespace) {
  EXPECT_TRUE(MustParse(" null ").is_null());
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool(true));
  EXPECT_DOUBLE_EQ(MustParse("-2.75e2").AsDouble(), -275.0);
  EXPECT_EQ(MustParse("\t42\n").AsInt(), 42);
  EXPECT_TRUE(MustParse("17").integral());
  EXPECT_FALSE(MustParse("17.5").integral());
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(MustParse("\"a\\u0041\\n\"").AsString(), "aA\n");
  // U+1F5DE (rolled-up newspaper) as a surrogate pair.
  EXPECT_EQ(MustParse("\"\\ud83d\\uddde\"").AsString(), "\xf0\x9f\x97\x9e");
}

TEST(JsonParserTest, NestedDocument) {
  const Value v = MustParse(
      "{\"hits\": [{\"doc_index\": 3, \"score\": 0.5, "
      "\"paths\": [\"a\", \"b\"]}], \"epoch\": 2}");
  const Value* hits = v.Find("hits");
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(hits->at(0).Find("doc_index")->AsUint(), 3u);
  EXPECT_EQ(hits->at(0).Find("paths")->size(), 2u);
  EXPECT_EQ(v.Find("epoch")->AsUint(), 2u);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParserTest, RoundTripIsStable) {
  const std::string wire =
      "{\"query\":\"berlin \\\"wall\\\"\",\"k\":10,\"beta\":0.25,"
      "\"flags\":[true,false,null],\"nested\":{\"deep\":[1,2,3]}}";
  const Value once = MustParse(wire);
  EXPECT_EQ(once.Dump(), wire);
  EXPECT_EQ(MustParse(once.Dump()).Dump(), wire);
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",          "{",        "[1,",       "{\"a\":}",  "nul",
      "tru",       "01",       "+1",        "1.",        "\"unterminated",
      "\"\\q\"",   "{'a':1}",  "[1 2]",     "{\"a\" 1}", "\"\\ud83d\"",
      "{\"a\":1,}"};
  for (const char* text : bad) {
    EXPECT_FALSE(Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("{} {}").ok());
  EXPECT_FALSE(Parse("1 1").ok());
  EXPECT_FALSE(Parse("null x").ok());
}

TEST(JsonParserTest, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 8; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 8; ++i) deep += "]";
  EXPECT_TRUE(Parse(deep, /*max_depth=*/8).ok());
  EXPECT_FALSE(Parse(deep, /*max_depth=*/7).ok());
}

TEST(JsonParserTest, ErrorsCarryByteOffset) {
  const Result<Value> r = Parse("{\"a\": nope}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("at byte"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace json
}  // namespace newslink
