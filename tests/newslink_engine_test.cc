// Tests for the full NewsLinkEngine: indexing, β-fused search (Eq. 3),
// explained search, timing instrumentation, TreeEmb mode.

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "baselines/lucene_like_engine.h"
#include "corpus/synthetic_news.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"
#include "newslink/shard_api.h"

namespace newslink {
namespace {

class NewsLinkEngineTest : public ::testing::Test {
 protected:
  NewsLinkEngineTest() : kg_(MakeKg()), index_(kg_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 25;
    corpus_ = corpus::SyntheticNewsGenerator(&kg_, config).Generate();
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 77;
    config.num_countries = 2;
    config.provinces_per_country = 3;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  NewsLinkEngine MakeEngine(double beta,
                            EmbedderKind kind = EmbedderKind::kLcag) {
    NewsLinkConfig config;
    config.beta = beta;
    config.embedder = kind;
    config.num_threads = 2;
    return NewsLinkEngine(&kg_.graph, &index_, config);
  }

  std::string FirstSentenceOf(size_t doc) const {
    const std::string& text = corpus_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex index_;
  corpus::SyntheticCorpus corpus_;
};

TEST_F(NewsLinkEngineTest, NameReflectsConfig) {
  EXPECT_EQ(MakeEngine(0.2).name(), "NewsLink(0.2)");
  EXPECT_EQ(MakeEngine(1.0, EmbedderKind::kTree).name(), "TreeEmb(1)");
}

TEST_F(NewsLinkEngineTest, IndexEmbedsMostDocuments) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  EXPECT_EQ(engine.num_indexed_docs(), corpus_.corpus.size());
  // The paper reports 91-96% corpus coverage; our generator should match.
  EXPECT_GT(engine.EmbeddedDocumentFraction(), 0.9);
}

TEST_F(NewsLinkEngineTest, PartialQueryRecoversSourceDocument) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  size_t hits = 0;
  const size_t trials = 20;
  for (size_t d = 0; d < trials; ++d) {
    const auto results = engine.Search({FirstSentenceOf(d), 5}).hits;
    for (const auto& r : results) {
      if (r.doc_index == d) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, trials - 3);  // robust recovery
}

TEST_F(NewsLinkEngineTest, BetaZeroMatchesLuceneRanking) {
  NewsLinkEngine engine = MakeEngine(0.0);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  baselines::LuceneLikeEngine lucene;
  ASSERT_TRUE(lucene.Index(corpus_.corpus).ok());

  for (size_t d = 0; d < 10; ++d) {
    const std::string q = FirstSentenceOf(d);
    const auto a = engine.Search({q, 5}).hits;
    const auto b = lucene.Search({q, 5}).hits;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc_index, b[i].doc_index)
          << "beta=0 must reduce to the Lucene approach (paper Table VII)";
    }
  }
}

TEST_F(NewsLinkEngineTest, PureBonSearchWorks) {
  NewsLinkEngine engine = MakeEngine(1.0);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const auto results = engine.Search({FirstSentenceOf(3), 5}).hits;
  EXPECT_FALSE(results.empty());
}

TEST_F(NewsLinkEngineTest, ScoresAreDescending) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const auto results = engine.Search({FirstSentenceOf(0), 10}).hits;
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].score, results[i - 1].score);
  }
}

TEST_F(NewsLinkEngineTest, FusedScoresBoundedByOne) {
  // Both sides are max-normalized, so a fused score is at most 1.
  NewsLinkEngine engine = MakeEngine(0.5);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  for (const auto& r : engine.Search({FirstSentenceOf(0), 10}).hits) {
    EXPECT_LE(r.score, 1.0 + 1e-9);
    EXPECT_GE(r.score, 0.0);
  }
}

TEST_F(NewsLinkEngineTest, SearchExplainedAttachesPaths) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const auto results = engine.Search({.query = FirstSentenceOf(5), .k = 3, .explain = true, .max_paths_per_result = 4}).hits;
  ASSERT_FALSE(results.empty());
  bool any_paths = false;
  for (const auto& r : results) {
    EXPECT_LE(r.paths.size(), 4u);
    if (!r.paths.empty()) {
      any_paths = true;
      const std::string rendered = r.paths[0].Render(kg_.graph);
      EXPECT_FALSE(rendered.empty());
    }
  }
  EXPECT_TRUE(any_paths);
}

TEST_F(NewsLinkEngineTest, EmbedTextProducesEmbeddingForEntitySentence) {
  NewsLinkEngine engine = MakeEngine(0.2);
  const embed::DocumentEmbedding emb =
      engine.EmbedText(FirstSentenceOf(0) + " " + FirstSentenceOf(1));
  // Synthetic sentences nearly always carry entities; embedding non-empty.
  EXPECT_FALSE(emb.empty());
}

TEST_F(NewsLinkEngineTest, IndexStageHistogramsCoverAllComponents) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const metrics::Registry& metrics = engine.Metrics();
  const uint64_t docs = corpus_.corpus.size();
  EXPECT_EQ(metrics.FindHistogram(kIndexNlpSeconds)->Count(), docs);
  EXPECT_EQ(metrics.FindHistogram(kIndexNeSeconds)->Count(), docs);
  EXPECT_EQ(metrics.FindHistogram(kIndexNsSeconds)->Count(), docs);
  EXPECT_GT(metrics.FindHistogram(kIndexNeSeconds)->Sum(), 0.0);
}

TEST_F(NewsLinkEngineTest, QueryStageHistogramsAccumulatePerQuery) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  engine.Search({FirstSentenceOf(0), 5}).hits;
  engine.Search({FirstSentenceOf(1), 5}).hits;
  const metrics::Registry& metrics = engine.Metrics();
  EXPECT_EQ(metrics.FindHistogram(kQueryNlpSeconds)->Count(), 2u);
  EXPECT_EQ(metrics.FindHistogram(kQueryNeSeconds)->Count(), 2u);
  EXPECT_EQ(metrics.FindHistogram(kQueryNsSeconds)->Count(), 2u);
  // The shared engine-level series move in lockstep.
  EXPECT_EQ(metrics.CounterValue(baselines::kEngineQueries), 2u);
  EXPECT_EQ(metrics.FindHistogram(baselines::kEngineQuerySeconds)->Count(),
            2u);
}

TEST_F(NewsLinkEngineTest, TraceSpansCoverEveryFusedQueryStage) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

  baselines::SearchRequest request;
  request.query = FirstSentenceOf(0);
  request.k = 5;
  request.explain = true;
  request.max_paths_per_result = 3;
  request.trace = true;
  const baselines::SearchResponse response = engine.Search(request);

  const TraceSpan& root = response.trace;
  EXPECT_EQ(root.name, "search");
  EXPECT_GT(root.duration_seconds, 0.0);
  ASSERT_EQ(root.children.size(), 4u);
  EXPECT_EQ(root.children[0].name, "nlp");
  EXPECT_EQ(root.children[1].name, "ne");
  EXPECT_EQ(root.children[2].name, "ns");
  EXPECT_EQ(root.children[3].name, "explain");

  // The NLP span notes the segment count; the NS span notes how many
  // documents each side scored.
  ASSERT_FALSE(root.children[0].notes.empty());
  EXPECT_EQ(root.children[0].notes[0].first, "segments");
  const TraceSpan* ns = root.Find("ns");
  ASSERT_NE(ns, nullptr);
  ASSERT_EQ(ns->notes.size(), 2u);
  EXPECT_EQ(ns->notes[0].first, "bow_scored");
  EXPECT_EQ(ns->notes[1].first, "bon_scored");

  // The NE stage nests one "segment" span per embedded entity group.
  const TraceSpan* ne = root.Find("ne");
  ASSERT_NE(ne, nullptr);
  EXPECT_FALSE(ne->children.empty());
  EXPECT_EQ(ne->children[0].name, "segment");

  // The stage spans account for (nearly) all of the query's wall-clock;
  // the bench gates the concurrent mean at 95%, unit tests use a laxer
  // bound to stay robust on loaded CI machines.
  EXPECT_GE(root.ChildrenSeconds(), 0.80 * root.duration_seconds);
  EXPECT_LE(root.ChildrenSeconds(), root.duration_seconds + 1e-9);

  // The response timings are the same tree, bucketed.
  EXPECT_EQ(response.timings.Count("nlp"), 1);
  EXPECT_NEAR(response.timings.TotalSeconds("ns"), ns->duration_seconds,
              1e-12);
}

TEST_F(NewsLinkEngineTest, TraceIsOptInAndNeSkipNoted) {
  NewsLinkEngine engine = MakeEngine(0.0);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

  baselines::SearchRequest request;
  request.query = FirstSentenceOf(1);
  request.k = 5;
  const baselines::SearchResponse untraced = engine.Search(request);
  EXPECT_TRUE(untraced.trace.empty());

  request.trace = true;
  const baselines::SearchResponse traced = engine.Search(request);
  // beta == 0 without explanations: the NE stage is skipped and says so.
  const TraceSpan* ne = traced.trace.Find("ne");
  ASSERT_NE(ne, nullptr);
  ASSERT_EQ(ne->notes.size(), 1u);
  EXPECT_EQ(ne->notes[0].first, "skipped");
  EXPECT_EQ(ne->notes[0].second, "beta=0");
  EXPECT_TRUE(ne->children.empty());
}

TEST_F(NewsLinkEngineTest, SlowQueryLogRecordsTraceAboveThreshold) {
  NewsLinkConfig config;
  config.beta = 0.2;
  config.num_threads = 2;
  config.slow_query_threshold_seconds = 1e-9;  // everything is "slow"
  config.slow_query_log_capacity = 4;
  NewsLinkEngine engine(&kg_.graph, &index_, config);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

  for (size_t d = 0; d < 6; ++d) engine.Search({FirstSentenceOf(d), 3}).hits;
  EXPECT_EQ(engine.slow_query_log().size(), 4u);  // bounded at capacity
  const std::vector<SlowQueryRecord> entries = engine.slow_query_log().Entries();
  EXPECT_EQ(entries.back().query, FirstSentenceOf(5));
  EXPECT_EQ(entries.back().trace.name, "search");
  EXPECT_FALSE(entries.back().trace.children.empty());
  EXPECT_EQ(engine.Metrics().CounterValue(kSlowQueries), 6u);

  // Disabled by default: no records, no overhead.
  NewsLinkEngine quiet = MakeEngine(0.2);
  ASSERT_TRUE(quiet.Index(corpus_.corpus).ok());
  quiet.Search({FirstSentenceOf(0), 3}).hits;
  EXPECT_EQ(quiet.slow_query_log().size(), 0u);
}

TEST_F(NewsLinkEngineTest, TreeEmbedderModeIndexesAndSearches) {
  NewsLinkEngine engine = MakeEngine(0.2, EmbedderKind::kTree);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  EXPECT_GT(engine.EmbeddedDocumentFraction(), 0.9);
  const auto results = engine.Search({FirstSentenceOf(2), 5}).hits;
  EXPECT_FALSE(results.empty());
}

TEST_F(NewsLinkEngineTest, TreeEmbeddingsAreSmallerThanLcag) {
  // Coverage property: G* retains parallel shortest paths, trees do not,
  // so LCAG embeddings must have at least as many nodes on average.
  NewsLinkEngine lcag = MakeEngine(1.0);
  NewsLinkEngine tree = MakeEngine(1.0, EmbedderKind::kTree);
  ASSERT_TRUE(lcag.Index(corpus_.corpus).ok());
  ASSERT_TRUE(tree.Index(corpus_.corpus).ok());
  size_t lcag_nodes = 0, tree_nodes = 0;
  for (size_t i = 0; i < corpus_.corpus.size(); ++i) {
    lcag_nodes += lcag.doc_embedding(i).num_distinct_nodes();
    tree_nodes += tree.doc_embedding(i).num_distinct_nodes();
  }
  EXPECT_GE(lcag_nodes, tree_nodes);
}

TEST_F(NewsLinkEngineTest, ReorderedIndexReturnsSameHitsAsNaturalOrder) {
  // reorder_docs renumbers internal doc ids by SimHash signature but the
  // API speaks corpus row numbers throughout, so searches must surface the
  // same documents with the same scores. Ranks may swap only between docs
  // whose fused scores tie (the fused heap breaks ties by internal id).
  NewsLinkEngine natural = MakeEngine(0.2);
  NewsLinkConfig config;
  config.beta = 0.2;
  config.num_threads = 2;
  config.reorder_docs = true;
  NewsLinkEngine reordered(&kg_.graph, &index_, config);
  ASSERT_TRUE(natural.Index(corpus_.corpus).ok());
  ASSERT_TRUE(reordered.Index(corpus_.corpus).ok());
  EXPECT_EQ(reordered.num_indexed_docs(), corpus_.corpus.size());

  for (size_t d = 0; d < 10; ++d) {
    const std::string q = FirstSentenceOf(d);
    const auto a = natural.Search({q, 8}).hits;
    const auto b = reordered.Search({q, 8}).hits;
    ASSERT_EQ(a.size(), b.size()) << "query doc " << d;
    std::map<size_t, double> a_scores, b_scores;
    for (const auto& h : a) a_scores[h.doc_index] = h.score;
    for (const auto& h : b) b_scores[h.doc_index] = h.score;
    for (const auto& [doc, score] : a_scores) {
      const auto it = b_scores.find(doc);
      if (it != b_scores.end()) {
        EXPECT_NEAR(score, it->second, 1e-9) << "doc " << doc;
      } else {
        // Boundary swap: only legal between tying scores.
        EXPECT_NEAR(score, a.back().score, 1e-9) << "doc " << doc;
      }
    }
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(b[i].score, a[i].score, 1e-9) << "rank " << i;
    }
  }
}

TEST_F(NewsLinkEngineTest, ReorderKeepsEmbeddingsInCorpusRowOrder) {
  NewsLinkEngine natural = MakeEngine(0.2);
  NewsLinkConfig config;
  config.beta = 0.2;
  config.num_threads = 2;
  config.reorder_docs = true;
  NewsLinkEngine reordered(&kg_.graph, &index_, config);
  ASSERT_TRUE(natural.Index(corpus_.corpus).ok());
  ASSERT_TRUE(reordered.Index(corpus_.corpus).ok());

  // doc_embedding(i) and SnapshotEmbeddings() both address corpus rows, so
  // the reordered engine must agree with the natural one row by row.
  const auto natural_embs = natural.SnapshotEmbeddings();
  const auto reordered_embs = reordered.SnapshotEmbeddings();
  ASSERT_EQ(natural_embs.size(), reordered_embs.size());
  for (size_t i = 0; i < natural_embs.size(); ++i) {
    EXPECT_EQ(reordered_embs[i].node_counts, natural_embs[i].node_counts)
        << "row " << i;
    EXPECT_EQ(reordered.doc_embedding(i).node_counts,
              natural.doc_embedding(i).node_counts)
        << "row " << i;
  }
}

TEST_F(NewsLinkEngineTest, AddDocumentOnReorderedIndexUsesNextCorpusRow) {
  NewsLinkConfig config;
  config.beta = 0.2;
  config.num_threads = 2;
  config.reorder_docs = true;
  NewsLinkEngine engine(&kg_.graph, &index_, config);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

  corpus::Document doc = corpus_.corpus.doc(7);
  doc.id = "live-append";
  const size_t row = engine.AddDocument(doc);
  EXPECT_EQ(row, corpus_.corpus.size());
  EXPECT_EQ(engine.num_indexed_docs(), corpus_.corpus.size() + 1);
  // The appended copy is a duplicate of row 7, so a query drawn from doc 7
  // must surface the new row among its hits.
  const auto hits = engine.Search({FirstSentenceOf(7), 10}).hits;
  const bool found = std::any_of(
      hits.begin(), hits.end(),
      [row](const baselines::SearchHit& h) { return h.doc_index == row; });
  EXPECT_TRUE(found) << "live-appended duplicate not retrievable";
}

TEST_F(NewsLinkEngineTest, BulkIndexingRequiresEmptyEngine) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  EXPECT_TRUE(engine.Index(corpus_.corpus).IsFailedPrecondition());
  EXPECT_TRUE(engine
                  .IndexWithEmbeddings(corpus_.corpus,
                                       engine.SnapshotEmbeddings())
                  .IsFailedPrecondition());
}

TEST_F(NewsLinkEngineTest, DeterministicAcrossRuns) {
  NewsLinkEngine a = MakeEngine(0.2);
  NewsLinkEngine b = MakeEngine(0.2);
  ASSERT_TRUE(a.Index(corpus_.corpus).ok());
  ASSERT_TRUE(b.Index(corpus_.corpus).ok());
  const auto ra = a.Search({FirstSentenceOf(4), 10}).hits;
  const auto rb = b.Search({FirstSentenceOf(4), 10}).hits;
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].doc_index, rb[i].doc_index);
    EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score);
  }
}

// ---------------------------------------------------------------------------
// Time-aware search (DESIGN.md Sec. 15): time_range pushdown + recency decay
// ---------------------------------------------------------------------------

TEST_F(NewsLinkEngineTest, TimeRangeBoundariesAreHalfOpen) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const size_t target = 4;
  const int64_t t = corpus_.corpus.doc(target).timestamp_ms;
  ASSERT_GT(t, 0);

  auto search_in = [&](baselines::TimeRange range) {
    baselines::SearchRequest req;
    req.query = FirstSentenceOf(target);
    req.k = corpus_.corpus.size();
    req.time_range = range;
    return engine.Search(req).hits;
  };
  auto contains_target = [&](const std::vector<baselines::SearchHit>& hits) {
    return std::any_of(hits.begin(), hits.end(),
                       [&](const baselines::SearchHit& h) {
                         return h.doc_index == target;
                       });
  };

  // The window is [after_ms, before_ms): a timestamp equal to after_ms is
  // inside, one equal to before_ms is outside.
  EXPECT_TRUE(contains_target(search_in({t, t + 1})));
  EXPECT_FALSE(contains_target(search_in({t + 1,
                                          std::numeric_limits<int64_t>::max()})));
  EXPECT_FALSE(contains_target(search_in({0, t})));
  EXPECT_TRUE(contains_target(
      search_in({t, std::numeric_limits<int64_t>::max()})));

  // Every hit of a windowed search carries an in-window timestamp.
  for (const baselines::SearchHit& h : search_in({t, t + 1})) {
    EXPECT_EQ(corpus_.corpus.doc(h.doc_index).timestamp_ms, t);
  }
}

TEST_F(NewsLinkEngineTest, TimeRangePushdownMatchesPostHocExhaustiveFilter) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const size_t n = corpus_.corpus.size();

  int64_t t_min = std::numeric_limits<int64_t>::max(), t_max = 0;
  for (const corpus::Document& d : corpus_.corpus.docs()) {
    t_min = std::min(t_min, d.timestamp_ms);
    t_max = std::max(t_max, d.timestamp_ms);
  }
  const int64_t quarter = (t_max - t_min) / 4;
  const std::vector<baselines::TimeRange> windows = {
      {t_min + quarter, t_min + 3 * quarter},
      {t_min, t_min + quarter},
      {t_min + 3 * quarter, std::numeric_limits<int64_t>::max()},
  };

  for (size_t d = 0; d < 6; ++d) {
    const std::string q = FirstSentenceOf(d * 3);
    baselines::SearchRequest unfiltered;
    unfiltered.query = q;
    unfiltered.k = n;
    unfiltered.exhaustive_fusion = true;
    const auto all_hits = engine.Search(unfiltered).hits;

    for (const baselines::TimeRange& window : windows) {
      // Reference: the exhaustive unfiltered ranking, filtered post hoc.
      // Normalization bases can differ, so the property is doc-SET
      // equality (which documents survive), not score equality.
      std::set<size_t> expected;
      for (const baselines::SearchHit& h : all_hits) {
        if (window.Contains(corpus_.corpus.doc(h.doc_index).timestamp_ms)) {
          expected.insert(h.doc_index);
        }
      }

      baselines::SearchRequest exact;
      exact.query = q;
      exact.k = n;
      exact.exhaustive_fusion = true;
      exact.time_range = window;
      const auto exact_hits = engine.Search(exact).hits;
      std::set<size_t> got;
      for (const baselines::SearchHit& h : exact_hits) {
        got.insert(h.doc_index);
      }
      EXPECT_EQ(got, expected) << q;

      // And the pruned path agrees with the exhaustive oracle under the
      // same window: same document set, scores within the usual DAAT/TAAT
      // summation-order tolerance.
      baselines::SearchRequest pruned = exact;
      pruned.exhaustive_fusion = false;
      const auto pruned_hits = engine.Search(pruned).hits;
      ASSERT_EQ(pruned_hits.size(), exact_hits.size()) << q;
      std::map<size_t, double> exact_scores;
      for (const baselines::SearchHit& h : exact_hits) {
        exact_scores[h.doc_index] = h.score;
      }
      for (const baselines::SearchHit& h : pruned_hits) {
        const auto it = exact_scores.find(h.doc_index);
        ASSERT_NE(it, exact_scores.end()) << "doc " << h.doc_index;
        EXPECT_NEAR(h.score, it->second, 1e-9) << "doc " << h.doc_index;
      }
    }
  }
}

TEST_F(NewsLinkEngineTest, InfiniteHalfLifeIsBitExactWithRecencyDisabled) {
  // +infinity decays every score by exactly 1.0, an IEEE identity — so the
  // recency code path must reproduce the no-recency ranking bit for bit,
  // with and without doc-id reordering, before and after an epoch change.
  for (const bool reorder : {false, true}) {
    NewsLinkConfig config;
    config.beta = 0.2;
    config.num_threads = 2;
    config.reorder_docs = reorder;
    NewsLinkEngine engine(&kg_.graph, &index_, config);
    ASSERT_TRUE(engine.Index(corpus_.corpus).ok());

    auto expect_bit_exact = [&]() {
      for (size_t d = 0; d < 5; ++d) {
        baselines::SearchRequest plain;
        plain.query = FirstSentenceOf(d);
        plain.k = 10;
        baselines::SearchRequest inf = plain;
        inf.recency_half_life_seconds =
            std::numeric_limits<double>::infinity();
        const auto a = engine.Search(plain).hits;
        const auto b = engine.Search(inf).hits;
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(b[i].doc_index, a[i].doc_index) << "reorder " << reorder;
          EXPECT_EQ(b[i].score, a[i].score) << "reorder " << reorder;
        }
      }
    };
    expect_bit_exact();

    // A live append publishes a new epoch; the identity must survive it.
    corpus::Document doc = corpus_.corpus.doc(2);
    doc.id = "live-epoch-bump";
    engine.AddDocument(doc);
    expect_bit_exact();
  }
}

TEST_F(NewsLinkEngineTest, RecencyDecayMultipliesFusedScoresExactly) {
  NewsLinkEngine engine = MakeEngine(0.2);
  ASSERT_TRUE(engine.Index(corpus_.corpus).ok());
  const size_t n = corpus_.corpus.size();

  int64_t t_max = 0;
  for (const corpus::Document& d : corpus_.corpus.docs()) {
    t_max = std::max(t_max, d.timestamp_ms);
  }
  const int64_t now = t_max + 1000;
  const double half_life_s = 6 * 3600.0;

  for (size_t d = 0; d < 5; ++d) {
    baselines::SearchRequest base;
    base.query = FirstSentenceOf(d * 2);
    base.k = n;
    base.exhaustive_fusion = true;
    const auto undecayed = engine.Search(base).hits;
    std::map<size_t, double> base_score;
    for (const baselines::SearchHit& h : undecayed) {
      base_score[h.doc_index] = h.score;
    }

    baselines::SearchRequest decayed = base;
    decayed.recency_half_life_seconds = half_life_s;
    decayed.now_ms = now;
    const auto hits = engine.Search(decayed).hits;
    ASSERT_EQ(hits.size(), undecayed.size());
    for (const baselines::SearchHit& h : hits) {
      const auto it = base_score.find(h.doc_index);
      ASSERT_NE(it, base_score.end());
      const double expected =
          it->second * RecencyDecay(corpus_.corpus.doc(h.doc_index).timestamp_ms,
                                    now, half_life_s);
      EXPECT_EQ(h.score, expected) << "doc " << h.doc_index;
      EXPECT_LE(h.score, it->second);  // decay only ever shrinks scores
    }
  }
}

}  // namespace
}  // namespace newslink
