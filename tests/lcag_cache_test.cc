// Tests for the LCAG result cache: LRU mechanics, sharding, canonical
// (label-order independent) keys, cached-vs-uncached agreement, the
// budget_exhausted truncation signal, and thread-safety under concurrent
// lookups/inserts.

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "embed/lcag_cache.h"
#include "embed/lcag_search.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"

namespace newslink {
namespace embed {
namespace {

/// The Fig. 1 topology of the paper (same layout as embed_test.cc): two
/// parallel 2-hop paths Taliban -> Khyber plus one-hop neighbours.
class LcagCacheSearchTest : public ::testing::Test {
 protected:
  LcagCacheSearchTest() {
    kg::KgBuilder b;
    khyber_ = b.AddNode("Khyber", kg::EntityType::kGpe);
    waziristan_ = b.AddNode("Waziristan", kg::EntityType::kGpe);
    taliban_ = b.AddNode("Taliban", kg::EntityType::kNorp);
    kunar_ = b.AddNode("Kunar", kg::EntityType::kGpe);
    pakistan_ = b.AddNode("Pakistan", kg::EntityType::kGpe);
    upper_dir_ = b.AddNode("Upper Dir", kg::EntityType::kGpe);
    swat_ = b.AddNode("Swat Valley", kg::EntityType::kGpe);
    auto edge = [&b](kg::NodeId s, kg::NodeId d, const char* p) {
      ASSERT_TRUE(b.AddEdge(s, d, p).ok());
    };
    edge(taliban_, waziristan_, "operates_in");
    edge(waziristan_, khyber_, "located_in");
    edge(taliban_, kunar_, "operates_in");
    edge(kunar_, khyber_, "located_in");
    edge(upper_dir_, khyber_, "located_in");
    edge(swat_, khyber_, "located_in");
    edge(khyber_, pakistan_, "part_of");
    graph_ = b.Build();
    index_ = kg::LabelIndex(graph_);
  }

  kg::NodeId khyber_, waziristan_, taliban_, kunar_, pakistan_, upper_dir_,
      swat_;
  kg::KnowledgeGraph graph_;
  kg::LabelIndex index_;
};

LcagResult MakeResult(kg::NodeId root) {
  LcagResult r;
  r.found = true;
  r.graph.root = root;
  r.graph.nodes = {root};
  return r;
}

TEST(LcagCacheTest, InsertLookupRoundTrip) {
  LcagCache cache(8, 2);
  EXPECT_TRUE(cache.enabled());
  LcagResult out;
  EXPECT_FALSE(cache.Lookup("a", &out));
  cache.Insert("a", MakeResult(7));
  ASSERT_TRUE(cache.Lookup("a", &out));
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.graph.root, 7u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  // The same numbers are visible through the consolidated registry view.
  EXPECT_EQ(cache.Metrics().CounterValue(kLcagCacheHits), 1u);
  EXPECT_EQ(cache.Metrics().CounterValue(kLcagCacheMisses), 1u);
  EXPECT_EQ(cache.Metrics().GaugeValue(kLcagCacheEntries), 1.0);
}

TEST(LcagCacheTest, EvictsLeastRecentlyUsed) {
  // One shard of capacity 2 makes the eviction order fully observable.
  LcagCache cache(2, 1);
  cache.Insert("a", MakeResult(1));
  cache.Insert("b", MakeResult(2));
  LcagResult out;
  ASSERT_TRUE(cache.Lookup("a", &out));  // promotes "a"
  cache.Insert("c", MakeResult(3));      // evicts "b"
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(LcagCacheTest, ZeroCapacityDisables) {
  LcagCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert("a", MakeResult(1));
  LcagResult out;
  EXPECT_FALSE(cache.Lookup("a", &out));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(LcagCacheTest, ClearEmptiesAllShards) {
  LcagCache cache(64, 4);
  for (int i = 0; i < 32; ++i) {
    cache.Insert(std::string("key") + std::to_string(i), MakeResult(i));
  }
  EXPECT_EQ(cache.entries(), 32u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  LcagResult out;
  EXPECT_FALSE(cache.Lookup("key5", &out));
}

TEST(LcagCacheTest, KeyDependsOnOptionsAndSources) {
  const std::vector<std::vector<kg::NodeId>> sources = {{1, 2}, {5}};
  const std::vector<std::string> labels = {"a", "b"};
  LcagOptions base;
  const std::string k1 = LcagCacheKey(sources, labels, base);
  EXPECT_EQ(k1, LcagCacheKey(sources, labels, base));

  LcagOptions depth_only = base;
  depth_only.depth_only_root = true;
  EXPECT_NE(k1, LcagCacheKey(sources, labels, depth_only));

  LcagOptions single_path = base;
  single_path.all_shortest_paths = false;
  EXPECT_NE(k1, LcagCacheKey(sources, labels, single_path));

  LcagOptions small_budget = base;
  small_budget.max_expansions = 10;
  EXPECT_NE(k1, LcagCacheKey(sources, labels, small_budget));

  // The wall-clock timeout must NOT change the key (timed-out results are
  // never cached, so entries are timeout-independent).
  LcagOptions slow = base;
  slow.timeout_seconds = 123.0;
  EXPECT_EQ(k1, LcagCacheKey(sources, labels, slow));

  EXPECT_NE(k1, LcagCacheKey({{1, 2}, {6}}, labels, base));
  EXPECT_NE(k1, LcagCacheKey(sources, {"a", "c"}, base));
}

TEST_F(LcagCacheSearchTest, CachedFindMatchesUncached) {
  LcagSearch search(&graph_, &index_);
  LcagCache cache(128);
  const std::vector<std::string> labels = {"upper dir", "swat valley",
                                           "pakistan", "taliban"};
  const LcagResult plain = search.Find(labels);
  const LcagResult cached_miss = search.Find(labels, {}, &cache);
  const LcagResult cached_hit = search.Find(labels, {}, &cache);

  ASSERT_TRUE(plain.found);
  ASSERT_TRUE(cached_miss.found);
  ASSERT_TRUE(cached_hit.found);
  // The cached variant canonicalizes label order, so compare the
  // order-insensitive artifacts: root, node set, sorted distance vector.
  EXPECT_EQ(cached_miss.graph.root, plain.graph.root);
  EXPECT_EQ(cached_miss.graph.nodes, plain.graph.nodes);
  EXPECT_EQ(SortedDescending(cached_miss.graph.label_distances),
            SortedDescending(plain.graph.label_distances));
  EXPECT_EQ(cached_hit.graph.root, cached_miss.graph.root);
  EXPECT_EQ(cached_hit.graph.nodes, cached_miss.graph.nodes);
  EXPECT_EQ(cached_hit.graph.edges.size(), cached_miss.graph.edges.size());

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(LcagCacheSearchTest, PermutedLabelsShareOneEntry) {
  LcagSearch search(&graph_, &index_);
  LcagCache cache(128);
  const LcagResult a =
      search.Find({"taliban", "upper dir", "pakistan"}, {}, &cache);
  const LcagResult b =
      search.Find({"pakistan", "taliban", "upper dir"}, {}, &cache);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.graph.root, b.graph.root);
  EXPECT_EQ(a.graph.nodes, b.graph.nodes);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST_F(LcagCacheSearchTest, SingleLabelGroupsBypassTheCache) {
  LcagSearch search(&graph_, &index_);
  LcagCache cache(128);
  const LcagResult r = search.Find({"taliban"}, {}, &cache);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST_F(LcagCacheSearchTest, BudgetExhaustedIsFlagged) {
  LcagSearch search(&graph_, &index_);
  LcagOptions tight;
  tight.max_expansions = 1;  // cannot settle a common ancestor of 2 labels
  const LcagResult truncated = search.Find({"taliban", "upper dir"}, tight);
  EXPECT_TRUE(truncated.budget_exhausted);
  EXPECT_FALSE(truncated.timed_out);
  EXPECT_FALSE(truncated.found);

  const LcagResult full = search.Find({"taliban", "upper dir"});
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_TRUE(full.found);
}

TEST_F(LcagCacheSearchTest, BudgetExhaustedResultsAreCacheable) {
  // Unlike wall-clock timeouts, budget truncation is deterministic; the
  // cached copy must carry the flag so engine stats stay truthful.
  LcagSearch search(&graph_, &index_);
  LcagCache cache(128);
  LcagOptions tight;
  tight.max_expansions = 1;
  const LcagResult first = search.Find({"taliban", "upper dir"}, tight, &cache);
  const LcagResult second =
      search.Find({"taliban", "upper dir"}, tight, &cache);
  EXPECT_TRUE(first.budget_exhausted);
  EXPECT_TRUE(second.budget_exhausted);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(LcagCacheSearchTest, TruncatedSmallBudgetEntryNeverServesLargerBudget) {
  // Regression for the budget-in-key property: max_expansions is part of
  // the cache key, so a result truncated under a tiny budget must not be
  // handed to a later search that could afford the full answer.
  LcagSearch search(&graph_, &index_);
  LcagCache cache(128);
  LcagOptions tight;
  tight.max_expansions = 1;
  const LcagResult truncated =
      search.Find({"taliban", "upper dir"}, tight, &cache);
  ASSERT_TRUE(truncated.budget_exhausted);
  ASSERT_FALSE(truncated.found);
  ASSERT_EQ(cache.entries(), 1u);

  // Same labels, default budget: a fresh search (cache miss), full answer.
  const LcagResult full = search.Find({"taliban", "upper dir"}, {}, &cache);
  EXPECT_TRUE(full.found);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_FALSE(full.cache_hit);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.entries(), 2u);  // one entry per budget
}

TEST_F(LcagCacheSearchTest, AcceleratorKnobsShareCacheEntries) {
  // parallel / sketch / pool are result-invariant, so they are deliberately
  // NOT in the key: a sequential miss must serve a parallel lookup.
  const std::vector<std::vector<kg::NodeId>> sources = {{1, 2}, {5}};
  const std::vector<std::string> labels = {"a", "b"};
  LcagOptions sequential;
  LcagOptions parallel = sequential;
  parallel.parallel = true;
  EXPECT_EQ(LcagCacheKey(sources, labels, sequential),
            LcagCacheKey(sources, labels, parallel));

  LcagSearch search(&graph_, &index_);
  LcagCache cache(128);
  const LcagResult miss =
      search.Find({"taliban", "upper dir"}, sequential, &cache);
  LcagSearchContext ctx;
  ctx.cache = &cache;
  const LcagResult hit = search.Find({"taliban", "upper dir"}, parallel, ctx);
  ASSERT_TRUE(miss.found);
  ASSERT_TRUE(hit.found);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.graph.root, miss.graph.root);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST_F(LcagCacheSearchTest, ConcurrentFindsAreSafeAndConsistent) {
  LcagSearch search(&graph_, &index_);
  LcagCache cache(64, 4);
  const std::vector<std::vector<std::string>> groups = {
      {"taliban", "upper dir"},
      {"upper dir", "swat valley", "pakistan", "taliban"},
      {"swat valley", "pakistan"},
      {"waziristan", "kunar"},
  };
  std::vector<LcagResult> expected;
  for (const auto& g : groups) expected.push_back(search.Find(g));

  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t g = (t + round) % groups.size();
        const LcagResult r = search.Find(groups[g], {}, &cache);
        if (r.found != expected[g].found ||
            r.graph.root != expected[g].graph.root ||
            r.graph.nodes != expected[g].graph.nodes) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads * kRounds));
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.entries(), groups.size());
}

}  // namespace
}  // namespace embed
}  // namespace newslink
