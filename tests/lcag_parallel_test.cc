// Bit-exactness suite for the accelerated NE (LCAG) hot path: parallel
// frontier rounds (LcagOptions::parallel) and the distance-sketch fast path
// (embed/lcag_sketch.h) must reproduce the sequential MultiLabelDijkstra
// oracle exactly — found flag, root, label distances, node/edge sets,
// source nodes, and tie order — across random KGs, group sizes, and option
// variants. Also the regression tests of the correctness sweep that rode
// along: duplicate-source dedup, budget-truncation parity, sketch codec
// round trips, and TreeSegmentEmbedder outcome propagation.
//
// The *Parallel* suite names are load-bearing: the TSan CI job selects its
// tests with -R 'ThreadPool|Parallel|...', so everything here runs under
// ThreadSanitizer on every push.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "corpus/synthetic_news.h"
#include "embed/document_embedding.h"
#include "embed/lcag_search.h"
#include "embed/lcag_sketch.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace embed {
namespace {

/// Same random-graph recipe as embed_test.cc's Theorem-1 suite: a spanning
/// chain plus random extra edges with small integer weights, and a few
/// duplicated labels so S(l) is sometimes a multi-node set.
kg::KnowledgeGraph BuildRandomGraph(Rng* rng, int num_nodes) {
  kg::KgBuilder b;
  for (int i = 0; i < num_nodes; ++i) {
    const std::string label = (i % 7 == 3) ? "dup" + std::to_string(i % 14)
                                           : "node" + std::to_string(i);
    b.AddNode(label, kg::EntityType::kGpe);
  }
  for (int i = 1; i < num_nodes; ++i) {
    EXPECT_TRUE(b.AddEdge(i, static_cast<kg::NodeId>(rng->Uniform(i)), "p",
                          1.0f + static_cast<float>(rng->Uniform(3)))
                    .ok());
  }
  for (int i = 0; i < num_nodes; ++i) {
    const kg::NodeId u = static_cast<kg::NodeId>(rng->Uniform(num_nodes));
    const kg::NodeId v = static_cast<kg::NodeId>(rng->Uniform(num_nodes));
    if (u != v) {
      EXPECT_TRUE(
          b.AddEdge(u, v, "q", 1.0f + static_cast<float>(rng->Uniform(3)))
              .ok());
    }
  }
  return b.Build();
}

std::vector<std::string> SampleLabels(Rng* rng, const kg::KnowledgeGraph& g,
                                      size_t count) {
  std::vector<std::string> labels;
  for (size_t idx : rng->SampleWithoutReplacement(g.num_nodes(), count)) {
    labels.push_back(
        kg::NormalizeLabel(g.label(static_cast<kg::NodeId>(idx))));
  }
  return labels;
}

/// The bit-exactness contract: every field that defines the ANSWER must
/// match exactly (no epsilon on distances — the accelerated paths perform
/// the same float operations in the same order). `expansions` and
/// `candidates_collected` are deliberately NOT compared: they describe how
/// much work a path did, and the sketch path does none.
void ExpectBitExact(const LcagResult& oracle, const LcagResult& fast,
                    const std::string& context) {
  ASSERT_EQ(oracle.found, fast.found) << context;
  EXPECT_EQ(oracle.budget_exhausted, fast.budget_exhausted) << context;
  EXPECT_EQ(oracle.resolved_labels, fast.resolved_labels) << context;
  if (!oracle.found) return;
  EXPECT_EQ(oracle.graph.root, fast.graph.root) << context;
  EXPECT_EQ(oracle.graph.labels, fast.graph.labels) << context;
  EXPECT_EQ(oracle.graph.label_distances, fast.graph.label_distances)
      << context;
  EXPECT_EQ(oracle.graph.nodes, fast.graph.nodes) << context;
  EXPECT_EQ(oracle.graph.source_nodes, fast.graph.source_nodes) << context;
  ASSERT_EQ(oracle.graph.edges.size(), fast.graph.edges.size()) << context;
  for (size_t i = 0; i < oracle.graph.edges.size(); ++i) {
    EXPECT_TRUE(oracle.graph.edges[i] == fast.graph.edges[i])
        << context << " edge " << i;
  }
}

struct RandomCase {
  uint64_t seed;
  int num_nodes;
  size_t num_labels;
};

std::vector<RandomCase> MakeRandomCases() {
  std::vector<RandomCase> cases;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    cases.push_back({seed, 24 + static_cast<int>(seed % 4) * 12,
                     2 + seed % 4});
  }
  return cases;
}

class LcagParallelRandomTest : public ::testing::TestWithParam<RandomCase> {};

/// The tentpole property: for every option variant, parallel rounds AND the
/// sketch fast path AND their combination reproduce the sequential oracle
/// bit-exactly, and the oracle itself agrees with FindExhaustive on the
/// compactness vector (Theorem 1).
TEST_P(LcagParallelRandomTest, ParallelAndSketchMatchSequentialOracle) {
  const RandomCase param = GetParam();
  Rng rng(param.seed * 1000003 + 17);
  const kg::KnowledgeGraph g = BuildRandomGraph(&rng, param.num_nodes);
  const kg::LabelIndex index(g);
  LcagSearch search(&g, &index);
  ThreadPool pool(4);

  // A radius past the graph's diameter with an uncapped ball count: every
  // group that has a common ancestor is answerable from the sketch, so the
  // fast path (not just its fallback) is what the comparison exercises.
  LcagSketchOptions sketch_options;
  sketch_options.enabled = true;
  sketch_options.radius = 1e6;
  sketch_options.max_ball_nodes = 1u << 20;
  const LcagSketchIndex sketch =
      LcagSketchIndex::Build(g, sketch_options, &pool);

  size_t sketch_hits = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const std::vector<std::string> labels =
        SampleLabels(&rng, g, param.num_labels);
    for (const bool all_paths : {true, false}) {
      for (const bool depth_only : {true, false}) {
        LcagOptions options;
        options.all_shortest_paths = all_paths;
        options.depth_only_root = depth_only;
        const LcagResult oracle = search.Find(labels, options);
        const std::string context =
            "seed=" + std::to_string(param.seed) +
            " trial=" + std::to_string(trial) +
            " all_paths=" + std::to_string(all_paths) +
            " depth_only=" + std::to_string(depth_only);

        LcagOptions par_options = options;
        par_options.parallel = true;
        LcagSearchContext par_ctx;
        par_ctx.pool = &pool;
        ExpectBitExact(oracle, search.Find(labels, par_options, par_ctx),
                       context + " [parallel]");

        LcagSearchContext sketch_ctx;
        sketch_ctx.sketch = &sketch;
        const LcagResult sketched = search.Find(labels, options, sketch_ctx);
        ExpectBitExact(oracle, sketched, context + " [sketch]");
        if (sketched.sketch_hit) ++sketch_hits;

        LcagSearchContext both_ctx;
        both_ctx.sketch = &sketch;
        both_ctx.pool = &pool;
        ExpectBitExact(oracle, search.Find(labels, par_options, both_ctx),
                       context + " [sketch+parallel]");

        if (oracle.found && !depth_only) {
          const LcagResult slow = search.FindExhaustive(labels);
          ASSERT_TRUE(slow.found) << context;
          EXPECT_TRUE(CompactnessEqual(oracle.graph.label_distances,
                                       slow.graph.label_distances))
              << context;
        }
      }
    }
  }
  // With an unbounded radius, every found group must have hit the sketch.
  EXPECT_GT(sketch_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, LcagParallelRandomTest,
                         ::testing::ValuesIn(MakeRandomCases()));

/// Deliberate truncation parity: with a small max_expansions budget the
/// parallel path must fall back to pop-by-pop expansion and truncate on
/// exactly the same settle event as the sequential oracle, and the sketch
/// must refuse to serve (it cannot reproduce a truncated answer).
TEST(LcagParallelBudgetTest, TruncationIsBitExactAndSketchRefuses) {
  Rng rng(99);
  const kg::KnowledgeGraph g = BuildRandomGraph(&rng, 48);
  const kg::LabelIndex index(g);
  LcagSearch search(&g, &index);
  ThreadPool pool(4);
  LcagSketchOptions sketch_options;
  sketch_options.radius = 1e6;
  sketch_options.max_ball_nodes = 1u << 20;
  const LcagSketchIndex sketch = LcagSketchIndex::Build(g, sketch_options);

  const std::vector<std::string> labels = SampleLabels(&rng, g, 3);
  for (const size_t budget : {1u, 2u, 5u, 17u, 64u}) {
    LcagOptions tight;
    tight.max_expansions = budget;
    const LcagResult oracle = search.Find(labels, tight);

    LcagOptions par = tight;
    par.parallel = true;
    LcagSearchContext ctx;
    ctx.pool = &pool;
    ctx.sketch = &sketch;
    const LcagResult fast = search.Find(labels, par, ctx);
    const std::string context = "budget=" + std::to_string(budget);
    EXPECT_FALSE(fast.sketch_hit) << context;
    EXPECT_EQ(oracle.expansions, fast.expansions) << context;
    ExpectBitExact(oracle, fast, context);
  }
}

/// Satellite regression: a repeated source id (an entity resolved twice
/// into one label's S(l)) must not settle twice — duplicates inflated
/// SettledCount/total_pops and could flip the C1/C2 termination test.
TEST(LcagParallelDedupTest, DuplicateSourceIdsSettleOnce) {
  kg::KgBuilder b;
  const kg::NodeId a = b.AddNode("A", kg::EntityType::kGpe);
  const kg::NodeId c = b.AddNode("C", kg::EntityType::kGpe);
  const kg::NodeId r = b.AddNode("R", kg::EntityType::kGpe);
  ASSERT_TRUE(b.AddEdge(a, r, "p").ok());
  ASSERT_TRUE(b.AddEdge(c, r, "p").ok());
  const kg::KnowledgeGraph g = b.Build();

  MultiLabelDijkstra clean(&g, {{a}, {c}});
  MultiLabelDijkstra dirty(&g, {{a, a, a}, {c, c}});
  MultiLabelDijkstra::PopEvent event;
  std::vector<MultiLabelDijkstra::PopEvent> clean_events;
  std::vector<MultiLabelDijkstra::PopEvent> dirty_events;
  while (clean.PopNext(&event)) clean_events.push_back(event);
  while (dirty.PopNext(&event)) dirty_events.push_back(event);

  ASSERT_EQ(clean_events.size(), dirty_events.size());
  for (size_t i = 0; i < clean_events.size(); ++i) {
    EXPECT_EQ(clean_events[i].label_index, dirty_events[i].label_index);
    EXPECT_EQ(clean_events[i].node, dirty_events[i].node);
    EXPECT_EQ(clean_events[i].distance, dirty_events[i].distance);
  }
  EXPECT_EQ(clean.total_pops(), dirty.total_pops());
  EXPECT_EQ(clean.SettledCount(r), 2);
  EXPECT_EQ(dirty.SettledCount(r), 2);
  // Without dedup, label 0 settled `a` three times and the count read 4
  // (3 from the duplicates + 1 from label 1's own sweep).
  EXPECT_EQ(dirty.SettledCount(a), clean.SettledCount(a));
}

/// The sketch codec: identical indexes serialize to identical bytes (the
/// snapshot byte-identity gate builds on this), the round trip preserves
/// every ball, and corrupt payloads fail with IOError instead of UB.
TEST(LcagParallelSketchCodecTest, RoundTripIsByteIdentical) {
  Rng rng(5);
  const kg::KnowledgeGraph g = BuildRandomGraph(&rng, 40);
  LcagSketchOptions options;
  options.radius = 4.0;
  options.max_ball_nodes = 16;  // force some truncated balls
  const LcagSketchIndex built = LcagSketchIndex::Build(g, options);

  ByteWriter first;
  built.Serialize(&first);
  ByteReader reader(first.bytes());
  LcagSketchIndex loaded;
  ASSERT_TRUE(LcagSketchIndex::Deserialize(&reader, &loaded).ok());
  ASSERT_TRUE(reader.ExpectEnd().ok());

  EXPECT_EQ(loaded.num_nodes(), built.num_nodes());
  EXPECT_EQ(loaded.radius(), built.radius());
  EXPECT_EQ(loaded.max_ball_nodes(), built.max_ball_nodes());
  EXPECT_EQ(loaded.total_entries(), built.total_entries());
  for (kg::NodeId v = 0; v < g.num_nodes(); ++v) {
    const LcagSketchIndex::BallView a = built.Ball(v);
    const LcagSketchIndex::BallView b = loaded.Ball(v);
    ASSERT_EQ(a.nodes.size(), b.nodes.size()) << "node " << v;
    EXPECT_EQ(a.truncated, b.truncated) << "node " << v;
    for (size_t i = 0; i < a.nodes.size(); ++i) {
      EXPECT_EQ(a.nodes[i], b.nodes[i]);
      EXPECT_EQ(a.distances[i], b.distances[i]);
    }
  }

  ByteWriter second;
  loaded.Serialize(&second);
  EXPECT_EQ(first.bytes(), second.bytes());
}

TEST(LcagParallelSketchCodecTest, CorruptPayloadsAreRejected) {
  Rng rng(6);
  const kg::KnowledgeGraph g = BuildRandomGraph(&rng, 24);
  LcagSketchOptions options;
  options.radius = 3.0;
  const LcagSketchIndex built = LcagSketchIndex::Build(g, options);
  ByteWriter writer;
  built.Serialize(&writer);
  const std::vector<uint8_t>& good = writer.bytes();

  // Truncation at every prefix length must fail cleanly (never crash).
  for (size_t len = 0; len < good.size(); len += 7) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    ByteReader reader(cut);
    LcagSketchIndex out;
    const Status status = LcagSketchIndex::Deserialize(&reader, &out);
    EXPECT_TRUE(!status.ok() || !reader.ExpectEnd().ok()) << "len " << len;
  }

  // An invalid truncation flag (first per-node byte) is rejected.
  std::vector<uint8_t> bad_flag = good;
  bad_flag[16] = 0xFF;  // u32 + double + u32 header = 16 bytes
  ByteReader flag_reader(bad_flag);
  LcagSketchIndex out;
  EXPECT_FALSE(LcagSketchIndex::Deserialize(&flag_reader, &out).ok());
}

/// Satellite regression: TreeSegmentEmbedder used to drop the TreeEmbed
/// outcome on the floor — timeouts and expansion counts silently read as
/// 0/false in traces and engine stats.
TEST(LcagParallelTreeOutcomeTest, TreeEmbedderPropagatesOutcome) {
  kg::KgBuilder b;
  const kg::NodeId x = b.AddNode("X", kg::EntityType::kGpe);
  const kg::NodeId y = b.AddNode("Y", kg::EntityType::kGpe);
  const kg::NodeId r = b.AddNode("Root", kg::EntityType::kGpe);
  ASSERT_TRUE(b.AddEdge(x, r, "p").ok());
  ASSERT_TRUE(b.AddEdge(y, r, "p").ok());
  const kg::KnowledgeGraph g = b.Build();
  const kg::LabelIndex index(g);

  TreeSegmentEmbedder embedder(&g, &index);
  AncestorGraph out;
  SegmentEmbedOutcome outcome;
  ASSERT_TRUE(embedder.EmbedSegment({"x", "y"}, &out, &outcome));
  EXPECT_TRUE(outcome.found);
  EXPECT_FALSE(outcome.timed_out);
  EXPECT_GT(outcome.expansions, 0u);  // was always 0 before the fix
}

/// LcagSegmentEmbedder with sketch + parallel + cache: repeated and
/// concurrent EmbedSegment calls must agree with a plain sequential
/// embedder, and the sketch hit/fallback counters must account for every
/// non-cached segment.
TEST(LcagParallelEmbedderTest, ConcurrentEmbedsMatchSequentialEmbedder) {
  Rng rng(1234);
  const kg::KnowledgeGraph g = BuildRandomGraph(&rng, 48);
  const kg::LabelIndex index(g);

  LcagOptions parallel_options;
  parallel_options.parallel = true;
  LcagSegmentEmbedder fast(&g, &index, parallel_options, /*cache_capacity=*/64);
  LcagSketchOptions sketch_options;
  sketch_options.radius = 1e6;
  sketch_options.max_ball_nodes = 1u << 20;
  fast.SetSketch(std::make_shared<LcagSketchIndex>(
      LcagSketchIndex::Build(g, sketch_options)));
  LcagSegmentEmbedder oracle(&g, &index, LcagOptions{}, /*cache_capacity=*/0);

  std::vector<std::vector<std::string>> groups;
  for (int i = 0; i < 8; ++i) groups.push_back(SampleLabels(&rng, g, 2 + i % 3));
  std::vector<AncestorGraph> expected(groups.size());
  std::vector<bool> expected_found(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    expected_found[i] = oracle.EmbedSegment(groups[i], &expected[i]);
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = (t + round) % groups.size();
        AncestorGraph got;
        const bool found = fast.EmbedSegment(groups[i], &got);
        // The cached embedder canonicalizes label order, so compare the
        // order-insensitive artifacts (as lcag_cache_test.cc does).
        if (found != expected_found[i] ||
            (found && (got.root != expected[i].root ||
                       got.nodes != expected[i].nodes ||
                       SortedDescending(got.label_distances) !=
                           SortedDescending(expected[i].label_distances)))) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(fast.Metrics().CounterValue(kEmbedderSketchHits), 0u);
}

}  // namespace
}  // namespace embed

namespace {

/// Engine-level writer-vs-readers regression with the full accelerated
/// configuration on: sketches, parallel rounds, and live AddDocument()s.
/// Readers must never observe a torn epoch, and after ingest settles the
/// accelerated engine's hits must be bit-identical (scores included) to a
/// plain sequential engine fed the same documents in the same order.
TEST(LcagParallelEngineTest, WriterVsReadersStaysBitExact) {
  kg::SyntheticKgConfig kg_config;
  kg_config.seed = 21;
  kg_config.num_countries = 2;
  kg_config.provinces_per_country = 3;
  kg::SyntheticKg world = kg::SyntheticKgGenerator(kg_config).Generate();
  const kg::LabelIndex label_index(world.graph);

  corpus::SyntheticNewsConfig corpus_config;
  corpus_config.num_stories = 24;
  const corpus::SyntheticCorpus dataset =
      corpus::SyntheticNewsGenerator(&world, corpus_config).Generate();
  corpus::Corpus seed_corpus;
  corpus::Corpus fresh_docs;
  for (size_t d = 0; d < dataset.corpus.size(); ++d) {
    (d < 16 ? seed_corpus : fresh_docs).Add(dataset.corpus.doc(d));
  }

  NewsLinkConfig fast_config;
  fast_config.beta = 0.5;
  fast_config.num_threads = 2;
  fast_config.lcag.parallel = true;
  fast_config.lcag_sketch.enabled = true;
  NewsLinkConfig oracle_config;
  oracle_config.beta = 0.5;
  oracle_config.num_threads = 2;
  oracle_config.lcag_cache_capacity = 0;

  NewsLinkEngine fast(&world.graph, &label_index, fast_config);
  NewsLinkEngine oracle(&world.graph, &label_index, oracle_config);
  ASSERT_TRUE(fast.Index(seed_corpus).ok());
  ASSERT_TRUE(oracle.Index(seed_corpus).ok());

  std::vector<std::string> queries;
  for (size_t d = 0; d < 8; ++d) {
    const std::string& text = dataset.corpus.doc(d).text;
    queries.push_back(text.substr(0, text.find('.') + 1));
  }

  // Readers hammer Search while the writer appends the fresh documents.
  std::atomic<uint64_t> violations{0};
  std::thread writer([&] {
    for (size_t d = 0; d < fresh_docs.size(); ++d) {
      fast.AddDocument(fresh_docs.doc(d));
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        baselines::SearchRequest request;
        request.query = queries[(t + round) % queries.size()];
        request.k = 5;
        const baselines::SearchResponse response = fast.Search(request);
        for (const baselines::SearchHit& hit : response.hits) {
          if (hit.doc_index >= response.snapshot_docs) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);

  // Catch the oracle up, then demand bit-identical hits.
  for (size_t d = 0; d < fresh_docs.size(); ++d) {
    oracle.AddDocument(fresh_docs.doc(d));
  }
  ASSERT_EQ(fast.num_indexed_docs(), oracle.num_indexed_docs());
  for (const std::string& q : queries) {
    baselines::SearchRequest request;
    request.query = q;
    request.k = 10;
    const auto expected = oracle.Search(request).hits;
    const auto actual = fast.Search(request).hits;
    ASSERT_EQ(expected.size(), actual.size()) << q;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].doc_index, actual[i].doc_index) << q;
      EXPECT_EQ(expected[i].score, actual[i].score) << q;
    }
  }
}

}  // namespace
}  // namespace newslink
