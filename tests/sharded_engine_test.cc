// ShardedEngine: scatter-gather over N document-partition shards must be
// bit-identical — hits, scores, and tie order — to one NewsLinkEngine over
// the union of the shards (DESIGN.md Sec. 12). The property holds for any
// shard count, any partition, across epochs (mid-run AddDocument), and for
// batches; snapshots round-trip the partition permutation.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "corpus/synthetic_news.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"
#include "newslink/shard_merge.h"
#include "newslink/sharded_engine.h"

namespace newslink {
namespace {

class ShardedEngineTest : public ::testing::Test {
 protected:
  ShardedEngineTest() : kg_(MakeKg()), index_(kg_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 12;
    corpus_ = corpus::SyntheticNewsGenerator(&kg_, config).Generate();
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 77;
    config.num_countries = 2;
    config.provinces_per_country = 2;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  NewsLinkConfig EngineConfig() const {
    NewsLinkConfig config;
    config.num_threads = 2;
    return config;
  }

  std::string FirstSentenceOf(size_t doc) const {
    const std::string& text = corpus_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  /// A spread of per-request knobs the bit-exactness property must hold
  /// under: pure text, fused pruned, fused exhaustive, pure BON.
  std::vector<baselines::SearchRequest> PropertyRequests(size_t doc) const {
    const std::string q = FirstSentenceOf(doc);
    baselines::SearchRequest text_only{q, 5};
    text_only.beta = 0.0;
    baselines::SearchRequest fused{q, 5};
    fused.beta = 0.3;
    baselines::SearchRequest exhaustive{q, 5};
    exhaustive.beta = 0.3;
    exhaustive.exhaustive_fusion = true;
    baselines::SearchRequest bon_only{q, 5};
    bon_only.beta = 1.0;
    return {text_only, fused, exhaustive, bon_only};
  }

  static void ExpectSameResponse(const baselines::SearchResponse& sharded,
                                 const baselines::SearchResponse& single,
                                 const std::string& what) {
    ASSERT_EQ(sharded.hits.size(), single.hits.size()) << what;
    for (size_t i = 0; i < single.hits.size(); ++i) {
      EXPECT_EQ(sharded.hits[i].doc_index, single.hits[i].doc_index)
          << what << " rank " << i << " (tie order must match)";
      EXPECT_EQ(sharded.hits[i].score, single.hits[i].score)
          << what << " rank " << i << " (scores must be bit-identical)";
    }
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex index_;
  corpus::SyntheticCorpus corpus_;
};

TEST_F(ShardedEngineTest, MatchesSingleEngineForAnyShardCountAndPartition) {
  NewsLinkEngine single(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(single.Index(corpus_.corpus).ok());

  Rng rng(4242);
  for (const size_t n_shards : {1u, 2u, 3u, 7u}) {
    ShardedOptions options;
    options.num_shards = n_shards;
    options.partition = ShardedOptions::Partition::kExplicit;
    options.assignment.resize(corpus_.corpus.size());
    for (uint32_t& s : options.assignment) {
      s = static_cast<uint32_t>(rng.Uniform(n_shards));
    }
    ShardedEngine sharded(&kg_.graph, &index_, EngineConfig(), options);
    ASSERT_TRUE(sharded.Index(corpus_.corpus).ok());
    EXPECT_EQ(sharded.num_indexed_docs(), corpus_.corpus.size());
    EXPECT_EQ(sharded.corpus_fingerprint(), single.corpus_fingerprint())
        << "partitioning must not change the corpus identity";

    for (size_t doc = 0; doc < 6; ++doc) {
      for (const baselines::SearchRequest& request : PropertyRequests(doc)) {
        const auto a = sharded.Search(request);
        const auto b = single.Search(request);
        ExpectSameResponse(
            a, b,
            StrCat(n_shards, " shards, doc ", doc, ", beta ",
                   request.beta.value_or(-1),
                   request.exhaustive_fusion.value_or(false) ? " exhaustive"
                                                             : ""));
        EXPECT_EQ(a.shards_total, n_shards);
        EXPECT_EQ(a.shards_answered, n_shards);
        EXPECT_FALSE(a.degraded);
        EXPECT_EQ(a.snapshot_docs, b.snapshot_docs);
      }
    }
  }
}

TEST_F(ShardedEngineTest, MatchesSingleEngineAcrossEpochs) {
  // Hold the last documents out of the bulk index and ingest them live:
  // the sharded engine routes them to the write shard, the single engine
  // appends them — responses must stay bit-identical at every epoch.
  const size_t held_out = 4;
  ASSERT_GT(corpus_.corpus.size(), held_out + 6);
  corpus::Corpus base;
  for (size_t d = 0; d + held_out < corpus_.corpus.size(); ++d) {
    base.Add(corpus_.corpus.doc(d));
  }

  NewsLinkEngine single(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(single.Index(base).ok());
  ShardedOptions options;
  options.num_shards = 3;
  options.write_shard = 1;
  ShardedEngine sharded(&kg_.graph, &index_, EngineConfig(), options);
  ASSERT_TRUE(sharded.Index(base).ok());

  for (size_t step = 0; step <= held_out; ++step) {
    for (size_t doc = 0; doc < 4; ++doc) {
      for (const baselines::SearchRequest& request : PropertyRequests(doc)) {
        ExpectSameResponse(sharded.Search(request), single.Search(request),
                           StrCat("after ", step, " live documents"));
      }
    }
    if (step < held_out) {
      const corpus::Document& doc = corpus_.corpus.doc(base.size() + step);
      const size_t single_row = single.AddDocument(doc);
      const size_t sharded_row = sharded.AddDocument(doc);
      EXPECT_EQ(sharded_row, single_row)
          << "live rows must keep speaking global corpus rows";
    }
  }
  EXPECT_EQ(sharded.corpus_fingerprint(), single.corpus_fingerprint());
}

TEST_F(ShardedEngineTest, SearchBatchMatchesSequentialSearchBitForBit) {
  ShardedOptions options;
  options.num_shards = 3;
  ShardedEngine sharded(&kg_.graph, &index_, EngineConfig(), options);
  ASSERT_TRUE(sharded.Index(corpus_.corpus).ok());

  std::vector<baselines::SearchRequest> requests;
  for (size_t doc = 0; doc < 5; ++doc) {
    for (const baselines::SearchRequest& r : PropertyRequests(doc)) {
      requests.push_back(r);
    }
  }
  const std::vector<baselines::SearchResponse> batch =
      sharded.SearchBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(batch[i], sharded.Search(requests[i]),
                       StrCat("batch request ", i));
  }
}

TEST_F(ShardedEngineTest, ExplainAndTraceSpeakGlobalRows) {
  ShardedOptions options;
  options.num_shards = 2;
  ShardedEngine sharded(&kg_.graph, &index_, EngineConfig(), options);
  ASSERT_TRUE(sharded.Index(corpus_.corpus).ok());
  NewsLinkEngine single(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(single.Index(corpus_.corpus).ok());

  baselines::SearchRequest request{FirstSentenceOf(1), 5};
  request.beta = 0.3;
  request.explain = true;
  request.trace = true;
  const auto a = sharded.Search(request);
  const auto b = single.Search(request);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].doc_index, b.hits[i].doc_index);
    // Same doc + same query embedding => same explanation paths.
    ASSERT_EQ(a.hits[i].paths.size(), b.hits[i].paths.size());
  }
  // One spliced span child per shard under "ns".
  const TraceSpan* ns = a.trace.Find("ns");
  ASSERT_NE(ns, nullptr);
  size_t shard_spans = 0;
  for (const TraceSpan& child : ns->children) {
    if (child.name.rfind("shard", 0) == 0) ++shard_spans;
  }
  EXPECT_EQ(shard_spans, 2u);
}

TEST_F(ShardedEngineTest, SnapshotRoundTripsPartitionAndResults) {
  ShardedOptions options;
  options.num_shards = 3;
  options.partition = ShardedOptions::Partition::kHash;
  ShardedEngine sharded(&kg_.graph, &index_, EngineConfig(), options);
  ASSERT_TRUE(sharded.Index(corpus_.corpus).ok());

  const std::string path =
      testing::TempDir() + "/sharded_engine_test.snapshot";
  ASSERT_TRUE(sharded.SaveSnapshot(path).ok());

  ShardedEngine warm(&kg_.graph, &index_, EngineConfig(), options);
  ASSERT_TRUE(warm.LoadSnapshot(path).ok());
  EXPECT_EQ(warm.num_indexed_docs(), sharded.num_indexed_docs());
  EXPECT_EQ(warm.corpus_fingerprint(), sharded.corpus_fingerprint());
  for (size_t doc = 0; doc < 4; ++doc) {
    for (const baselines::SearchRequest& request : PropertyRequests(doc)) {
      ExpectSameResponse(warm.Search(request), sharded.Search(request),
                         "warm-started sharded engine");
    }
  }

  // A coordinator with the wrong shard count must fail loudly, not serve
  // a silently re-partitioned corpus.
  ShardedOptions wrong = options;
  wrong.num_shards = 2;
  ShardedEngine mismatched(&kg_.graph, &index_, EngineConfig(), wrong);
  const Status status = mismatched.LoadSnapshot(path);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST_F(ShardedEngineTest, ExplicitPartitionValidatesAssignment) {
  ShardedOptions options;
  options.num_shards = 2;
  options.partition = ShardedOptions::Partition::kExplicit;
  options.assignment.assign(corpus_.corpus.size(), 7);  // out of range
  ShardedEngine sharded(&kg_.graph, &index_, EngineConfig(), options);
  EXPECT_TRUE(sharded.Index(corpus_.corpus).IsInvalidArgument());
  EXPECT_EQ(sharded.num_indexed_docs(), 0u)
      << "a rejected assignment must leave the engine untouched";

  options.assignment.assign(corpus_.corpus.size() / 2, 0);  // wrong length
  ShardedEngine short_assignment(&kg_.graph, &index_, EngineConfig(),
                                 options);
  EXPECT_TRUE(short_assignment.Index(corpus_.corpus).IsInvalidArgument());
}

TEST_F(ShardedEngineTest, DegradedMergeCoversAnsweringShardsOnly) {
  // Unit-level check of the coordinator's partial-result path: a null
  // shard entry drops out of the merge; the rest still rank correctly.
  ShardSearchResult a;
  a.bow_max = 2.0;
  a.candidates = {{0, 2.0, 0.0}, {1, 1.0, 0.0}};
  ShardSearchResult b;
  b.bow_max = 4.0;
  b.candidates = {{0, 4.0, 0.0}};

  ShardFuseParams params;
  params.beta = 0.0;
  params.use_bow = true;
  params.use_bon = false;
  params.k = 10;
  const auto to_global = [](size_t shard, uint32_t local) {
    return static_cast<uint32_t>(2 * local + shard);
  };

  const auto full = MergeShardCandidates(params, {&a, &b}, to_global);
  ASSERT_EQ(full.size(), 3u);
  EXPECT_EQ(full[0].doc, 1u);  // shard b doc 0: 4/4
  EXPECT_EQ(full[1].doc, 0u);  // shard a doc 0: 2/4
  EXPECT_EQ(full[2].doc, 2u);  // shard a doc 1: 1/4

  const auto degraded = MergeShardCandidates(params, {&a, nullptr}, to_global);
  ASSERT_EQ(degraded.size(), 2u);
  EXPECT_EQ(degraded[0].doc, 0u);  // renormalized against a's max only
  EXPECT_EQ(degraded[0].score, 1.0);
  EXPECT_EQ(degraded[1].doc, 2u);
}

}  // namespace
}  // namespace newslink
