// Tests for src/text: tokenizer, sentence splitter, Porter stemmer,
// stopwords, gazetteer NER, news segmentation and the maximal entity
// co-occurrence set (paper Definition 1 / Example 2).

#include <gtest/gtest.h>

#include "kg/knowledge_graph.h"
#include "kg/label_index.h"
#include "text/gazetteer_ner.h"
#include "text/news_segmenter.h"
#include "text/porter_stemmer.h"
#include "text/sentence_splitter.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace newslink {
namespace text {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, SplitsWordsAndPunctuation) {
  const auto tokens = Tokenize("Hello, world!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "Hello");
  EXPECT_EQ(tokens[1].text, ",");
  EXPECT_EQ(tokens[2].text, "world");
  EXPECT_EQ(tokens[3].text, "!");
  EXPECT_TRUE(tokens[0].is_word);
  EXPECT_FALSE(tokens[1].is_word);
}

TEST(TokenizerTest, OffsetsAreByteAccurate) {
  const std::string s = "ab  cd";
  const auto tokens = Tokenize(s);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(s.substr(tokens[0].begin, tokens[0].end - tokens[0].begin), "ab");
  EXPECT_EQ(s.substr(tokens[1].begin, tokens[1].end - tokens[1].begin), "cd");
}

TEST(TokenizerTest, ApostropheStaysInWord) {
  const auto tokens = Tokenize("don't stop");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "don't");
}

TEST(TokenizerTest, CapitalizationFlag) {
  const auto tokens = Tokenize("Taliban attacked lahore");
  EXPECT_TRUE(tokens[0].is_upper_initial);
  EXPECT_FALSE(tokens[1].is_upper_initial);
  EXPECT_FALSE(tokens[2].is_upper_initial);
}

TEST(TokenizerTest, LowercaseForm) {
  const auto tokens = Tokenize("SWAT Valley");
  EXPECT_EQ(tokens[0].lower, "swat");
  EXPECT_EQ(tokens[1].lower, "valley");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n ").empty());
}

TEST(TokenizerTest, WordTokensDropsPunctuation) {
  EXPECT_EQ(WordTokens("A b, c."), (std::vector<std::string>{"a", "b", "c"}));
}

// ---------------------------------------------------------------------------
// Sentence splitter
// ---------------------------------------------------------------------------

TEST(SentenceSplitterTest, SplitsOnTerminators) {
  const auto sents = SentenceStrings("One here. Two there! Three? Four");
  ASSERT_EQ(sents.size(), 4u);
  EXPECT_EQ(sents[0], "One here.");
  EXPECT_EQ(sents[1], "Two there!");
  EXPECT_EQ(sents[2], "Three?");
  EXPECT_EQ(sents[3], "Four");
}

TEST(SentenceSplitterTest, AbbreviationsDoNotSplit) {
  const auto sents = SentenceStrings("Mr. Khan met Dr. Ali. They talked.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "Mr. Khan met Dr. Ali.");
}

TEST(SentenceSplitterTest, SingleInitialsDoNotSplit) {
  const auto sents = SentenceStrings("J. Smith arrived. He spoke.");
  ASSERT_EQ(sents.size(), 2u);
}

TEST(SentenceSplitterTest, PeriodInsideWordDoesNotSplit) {
  const auto sents = SentenceStrings("Version 1.5 shipped. Done.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "Version 1.5 shipped.");
}

TEST(SentenceSplitterTest, EmptyInput) {
  EXPECT_TRUE(SentenceStrings("").empty());
  EXPECT_TRUE(SentenceStrings("   ").empty());
}

TEST(SentenceSplitterTest, SpansCoverSource) {
  const std::string s = "Alpha beta. Gamma delta.";
  const auto spans = SplitSentences(s);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[1].end, s.size());
}

// ---------------------------------------------------------------------------
// Porter stemmer
// ---------------------------------------------------------------------------

TEST(PorterStemmerTest, ClassicExamples) {
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("formalize"), "formal");
  EXPECT_EQ(PorterStem("electrical"), "electr");
  EXPECT_EQ(PorterStem("hopefulness"), "hope");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("controlling"), "control");
}

TEST(PorterStemmerTest, NewsVocabulary) {
  // The property the BOW index needs: inflections share a stem.
  EXPECT_EQ(PorterStem("election"), PorterStem("elections"));
  EXPECT_EQ(PorterStem("attack"), PorterStem("attacked"));
  EXPECT_EQ(PorterStem("bombing"), PorterStem("bombings"));
  EXPECT_EQ(PorterStem("candidate"), PorterStem("candidates"));
}

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem("by"), "by");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerTest, DoubleConsonantRules) {
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("falling"), "fall");  // ll kept
  EXPECT_EQ(PorterStem("hissing"), "hiss");  // ss kept
}

TEST(PorterStemmerTest, CvcRestoresE) {
  EXPECT_EQ(PorterStem("hoping"), "hope");
  EXPECT_EQ(PorterStem("filing"), "file");
}

// ---------------------------------------------------------------------------
// Stopwords
// ---------------------------------------------------------------------------

TEST(StopwordsTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "of", "and", "is", "with", "from"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsAreNot) {
  for (const char* w : {"taliban", "election", "bombing", "valley"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ListHasReasonableSize) {
  EXPECT_GT(StopwordCount(), 100u);
  EXPECT_LT(StopwordCount(), 300u);
}

// ---------------------------------------------------------------------------
// Gazetteer NER
// ---------------------------------------------------------------------------

class NerTest : public ::testing::Test {
 protected:
  NerTest() {
    kg::KgBuilder b;
    pakistan_ = b.AddNode("Pakistan", kg::EntityType::kGpe);
    taliban_ = b.AddNode("Taliban", kg::EntityType::kNorp);
    swat_ = b.AddNode("Swat Valley", kg::EntityType::kGpe);
    upper_dir_ = b.AddNode("Upper Dir", kg::EntityType::kGpe);
    EXPECT_TRUE(b.AddEdge(swat_, pakistan_, "located_in").ok());
    EXPECT_TRUE(b.AddEdge(upper_dir_, pakistan_, "located_in").ok());
    EXPECT_TRUE(b.AddEdge(taliban_, pakistan_, "operates_in").ok());
    graph_ = b.Build();
    index_ = kg::LabelIndex(graph_);
    ner_ = std::make_unique<GazetteerNer>(&index_);
  }

  std::vector<EntityMention> Recognize(const std::string& s) const {
    return ner_->Recognize(Tokenize(s));
  }

  kg::NodeId pakistan_, taliban_, swat_, upper_dir_;
  kg::KnowledgeGraph graph_;
  kg::LabelIndex index_;
  std::unique_ptr<GazetteerNer> ner_;
};

TEST_F(NerTest, SingleTokenMatch) {
  const auto mentions = Recognize("Fighting continued in Pakistan today.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].label, "pakistan");
  EXPECT_TRUE(mentions[0].in_kg);
}

TEST_F(NerTest, MultiTokenLongestMatch) {
  const auto mentions = Recognize("Clashes near Swat Valley intensified.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].label, "swat valley");
  EXPECT_EQ(mentions[0].end_token - mentions[0].begin_token, 2u);
}

TEST_F(NerTest, MatchIsCaseInsensitive) {
  const auto mentions = Recognize("the taliban claimed responsibility");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].label, "taliban");
}

TEST_F(NerTest, SentenceInitialKgMatchStillFound) {
  const auto mentions = Recognize("Pakistan condemned the attack.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_TRUE(mentions[0].in_kg);
}

TEST_F(NerTest, CapitalizedRunBecomesUnmatchedMention) {
  const auto mentions = Recognize("Officials met Farid Gulzar yesterday.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].label, "farid gulzar");
  EXPECT_FALSE(mentions[0].in_kg);
}

TEST_F(NerTest, SentenceInitialCapitalIgnoredWhenNotInKg) {
  const auto mentions = Recognize("Nobody expected the outcome.");
  EXPECT_TRUE(mentions.empty());
}

TEST_F(NerTest, CapitalizedStopwordNotAMention) {
  const auto mentions = Recognize("He said The reason was unclear.");
  EXPECT_TRUE(mentions.empty());
}

TEST_F(NerTest, MultipleMentionsInOrder) {
  const auto mentions =
      Recognize("Fighters moved from Upper Dir toward Swat Valley in "
                "Pakistan.");
  ASSERT_EQ(mentions.size(), 3u);
  EXPECT_EQ(mentions[0].label, "upper dir");
  EXPECT_EQ(mentions[1].label, "swat valley");
  EXPECT_EQ(mentions[2].label, "pakistan");
}

TEST_F(NerTest, PunctuationBreaksRuns) {
  const auto mentions = Recognize("They visited Pakistan, Taliban strongholds.");
  ASSERT_EQ(mentions.size(), 2u);
}

// ---------------------------------------------------------------------------
// NewsSegmenter + maximal entity co-occurrence set
// ---------------------------------------------------------------------------

TEST_F(NerTest, SegmenterGroupsEntitiesPerSentence) {
  NewsSegmenter segmenter(ner_.get());
  const SegmentedDocument doc = segmenter.Segment(
      "Militants from Swat Valley attacked. The Taliban and Pakistan forces "
      "clashed near Upper Dir.");
  ASSERT_EQ(doc.segments.size(), 2u);
  EXPECT_EQ(doc.segments[0].entities,
            (std::vector<std::string>{"swat valley"}));
  EXPECT_EQ(doc.segments[1].entities,
            (std::vector<std::string>{"taliban", "pakistan", "upper dir"}));
}

TEST_F(NerTest, SegmenterMatchingRatio) {
  NewsSegmenter segmenter(ner_.get());
  const SegmentedDocument doc = segmenter.Segment(
      "Forces in Pakistan met Farid Gulzar. The Taliban denied it.");
  EXPECT_EQ(doc.TotalMentions(), 3u);
  EXPECT_EQ(doc.MatchedMentions(), 2u);
  EXPECT_NEAR(doc.EntityMatchingRatio(), 2.0 / 3.0, 1e-9);
}

TEST_F(NerTest, MatchingRatioOneWhenNoMentions) {
  NewsSegmenter segmenter(ner_.get());
  const SegmentedDocument doc = segmenter.Segment("nothing to see here.");
  EXPECT_DOUBLE_EQ(doc.EntityMatchingRatio(), 1.0);
}

TEST(MaximalCooccurrenceTest, PaperExampleTwo) {
  // Paper Example 2: L4 ⊂ L2 is ruled out, U_m = {L1, L2, L3}.
  const std::vector<std::vector<std::string>> sets = {
      {"pakistan", "taliban", "afghan"},                     // L1
      {"upper dir", "afghanistan", "taliban"},               // L2
      {"upper dir", "swat valley", "pakistan", "taliban"},   // L3
      {"upper dir", "taliban"},                              // L4
  };
  EXPECT_EQ(MaximalCooccurrenceSets(sets), (std::vector<size_t>{0, 1, 2}));
}

TEST(MaximalCooccurrenceTest, DuplicatesKeepOne) {
  const std::vector<std::vector<std::string>> sets = {
      {"a", "b"}, {"b", "a"}, {"a", "b"}};
  EXPECT_EQ(MaximalCooccurrenceSets(sets).size(), 1u);
}

TEST(MaximalCooccurrenceTest, EmptySetsDropped) {
  const std::vector<std::vector<std::string>> sets = {{}, {"a"}, {}};
  EXPECT_EQ(MaximalCooccurrenceSets(sets), (std::vector<size_t>{1}));
}

TEST(MaximalCooccurrenceTest, DisjointSetsAllKept) {
  const std::vector<std::vector<std::string>> sets = {
      {"a"}, {"b"}, {"c", "d"}};
  EXPECT_EQ(MaximalCooccurrenceSets(sets).size(), 3u);
}

TEST(MaximalCooccurrenceTest, ChainOfSubsetsKeepsLargest) {
  const std::vector<std::vector<std::string>> sets = {
      {"a"}, {"a", "b"}, {"a", "b", "c"}};
  EXPECT_EQ(MaximalCooccurrenceSets(sets), (std::vector<size_t>{2}));
}

TEST(MaximalCooccurrenceTest, ResultPreservesDocumentOrder) {
  const std::vector<std::vector<std::string>> sets = {
      {"x", "y"}, {"p", "q", "r"}, {"m"}};
  const std::vector<size_t> kept = MaximalCooccurrenceSets(sets);
  EXPECT_TRUE(std::is_sorted(kept.begin(), kept.end()));
}

}  // namespace
}  // namespace text
}  // namespace newslink
