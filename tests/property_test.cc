// Cross-module property tests: randomized sweeps asserting invariants that
// must hold for every input, not just curated examples.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embed/lcag_search.h"
#include "ir/inverted_index.h"
#include "ir/max_score.h"
#include "ir/reorder.h"
#include "ir/scorer.h"
#include "ir/top_k.h"
#include "kg/graph_stats.h"
#include "kg/label_index.h"
#include "text/news_segmenter.h"
#include "text/porter_stemmer.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace newslink {
namespace {

// ---------------------------------------------------------------------------
// BM25 TAAT scoring vs brute force
// ---------------------------------------------------------------------------

class Bm25BruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Bm25BruteForceTest, ScoreAllMatchesDirectFormula) {
  Rng rng(GetParam());
  const size_t num_docs = 40;
  const size_t vocab = 30;

  std::vector<ir::TermCounts> docs(num_docs);
  ir::InvertedIndex index;
  for (auto& doc : docs) {
    std::map<ir::TermId, uint32_t> counts;
    const size_t n = 3 + rng.Uniform(20);
    for (size_t i = 0; i < n; ++i) {
      ++counts[static_cast<ir::TermId>(rng.Uniform(vocab))];
    }
    doc.assign(counts.begin(), counts.end());
    index.AddDocument(doc);
  }
  ir::Bm25Scorer scorer(&index);

  ir::TermCounts query = {{static_cast<ir::TermId>(rng.Uniform(vocab)), 1},
                          {static_cast<ir::TermId>(rng.Uniform(vocab)), 2}};

  // Brute force: walk every document's raw counts.
  std::map<ir::DocId, double> expected;
  const double avgdl = index.avg_doc_length();
  for (size_t d = 0; d < num_docs; ++d) {
    double score = 0.0;
    for (const auto& [qterm, qtf] : query) {
      for (const auto& [term, tf] : docs[d]) {
        if (term != qterm) continue;
        const double idf = scorer.Idf(term);
        const double dl = index.DocLength(static_cast<ir::DocId>(d));
        const double norm = 1.2 * (1.0 - 0.75 + 0.75 * dl / avgdl);
        score += qtf * idf * tf * 2.2 / (tf + norm);
      }
    }
    if (score > 0) expected[static_cast<ir::DocId>(d)] = score;
  }

  std::map<ir::DocId, double> actual;
  for (const ir::ScoredDoc& s : scorer.ScoreAll(query)) {
    actual[s.doc] = s.score;
  }
  // Duplicate query term ids would double-count in the brute force; the
  // generator can emit them, making both sides double-count equally.
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [doc, score] : expected) {
    EXPECT_NEAR(actual[doc], score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Bm25BruteForceTest,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// Maximal co-occurrence set properties
// ---------------------------------------------------------------------------

class MaximalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaximalSetPropertyTest, KeptSetsAreMaximalAndCoverDropped) {
  Rng rng(GetParam());
  std::vector<std::vector<std::string>> sets;
  const size_t n = 2 + rng.Uniform(12);
  for (size_t i = 0; i < n; ++i) {
    std::set<std::string> s;
    const size_t len = rng.Uniform(5);  // may be empty
    for (size_t j = 0; j < len; ++j) {
      s.insert("e" + std::to_string(rng.Uniform(6)));
    }
    sets.emplace_back(s.begin(), s.end());
  }

  const std::vector<size_t> kept = text::MaximalCooccurrenceSets(sets);
  auto as_set = [&sets](size_t i) {
    return std::set<std::string>(sets[i].begin(), sets[i].end());
  };

  // 1. No kept set is a subset of another kept set.
  for (size_t a : kept) {
    for (size_t b : kept) {
      if (a == b) continue;
      const auto sa = as_set(a);
      const auto sb = as_set(b);
      EXPECT_FALSE(std::includes(sb.begin(), sb.end(), sa.begin(), sa.end()))
          << "kept set " << a << " subsumed by kept set " << b;
    }
  }
  // 2. Every non-empty dropped set is a subset of some kept set.
  const std::set<size_t> kept_set(kept.begin(), kept.end());
  for (size_t i = 0; i < n; ++i) {
    if (kept_set.contains(i) || sets[i].empty()) continue;
    const auto si = as_set(i);
    bool covered = false;
    for (size_t kidx : kept) {
      const auto sk = as_set(kidx);
      if (std::includes(sk.begin(), sk.end(), si.begin(), si.end())) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "dropped set " << i << " not covered";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaximalSetPropertyTest,
                         ::testing::Range<uint64_t>(0, 16));

// ---------------------------------------------------------------------------
// Tokenizer / sentence splitter robustness on random bytes
// ---------------------------------------------------------------------------

class TextRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextRobustnessTest, TokenizerOffsetsPartitionNonSpaceText) {
  Rng rng(GetParam());
  std::string text;
  const char* alphabet = "abc XY.,'!?7\t\n";
  for (int i = 0; i < 200; ++i) {
    text.push_back(alphabet[rng.Uniform(14)]);
  }
  const auto tokens = text::Tokenize(text);
  size_t last_end = 0;
  for (const text::Token& t : tokens) {
    EXPECT_GE(t.begin, last_end);
    EXPECT_LT(t.begin, t.end);
    EXPECT_LE(t.end, text.size());
    EXPECT_EQ(text.substr(t.begin, t.end - t.begin), t.text);
    last_end = t.end;
  }
}

TEST_P(TextRobustnessTest, SentenceSpansAreOrderedAndDisjoint) {
  Rng rng(GetParam() + 100);
  std::string text;
  const char* alphabet = "abcd efg. Hi! Wh? .. ";
  for (int i = 0; i < 300; ++i) {
    text.push_back(alphabet[rng.Uniform(21)]);
  }
  const auto spans = text::SplitSentences(text);
  size_t last_end = 0;
  for (const auto& span : spans) {
    EXPECT_GE(span.begin, last_end);
    EXPECT_LT(span.begin, span.end);
    EXPECT_LE(span.end, text.size());
    last_end = span.end;
  }
}

TEST_P(TextRobustnessTest, PorterStemNeverGrowsOrCrashes) {
  Rng rng(GetParam() + 200);
  const char* letters = "abcdefghijklmnopqrstuvwxyz";
  for (int trial = 0; trial < 200; ++trial) {
    std::string word;
    const size_t len = 1 + rng.Uniform(14);
    for (size_t i = 0; i < len; ++i) {
      word.push_back(letters[rng.Uniform(26)]);
    }
    const std::string stem = text::PorterStem(word);
    EXPECT_LE(stem.size(), word.size() + 1)
        << word << " -> " << stem;  // +1: -bl/-iz/-at add back an 'e'
    EXPECT_FALSE(stem.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextRobustnessTest,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// G* invariants on random weighted graphs
// ---------------------------------------------------------------------------

class GStarInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GStarInvariantTest, MaterializedGraphHasSoundStructure) {
  Rng rng(GetParam());
  kg::KgBuilder b;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    b.AddNode("node" + std::to_string(i), kg::EntityType::kGpe);
  }
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(
        b.AddEdge(i, static_cast<kg::NodeId>(rng.Uniform(i)), "p").ok());
  }
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<kg::NodeId>(rng.Uniform(n));
    const auto v = static_cast<kg::NodeId>(rng.Uniform(n));
    if (u != v) {
      ASSERT_TRUE(b.AddEdge(u, v, "q").ok());
    }
  }
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);
  embed::LcagSearch search(&g, &index);

  std::vector<std::string> labels;
  for (size_t idx : rng.SampleWithoutReplacement(n, 3)) {
    labels.push_back("node" + std::to_string(idx));
  }
  const embed::LcagResult result = search.Find(labels);
  ASSERT_TRUE(result.found);
  const embed::AncestorGraph& gs = result.graph;

  // Root is a node of the subgraph; sources subset of nodes; every edge's
  // endpoints are nodes of the subgraph.
  const std::set<kg::NodeId> nodes(gs.nodes.begin(), gs.nodes.end());
  EXPECT_TRUE(nodes.contains(gs.root));
  for (kg::NodeId s : gs.source_nodes) EXPECT_TRUE(nodes.contains(s));
  for (const embed::PathEdge& e : gs.edges) {
    EXPECT_TRUE(nodes.contains(e.from));
    EXPECT_TRUE(nodes.contains(e.to));
    EXPECT_NE(e.from, e.to);
  }
  // Depth equals the max label distance; all distances finite.
  double max_dist = 0;
  for (double d : gs.label_distances) {
    EXPECT_LT(d, embed::kInfDistance);
    max_dist = std::max(max_dist, d);
  }
  EXPECT_DOUBLE_EQ(gs.depth(), max_dist);

  // Lemma 2 (unit-ish weights): subgraph diameter <= 2 * depth, checked in
  // hop-count terms via the original graph's BFS as an upper-bound proxy:
  // every node of G* reaches the root within depth (by construction the
  // paths retained end at the root).
  std::map<kg::NodeId, std::vector<kg::NodeId>> adj;
  for (const embed::PathEdge& e : gs.edges) {
    adj[e.from].push_back(e.to);
    adj[e.to].push_back(e.from);
  }
  for (kg::NodeId start : gs.nodes) {
    // Connectivity of the materialized subgraph.
    std::set<kg::NodeId> visited = {start};
    std::vector<kg::NodeId> stack = {start};
    while (!stack.empty()) {
      const kg::NodeId v = stack.back();
      stack.pop_back();
      for (kg::NodeId nb : adj[v]) {
        if (visited.insert(nb).second) stack.push_back(nb);
      }
    }
    EXPECT_EQ(visited.size(), gs.nodes.size())
        << "G* must be connected (node " << start << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GStarInvariantTest,
                         ::testing::Range<uint64_t>(0, 10));

// ---------------------------------------------------------------------------
// TopK vs full sort under heavy ties
// ---------------------------------------------------------------------------

class TopKTieTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKTieTest, MatchesFullSortWithFewDistinctScores) {
  Rng rng(GetParam());
  std::vector<ir::ScoredDoc> scores;
  for (int i = 0; i < 200; ++i) {
    scores.push_back({static_cast<ir::DocId>(i),
                      static_cast<double>(rng.Uniform(4))});  // many ties
  }
  for (size_t k : {1u, 7u, 50u, 200u, 500u}) {
    auto sorted = scores;
    std::sort(sorted.begin(), sorted.end(),
              [](const ir::ScoredDoc& a, const ir::ScoredDoc& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    sorted.resize(std::min<size_t>(k, sorted.size()));
    EXPECT_EQ(ir::SelectTopK(scores, k), sorted) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKTieTest,
                         ::testing::Range<uint64_t>(0, 6));

// ---------------------------------------------------------------------------
// Block-Max MaxScore vs exhaustive scoring, across epochs and doc orders
// ---------------------------------------------------------------------------

class BlockMaxOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockMaxOracleTest, MatchesExhaustiveAcrossEpochsAndReorder) {
  // Property: for every snapshot epoch of a growing index — whether the
  // documents were ingested in natural or signature-sorted order — Block-Max
  // MaxScore returns the same top-k as exhaustive TAAT + SelectTopK: same
  // doc set, scores within summation-order tolerance, ties ordered by doc
  // id. The reordered index is checked against its own oracle (its doc ids
  // name different documents by design).
  Rng rng(GetParam() * 7919 + 3);
  const size_t num_docs = 300;
  const size_t vocab = 120;

  std::vector<ir::TermCounts> docs(num_docs);
  for (auto& doc : docs) {
    std::map<ir::TermId, uint32_t> counts;
    const size_t n = 5 + rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      ++counts[static_cast<ir::TermId>(rng.Uniform(vocab))];
    }
    doc.assign(counts.begin(), counts.end());
  }
  // A synthetic signature-sort permutation, standing in for the engine's
  // SimHash-based doc-id reordering.
  std::vector<uint64_t> signatures(num_docs);
  for (auto& s : signatures) s = rng.Next();
  const std::vector<uint32_t> order = ir::SignatureSortOrder(signatures);
  ASSERT_TRUE(ir::IsPermutation(order));

  for (const bool reorder : {false, true}) {
    ir::InvertedIndex index;
    std::vector<ir::IndexSnapshot> epochs;
    for (size_t d = 0; d < num_docs; ++d) {
      index.AddDocument(docs[reorder ? order[d] : d]);
      if (d == num_docs / 3 || d == 2 * num_docs / 3 ||
          d == num_docs - 1) {
        epochs.push_back(index.Capture());
      }
    }
    ir::Bm25Scorer scorer(&index);
    ir::MaxScoreRetriever block_max(&index);
    ir::MaxScoreRetriever plain(&index, {}, ir::MaxScoreOptions{false});

    Rng qrng(GetParam() * 271 + (reorder ? 1 : 0));
    for (const ir::IndexSnapshot& snapshot : epochs) {
      for (int trial = 0; trial < 8; ++trial) {
        ir::TermCounts query;
        std::set<ir::TermId> used;
        const size_t num_terms = 1 + qrng.Uniform(8);
        while (query.size() < num_terms) {
          const ir::TermId t = static_cast<ir::TermId>(qrng.Uniform(vocab));
          if (used.insert(t).second) {
            query.push_back({t, 1 + static_cast<uint32_t>(qrng.Uniform(3))});
          }
        }
        std::sort(query.begin(), query.end());
        const size_t k = 1 + qrng.Uniform(25);

        const auto exact =
            ir::SelectTopK(scorer.ScoreAll(query, snapshot), k);
        for (const auto* retriever : {&block_max, &plain}) {
          const auto pruned = retriever->TopK(query, k, snapshot);
          ASSERT_EQ(pruned.size(), exact.size());
          std::set<ir::DocId> pruned_docs, exact_docs;
          for (const auto& s : pruned) pruned_docs.insert(s.doc);
          for (const auto& s : exact) exact_docs.insert(s.doc);
          ASSERT_EQ(pruned_docs, exact_docs)
              << "reorder=" << reorder << " trial " << trial;
          for (size_t i = 0; i < pruned.size(); ++i) {
            EXPECT_NEAR(pruned[i].score, exact[i].score, 1e-9);
            if (i > 0 && pruned[i].score == pruned[i - 1].score) {
              EXPECT_LT(pruned[i - 1].doc, pruned[i].doc)
                  << "ties must order by doc id";
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockMaxOracleTest,
                         ::testing::Range<uint64_t>(0, 5));

}  // namespace
}  // namespace newslink
