// Tests for the synthetic KG generator: determinism, connectivity, the
// structural properties the NE component relies on.

#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "kg/label_index.h"
#include "kg/synthetic_kg.h"

namespace newslink {
namespace kg {
namespace {

SyntheticKgConfig SmallConfig() {
  SyntheticKgConfig config;
  config.seed = 42;
  config.num_countries = 2;
  config.provinces_per_country = 3;
  config.districts_per_province = 3;
  config.cities_per_district = 2;
  config.duplicate_label_prob = 0.0;
  return config;
}

size_t ReachableFrom(const KnowledgeGraph& g, NodeId start) {
  std::set<NodeId> visited = {start};
  std::queue<NodeId> frontier;
  frontier.push(start);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const Arc& arc : g.OutArcs(v)) {
      if (visited.insert(arc.dst).second) frontier.push(arc.dst);
    }
  }
  return visited.size();
}

TEST(SyntheticKgTest, DeterministicForSameSeed) {
  SyntheticKg a = SyntheticKgGenerator(SmallConfig()).Generate();
  SyntheticKg b = SyntheticKgGenerator(SmallConfig()).Generate();
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
    EXPECT_EQ(a.graph.label(v), b.graph.label(v));
  }
}

TEST(SyntheticKgTest, DifferentSeedsDiffer) {
  SyntheticKgConfig other = SmallConfig();
  other.seed = 43;
  SyntheticKg a = SyntheticKgGenerator(SmallConfig()).Generate();
  SyntheticKg b = SyntheticKgGenerator(other).Generate();
  bool any_diff = a.graph.num_nodes() != b.graph.num_nodes();
  if (!any_diff) {
    for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
      if (a.graph.label(v) != b.graph.label(v)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticKgTest, GraphIsConnected) {
  SyntheticKg kg = SyntheticKgGenerator(SmallConfig()).Generate();
  // The paper assumes K is connected (Sec. V-A). The generator must deliver.
  EXPECT_EQ(ReachableFrom(kg.graph, 0), kg.graph.num_nodes());
}

TEST(SyntheticKgTest, GeographyCountsMatchConfig) {
  SyntheticKgConfig config = SmallConfig();
  SyntheticKg kg = SyntheticKgGenerator(config).Generate();
  EXPECT_EQ(kg.Category("country").size(),
            static_cast<size_t>(config.num_countries));
  EXPECT_EQ(kg.Category("province").size(),
            static_cast<size_t>(config.num_countries *
                                config.provinces_per_country));
  EXPECT_EQ(kg.Category("district").size(),
            static_cast<size_t>(config.num_countries *
                                config.provinces_per_country *
                                config.districts_per_province));
  EXPECT_EQ(kg.Category("city").size(),
            static_cast<size_t>(config.num_countries *
                                config.provinces_per_country *
                                config.districts_per_province *
                                config.cities_per_district));
}

TEST(SyntheticKgTest, AllExpectedCategoriesPresent) {
  SyntheticKg kg = SyntheticKgGenerator(SmallConfig()).Generate();
  for (const char* cat :
       {"country", "province", "district", "city", "party", "politician",
        "election", "agency", "militant_group", "company", "executive",
        "league", "team", "player", "event"}) {
    EXPECT_FALSE(kg.Category(cat).empty()) << cat;
  }
  EXPECT_TRUE(kg.Category("bogus").empty());
}

TEST(SyntheticKgTest, StoryAnchorsNonEmptyAndValid) {
  SyntheticKg kg = SyntheticKgGenerator(SmallConfig()).Generate();
  EXPECT_FALSE(kg.story_anchors.empty());
  for (NodeId v : kg.story_anchors) EXPECT_LT(v, kg.graph.num_nodes());
}

TEST(SyntheticKgTest, LabelsUniqueWhenDuplicationDisabled) {
  SyntheticKg kg = SyntheticKgGenerator(SmallConfig()).Generate();
  std::set<std::string> labels;
  for (NodeId v = 0; v < kg.graph.num_nodes(); ++v) {
    EXPECT_TRUE(labels.insert(NormalizeLabel(kg.graph.label(v))).second)
        << "duplicate label: " << kg.graph.label(v);
  }
}

TEST(SyntheticKgTest, DuplicateLabelsProduceMultiNodeLabelSets) {
  SyntheticKgConfig config = SmallConfig();
  config.duplicate_label_prob = 0.5;
  SyntheticKg kg = SyntheticKgGenerator(config).Generate();
  LabelIndex index(kg.graph);
  size_t ambiguous = 0;
  index.ForEachLabel(
      [&ambiguous](const std::string&, const std::vector<NodeId>& nodes) {
        if (nodes.size() > 1) ++ambiguous;
      });
  // Ambiguous surface labels make S(l) multi-node sets (paper Def. 2).
  EXPECT_GT(ambiguous, 10u);
}

TEST(SyntheticKgTest, DescriptionsNonEmpty) {
  SyntheticKg kg = SyntheticKgGenerator(SmallConfig()).Generate();
  for (NodeId v = 0; v < kg.graph.num_nodes(); ++v) {
    EXPECT_FALSE(kg.graph.description(v).empty()) << kg.graph.label(v);
  }
}

TEST(SyntheticKgTest, DistrictsLocatedInProvinces) {
  SyntheticKg kg = SyntheticKgGenerator(SmallConfig()).Generate();
  const auto& provinces = kg.Category("province");
  const std::set<NodeId> province_set(provinces.begin(), provinces.end());
  Result<PredicateId> located = kg.graph.FindPredicate("located_in");
  ASSERT_TRUE(located.ok());
  for (NodeId d : kg.Category("district")) {
    bool in_province = false;
    for (const Arc& arc : kg.graph.OutArcs(d)) {
      if (arc.forward && arc.predicate == *located &&
          province_set.contains(arc.dst)) {
        in_province = true;
      }
    }
    EXPECT_TRUE(in_province) << kg.graph.label(d);
  }
}

TEST(SyntheticKgTest, ElectionsHaveCandidates) {
  SyntheticKg kg = SyntheticKgGenerator(SmallConfig()).Generate();
  Result<PredicateId> cand = kg.graph.FindPredicate("candidate_in");
  ASSERT_TRUE(cand.ok());
  for (NodeId e : kg.Category("election")) {
    int candidates = 0;
    for (const Arc& arc : kg.graph.OutArcs(e)) {
      // Reverse arcs at the election point back to candidates.
      if (!arc.forward && arc.predicate == *cand) ++candidates;
    }
    EXPECT_GE(candidates, 2) << kg.graph.label(e);
  }
}

TEST(SyntheticKgTest, BorderEdgesCreateParallelPaths) {
  SyntheticKgConfig config = SmallConfig();
  config.extra_border_prob = 1.0;  // force borders
  SyntheticKg kg = SyntheticKgGenerator(config).Generate();
  Result<PredicateId> borders = kg.graph.FindPredicate("borders");
  ASSERT_TRUE(borders.ok());
  int border_edges = 0;
  for (const EdgeRecord& e : kg.graph.edges()) {
    if (e.predicate == *borders) ++border_edges;
  }
  // With prob 1, every province after the first and every district after
  // the first (per province) gets a border edge, plus the country ring.
  EXPECT_GT(border_edges, config.num_countries *
                              config.provinces_per_country);
}

TEST(SyntheticKgTest, ScalesWithConfig) {
  SyntheticKgConfig big = SmallConfig();
  big.num_countries = 4;
  SyntheticKg small = SyntheticKgGenerator(SmallConfig()).Generate();
  SyntheticKg large = SyntheticKgGenerator(big).Generate();
  EXPECT_GT(large.graph.num_nodes(), small.graph.num_nodes() * 3 / 2);
}

TEST(NameForgeTest, GeneratesUniqueNames) {
  Rng rng(5);
  NameForge forge(&rng);
  std::set<std::string> names;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(names.insert(forge.PlaceName()).second);
    EXPECT_TRUE(names.insert(forge.PersonName()).second);
  }
}

TEST(NameForgeTest, WordsAreLowercase) {
  Rng rng(6);
  NameForge forge(&rng);
  for (int i = 0; i < 100; ++i) {
    const std::string w = forge.Word();
    EXPECT_FALSE(w.empty());
    for (char c : w) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) || c == ' ')
          << w;
    }
  }
}

}  // namespace
}  // namespace kg
}  // namespace newslink
