// Tests for src/embed — the paper's core contribution. Covers the
// compactness order (Def. 4), the G* search (Algorithms 1-3) on the
// paper's own Figure 1 topology, Lemmas 1-3, Theorem 1 (agreement with an
// exhaustive reference, swept over random graphs), the TreeEmb baseline,
// document embeddings and the path explainer.

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embed/ancestor_graph.h"
#include "embed/document_embedding.h"
#include "embed/lcag_search.h"
#include "embed/path_explainer.h"
#include "embed/tree_embedder.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"

namespace newslink {
namespace embed {
namespace {

// ---------------------------------------------------------------------------
// Compactness order (Definition 4)
// ---------------------------------------------------------------------------

TEST(CompactnessTest, SortedDescending) {
  EXPECT_EQ(SortedDescending({1, 3, 2}), (std::vector<double>{3, 2, 1}));
  EXPECT_EQ(SortedDescending({}), (std::vector<double>{}));
}

TEST(CompactnessTest, PaperExample) {
  // Fig. 1 discussion: G_{v0} with distances {2,1,1,1} is more compact than
  // G_u with {2,2,1,1} because the second-largest distance is smaller.
  EXPECT_TRUE(CompactnessLess({2, 1, 1, 1}, {2, 2, 1, 1}));
  EXPECT_FALSE(CompactnessLess({2, 2, 1, 1}, {2, 1, 1, 1}));
}

TEST(CompactnessTest, OrderIndependentOfInputPermutation) {
  EXPECT_TRUE(CompactnessLess({1, 2, 1, 1}, {1, 1, 2, 2}));
  EXPECT_TRUE(CompactnessEqual({3, 1, 2}, {1, 2, 3}));
}

TEST(CompactnessTest, EqualVectorsNeitherLess) {
  EXPECT_FALSE(CompactnessLess({2, 1}, {1, 2}));
  EXPECT_FALSE(CompactnessLess({1, 2}, {2, 1}));
  EXPECT_TRUE(CompactnessEqual({2, 1}, {1, 2}));
}

TEST(CompactnessTest, SmallerDepthAlwaysWins) {
  // Lemma 1's engine: depth is the first comparison key.
  EXPECT_TRUE(CompactnessLess({2, 2, 2}, {3, 0, 0}));
}

TEST(CompactnessTest, StrictWeakOrderingOnRandomVectors) {
  Rng rng(99);
  std::vector<std::vector<double>> vecs;
  for (int i = 0; i < 30; ++i) {
    std::vector<double> v(4);
    for (double& x : v) x = static_cast<double>(rng.Uniform(4));
    vecs.push_back(std::move(v));
  }
  for (const auto& a : vecs) {
    EXPECT_FALSE(CompactnessLess(a, a));  // irreflexive
    for (const auto& b : vecs) {
      // Antisymmetric.
      EXPECT_FALSE(CompactnessLess(a, b) && CompactnessLess(b, a));
      // Trichotomy.
      EXPECT_TRUE(CompactnessLess(a, b) || CompactnessLess(b, a) ||
                  CompactnessEqual(a, b));
      for (const auto& c : vecs) {
        if (CompactnessLess(a, b) && CompactnessLess(b, c)) {
          EXPECT_TRUE(CompactnessLess(a, c));  // transitive
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The paper's Figure 1 graph
// ---------------------------------------------------------------------------

/// Node layout mirrors Fig. 1: v0 Khyber, v1 Waziristan, v2 Taliban,
/// v3 Kunar, v4 Lahore, v5 Peshawar, v6 Pakistan, v7 Upper Dir,
/// v8 Swat Valley.
class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() {
    kg::KgBuilder b;
    khyber_ = b.AddNode("Khyber", kg::EntityType::kGpe);
    waziristan_ = b.AddNode("Waziristan", kg::EntityType::kGpe);
    taliban_ = b.AddNode("Taliban", kg::EntityType::kNorp);
    kunar_ = b.AddNode("Kunar", kg::EntityType::kGpe);
    lahore_ = b.AddNode("Lahore", kg::EntityType::kGpe);
    peshawar_ = b.AddNode("Peshawar", kg::EntityType::kGpe);
    pakistan_ = b.AddNode("Pakistan", kg::EntityType::kGpe);
    upper_dir_ = b.AddNode("Upper Dir", kg::EntityType::kGpe);
    swat_ = b.AddNode("Swat Valley", kg::EntityType::kGpe);

    auto edge = [&b](kg::NodeId s, kg::NodeId d, const char* p) {
      ASSERT_TRUE(b.AddEdge(s, d, p).ok());
    };
    // Two parallel 2-hop connections Taliban -> Khyber (the coverage case).
    edge(taliban_, waziristan_, "operates_in");
    edge(waziristan_, khyber_, "located_in");
    edge(taliban_, kunar_, "operates_in");
    edge(kunar_, khyber_, "located_in");
    // One-hop neighbours of Khyber.
    edge(upper_dir_, khyber_, "located_in");
    edge(swat_, khyber_, "located_in");
    edge(khyber_, pakistan_, "part_of");
    edge(peshawar_, khyber_, "located_in");
    // Lahore sits two hops away through Pakistan.
    edge(lahore_, pakistan_, "located_in");
    graph_ = b.Build();
    index_ = kg::LabelIndex(graph_);
  }

  kg::NodeId khyber_, waziristan_, taliban_, kunar_, lahore_, peshawar_,
      pakistan_, upper_dir_, swat_;
  kg::KnowledgeGraph graph_;
  kg::LabelIndex index_;
};

TEST_F(Figure1Test, GStarRootIsKhyber) {
  LcagSearch search(&graph_, &index_);
  const LcagResult result = search.Find(
      {"upper dir", "swat valley", "pakistan", "taliban"});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.graph.root, khyber_);
  EXPECT_EQ(SortedDescending(result.graph.label_distances),
            (std::vector<double>{2, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(result.graph.depth(), 2.0);
}

TEST_F(Figure1Test, CoverageKeepsBothTalibanPaths) {
  LcagSearch search(&graph_, &index_);
  const LcagResult result = search.Find(
      {"upper dir", "swat valley", "pakistan", "taliban"});
  ASSERT_TRUE(result.found);
  const auto& nodes = result.graph.nodes;
  // Both intermediate nodes of the two shortest Taliban->Khyber paths must
  // be present (paper: "two paths from v2 to v0 in Figure 1").
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), waziristan_), nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), kunar_), nodes.end());
  // Edges: taliban->waziristan->khyber and taliban->kunar->khyber, plus
  // three 1-hop label paths = 4 + 3 edges.
  EXPECT_EQ(result.graph.edges.size(), 7u);
}

TEST_F(Figure1Test, TreeEmbedderKeepsOnlyOneTalibanPath) {
  TreeEmbedder tree(&graph_, &index_);
  const TreeEmbedResult result = tree.Find(
      {"upper dir", "swat valley", "pakistan", "taliban"});
  ASSERT_TRUE(result.found);
  const auto& nodes = result.tree.nodes;
  const bool has_waziristan =
      std::find(nodes.begin(), nodes.end(), waziristan_) != nodes.end();
  const bool has_kunar =
      std::find(nodes.begin(), nodes.end(), kunar_) != nodes.end();
  EXPECT_NE(has_waziristan, has_kunar)
      << "a tree must keep exactly one of the two parallel paths";
  // Tree shape: |E| = |V| - 1.
  EXPECT_EQ(result.tree.edges.size(), result.tree.nodes.size() - 1);
}

TEST_F(Figure1Test, QueryAndResultEmbeddingsOverlap) {
  LcagSearch search(&graph_, &index_);
  const LcagResult tq = search.Find(
      {"upper dir", "swat valley", "pakistan", "taliban"});
  const LcagResult tr =
      search.Find({"lahore", "peshawar", "pakistan", "taliban"});
  ASSERT_TRUE(tq.found);
  ASSERT_TRUE(tr.found);
  // Paper Table I: Khyber and Kunar are induced entities of BOTH documents.
  std::set<kg::NodeId> q_nodes(tq.graph.nodes.begin(), tq.graph.nodes.end());
  EXPECT_TRUE(q_nodes.contains(khyber_));
  std::set<kg::NodeId> r_nodes(tr.graph.nodes.begin(), tr.graph.nodes.end());
  EXPECT_TRUE(r_nodes.contains(khyber_));
  std::vector<kg::NodeId> overlap;
  std::set_intersection(q_nodes.begin(), q_nodes.end(), r_nodes.begin(),
                        r_nodes.end(), std::back_inserter(overlap));
  EXPECT_GE(overlap.size(), 3u);  // at least khyber, pakistan, taliban
}

TEST_F(Figure1Test, SourceNodesAreTheEntityNodes) {
  LcagSearch search(&graph_, &index_);
  const LcagResult result = search.Find(
      {"upper dir", "swat valley", "pakistan", "taliban"});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.graph.source_nodes,
            (std::vector<kg::NodeId>{taliban_, pakistan_, upper_dir_,
                                     swat_}));
}

TEST_F(Figure1Test, Lemma2DiameterBound) {
  LcagSearch search(&graph_, &index_);
  const LcagResult result = search.Find(
      {"upper dir", "swat valley", "pakistan", "taliban"});
  ASSERT_TRUE(result.found);
  const AncestorGraph& g = result.graph;

  // BFS inside the materialized subgraph, treating edges as undirected.
  std::map<kg::NodeId, std::vector<kg::NodeId>> adj;
  for (const PathEdge& e : g.edges) {
    adj[e.from].push_back(e.to);
    adj[e.to].push_back(e.from);
  }
  for (kg::NodeId start : g.nodes) {
    std::map<kg::NodeId, int> dist = {{start, 0}};
    std::queue<kg::NodeId> q;
    q.push(start);
    while (!q.empty()) {
      const kg::NodeId v = q.front();
      q.pop();
      for (kg::NodeId n : adj[v]) {
        if (!dist.contains(n)) {
          dist[n] = dist[v] + 1;
          q.push(n);
        }
      }
    }
    for (kg::NodeId other : g.nodes) {
      ASSERT_TRUE(dist.contains(other)) << "G* must be connected";
      EXPECT_LE(dist[other], 2 * g.depth());  // Lemma 2
    }
  }
}

TEST_F(Figure1Test, SingleLabelDegeneratesToSourceNode) {
  LcagSearch search(&graph_, &index_);
  const LcagResult result = search.Find({"taliban"});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.graph.root, taliban_);
  EXPECT_DOUBLE_EQ(result.graph.depth(), 0.0);
  EXPECT_EQ(result.graph.nodes, (std::vector<kg::NodeId>{taliban_}));
}

TEST_F(Figure1Test, UnmatchedLabelsAreDropped) {
  LcagSearch search(&graph_, &index_);
  const LcagResult result =
      search.Find({"taliban", "atlantis", "pakistan"});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.resolved_labels,
            (std::vector<std::string>{"taliban", "pakistan"}));
  EXPECT_EQ(result.graph.label_distances.size(), 2u);
}

TEST_F(Figure1Test, AllLabelsUnmatchedReturnsNotFound) {
  LcagSearch search(&graph_, &index_);
  const LcagResult result = search.Find({"atlantis", "elbonia"});
  EXPECT_FALSE(result.found);
}

TEST_F(Figure1Test, ExhaustiveAgreesOnFigureOne) {
  LcagSearch search(&graph_, &index_);
  const std::vector<std::string> labels = {"upper dir", "swat valley",
                                           "pakistan", "taliban"};
  const LcagResult fast = search.Find(labels);
  const LcagResult slow = search.FindExhaustive(labels);
  ASSERT_TRUE(fast.found);
  ASSERT_TRUE(slow.found);
  EXPECT_TRUE(CompactnessEqual(fast.graph.label_distances,
                               slow.graph.label_distances));
  // Early termination must do no more work than the exhaustive sweep.
  EXPECT_LE(fast.expansions, slow.expansions);
}

TEST_F(Figure1Test, TreeEmbedderExpandsMoreThanLcag) {
  // The efficiency claim behind Fig. 7: the GST bound (total weight)
  // requires a deeper frontier sweep than the LCAG depth bound.
  LcagSearch lcag(&graph_, &index_);
  TreeEmbedder tree(&graph_, &index_);
  const std::vector<std::string> labels = {"upper dir", "swat valley",
                                           "pakistan", "taliban"};
  const LcagResult a = lcag.Find(labels);
  const TreeEmbedResult b = tree.Find(labels);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_GE(b.expansions, a.expansions);
}

// ---------------------------------------------------------------------------
// MultiLabelDijkstra: monotonicity (Lemma 3) and tie handling
// ---------------------------------------------------------------------------

TEST_F(Figure1Test, PopDistancesAreMonotonicallyNonDecreasing) {
  std::vector<std::vector<kg::NodeId>> sources = {
      {upper_dir_}, {swat_}, {pakistan_}, {taliban_}};
  MultiLabelDijkstra dijkstra(&graph_, std::move(sources));
  MultiLabelDijkstra::PopEvent event;
  double last = 0.0;
  while (dijkstra.PopNext(&event)) {
    EXPECT_GE(event.distance, last);  // Lemma 3
    last = event.distance;
  }
}

TEST_F(Figure1Test, SettledCountReachesAllLabelsAtRoot) {
  std::vector<std::vector<kg::NodeId>> sources = {
      {upper_dir_}, {swat_}, {pakistan_}, {taliban_}};
  MultiLabelDijkstra dijkstra(&graph_, std::move(sources));
  MultiLabelDijkstra::PopEvent event;
  while (dijkstra.PopNext(&event)) {
  }
  EXPECT_EQ(dijkstra.SettledCount(khyber_), 4);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(dijkstra.Settled(i, khyber_));
  }
  EXPECT_DOUBLE_EQ(dijkstra.Distance(3, khyber_), 2.0);  // taliban
}

TEST(MultiLabelDijkstraTest, MultipleSourcesPerLabel) {
  // Two "Springfield" nodes; D(l, v) must be the min over S(l) (Def. 2).
  kg::KgBuilder b;
  const kg::NodeId s1 = b.AddNode("Springfield", kg::EntityType::kGpe);
  const kg::NodeId s2 = b.AddNode("Springfield", kg::EntityType::kGpe);
  const kg::NodeId mid = b.AddNode("Mid", kg::EntityType::kGpe);
  const kg::NodeId far = b.AddNode("Far", kg::EntityType::kGpe);
  ASSERT_TRUE(b.AddEdge(s1, mid, "p").ok());
  ASSERT_TRUE(b.AddEdge(mid, far, "p").ok());
  ASSERT_TRUE(b.AddEdge(s2, far, "p").ok());
  kg::KnowledgeGraph g = b.Build();

  MultiLabelDijkstra dijkstra(&g, {{s1, s2}});
  MultiLabelDijkstra::PopEvent event;
  while (dijkstra.PopNext(&event)) {
  }
  EXPECT_DOUBLE_EQ(dijkstra.Distance(0, far), 1.0);  // via s2, not 2 via s1
  EXPECT_DOUBLE_EQ(dijkstra.Distance(0, mid), 1.0);
}

TEST(LcagSearchTest, DisconnectedLabelsNotFound) {
  kg::KgBuilder b;
  const kg::NodeId a = b.AddNode("IslandA", kg::EntityType::kGpe);
  const kg::NodeId a2 = b.AddNode("CoastA", kg::EntityType::kGpe);
  const kg::NodeId c = b.AddNode("IslandB", kg::EntityType::kGpe);
  const kg::NodeId c2 = b.AddNode("CoastB", kg::EntityType::kGpe);
  ASSERT_TRUE(b.AddEdge(a, a2, "p").ok());
  ASSERT_TRUE(b.AddEdge(c, c2, "p").ok());
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);
  LcagSearch search(&g, &index);
  const LcagResult result = search.Find({"islanda", "islandb"});
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.timed_out);
}

TEST(LcagSearchTest, EqualDepthCandidatesComparedOnSecondaryDistance) {
  // Two candidate roots with the same depth 2 but different second-largest
  // distances; C2 must not cut off the better one.
  kg::KgBuilder b;
  const kg::NodeId a = b.AddNode("SourceA", kg::EntityType::kGpe);   // 0
  const kg::NodeId bb = b.AddNode("SourceB", kg::EntityType::kGpe);  // 1
  const kg::NodeId n1 = b.AddNode("RootFar", kg::EntityType::kGpe);  // 2
  const kg::NodeId n2 = b.AddNode("RootNear", kg::EntityType::kGpe); // 3
  const kg::NodeId x = b.AddNode("X", kg::EntityType::kGpe);         // 4
  const kg::NodeId y = b.AddNode("Y", kg::EntityType::kGpe);         // 5
  const kg::NodeId z = b.AddNode("Z", kg::EntityType::kGpe);         // 6
  // n1: distance 2 from both sources.
  ASSERT_TRUE(b.AddEdge(a, x, "p").ok());
  ASSERT_TRUE(b.AddEdge(x, n1, "p").ok());
  ASSERT_TRUE(b.AddEdge(bb, y, "p").ok());
  ASSERT_TRUE(b.AddEdge(y, n1, "p").ok());
  // n2: distance 2 from a, 1 from b.
  ASSERT_TRUE(b.AddEdge(a, z, "p").ok());
  ASSERT_TRUE(b.AddEdge(z, n2, "p").ok());
  ASSERT_TRUE(b.AddEdge(bb, n2, "p").ok());
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);
  LcagSearch search(&g, &index);
  const LcagResult result = search.Find({"sourcea", "sourceb"});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(SortedDescending(result.graph.label_distances),
            (std::vector<double>{2, 1}));
}

TEST(LcagSearchTest, WeightedEdgesChangeTheRoot) {
  kg::KgBuilder b;
  const kg::NodeId a = b.AddNode("A", kg::EntityType::kGpe);
  const kg::NodeId c = b.AddNode("C", kg::EntityType::kGpe);
  const kg::NodeId cheap = b.AddNode("Cheap", kg::EntityType::kGpe);
  const kg::NodeId dear = b.AddNode("Dear", kg::EntityType::kGpe);
  ASSERT_TRUE(b.AddEdge(a, cheap, "p", 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(c, cheap, "p", 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(a, dear, "p", 5.0f).ok());
  ASSERT_TRUE(b.AddEdge(c, dear, "p", 5.0f).ok());
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);
  LcagSearch search(&g, &index);
  const LcagResult result = search.Find({"a", "c"});
  ASSERT_TRUE(result.found);
  // Candidates: a itself at [2,0] via cheap... the best is either endpoint
  // or cheap: cheap has [1,1], a has [0,2], depth 1 < 2 -> cheap wins.
  EXPECT_EQ(result.graph.root, cheap);
}

TEST(LcagSearchTest, MaxExpansionsCapStopsSearch) {
  kg::KgBuilder b;
  std::vector<kg::NodeId> chain;
  for (int i = 0; i < 50; ++i) {
    chain.push_back(
        b.AddNode("N" + std::to_string(i), kg::EntityType::kGpe));
  }
  for (int i = 0; i + 1 < 50; ++i) {
    ASSERT_TRUE(b.AddEdge(chain[i], chain[i + 1], "p").ok());
  }
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);
  LcagSearch search(&g, &index);
  LcagOptions options;
  options.max_expansions = 3;  // far too few to connect the chain ends
  const LcagResult result = search.Find({"n0", "n49"}, options);
  EXPECT_FALSE(result.found);
  EXPECT_LE(result.expansions, 3u);
}

// ---------------------------------------------------------------------------
// Theorem 1: agreement with the exhaustive reference on random graphs
// ---------------------------------------------------------------------------

struct RandomCase {
  uint64_t seed;
  int num_nodes;
  int num_labels;
};

class LcagRandomAgreementTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(LcagRandomAgreementTest, FastMatchesExhaustive) {
  const RandomCase param = GetParam();
  Rng rng(param.seed);
  kg::KgBuilder b;
  for (int i = 0; i < param.num_nodes; ++i) {
    // A few duplicated labels exercise multi-source S(l).
    const std::string label = (i % 7 == 3)
                                  ? "dup" + std::to_string(i % 14)
                                  : "node" + std::to_string(i);
    b.AddNode(label, kg::EntityType::kGpe);
  }
  // Random connected-ish graph: a spanning chain + random extra edges with
  // random small integer weights.
  for (int i = 1; i < param.num_nodes; ++i) {
    ASSERT_TRUE(b.AddEdge(i, static_cast<kg::NodeId>(rng.Uniform(i)), "p",
                          1.0f + static_cast<float>(rng.Uniform(3)))
                    .ok());
  }
  for (int i = 0; i < param.num_nodes; ++i) {
    const kg::NodeId u = static_cast<kg::NodeId>(rng.Uniform(param.num_nodes));
    const kg::NodeId v = static_cast<kg::NodeId>(rng.Uniform(param.num_nodes));
    if (u != v) {
      ASSERT_TRUE(
          b.AddEdge(u, v, "q", 1.0f + static_cast<float>(rng.Uniform(3)))
              .ok());
    }
  }
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);

  std::vector<std::string> labels;
  for (size_t idx :
       rng.SampleWithoutReplacement(param.num_nodes, param.num_labels)) {
    labels.push_back(kg::NormalizeLabel(g.label(
        static_cast<kg::NodeId>(idx))));
  }

  LcagSearch search(&g, &index);
  const LcagResult fast = search.Find(labels);
  const LcagResult slow = search.FindExhaustive(labels);
  ASSERT_EQ(fast.found, slow.found);
  if (fast.found) {
    EXPECT_TRUE(CompactnessEqual(fast.graph.label_distances,
                                 slow.graph.label_distances))
        << "fast root " << fast.graph.root << " vs exhaustive root "
        << slow.graph.root;
    EXPECT_LE(fast.expansions, slow.expansions);
  }
}

std::vector<RandomCase> MakeRandomCases() {
  std::vector<RandomCase> cases;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    cases.push_back({seed, 24 + static_cast<int>(seed % 3) * 12,
                     2 + static_cast<int>(seed % 4)});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, LcagRandomAgreementTest,
                         ::testing::ValuesIn(MakeRandomCases()));

// ---------------------------------------------------------------------------
// TreeEmbedder objective on random graphs
// ---------------------------------------------------------------------------

class TreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeRandomTest, RootMinimizesTotalWeightAmongAllNodes) {
  Rng rng(GetParam());
  kg::KgBuilder b;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    b.AddNode("node" + std::to_string(i), kg::EntityType::kGpe);
  }
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(b.AddEdge(i, static_cast<kg::NodeId>(rng.Uniform(i)), "p").ok());
  }
  for (int i = 0; i < n / 2; ++i) {
    const kg::NodeId u = static_cast<kg::NodeId>(rng.Uniform(n));
    const kg::NodeId v = static_cast<kg::NodeId>(rng.Uniform(n));
    if (u != v) {
      ASSERT_TRUE(b.AddEdge(u, v, "q").ok());
    }
  }
  kg::KnowledgeGraph g = b.Build();
  kg::LabelIndex index(g);

  std::vector<std::string> labels = {"node0", "node7", "node13"};
  TreeEmbedder tree(&g, &index);
  const TreeEmbedResult result = tree.Find(labels);
  ASSERT_TRUE(result.found);

  // Brute-force the star objective with full per-label Dijkstras.
  LcagSearch search(&g, &index);
  const LcagResult full = search.FindExhaustive(labels);
  ASSERT_TRUE(full.found);
  std::vector<std::vector<kg::NodeId>> sources;
  for (const auto& l : labels) {
    auto s = index.Lookup(l);
    sources.emplace_back(s.begin(), s.end());
  }
  MultiLabelDijkstra dijkstra(&g, std::move(sources));
  MultiLabelDijkstra::PopEvent event;
  while (dijkstra.PopNext(&event)) {
  }
  double best_total = kInfDistance;
  for (kg::NodeId v = 0; v < g.num_nodes(); ++v) {
    double total = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      total += dijkstra.Distance(i, v);
    }
    best_total = std::min(best_total, total);
  }
  EXPECT_DOUBLE_EQ(result.total_weight, best_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// DocumentEmbedding
// ---------------------------------------------------------------------------

TEST_F(Figure1Test, DocumentEmbeddingUnionCountsOverlap) {
  LcagSegmentEmbedder embedder(&graph_, &index_);
  const DocumentEmbedding emb = EmbedDocument(
      embedder, {{"upper dir", "taliban"}, {"swat valley", "taliban"}});
  ASSERT_EQ(emb.segment_graphs.size(), 2u);
  ASSERT_FALSE(emb.empty());
  // Nodes shared by both segment graphs must have count 2.
  std::map<kg::NodeId, uint32_t> counts(emb.node_counts.begin(),
                                        emb.node_counts.end());
  EXPECT_EQ(counts[taliban_], 2u);
  EXPECT_EQ(counts[upper_dir_], 1u);
  EXPECT_EQ(counts[swat_], 1u);
}

TEST_F(Figure1Test, InducedNodesExcludeSources) {
  LcagSegmentEmbedder embedder(&graph_, &index_);
  const DocumentEmbedding emb = EmbedDocument(
      embedder, {{"upper dir", "swat valley", "pakistan", "taliban"}});
  const std::vector<kg::NodeId> sources = emb.SourceNodes();
  const std::vector<kg::NodeId> induced = emb.InducedNodes();
  for (kg::NodeId v : induced) {
    EXPECT_EQ(std::find(sources.begin(), sources.end(), v), sources.end());
  }
  // Khyber is induced (paper Table I).
  EXPECT_NE(std::find(induced.begin(), induced.end(), khyber_),
            induced.end());
}

TEST_F(Figure1Test, EmptyGroupsYieldEmptyEmbedding) {
  LcagSegmentEmbedder embedder(&graph_, &index_);
  const DocumentEmbedding emb = EmbedDocument(embedder, {});
  EXPECT_TRUE(emb.empty());
  const DocumentEmbedding emb2 = EmbedDocument(embedder, {{}});
  EXPECT_TRUE(emb2.empty());
}

TEST_F(Figure1Test, TreeSegmentEmbedderAlsoWorks) {
  TreeSegmentEmbedder embedder(&graph_, &index_);
  AncestorGraph out;
  EXPECT_TRUE(embedder.EmbedSegment({"upper dir", "taliban"}, &out));
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(embedder.name(), "TreeEmb");
}

// ---------------------------------------------------------------------------
// PathExplainer
// ---------------------------------------------------------------------------

TEST_F(Figure1Test, ExplainsQueryResultEntityPairs) {
  LcagSegmentEmbedder embedder(&graph_, &index_);
  const DocumentEmbedding q = EmbedDocument(
      embedder, {{"upper dir", "swat valley", "pakistan", "taliban"}});
  const DocumentEmbedding r = EmbedDocument(
      embedder, {{"lahore", "peshawar", "pakistan", "taliban"}});

  PathExplainer explainer(&graph_);
  const std::vector<RelationshipPath> paths = explainer.Explain(q, r, 10);
  ASSERT_FALSE(paths.empty());
  // Paths are sorted by length.
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].length(), paths[i - 1].length());
  }
  // Every path stays within the union of the two embeddings.
  std::set<kg::NodeId> allowed;
  for (const auto& e : q.segment_graphs) {
    allowed.insert(e.nodes.begin(), e.nodes.end());
  }
  for (const auto& e : r.segment_graphs) {
    allowed.insert(e.nodes.begin(), e.nodes.end());
  }
  for (const RelationshipPath& p : paths) {
    for (kg::NodeId v : p.nodes) EXPECT_TRUE(allowed.contains(v));
  }
}

TEST_F(Figure1Test, FindPathConnectsUpperDirAndPeshawarThroughKhyber) {
  LcagSegmentEmbedder embedder(&graph_, &index_);
  const DocumentEmbedding q = EmbedDocument(
      embedder, {{"upper dir", "swat valley", "pakistan", "taliban"}});
  const DocumentEmbedding r = EmbedDocument(
      embedder, {{"lahore", "peshawar", "pakistan", "taliban"}});

  PathExplainer explainer(&graph_);
  const RelationshipPath path =
      explainer.FindPath(q, r, upper_dir_, peshawar_);
  ASSERT_EQ(path.nodes.size(), 3u);
  EXPECT_EQ(path.nodes[1], khyber_);  // paper Table II's shape
}

TEST_F(Figure1Test, RenderUsesArrowNotation) {
  LcagSegmentEmbedder embedder(&graph_, &index_);
  const DocumentEmbedding q = EmbedDocument(
      embedder, {{"upper dir", "pakistan"}});
  PathExplainer explainer(&graph_);
  const RelationshipPath path =
      explainer.FindPath(q, q, upper_dir_, pakistan_);
  ASSERT_FALSE(path.nodes.empty());
  const std::string rendered = path.Render(graph_);
  EXPECT_NE(rendered.find("Upper Dir"), std::string::npos);
  EXPECT_NE(rendered.find("Pakistan"), std::string::npos);
  EXPECT_NE(rendered.find("located_in"), std::string::npos);
  EXPECT_TRUE(rendered.find("-->") != std::string::npos ||
              rendered.find("<--") != std::string::npos);
}

TEST_F(Figure1Test, FindPathDisconnectedReturnsEmpty) {
  LcagSegmentEmbedder embedder(&graph_, &index_);
  const DocumentEmbedding q =
      EmbedDocument(embedder, {{"upper dir", "swat valley"}});
  PathExplainer explainer(&graph_);
  // Lahore is not in this embedding at all.
  const RelationshipPath path = explainer.FindPath(q, q, upper_dir_, lahore_);
  EXPECT_TRUE(path.nodes.empty());
  EXPECT_EQ(path.Render(graph_), "(no path)");
}

}  // namespace
}  // namespace embed
}  // namespace newslink
