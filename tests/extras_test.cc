// Tests for the production extras: SimHash near-duplicate detection,
// ranking metrics (MRR / NDCG), and MMR result diversification.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "corpus/synthetic_news.h"
#include "eval/ranking_metrics.h"
#include "ir/simhash.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/diversify.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace {

// ---------------------------------------------------------------------------
// SimHash
// ---------------------------------------------------------------------------

TEST(SimHashTest, IdenticalTextsShareSignature) {
  const std::string text = "The taliban bombing struck lahore markets today.";
  EXPECT_EQ(ir::SimHash(text), ir::SimHash(text));
}

TEST(SimHashTest, NearDuplicatesAreClose) {
  const std::string a =
      "The taliban bombing struck lahore markets today killing dozens of "
      "civilians according to officials in the region.";
  const std::string b =
      "The taliban bombing struck lahore markets yesterday killing dozens "
      "of civilians according to officials in the region.";
  const std::string c =
      "Quarterly earnings at the telecom company beat analyst forecasts "
      "driven by subscriber growth across rural provinces.";
  const int near = ir::HammingDistance(ir::SimHash(a), ir::SimHash(b));
  const int far = ir::HammingDistance(ir::SimHash(a), ir::SimHash(c));
  EXPECT_LT(near, 12);
  EXPECT_GT(far, near + 5);
}

TEST(SimHashTest, HammingDistanceBasics) {
  EXPECT_EQ(ir::HammingDistance(0, 0), 0);
  EXPECT_EQ(ir::HammingDistance(0, 0xFFFFFFFFFFFFFFFFULL), 64);
  EXPECT_EQ(ir::HammingDistance(0b1010, 0b0110), 2);
}

TEST(SimHashIndexTest, FindsWithinDistanceThree) {
  ir::SimHashIndex index;
  const uint64_t base = 0x0123456789ABCDEFULL;
  index.Add(base);                     // 0: exact
  index.Add(base ^ 0b111);             // 1: distance 3
  index.Add(base ^ 0xF000);            // 2: distance 4
  index.Add(~base);                    // 3: distance 64

  const auto hits = index.FindNear(base, 3);
  EXPECT_EQ(hits, (std::vector<size_t>{0, 1}));
}

TEST(SimHashIndexTest, LargeDistanceFallsBackToScan) {
  ir::SimHashIndex index;
  const uint64_t base = 42;
  index.Add(base ^ 0x1F);  // distance 5
  const auto hits = index.FindNear(base, 5);
  EXPECT_EQ(hits, (std::vector<size_t>{0}));
}

TEST(SimHashIndexTest, ScalesWithRandomSignatures) {
  Rng rng(71);
  ir::SimHashIndex index;
  std::vector<uint64_t> sigs;
  for (int i = 0; i < 500; ++i) {
    sigs.push_back(rng.Next());
    index.Add(sigs.back());
  }
  // Every signature finds itself.
  for (size_t i = 0; i < sigs.size(); ++i) {
    const auto hits = index.FindNear(sigs[i], 0);
    EXPECT_NE(std::find(hits.begin(), hits.end(), i), hits.end());
  }
}

TEST(ClusterNearDuplicatesTest, GroupsTransitively) {
  // a ~ b (distance 2), b ~ c (distance 2), a vs c distance 4: one group
  // by transitivity. d is far from everything.
  const uint64_t a = 0;
  const uint64_t b = 0b11;
  const uint64_t c = 0b1111;
  const uint64_t d = 0xFFFFFFFF00000000ULL;
  const auto groups = ir::ClusterNearDuplicates({a, b, c, d}, 3);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[1], groups[2]);
  EXPECT_NE(groups[0], groups[3]);
}

TEST(ClusterNearDuplicatesTest, DetectsSyntheticQuoteSiblings) {
  // The generator's cross-quote mechanism plants verbatim sentences across
  // stories; full near-duplicate docs only arise within a story. Verify
  // clustering finds more groups than documents only when duplicates exist.
  kg::SyntheticKgConfig kc;
  kc.seed = 9;
  kc.num_countries = 2;
  const kg::SyntheticKg world = kg::SyntheticKgGenerator(kc).Generate();
  corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
  config.num_stories = 20;
  const corpus::SyntheticCorpus sc =
      corpus::SyntheticNewsGenerator(&world, config).Generate("sh");
  std::vector<uint64_t> sigs;
  for (const auto& d : sc.corpus.docs()) sigs.push_back(ir::SimHash(d.text));
  const auto groups = ir::ClusterNearDuplicates(sigs, 3);
  size_t max_group = 0;
  for (size_t g : groups) max_group = std::max(max_group, g);
  EXPECT_LE(max_group + 1, sigs.size());  // sane group ids
}

// ---------------------------------------------------------------------------
// Ranking metrics
// ---------------------------------------------------------------------------

std::vector<baselines::SearchHit> Results(std::vector<size_t> docs) {
  std::vector<baselines::SearchHit> out;
  double score = 1.0;
  for (size_t d : docs) {
    out.push_back({d, score});
    score -= 0.01;
  }
  return out;
}

TEST(RankingMetricsTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(eval::ReciprocalRank(Results({7, 3, 9}), 7), 1.0);
  EXPECT_DOUBLE_EQ(eval::ReciprocalRank(Results({7, 3, 9}), 9), 1.0 / 3);
  EXPECT_DOUBLE_EQ(eval::ReciprocalRank(Results({7, 3, 9}), 42), 0.0);
  EXPECT_DOUBLE_EQ(eval::ReciprocalRank({}, 0), 0.0);
}

TEST(RankingMetricsTest, DcgWeightsEarlyRanksMore) {
  const auto results = Results({1, 2, 3, 4});
  EXPECT_GT(eval::DcgAtK(results, {1}, 4), eval::DcgAtK(results, {4}, 4));
  EXPECT_DOUBLE_EQ(eval::DcgAtK(results, {1}, 4), 1.0);  // 1/log2(2)
  EXPECT_DOUBLE_EQ(eval::DcgAtK(results, {9}, 4), 0.0);
}

TEST(RankingMetricsTest, NdcgPerfectRankingIsOne) {
  const auto results = Results({1, 2, 3});
  EXPECT_DOUBLE_EQ(eval::NdcgAtK(results, {1, 2, 3}, 3), 1.0);
  EXPECT_DOUBLE_EQ(eval::NdcgAtK(results, {1}, 3), 1.0);
}

TEST(RankingMetricsTest, NdcgPenalizesLateRelevance) {
  const double late = eval::NdcgAtK(Results({8, 9, 1}), {1}, 3);
  const double early = eval::NdcgAtK(Results({1, 8, 9}), {1}, 3);
  EXPECT_GT(early, late);
  EXPECT_GT(late, 0.0);
  EXPECT_LT(late, 1.0);
}

TEST(RankingMetricsTest, NdcgEmptyRelevantIsZero) {
  EXPECT_DOUBLE_EQ(eval::NdcgAtK(Results({1, 2}), {}, 2), 0.0);
}

TEST(RankingMetricsTest, NdcgRespectsCutoff) {
  const auto results = Results({8, 9, 1});
  EXPECT_DOUBLE_EQ(eval::NdcgAtK(results, {1}, 2), 0.0);  // rank 3 > k=2
  EXPECT_GT(eval::NdcgAtK(results, {1}, 3), 0.0);
}

// ---------------------------------------------------------------------------
// Diversification
// ---------------------------------------------------------------------------

class DiversifyTest : public ::testing::Test {
 protected:
  DiversifyTest() : world_(MakeWorld()), labels_(world_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 20;
    news_ = corpus::SyntheticNewsGenerator(&world_, config).Generate("dv");
    engine_ = std::make_unique<NewsLinkEngine>(&world_.graph, &labels_,
                                               NewsLinkConfig{});
    NL_CHECK(engine_->Index(news_.corpus).ok());
  }

  static kg::SyntheticKg MakeWorld() {
    kg::SyntheticKgConfig config;
    config.seed = 606;
    config.num_countries = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  kg::SyntheticKg world_;
  kg::LabelIndex labels_;
  corpus::SyntheticCorpus news_;
  std::unique_ptr<NewsLinkEngine> engine_;
};

TEST_F(DiversifyTest, JaccardProperties) {
  const auto& e0 = engine_->doc_embedding(0);
  const auto& e1 = engine_->doc_embedding(1);
  EXPECT_DOUBLE_EQ(EmbeddingJaccard(e0, e0), 1.0);
  const double j = EmbeddingJaccard(e0, e1);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
  EXPECT_DOUBLE_EQ(EmbeddingJaccard(e0, e1), EmbeddingJaccard(e1, e0));
  embed::DocumentEmbedding empty;
  EXPECT_DOUBLE_EQ(EmbeddingJaccard(e0, empty), 0.0);
}

TEST_F(DiversifyTest, LambdaOneKeepsOriginalOrder) {
  const std::string& text = news_.corpus.doc(2).text;
  const auto results = engine_->Search({text.substr(0, text.find('.') + 1), 8}).hits;
  ASSERT_GE(results.size(), 3u);
  DiversifyOptions options;
  options.lambda = 1.0;
  const auto diversified =
      DiversifyResults(results, engine_->SnapshotEmbeddings(), options);
  ASSERT_EQ(diversified.size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(diversified[i].doc_index, results[i].doc_index);
  }
}

TEST_F(DiversifyTest, DiversificationReducesStoryRepetition) {
  const std::string& text = news_.corpus.doc(2).text;
  const auto results =
      engine_->Search({text.substr(0, text.find('.') + 1), 10}).hits;
  ASSERT_GE(results.size(), 5u);

  auto stories_in_top = [&](const std::vector<baselines::SearchHit>& r,
                            size_t k) {
    std::set<uint32_t> stories;
    for (size_t i = 0; i < std::min(k, r.size()); ++i) {
      stories.insert(news_.corpus.doc(r[i].doc_index).story_id);
    }
    return stories.size();
  };

  DiversifyOptions options;
  options.lambda = 0.3;  // aggressive diversification
  const auto diversified =
      DiversifyResults(results, engine_->SnapshotEmbeddings(), options);
  EXPECT_GE(stories_in_top(diversified, 5), stories_in_top(results, 5));
}

TEST_F(DiversifyTest, KLimitsOutput) {
  const std::string& text = news_.corpus.doc(4).text;
  const auto results = engine_->Search({text.substr(0, text.find('.') + 1), 10}).hits;
  DiversifyOptions options;
  options.k = 3;
  const auto diversified =
      DiversifyResults(results, engine_->SnapshotEmbeddings(), options);
  EXPECT_EQ(diversified.size(), std::min<size_t>(3, results.size()));
}

TEST_F(DiversifyTest, EmptyInput) {
  EXPECT_TRUE(DiversifyResults({}, engine_->SnapshotEmbeddings(), {}).empty());
}

}  // namespace
}  // namespace newslink
