// Tests for the extension features: concise novelty-aware explanations
// (the paper's future-work items), result snippets, embedding persistence,
// and incremental engine indexing.

#include <filesystem>

#include <gtest/gtest.h>

#include "corpus/synthetic_news.h"
#include "embed/concise_explainer.h"
#include "embed/embedding_io.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"
#include "newslink/snippet.h"

namespace newslink {
namespace {

// ---------------------------------------------------------------------------
// Snippets
// ---------------------------------------------------------------------------

TEST(SnippetTest, PicksBestMatchingSentence) {
  const std::string doc =
      "Opening filler sentence with nothing. The taliban bombing struck "
      "lahore markets. Closing filler text here.";
  const std::string snippet = MakeSnippet(doc, "bombing in lahore");
  EXPECT_EQ(snippet, "The taliban bombing struck lahore markets.");
}

TEST(SnippetTest, StemsAcrossInflections) {
  const std::string doc =
      "Nothing relevant here. Elections were contested fiercely.";
  EXPECT_EQ(MakeSnippet(doc, "election"),
            "Elections were contested fiercely.");
}

TEST(SnippetTest, FallsBackToLeadingSentence) {
  const std::string doc = "First sentence here. Second sentence there.";
  EXPECT_EQ(MakeSnippet(doc, "zzzz qqqq"), "First sentence here.");
}

TEST(SnippetTest, TruncatesAtWordBoundary) {
  std::string longsent = "keyword";
  for (int i = 0; i < 60; ++i) longsent += " filler" + std::to_string(i);
  longsent += ".";
  SnippetOptions options;
  options.max_chars = 40;
  const std::string snippet = MakeSnippet(longsent, "keyword", options);
  EXPECT_LE(snippet.size(), 44u);
  EXPECT_EQ(snippet.substr(snippet.size() - 3), "...");
}

TEST(SnippetTest, EmptyDocument) {
  EXPECT_EQ(MakeSnippet("", "query"), "");
}

// ---------------------------------------------------------------------------
// Shared world for the heavier features
// ---------------------------------------------------------------------------

class FeaturesTest : public ::testing::Test {
 protected:
  FeaturesTest() : world_(MakeWorld()), labels_(world_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 25;
    news_ = corpus::SyntheticNewsGenerator(&world_, config).Generate("ft");
  }

  static kg::SyntheticKg MakeWorld() {
    kg::SyntheticKgConfig config;
    config.seed = 808;
    config.num_countries = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  std::string Sentence(size_t doc) const {
    const std::string& text = news_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  kg::SyntheticKg world_;
  kg::LabelIndex labels_;
  corpus::SyntheticCorpus news_;
};

// ---------------------------------------------------------------------------
// ConciseExplainer
// ---------------------------------------------------------------------------

TEST_F(FeaturesTest, ConciseExplainerRespectsBudgets) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());
  embed::ConciseExplainer explainer(&world_.graph);

  embed::ConciseOptions options;
  options.max_paths = 3;
  options.max_paths_per_endpoint = 1;
  int checked = 0;
  for (size_t d = 0; d + 1 < news_.corpus.size() && checked < 10; d += 2) {
    const auto paths = explainer.Explain(engine.doc_embedding(d),
                                         engine.doc_embedding(d + 1), options);
    EXPECT_LE(paths.size(), 3u);
    std::map<kg::NodeId, int> endpoint_uses;
    for (const embed::ScoredPath& sp : paths) {
      ++endpoint_uses[sp.path.nodes.front()];
      ++endpoint_uses[sp.path.nodes.back()];
    }
    for (const auto& [node, uses] : endpoint_uses) {
      EXPECT_LE(uses, 2);  // an endpoint may be source once and target once
    }
    if (!paths.empty()) ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(FeaturesTest, ConciseExplainerRanksNoveltyFirst) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());
  embed::ConciseExplainer explainer(&world_.graph);
  embed::ConciseOptions options;
  options.max_paths = 8;
  options.max_paths_per_endpoint = 8;
  for (size_t d = 0; d + 1 < 12; d += 2) {
    const auto paths = explainer.Explain(engine.doc_embedding(d),
                                         engine.doc_embedding(d + 1), options);
    for (size_t i = 1; i < paths.size(); ++i) {
      EXPECT_GE(paths[i - 1].score, paths[i].score);
    }
  }
}

TEST_F(FeaturesTest, RequireNovelInteriorFiltersDirectEdges) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());
  embed::ConciseExplainer explainer(&world_.graph);
  embed::ConciseOptions options;
  options.require_novel_interior = true;
  options.max_paths = 10;
  options.max_paths_per_endpoint = 10;
  for (size_t d = 0; d + 1 < 12; d += 2) {
    for (const embed::ScoredPath& sp :
         explainer.Explain(engine.doc_embedding(d),
                           engine.doc_embedding(d + 1), options)) {
      EXPECT_GT(sp.novel_interior_nodes, 0);
    }
  }
}

TEST_F(FeaturesTest, RenderBlockMentionsLabels) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());
  embed::ConciseExplainer explainer(&world_.graph);
  const auto paths = explainer.Explain(engine.doc_embedding(0),
                                       engine.doc_embedding(1), {});
  const std::string block = explainer.RenderBlock(paths);
  if (!paths.empty()) {
    EXPECT_FALSE(block.empty());
    EXPECT_NE(block.find(world_.graph.label(paths[0].path.nodes.front())),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Embedding persistence + engine integration
// ---------------------------------------------------------------------------

TEST_F(FeaturesTest, EmbeddingStoreRoundTripsExactly) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "ft_embeddings.txt").string();
  const std::vector<embed::DocumentEmbedding> embeddings =
      engine.SnapshotEmbeddings();
  ASSERT_TRUE(embed::SaveEmbeddings(embeddings, path).ok());
  Result<std::vector<embed::DocumentEmbedding>> loaded =
      embed::LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), embeddings.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    const embed::DocumentEmbedding& a = embeddings[i];
    const embed::DocumentEmbedding& b = (*loaded)[i];
    ASSERT_EQ(a.segment_graphs.size(), b.segment_graphs.size()) << i;
    EXPECT_EQ(a.node_counts, b.node_counts) << i;
    for (size_t s = 0; s < a.segment_graphs.size(); ++s) {
      EXPECT_EQ(a.segment_graphs[s].root, b.segment_graphs[s].root);
      EXPECT_EQ(a.segment_graphs[s].labels, b.segment_graphs[s].labels);
      EXPECT_EQ(a.segment_graphs[s].label_distances,
                b.segment_graphs[s].label_distances);
      EXPECT_EQ(a.segment_graphs[s].nodes, b.segment_graphs[s].nodes);
      EXPECT_EQ(a.segment_graphs[s].source_nodes,
                b.segment_graphs[s].source_nodes);
      EXPECT_EQ(a.segment_graphs[s].edges, b.segment_graphs[s].edges);
    }
  }
}

TEST_F(FeaturesTest, IndexWithEmbeddingsMatchesFreshIndex) {
  NewsLinkEngine fresh(&world_.graph, &labels_, {});
  ASSERT_TRUE(fresh.Index(news_.corpus).ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "ft_emb2.txt").string();
  ASSERT_TRUE(embed::SaveEmbeddings(fresh.SnapshotEmbeddings(), path).ok());
  Result<std::vector<embed::DocumentEmbedding>> loaded =
      embed::LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok());

  NewsLinkEngine restored(&world_.graph, &labels_, {});
  ASSERT_TRUE(
      restored.IndexWithEmbeddings(news_.corpus, std::move(*loaded)).ok());

  for (size_t d : {1u, 9u, 17u}) {
    const auto a = fresh.Search({Sentence(d), 10}).hits;
    const auto b = restored.Search({Sentence(d), 10}).hits;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc_index, b[i].doc_index);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST_F(FeaturesTest, IndexWithEmbeddingsRejectsMisalignedStore) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  std::vector<embed::DocumentEmbedding> wrong_size(3);
  EXPECT_TRUE(engine.IndexWithEmbeddings(news_.corpus, std::move(wrong_size))
                  .IsInvalidArgument());
}

TEST_F(FeaturesTest, IncrementalAddDocumentIsSearchable) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());
  const size_t before = engine.num_indexed_docs();

  corpus::Document extra;
  extra.id = "late-arrival";
  extra.text = Sentence(3) + " " + Sentence(7);
  const size_t index = engine.AddDocument(extra);
  EXPECT_EQ(index, before);
  EXPECT_EQ(engine.num_indexed_docs(), before + 1);

  // The new document competes in search (it literally contains the query).
  const auto results = engine.Search({Sentence(3), 10}).hits;
  bool found = false;
  for (const auto& r : results) {
    if (r.doc_index == index) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(FeaturesTest, AddDocumentOnEmptyEngineWorks) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  corpus::Document doc;
  doc.id = "only";
  doc.text = Sentence(0);
  EXPECT_EQ(engine.AddDocument(doc), 0u);
  const auto results = engine.Search({Sentence(0), 3}).hits;
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc_index, 0u);
}

}  // namespace
}  // namespace newslink
