// End-to-end tests for the serving subsystem over real loopback sockets:
// /v1/search parity with the in-process engine (hits, scores, paths,
// epoch), live ingestion through /v1/documents, the Prometheus scrape,
// admission control, malformed bodies (4xx — never a crash), routing
// fallbacks, searches racing ingestion, and graceful drain under load.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "corpus/synthetic_news.h"
#include "kg/facet_hierarchy.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "net/api_json.h"
#include "net/drain.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/search_service.h"
#include "newslink/explore_engine.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// A deliberately tiny HTTP client: one request per connection, read to EOF.
// ---------------------------------------------------------------------------

std::string RawExchange(uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string Request(uint16_t port, const std::string& method,
                    const std::string& target, const std::string& body = "") {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: 127.0.0.1\r\nConnection: close\r\n";
  if (!body.empty()) {
    wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n" + body;
  return RawExchange(port, wire);
}

int StatusOf(const std::string& reply) {
  if (reply.size() < 12 || reply.compare(0, 9, "HTTP/1.1 ") != 0) return -1;
  return std::atoi(reply.c_str() + 9);
}

std::string BodyOf(const std::string& reply) {
  const size_t sep = reply.find("\r\n\r\n");
  return sep == std::string::npos ? "" : reply.substr(sep + 4);
}

json::Value JsonBodyOf(const std::string& reply) {
  Result<json::Value> v = json::Parse(BodyOf(reply));
  EXPECT_TRUE(v.ok()) << v.status().ToString() << "\nreply: " << reply;
  return v.ok() ? std::move(v).value() : json::Value();
}

// ---------------------------------------------------------------------------
// Fixture: a small indexed engine behind a loopback server.
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : kg_(MakeKg()), labels_(kg_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 12;
    news_ = corpus::SyntheticNewsGenerator(&kg_, config).Generate("sv");
    corpus_ = news_.corpus;

    NewsLinkConfig engine_config;
    engine_config.beta = 0.2;
    engine_config.num_threads = 2;
    engine_ = std::make_unique<NewsLinkEngine>(&kg_.graph, &labels_,
                                               engine_config);
    NL_CHECK(engine_->Index(corpus_).ok());
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 909;
    config.num_countries = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  /// Start the /v1 API (search + explore) on an ephemeral loopback port.
  void StartServer(SearchServiceOptions service_options = {},
                   ExploreOptions explore_options = {},
                   HttpServerOptions options = {}) {
    service_ = std::make_unique<SearchService>(engine_.get(), &corpus_,
                                               &kg_.graph, service_options);
    hierarchy_ = std::make_unique<kg::FacetHierarchy>(&kg_.graph);
    explore_ = std::make_unique<ExploreEngine>(engine_.get(), hierarchy_.get(),
                                               explore_options);
    service_->AttachExplore(explore_.get());
    options.port = 0;
    options.num_workers = 4;
    server_ =
        std::make_unique<HttpServer>(options, engine_->mutable_metrics());
    service_->RegisterRoutes(server_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  std::string QueryFor(size_t doc) const {
    const std::string& text = corpus_.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex labels_;
  corpus::SyntheticCorpus news_;
  corpus::Corpus corpus_;
  std::unique_ptr<NewsLinkEngine> engine_;
  std::unique_ptr<SearchService> service_;
  std::unique_ptr<kg::FacetHierarchy> hierarchy_;
  std::unique_ptr<ExploreEngine> explore_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTest, SearchOverSocketMatchesInProcessSearch) {
  StartServer();

  baselines::SearchRequest request;
  request.query = QueryFor(3);
  request.k = 5;
  request.explain = true;
  request.max_paths_per_result = 3;
  const baselines::SearchResponse expected = engine_->Search(request);
  ASSERT_FALSE(expected.hits.empty());

  json::Value wire = json::Value::Object();
  wire.Set("query", json::Value::Str(request.query));
  wire.Set("k", json::Value::Uint(request.k));
  wire.Set("explain", json::Value::Bool(true));
  wire.Set("max_paths", json::Value::Uint(request.max_paths_per_result));
  const std::string reply =
      Request(server_->port(), "POST", "/v1/search", wire.Dump());
  ASSERT_EQ(StatusOf(reply), 200) << reply;

  const json::Value body = JsonBodyOf(reply);
  EXPECT_EQ(body.Find("epoch")->AsUint(), expected.epoch);
  EXPECT_EQ(body.Find("snapshot_docs")->AsUint(), expected.snapshot_docs);
  const json::Value* hits = body.Find("hits");
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), expected.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    const json::Value& hit = hits->at(i);
    const baselines::SearchHit& want = expected.hits[i];
    EXPECT_EQ(hit.Find("doc_index")->AsUint(), want.doc_index) << "hit " << i;
    // The writer emits the shortest round-tripping decimal, so the parsed
    // score is bit-identical to the in-process double.
    EXPECT_EQ(hit.Find("score")->AsDouble(), want.score) << "hit " << i;
    EXPECT_EQ(hit.Find("doc_id")->AsString(), corpus_.doc(want.doc_index).id);
    const json::Value* paths = hit.Find("paths");
    if (want.paths.empty()) {
      EXPECT_EQ(paths, nullptr);
    } else {
      ASSERT_NE(paths, nullptr) << "hit " << i;
      ASSERT_EQ(paths->size(), want.paths.size());
      for (size_t p = 0; p < want.paths.size(); ++p) {
        EXPECT_EQ(paths->at(p).Find("rendered")->AsString(),
                  want.paths[p].Render(kg_.graph));
      }
    }
  }
}

TEST_F(ServerTest, BatchedSearchAnswersEveryRequestInOrder) {
  StartServer();
  json::Value batch = json::Value::Array();
  for (size_t d = 0; d < 3; ++d) {
    json::Value one = json::Value::Object();
    one.Set("query", json::Value::Str(QueryFor(d)));
    one.Set("k", json::Value::Uint(4));
    batch.Append(std::move(one));
  }
  const std::string reply =
      Request(server_->port(), "POST", "/v1/search", batch.Dump());
  ASSERT_EQ(StatusOf(reply), 200) << reply;
  const json::Value body = JsonBodyOf(reply);
  ASSERT_TRUE(body.is_array());
  ASSERT_EQ(body.size(), 3u);
  for (size_t d = 0; d < 3; ++d) {
    const baselines::SearchResponse expected =
        engine_->Search({QueryFor(d), 4});
    const json::Value* hits = body.at(d).Find("hits");
    ASSERT_NE(hits, nullptr);
    ASSERT_EQ(hits->size(), expected.hits.size());
    for (size_t i = 0; i < expected.hits.size(); ++i) {
      EXPECT_EQ(hits->at(i).Find("doc_index")->AsUint(),
                expected.hits[i].doc_index);
    }
  }

  // Empty and oversized batches are client errors.
  EXPECT_EQ(StatusOf(Request(server_->port(), "POST", "/v1/search", "[]")),
            400);
}

TEST_F(ServerTest, IngestPublishesNewEpochAndDocBecomesVisible) {
  StartServer();
  const uint64_t epoch_before =
      JsonBodyOf(Request(server_->port(), "GET", "/v1/stats"))
          .Find("epoch")
          ->AsUint();
  const size_t docs_before = corpus_.size();

  json::Value doc = json::Value::Object();
  doc.Set("title", json::Value::Str("Breaking"));
  doc.Set("text", json::Value::Str(corpus_.doc(0).text));
  const std::string reply =
      Request(server_->port(), "POST", "/v1/documents", doc.Dump());
  ASSERT_EQ(StatusOf(reply), 201) << reply;
  const json::Value created = JsonBodyOf(reply);
  EXPECT_EQ(created.Find("doc_index")->AsUint(), docs_before);
  EXPECT_EQ(created.Find("doc_id")->AsString(),
            "live-" + std::to_string(docs_before));
  EXPECT_GT(created.Find("epoch")->AsUint(), epoch_before);

  // The new snapshot must cover the ingested document.
  json::Value probe = json::Value::Object();
  probe.Set("query", json::Value::Str(QueryFor(0)));
  probe.Set("k", json::Value::Uint(3));
  const json::Value search = JsonBodyOf(
      Request(server_->port(), "POST", "/v1/search", probe.Dump()));
  EXPECT_EQ(search.Find("snapshot_docs")->AsUint(), docs_before + 1);
}

TEST_F(ServerTest, TimeAwareSearchShapesOverSockets) {
  StartServer();
  const uint16_t port = server_->port();

  int64_t t_min = std::numeric_limits<int64_t>::max(), t_max = 0;
  for (const corpus::Document& d : corpus_.docs()) {
    t_min = std::min(t_min, d.timestamp_ms);
    t_max = std::max(t_max, d.timestamp_ms);
  }
  ASSERT_GT(t_min, 0);
  const baselines::TimeRange window{t_min, (t_min + t_max) / 2};

  // Grouped shape: ranking + filter objects. Must agree bit-exactly with
  // the in-process engine under the same knobs ("now" is pinned to the
  // snapshot, so wire and in-process recency decay agree).
  baselines::SearchRequest reference;
  reference.query = QueryFor(2);
  reference.k = 8;
  reference.beta = 0.3;
  reference.recency_half_life_seconds = 6 * 3600.0;
  reference.time_range = window;
  const baselines::SearchResponse expected = engine_->Search(reference);

  json::Value ranking = json::Value::Object();
  ranking.Set("beta", json::Value::Number(0.3));
  ranking.Set("recency_half_life_s", json::Value::Number(6 * 3600.0));
  json::Value time_range = json::Value::Object();
  time_range.Set("after_ms",
                 json::Value::Uint(static_cast<uint64_t>(window.after_ms)));
  time_range.Set("before_ms",
                 json::Value::Uint(static_cast<uint64_t>(window.before_ms)));
  json::Value filter = json::Value::Object();
  filter.Set("time_range", std::move(time_range));
  json::Value grouped = json::Value::Object();
  grouped.Set("query", json::Value::Str(reference.query));
  grouped.Set("k", json::Value::Uint(reference.k));
  grouped.Set("ranking", std::move(ranking));
  grouped.Set("filter", std::move(filter));

  const std::string reply =
      Request(port, "POST", "/v1/search", grouped.Dump());
  ASSERT_EQ(StatusOf(reply), 200) << reply;
  const json::Value body = JsonBodyOf(reply);
  const json::Value* hits = body.Find("hits");
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), expected.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(hits->at(i).Find("doc_index")->AsUint(),
              expected.hits[i].doc_index)
        << "hit " << i;
    EXPECT_EQ(hits->at(i).Find("score")->AsDouble(), expected.hits[i].score)
        << "hit " << i;
    EXPECT_TRUE(window.Contains(
        corpus_.doc(expected.hits[i].doc_index).timestamp_ms));
  }

  // Legacy flat shape still decodes (deprecated aliases).
  json::Value legacy = json::Value::Object();
  legacy.Set("query", json::Value::Str(reference.query));
  legacy.Set("k", json::Value::Uint(4));
  legacy.Set("beta", json::Value::Number(0.3));
  ASSERT_EQ(StatusOf(Request(port, "POST", "/v1/search", legacy.Dump())),
            200);

  // Mixing the two shapes in one request is a 400 naming the alias.
  json::Value mixed = json::Value::Object();
  mixed.Set("query", json::Value::Str(reference.query));
  mixed.Set("beta", json::Value::Number(0.3));
  json::Value mixed_ranking = json::Value::Object();
  mixed_ranking.Set("beta", json::Value::Number(0.3));
  mixed.Set("ranking", std::move(mixed_ranking));
  const std::string mixed_reply =
      Request(port, "POST", "/v1/search", mixed.Dump());
  EXPECT_EQ(StatusOf(mixed_reply), 400) << mixed_reply;
  EXPECT_NE(BodyOf(mixed_reply).find("deprecated alias"), std::string::npos);
}

TEST_F(ServerTest, IngestedTimestampIsFilterableImmediately) {
  StartServer();
  const uint16_t port = server_->port();
  int64_t t_max = 0;
  for (const corpus::Document& d : corpus_.docs()) {
    t_max = std::max(t_max, d.timestamp_ms);
  }
  const int64_t fresh_ts = t_max + 60000;

  json::Value doc = json::Value::Object();
  doc.Set("title", json::Value::Str("Fresh"));
  doc.Set("text", json::Value::Str(corpus_.doc(1).text));
  doc.Set("timestamp_ms", json::Value::Uint(static_cast<uint64_t>(fresh_ts)));
  const std::string created_reply =
      Request(port, "POST", "/v1/documents", doc.Dump());
  ASSERT_EQ(StatusOf(created_reply), 201) << created_reply;
  const uint64_t fresh_row =
      JsonBodyOf(created_reply).Find("doc_index")->AsUint();

  // A window holding only the fresh timestamp surfaces exactly that doc.
  json::Value time_range = json::Value::Object();
  time_range.Set("after_ms",
                 json::Value::Uint(static_cast<uint64_t>(fresh_ts)));
  time_range.Set("before_ms",
                 json::Value::Uint(static_cast<uint64_t>(fresh_ts + 1)));
  json::Value filter = json::Value::Object();
  filter.Set("time_range", std::move(time_range));
  json::Value probe = json::Value::Object();
  probe.Set("query", json::Value::Str(QueryFor(1)));
  probe.Set("k", json::Value::Uint(10));
  probe.Set("filter", std::move(filter));
  const json::Value search =
      JsonBodyOf(Request(port, "POST", "/v1/search", probe.Dump()));
  const json::Value* hits = search.Find("hits");
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), 1u) << "window should isolate the ingested doc";
  EXPECT_EQ(hits->at(0).Find("doc_index")->AsUint(), fresh_row);
}

TEST_F(ServerTest, ExploreAcceptsTimeFilter) {
  StartServer();
  const uint16_t port = server_->port();

  json::Value unfiltered = json::Value::Object();
  unfiltered.Set("query", json::Value::Str(QueryFor(2)));
  const json::Value top =
      JsonBodyOf(Request(port, "POST", "/v1/explore", unfiltered.Dump()));
  const uint64_t total = top.Find("total_hits")->AsUint();
  ASSERT_GT(total, 0u);

  // An all-covering window changes nothing; a far-future one empties the
  // result set (still 200 — an empty exploration is not an error).
  json::Value wide_range = json::Value::Object();
  wide_range.Set("after_ms", json::Value::Uint(1));
  json::Value wide_filter = json::Value::Object();
  wide_filter.Set("time_range", std::move(wide_range));
  json::Value wide = json::Value::Object();
  wide.Set("query", json::Value::Str(QueryFor(2)));
  wide.Set("filter", std::move(wide_filter));
  const std::string wide_reply =
      Request(port, "POST", "/v1/explore", wide.Dump());
  ASSERT_EQ(StatusOf(wide_reply), 200) << wide_reply;
  EXPECT_EQ(JsonBodyOf(wide_reply).Find("total_hits")->AsUint(), total);

  json::Value far_range = json::Value::Object();
  far_range.Set("after_ms", json::Value::Uint(9999999999999ull));
  json::Value far_filter = json::Value::Object();
  far_filter.Set("time_range", std::move(far_range));
  json::Value far = json::Value::Object();
  far.Set("query", json::Value::Str(QueryFor(2)));
  far.Set("filter", std::move(far_filter));
  const std::string far_reply =
      Request(port, "POST", "/v1/explore", far.Dump());
  ASSERT_EQ(StatusOf(far_reply), 200) << far_reply;
  EXPECT_EQ(JsonBodyOf(far_reply).Find("total_hits")->AsUint(), 0u);
}

TEST_F(ServerTest, MetricsHealthAndStatsEndpoints) {
  StartServer();
  // Run one query so the engine series are non-trivial.
  json::Value probe = json::Value::Object();
  probe.Set("query", json::Value::Str(QueryFor(1)));
  ASSERT_EQ(StatusOf(Request(server_->port(), "POST", "/v1/search",
                             probe.Dump())),
            200);

  const std::string scrape = Request(server_->port(), "GET", "/metrics");
  EXPECT_EQ(StatusOf(scrape), 200);
  EXPECT_NE(scrape.find("text/plain"), std::string::npos);
  const std::string exposition = BodyOf(scrape);
  EXPECT_NE(exposition.find(std::string(baselines::kEngineQueries)),
            std::string::npos);
  EXPECT_NE(exposition.find(std::string(kHttpRequests)), std::string::npos);

  const json::Value health =
      JsonBodyOf(Request(server_->port(), "GET", "/healthz"));
  EXPECT_EQ(health.Find("status")->AsString(), "ok");

  const json::Value stats =
      JsonBodyOf(Request(server_->port(), "GET", "/v1/stats"));
  EXPECT_EQ(stats.Find("docs")->AsUint(), corpus_.size());
  ASSERT_NE(stats.Find("metrics"), nullptr);
  EXPECT_TRUE(stats.Find("metrics")->is_object());
}

TEST_F(ServerTest, MalformedBodiesAreClientErrorsNotCrashes) {
  StartServer();
  const uint16_t port = server_->port();
  EXPECT_EQ(StatusOf(Request(port, "POST", "/v1/search", "{not json")), 400);
  EXPECT_EQ(StatusOf(Request(port, "POST", "/v1/search", "{}")), 400);
  EXPECT_EQ(StatusOf(Request(port, "POST", "/v1/search",
                             "{\"query\":\"q\",\"zzz\":1}")),
            400);
  EXPECT_EQ(StatusOf(Request(port, "POST", "/v1/documents", "{\"id\":\"x\"}")),
            400);
  EXPECT_EQ(StatusOf(Request(port, "GET", "/nope")), 404);
  EXPECT_EQ(StatusOf(Request(port, "GET", "/v1/search")), 405);
  // Transport-level garbage gets an HTTP error, and the server survives.
  const std::string garbage = RawExchange(port, "]]]]\r\n\r\n");
  EXPECT_GE(StatusOf(garbage), 400);
  EXPECT_EQ(StatusOf(Request(port, "GET", "/healthz")), 200);
}

TEST_F(ServerTest, AdmissionControlShedsLoadWith503) {
  SearchServiceOptions options;
  options.max_inflight_searches = 0;  // reject-all mode
  StartServer(options);
  json::Value probe = json::Value::Object();
  probe.Set("query", json::Value::Str(QueryFor(0)));
  const std::string reply =
      Request(server_->port(), "POST", "/v1/search", probe.Dump());
  EXPECT_EQ(StatusOf(reply), 503) << reply;
  EXPECT_GE(engine_->Metrics().CounterValue(kSearchRejected), 1u);
  // Malformed bodies still cost a 400, not an admission slot.
  EXPECT_EQ(StatusOf(Request(server_->port(), "POST", "/v1/search", "nope")),
            400);
}

TEST_F(ServerTest, ConcurrentSearchesWhileIngesting) {
  StartServer();
  const uint16_t port = server_->port();
  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 6;
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (int d = 0; d < 5; ++d) {
      json::Value doc = json::Value::Object();
      doc.Set("text", json::Value::Str(corpus_.doc(d % 3).text));
      if (StatusOf(Request(port, "POST", "/v1/documents", doc.Dump())) !=
          201) {
        failures.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerReader; ++q) {
        json::Value probe = json::Value::Object();
        probe.Set("query", json::Value::Str(QueryFor((t + q) % 8)));
        probe.Set("k", json::Value::Uint(5));
        const std::string reply =
            Request(port, "POST", "/v1/search", probe.Dump());
        if (StatusOf(reply) != 200) {
          failures.fetch_add(1);
          continue;
        }
        // Snapshot isolation, observed through the wire: every hit must be
        // covered by the response's own snapshot.
        const json::Value body = JsonBodyOf(reply);
        const uint64_t snapshot_docs = body.Find("snapshot_docs")->AsUint();
        for (const json::Value& hit : body.Find("hits")->items()) {
          if (hit.Find("doc_index")->AsUint() >= snapshot_docs) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, GracefulDrainFinishesInflightThenRefuses) {
  StartServer();
  const uint16_t port = server_->port();

  // Keep a stream of requests in flight while another thread drains.
  std::atomic<bool> stop{false};
  std::atomic<int> ok{0}, refused{0}, broken{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      json::Value probe = json::Value::Object();
      probe.Set("query", json::Value::Str(QueryFor(t)));
      while (!stop.load(std::memory_order_acquire)) {
        const std::string reply =
            Request(port, "POST", "/v1/search", probe.Dump());
        const int status = StatusOf(reply);
        if (status == 200) {
          ok.fetch_add(1);
        } else if (status == 503) {
          refused.fetch_add(1);
        } else {
          // Empty replies are connections the drain already refused.
          broken.fetch_add(1);
        }
      }
    });
  }
  // Let the clients land a few successful queries first.
  while (ok.load() < 3) std::this_thread::yield();

  server_->Shutdown();
  EXPECT_FALSE(server_->running());
  stop.store(true, std::memory_order_release);
  for (std::thread& c : clients) c.join();
  EXPECT_GE(ok.load(), 3);

  // After drain, the port no longer accepts work.
  EXPECT_EQ(StatusOf(Request(port, "GET", "/healthz")), -1);
}

// ---------------------------------------------------------------------------
// POST /v1/explore: the session protocol over real sockets.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ExploreRollUpDrillDownRollUpOverSockets) {
  StartServer();
  const uint16_t port = server_->port();

  json::Value start = json::Value::Object();
  start.Set("query", json::Value::Str(QueryFor(2)));
  const std::string reply =
      Request(port, "POST", "/v1/explore", start.Dump());
  ASSERT_EQ(StatusOf(reply), 200) << reply;
  const json::Value top = JsonBodyOf(reply);

  const std::string session = top.Find("session")->AsString();
  ASSERT_FALSE(session.empty());
  const uint64_t total = top.Find("total_hits")->AsUint();
  ASSERT_GT(total, 0u);
  EXPECT_EQ(top.Find("scope")->items().size(), 0u);

  // Buckets partition the result set on the wire too.
  const json::Value* buckets = top.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  uint64_t sum = 0;
  uint64_t drill_node = 0;
  uint64_t drill_count = 0;
  bool have_target = false;
  for (const json::Value& bucket : buckets->items()) {
    sum += bucket.Find("doc_count")->AsUint();
    if (!have_target && bucket.Find("entity") != nullptr) {
      drill_node = bucket.Find("entity")->AsUint();
      drill_count = bucket.Find("doc_count")->AsUint();
      have_target = true;
      EXPECT_NE(bucket.Find("label"), nullptr);
    }
  }
  EXPECT_EQ(sum, total);
  ASSERT_TRUE(have_target) << "no drillable bucket in: " << reply;

  // Drill into the first entity bucket: scoped view, same session.
  json::Value drill = json::Value::Object();
  drill.Set("session", json::Value::Str(session));
  drill.Set("drill", json::Value::Uint(drill_node));
  const std::string drilled_reply =
      Request(port, "POST", "/v1/explore", drill.Dump());
  ASSERT_EQ(StatusOf(drilled_reply), 200) << drilled_reply;
  const json::Value drilled = JsonBodyOf(drilled_reply);
  EXPECT_EQ(drilled.Find("session")->AsString(), session);
  EXPECT_EQ(drilled.Find("total_hits")->AsUint(), drill_count);
  ASSERT_EQ(drilled.Find("scope")->items().size(), 1u);
  EXPECT_EQ(drilled.Find("scope")->items()[0].Find("node")->AsUint(),
            drill_node);

  // Roll up: back to the identical top-level view.
  json::Value up = json::Value::Object();
  up.Set("session", json::Value::Str(session));
  up.Set("up", json::Value::Bool(true));
  const std::string up_reply = Request(port, "POST", "/v1/explore", up.Dump());
  ASSERT_EQ(StatusOf(up_reply), 200) << up_reply;
  const json::Value back = JsonBodyOf(up_reply);
  EXPECT_EQ(back.Find("total_hits")->AsUint(), total);
  EXPECT_EQ(back.Find("scope")->items().size(), 0u);
  EXPECT_EQ(back.Find("buckets")->items().size(), buckets->items().size());

  // The session gauge made it into the Prometheus scrape.
  const std::string metrics = Request(port, "GET", "/metrics");
  EXPECT_NE(BodyOf(metrics).find("explore_sessions_active 1"),
            std::string::npos);
}

TEST_F(ServerTest, ExpiredExploreSessionIs404WithUniformErrorShape) {
  ExploreOptions explore_options;
  explore_options.session_ttl_seconds = 0.02;
  StartServer({}, explore_options);
  const uint16_t port = server_->port();

  json::Value start = json::Value::Object();
  start.Set("query", json::Value::Str(QueryFor(1)));
  const json::Value top =
      JsonBodyOf(Request(port, "POST", "/v1/explore", start.Dump()));
  const std::string session = top.Find("session")->AsString();

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  json::Value view = json::Value::Object();
  view.Set("session", json::Value::Str(session));
  const std::string reply =
      Request(port, "POST", "/v1/explore", view.Dump());
  EXPECT_EQ(StatusOf(reply), 404);
  const json::Value body = JsonBodyOf(reply);
  const json::Value* error = body.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->AsString(), "NotFound");
  EXPECT_EQ(error->Find("status")->AsInt(), 404);
  EXPECT_NE(error->Find("message"), nullptr);
}

TEST_F(ServerTest, ApiVersionSkewIs409OnEveryV1Route) {
  StartServer();
  const uint16_t port = server_->port();

  const struct {
    const char* route;
    std::string body;
  } cases[] = {
      {"/v1/search", R"({"query": "q", "api_version": 999})"},
      {"/v1/documents", R"({"id": "d", "text": "t", "api_version": 999})"},
      {"/v1/explore", R"({"query": "q", "api_version": 999})"},
  };
  for (const auto& c : cases) {
    const std::string reply = Request(port, "POST", c.route, c.body);
    EXPECT_EQ(StatusOf(reply), 409) << c.route << ": " << reply;
    const json::Value body = JsonBodyOf(reply);
    const json::Value* error = body.Find("error");
    ASSERT_NE(error, nullptr) << c.route;
    EXPECT_EQ(error->Find("code")->AsString(), "FailedPrecondition");
  }

  // The matching version — and the field-free legacy body — both pass.
  json::Value versioned = json::Value::Object();
  versioned.Set("query", json::Value::Str(QueryFor(0)));
  versioned.Set("api_version", json::Value::Uint(kApiVersion));
  EXPECT_EQ(StatusOf(Request(port, "POST", "/v1/search", versioned.Dump())),
            200);
  json::Value legacy = json::Value::Object();
  legacy.Set("query", json::Value::Str(QueryFor(0)));
  EXPECT_EQ(StatusOf(Request(port, "POST", "/v1/search", legacy.Dump())), 200);
}

// ---------------------------------------------------------------------------
// HttpClient keep-alive: reuse and stale-connection recovery.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, HttpClientReusesConnectionsAndRecoversFromStaleOnes) {
  // A short server-side idle timeout closes parked keep-alive connections
  // SILENTLY (no Connection: close header) — exactly the staleness the
  // client must absorb with its one-reconnect retry.
  HttpServerOptions server_options;
  server_options.read_timeout_seconds = 0.2;
  StartServer({}, {}, server_options);

  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 3; ++i) {
    Result<HttpClientResponse> response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  // One TCP connection carried all three calls.
  EXPECT_EQ(client.connections_opened(), 1u);
  EXPECT_EQ(client.connection_reuses(), 2u);
  EXPECT_EQ(client.connection_reconnects(), 0u);

  // Let the server's idle timeout reap the parked connection, then call
  // again: the client must detect the stale socket and replay on a fresh
  // one without surfacing an error.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  Result<HttpClientResponse> after = client.Get("/healthz");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->status, 200);
  EXPECT_EQ(client.connections_opened(), 2u);
  EXPECT_EQ(client.connection_reuses(), 3u);
  EXPECT_EQ(client.connection_reconnects(), 1u);

  // POST bodies ride the same pool.
  json::Value probe = json::Value::Object();
  probe.Set("query", json::Value::Str(QueryFor(0)));
  Result<HttpClientResponse> post = client.Post("/v1/search", probe.Dump());
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post->status, 200);
}

TEST(DrainSignalTest, TriggerUnblocksWaitAndLatches) {
  DrainSignal& drain = DrainSignal::Instance();
  ASSERT_TRUE(drain.Install().ok());
  std::thread waiter([&] { drain.Wait(); });
  drain.Trigger();
  waiter.join();
  EXPECT_TRUE(drain.signaled());
  drain.Wait();  // already signaled: returns immediately
}

}  // namespace
}  // namespace net
}  // namespace newslink
