// Tests for vec::SaveWord2Vec / LoadWord2Vec.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/model_io.h"

namespace newslink {
namespace vec {
namespace {

std::vector<std::vector<std::string>> TinyCorpus() {
  std::vector<std::vector<std::string>> docs;
  Rng rng(1);
  const std::vector<std::string> sports = {"goal", "match", "league",
                                           "striker"};
  const std::vector<std::string> politics = {"vote", "ballot", "senate"};
  for (int d = 0; d < 20; ++d) {
    std::vector<std::string> a, b;
    for (int i = 0; i < 20; ++i) {
      a.push_back(sports[rng.Uniform(sports.size())]);
      b.push_back(politics[rng.Uniform(politics.size())]);
    }
    docs.push_back(a);
    docs.push_back(b);
  }
  return docs;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ModelIoTest, RoundTripPreservesEverything) {
  Word2VecModel model;
  SgnsConfig config;
  config.dim = 12;
  config.epochs = 3;
  config.min_count = 1;
  model.Train(TinyCorpus(), config);

  const std::string path = TempPath("nl_w2v_model.bin");
  ASSERT_TRUE(SaveWord2Vec(model, path).ok());
  Result<Word2VecModel> loaded = LoadWord2Vec(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->dim(), model.dim());
  EXPECT_EQ(loaded->vocab().size(), model.vocab().size());
  for (size_t i = 0; i < model.vocab().size(); ++i) {
    EXPECT_EQ(loaded->vocab().word(static_cast<int>(i)),
              model.vocab().word(static_cast<int>(i)));
    EXPECT_EQ(loaded->vocab().count(static_cast<int>(i)),
              model.vocab().count(static_cast<int>(i)));
  }
  EXPECT_EQ(loaded->input_matrix(), model.input_matrix());
  EXPECT_EQ(loaded->output_matrix(), model.output_matrix());

  // Behavioural equality: vectors and derived encodings match.
  const float* a = model.WordVector("goal");
  const float* b = loaded->WordVector("goal");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int k = 0; k < 12; ++k) EXPECT_FLOAT_EQ(a[k], b[k]);
  EXPECT_EQ(model.SifVector({"goal", "vote"}),
            loaded->SifVector({"goal", "vote"}));
}

TEST(ModelIoTest, MissingFileFails) {
  EXPECT_TRUE(LoadWord2Vec("/no/such/model.bin").status().IsIOError());
}

TEST(ModelIoTest, GarbageFileFails) {
  const std::string path = TempPath("nl_w2v_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model";
  }
  Result<Word2VecModel> loaded = LoadWord2Vec(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(ModelIoTest, TruncatedFileFails) {
  Word2VecModel model;
  SgnsConfig config;
  config.dim = 8;
  config.min_count = 1;
  model.Train(TinyCorpus(), config);
  const std::string full = TempPath("nl_w2v_full.bin");
  ASSERT_TRUE(SaveWord2Vec(model, full).ok());

  // Truncate to 60% and expect a clean error.
  const auto size = std::filesystem::file_size(full);
  const std::string cut = TempPath("nl_w2v_cut.bin");
  {
    std::ifstream in(full, std::ios::binary);
    std::vector<char> buffer(size * 6 / 10);
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    std::ofstream out(cut, std::ios::binary);
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
  Result<Word2VecModel> loaded = LoadWord2Vec(cut);
  EXPECT_FALSE(loaded.ok());
}

TEST(ModelIoTest, EmptyModelRoundTrips) {
  Word2VecModel model;
  SgnsConfig config;
  config.dim = 4;
  config.min_count = 5;  // nothing survives pruning
  model.Train({{"once"}}, config);
  const std::string path = TempPath("nl_w2v_empty.bin");
  ASSERT_TRUE(SaveWord2Vec(model, path).ok());
  Result<Word2VecModel> loaded = LoadWord2Vec(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vocab().size(), 0u);
}

}  // namespace
}  // namespace vec
}  // namespace newslink
