// TieredEngine: the base + today tier pair must answer bit-identically —
// hits, scores, tie order — to one NewsLinkEngine over the same documents
// (DESIGN.md Sec. 15), whatever the tier split, with recency decay and
// time_range filters riding along. Compaction merges today into base
// without changing any result or any global doc id, is observable through
// tier_compactions_total / today-tier gauges, and runs from a background
// thread when configured.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "corpus/synthetic_news.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"
#include "newslink/tiered_engine.h"

namespace newslink {
namespace {

class TieredEngineTest : public ::testing::Test {
 protected:
  TieredEngineTest() : kg_(MakeKg()), index_(kg_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 12;
    corpus_ = corpus::SyntheticNewsGenerator(&kg_, config).Generate();
  }

  static kg::SyntheticKg MakeKg() {
    kg::SyntheticKgConfig config;
    config.seed = 77;
    config.num_countries = 2;
    config.provinces_per_country = 2;
    config.districts_per_province = 2;
    config.cities_per_district = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  NewsLinkConfig EngineConfig() const {
    NewsLinkConfig config;
    config.num_threads = 2;
    return config;
  }

  /// Splits the corpus: the first `bulk` documents bulk-index into the
  /// base tier, the rest stream through AddDocument into the today tier.
  /// The single reference engine ingests in the identical order.
  corpus::Corpus BulkPart(size_t bulk) const {
    corpus::Corpus part;
    for (size_t i = 0; i < bulk; ++i) part.Add(corpus_.corpus.doc(i));
    return part;
  }

  std::string FirstSentenceOf(size_t doc) const {
    const std::string& text = corpus_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  /// Decay reference after every generated timestamp, shared by both
  /// engines so recency requests are deterministic and comparable.
  int64_t NowAfterCorpus() const {
    int64_t now = 0;
    for (size_t i = 0; i < corpus_.corpus.size(); ++i) {
      now = std::max(now, corpus_.corpus.doc(i).timestamp_ms);
    }
    return now + 1;
  }

  /// Per-request knobs the tiered == single property must hold under:
  /// pure text, fused pruned, fused exhaustive, pure BON, recency-decayed,
  /// and time-windowed.
  std::vector<baselines::SearchRequest> PropertyRequests(size_t doc) const {
    const std::string q = FirstSentenceOf(doc);
    baselines::SearchRequest text_only{q, 5};
    text_only.beta = 0.0;
    baselines::SearchRequest fused{q, 5};
    fused.beta = 0.3;
    baselines::SearchRequest exhaustive{q, 5};
    exhaustive.beta = 0.3;
    exhaustive.exhaustive_fusion = true;
    baselines::SearchRequest bon_only{q, 5};
    bon_only.beta = 1.0;
    baselines::SearchRequest recency{q, 5};
    recency.beta = 0.3;
    recency.recency_half_life_seconds = 3600.0;
    recency.now_ms = NowAfterCorpus();
    baselines::SearchRequest windowed{q, 5};
    windowed.beta = 0.3;
    // A window cutting across the tier split: documents are stamped in
    // generation order, so this admits late-base plus early-today rows.
    windowed.time_range = baselines::TimeRange{
        corpus_.corpus.doc(corpus_.corpus.size() / 4).timestamp_ms,
        corpus_.corpus.doc((3 * corpus_.corpus.size()) / 4).timestamp_ms};
    return {text_only, fused, exhaustive, bon_only, recency, windowed};
  }

  static void ExpectSameResponse(const baselines::SearchResponse& tiered,
                                 const baselines::SearchResponse& single,
                                 const std::string& what) {
    ASSERT_EQ(tiered.hits.size(), single.hits.size()) << what;
    for (size_t i = 0; i < single.hits.size(); ++i) {
      EXPECT_EQ(tiered.hits[i].doc_index, single.hits[i].doc_index)
          << what << " rank " << i << " (tie order must match)";
      EXPECT_EQ(tiered.hits[i].score, single.hits[i].score)
          << what << " rank " << i << " (scores must be bit-identical)";
    }
  }

  kg::SyntheticKg kg_;
  kg::LabelIndex index_;
  corpus::SyntheticCorpus corpus_;
};

TEST_F(TieredEngineTest, MatchesSingleEngineAcrossTierSplit) {
  const size_t n = corpus_.corpus.size();
  const size_t bulk = (2 * n) / 3;

  TieredEngine tiered(&kg_.graph, &index_, EngineConfig());
  NewsLinkEngine single(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(tiered.Index(BulkPart(bulk)).ok());
  ASSERT_TRUE(single.Index(BulkPart(bulk)).ok());
  for (size_t i = bulk; i < n; ++i) {
    EXPECT_EQ(tiered.AddDocument(corpus_.corpus.doc(i)), i);
    single.AddDocument(corpus_.corpus.doc(i));
  }
  ASSERT_EQ(tiered.num_indexed_docs(), n);
  EXPECT_EQ(tiered.today_tier_docs(), n - bulk);
  EXPECT_EQ(tiered.corpus_fingerprint(), single.corpus_fingerprint());

  for (const size_t probe : {size_t{0}, bulk - 1, bulk, n - 1}) {
    for (const baselines::SearchRequest& request : PropertyRequests(probe)) {
      ExpectSameResponse(tiered.Search(request), single.Search(request),
                         StrCat("probe ", probe));
    }
  }
}

TEST_F(TieredEngineTest, PureStreamingMatchesSingleEngine) {
  // Never bulk-indexed: everything lives in the today tier.
  const size_t n = corpus_.corpus.size();
  TieredEngine tiered(&kg_.graph, &index_, EngineConfig());
  NewsLinkEngine single(&kg_.graph, &index_, EngineConfig());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(tiered.AddDocument(corpus_.corpus.doc(i)), i);
    single.AddDocument(corpus_.corpus.doc(i));
  }
  for (const baselines::SearchRequest& request : PropertyRequests(3)) {
    ExpectSameResponse(tiered.Search(request), single.Search(request),
                       "pure streaming");
  }
}

TEST_F(TieredEngineTest, CompactPreservesResultsIdsAndEpochMonotonicity) {
  const size_t n = corpus_.corpus.size();
  const size_t bulk = n / 2;
  TieredEngine tiered(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(tiered.Index(BulkPart(bulk)).ok());
  for (size_t i = bulk; i < n; ++i) {
    tiered.AddDocument(corpus_.corpus.doc(i));
  }

  std::vector<baselines::SearchResponse> before;
  for (const baselines::SearchRequest& request : PropertyRequests(n - 1)) {
    before.push_back(tiered.Search(request));
  }
  const uint64_t epoch_before = before.front().epoch;

  ASSERT_TRUE(tiered.Compact().ok());
  EXPECT_EQ(tiered.compactions(), 1u);
  EXPECT_EQ(tiered.today_tier_docs(), 0u);
  EXPECT_EQ(tiered.num_indexed_docs(), n);

  size_t idx = 0;
  for (const baselines::SearchRequest& request : PropertyRequests(n - 1)) {
    const baselines::SearchResponse after = tiered.Search(request);
    ExpectSameResponse(after, before[idx++], "across compaction");
    EXPECT_GT(after.epoch, epoch_before)
        << "response epoch must keep growing across a compaction swap";
    EXPECT_EQ(after.snapshot_docs, n);
  }

  // Post-compaction ingestion lands in the fresh today tier and keeps
  // global rows contiguous.
  corpus::Document extra = corpus_.corpus.doc(0);
  extra.id = "extra-0";
  extra.text = "Quorple zanthic felbright announcement. " + extra.text;
  EXPECT_EQ(tiered.AddDocument(extra), n);
  EXPECT_EQ(tiered.today_tier_docs(), 1u);
  baselines::SearchRequest find{"Quorple zanthic felbright", 3};
  find.beta = 0.0;
  const baselines::SearchResponse hit = tiered.Search(find);
  ASSERT_FALSE(hit.hits.empty());
  EXPECT_EQ(hit.hits.front().doc_index, n);
}

TEST_F(TieredEngineTest, CompactOnEmptyTodayTierIsANoop) {
  TieredEngine tiered(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(tiered.Index(BulkPart(corpus_.corpus.size())).ok());
  ASSERT_TRUE(tiered.Compact().ok());
  EXPECT_EQ(tiered.compactions(), 0u);
}

TEST_F(TieredEngineTest, TierLifecycleIsObservableInMetrics) {
  TieredEngine tiered(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(tiered.Index(BulkPart(corpus_.corpus.size() / 2)).ok());
  tiered.AddDocument(corpus_.corpus.doc(corpus_.corpus.size() / 2));

  const std::string scrape = tiered.Metrics().RenderPrometheus();
  EXPECT_NE(scrape.find("tier_compactions_total 0"), std::string::npos);
  EXPECT_NE(scrape.find("today_tier_docs 1"), std::string::npos);
  EXPECT_EQ(scrape.find("today_tier_bytes 0\n"), std::string::npos)
      << "a populated today tier must report non-zero bytes";

  ASSERT_TRUE(tiered.Compact().ok());
  const std::string after = tiered.Metrics().RenderPrometheus();
  EXPECT_NE(after.find("tier_compactions_total 1"), std::string::npos);
  EXPECT_NE(after.find("today_tier_docs 0"), std::string::npos);
  EXPECT_NE(after.find("today_tier_bytes 0"), std::string::npos);
}

TEST_F(TieredEngineTest, BackgroundCompactorMergesAndKeepsServing) {
  TieredOptions options;
  options.compact_interval_seconds = 0.05;
  options.compact_min_today_docs = 2;
  TieredEngine tiered(&kg_.graph, &index_, EngineConfig(), options);
  const size_t n = corpus_.corpus.size();
  ASSERT_TRUE(tiered.Index(BulkPart(n - 4)).ok());
  for (size_t i = n - 4; i < n; ++i) {
    tiered.AddDocument(corpus_.corpus.doc(i));
  }

  // The compactor fires on its own; queries keep answering throughout.
  baselines::SearchRequest request{FirstSentenceOf(n - 1), 5};
  request.beta = 0.3;
  const baselines::SearchResponse before = tiered.Search(request);
  for (int spin = 0; spin < 200 && tiered.compactions() == 0; ++spin) {
    (void)tiered.Search(request);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(tiered.compactions(), 1u) << "background compactor never fired";
  EXPECT_EQ(tiered.today_tier_docs(), 0u);
  ExpectSameResponse(tiered.Search(request), before, "after background merge");
}

TEST_F(TieredEngineTest, BatchSearchPinsOneViewAndMatchesSingleCalls) {
  const size_t n = corpus_.corpus.size();
  TieredEngine tiered(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(tiered.Index(BulkPart(n / 2)).ok());
  for (size_t i = n / 2; i < n; ++i) tiered.AddDocument(corpus_.corpus.doc(i));

  const std::vector<baselines::SearchRequest> requests = PropertyRequests(1);
  const std::vector<baselines::SearchResponse> batch =
      tiered.SearchBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(batch[i], tiered.Search(requests[i]),
                       StrCat("batch element ", i));
  }
}

TEST_F(TieredEngineTest, RejectsSecondBulkIndexAndSnapshotting) {
  TieredEngine tiered(&kg_.graph, &index_, EngineConfig());
  ASSERT_TRUE(tiered.Index(BulkPart(4)).ok());
  EXPECT_TRUE(tiered.Index(BulkPart(4)).IsFailedPrecondition());
  EXPECT_TRUE(tiered.SaveSnapshot("/tmp/never-written").IsUnimplemented());
  EXPECT_TRUE(tiered.LoadSnapshot("/tmp/never-written").IsUnimplemented());
}

}  // namespace
}  // namespace newslink
