// End-to-end integration tests: the full KG -> corpus -> NLP -> NE -> NS
// pipeline, cross-engine behaviour, persistence round trips through the
// whole stack, and determinism of everything at once.

#include <set>

#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/lucene_like_engine.h"
#include "baselines/qeprf_engine.h"
#include "corpus/corpus_io.h"
#include "corpus/synthetic_news.h"
#include "eval/evaluation_runner.h"
#include "kg/graph_stats.h"
#include "kg/kg_io.h"
#include "kg/label_index.h"
#include "kg/synthetic_kg.h"
#include "newslink/newslink_engine.h"
#include "vec/fasttext_model.h"

namespace newslink {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : world_(MakeWorld()), labels_(world_.graph) {
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 40;
    news_ = corpus::SyntheticNewsGenerator(&world_, config).Generate("it");
  }

  static kg::SyntheticKg MakeWorld() {
    kg::SyntheticKgConfig config;
    config.seed = 1234;
    config.num_countries = 2;
    return kg::SyntheticKgGenerator(config).Generate();
  }

  std::string Sentence(size_t doc) const {
    const std::string& text = news_.corpus.doc(doc).text;
    return text.substr(0, text.find('.') + 1);
  }

  kg::SyntheticKg world_;
  kg::LabelIndex labels_;
  corpus::SyntheticCorpus news_;
};

TEST_F(IntegrationTest, WorldInvariants) {
  // The KG must satisfy the NE component's assumptions.
  const kg::GraphStats stats = kg::ComputeGraphStats(world_.graph, 0);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_GT(news_.corpus.size(), 100u);
}

TEST_F(IntegrationTest, FullPersistenceRoundTripPreservesSearch) {
  // Save KG + corpus, reload both, and verify the reloaded engine returns
  // identical results — the workflow of a production deployment.
  namespace fs = std::filesystem;
  const std::string kg_prefix = (fs::temp_directory_path() / "it_kg").string();
  const std::string corpus_path =
      (fs::temp_directory_path() / "it_corpus.tsv").string();
  ASSERT_TRUE(kg::SaveTsv(world_.graph, kg_prefix).ok());
  ASSERT_TRUE(corpus::SaveTsv(news_.corpus, corpus_path).ok());

  Result<kg::KnowledgeGraph> kg2 = kg::LoadTsv(kg_prefix);
  ASSERT_TRUE(kg2.ok());
  Result<corpus::Corpus> corpus2 = corpus::LoadTsv(corpus_path);
  ASSERT_TRUE(corpus2.ok());
  kg::LabelIndex labels2(*kg2);

  NewsLinkEngine original(&world_.graph, &labels_, {});
  ASSERT_TRUE(original.Index(news_.corpus).ok());
  NewsLinkEngine reloaded(&*kg2, &labels2, {});
  ASSERT_TRUE(reloaded.Index(*corpus2).ok());

  for (size_t d : {0u, 5u, 11u}) {
    const auto a = original.Search({Sentence(d), 10}).hits;
    const auto b = reloaded.Search({Sentence(d), 10}).hits;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc_index, b[i].doc_index);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST_F(IntegrationTest, AllEnginesReturnValidResults) {
  baselines::LuceneLikeEngine lucene;
  ASSERT_TRUE(lucene.Index(news_.corpus).ok());
  text::GazetteerNer ner(&labels_);
  baselines::QeprfEngine qeprf(&world_.graph, &labels_, &ner);
  ASSERT_TRUE(qeprf.Index(news_.corpus).ok());
  NewsLinkEngine newslink(&world_.graph, &labels_, {});
  ASSERT_TRUE(newslink.Index(news_.corpus).ok());

  const std::string query = Sentence(20);
  for (baselines::SearchEngine* engine :
       std::initializer_list<baselines::SearchEngine*>{&lucene, &qeprf,
                                                       &newslink}) {
    const auto results = engine->Search({query, 7}).hits;
    EXPECT_LE(results.size(), 7u) << engine->name();
    std::set<size_t> seen;
    for (const auto& r : results) {
      EXPECT_LT(r.doc_index, news_.corpus.size()) << engine->name();
      EXPECT_TRUE(seen.insert(r.doc_index).second)
          << engine->name() << " returned a duplicate document";
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_LE(results[i].score, results[i - 1].score) << engine->name();
    }
  }
}

TEST_F(IntegrationTest, ExplainedPathsUseRealGraphElements) {
  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());
  const auto results = engine.Search({.query = Sentence(8), .k = 5, .explain = true, .max_paths_per_result = 4}).hits;
  ASSERT_FALSE(results.empty());
  for (const ExplainedResult& r : results) {
    for (const embed::RelationshipPath& p : r.paths) {
      ASSERT_GE(p.nodes.size(), 2u);
      ASSERT_EQ(p.edges.size(), p.nodes.size() - 1);
      for (kg::NodeId v : p.nodes) {
        EXPECT_LT(v, world_.graph.num_nodes());
      }
      for (size_t i = 0; i < p.edges.size(); ++i) {
        const embed::PathEdge& e = p.edges[i];
        // Each path edge must connect consecutive path nodes.
        const kg::NodeId a = p.nodes[i];
        const kg::NodeId b = p.nodes[i + 1];
        EXPECT_TRUE((e.from == a && e.to == b) || (e.from == b && e.to == a));
        EXPECT_LT(e.predicate, world_.graph.num_predicates());
      }
    }
  }
}

TEST_F(IntegrationTest, EndToEndEvaluationRuns) {
  std::vector<std::vector<std::string>> docs;
  for (const auto& d : news_.corpus.docs()) {
    docs.push_back(vec::TokenizeForVectors(d.text));
  }
  vec::FastTextConfig ft;
  ft.sgns.dim = 16;
  ft.sgns.epochs = 1;
  ft.buckets = 2000;
  vec::FastTextModel judge;
  judge.Train(docs, ft);

  Rng rng(5);
  corpus::CorpusSplit split =
      corpus::SplitCorpus(news_.corpus.size(), 0.8, 0.1, &rng);
  text::GazetteerNer ner(&labels_);
  eval::EvaluationRunner runner(&news_.corpus, &split, &ner, &judge);
  runner.Prepare();

  NewsLinkEngine engine(&world_.graph, &labels_, {});
  ASSERT_TRUE(engine.Index(news_.corpus).ok());
  const eval::EngineScores scores = runner.Evaluate(engine);
  // Smoke-level sanity on a small corpus: most queries recover Q in top-5.
  EXPECT_GT(scores.density.hit_at.at(5), 0.6);
  EXPECT_GE(scores.density.sim_at.at(5), 0.0);
  EXPECT_LE(scores.density.sim_at.at(5), 1.0);
}

TEST_F(IntegrationTest, WholePipelineIsDeterministic) {
  auto run_once = [this]() {
    kg::SyntheticKg world = MakeWorld();
    kg::LabelIndex labels(world.graph);
    corpus::SyntheticNewsConfig config = corpus::CnnLikeConfig();
    config.num_stories = 40;
    corpus::SyntheticCorpus news =
        corpus::SyntheticNewsGenerator(&world, config).Generate("it");
    NewsLinkEngine engine(&world.graph, &labels, {});
    EXPECT_TRUE(engine.Index(news.corpus).ok());
    std::string signature;
    const std::string& text = news.corpus.doc(13).text;
    for (const auto& r :
         engine.Search({text.substr(0, text.find('.') + 1), 10}).hits) {
      signature += std::to_string(r.doc_index) + ":" +
                   std::to_string(r.score) + ";";
    }
    return signature;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace newslink
