// Synthetic news corpus generator: the substitute for the CNN / Kaggle
// datasets (DESIGN.md §2). Documents are organized into *story clusters*
// anchored at KG entities; documents of the same story mention overlapping
// but different entity subsets and draw their topical vocabulary from
// per-story synonym *registers*, which produces controlled vocabulary
// mismatch — the phenomenon the paper's partial-query evaluation probes.

#ifndef NEWSLINK_CORPUS_SYNTHETIC_NEWS_H_
#define NEWSLINK_CORPUS_SYNTHETIC_NEWS_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "kg/synthetic_kg.h"

namespace newslink {
namespace corpus {

struct SyntheticNewsConfig {
  uint64_t seed = 99;

  int num_stories = 250;
  int docs_per_story_min = 3;
  int docs_per_story_max = 7;

  int sentences_per_doc_min = 8;
  int sentences_per_doc_max = 22;
  int words_per_sentence_min = 6;
  int words_per_sentence_max = 12;

  /// Entities mentioned per sentence (before dropout).
  int entities_per_sentence_min = 1;
  int entities_per_sentence_max = 3;

  /// BFS radius around the story anchor defining the story's entity pool.
  int cluster_radius = 2;
  /// Upper bound on the entity pool per story. Kept close to the per-doc
  /// focus size so same-story documents share most entities and a partial
  /// query cannot identify its source by entity names alone.
  int max_cluster_entities = 12;

  /// Topic-slot count per story, and the number of synonym registers. Each
  /// document writes in ONE register; two same-story documents in different
  /// registers share entities but few topical words (vocabulary mismatch).
  int topic_slots_per_story = 16;
  int synonym_registers = 2;

  /// Stories are grouped into domains (politics, sports, ...) whose topical
  /// vocabulary is SHARED: a story's slot realizations are drawn from its
  /// domain pool. Topic words therefore recur across stories of the same
  /// domain — text alone is ambiguous across stories, and only the entity /
  /// KG signal pins the story down (the paper's core motivation).
  int num_domains = 3;
  int words_per_domain = 30;

  /// Probability that an emitted token is a topical word (vs general word).
  double topic_word_prob = 0.45;

  /// Probability that an entity mention is an out-of-KG invented name
  /// (drives the entity matching ratio of paper Table V below 100%).
  double unknown_entity_prob = 0.025;

  /// Probability of mentioning a random off-cluster entity (noise).
  double offcluster_entity_prob = 0.08;

  /// Probability that a document quotes one verbatim sentence from an
  /// earlier document of a DIFFERENT story (syndication / quotation, which
  /// pervades real news corpora). Quotes are the text-identical confusers
  /// of the partial-query task: keyword search cannot tell the quoting
  /// document from the source, while the source's subgraph embedding keeps
  /// mentioning the sentence's entities across its other segments.
  double cross_quote_prob = 0.15;

  /// When non-empty, story anchors are drawn from this SyntheticKg
  /// category ("company", "agency", "event", ...) instead of the KG's
  /// general story_anchors pool. This focuses every story on one entity
  /// class — the due-diligence scenario, where an analyst's queries all
  /// orbit companies and the agencies investigating them.
  std::string anchor_category;

  /// Publication timestamps: document i (generation order) is stamped
  ///   timestamp_start_ms + i * timestamp_spacing_ms + jitter,
  /// jitter uniform in ±timestamp_jitter_ms, clamped to >= 1 — a
  /// monotone-ish but jittered stream, like a real wire feed. The jitter
  /// draws come from a SEPARATE seed-derived RNG stream, so enabling or
  /// re-tuning timestamps never perturbs the generated text (benches and
  /// golden smokes depend on the text stream). Presets default to ~one
  /// document per minute starting 2023-11-14.
  int64_t timestamp_start_ms = 1700000000000;
  int64_t timestamp_spacing_ms = 60000;
  int64_t timestamp_jitter_ms = 45000;

  /// Zipf-sampled general vocabulary size and exponent. Kept SMALL so
  /// filler words appear in a large fraction of documents and carry low
  /// idf, like common English vocabulary: a single-sentence query must not
  /// fingerprint its source document through rare filler words (the
  /// partial-query task is only interesting when keyword search is not
  /// trivially unique).
  int general_vocab_size = 100;
  double general_zipf_exponent = 1.1;
};

/// Preset resembling the CNN dataset column of the paper's tables
/// (moderate mismatch -> higher absolute scores).
SyntheticNewsConfig CnnLikeConfig();

/// Preset resembling the Kaggle ("all-the-news") column: more registers,
/// more noise -> lower absolute scores, bigger BOW/embedding gaps.
SyntheticNewsConfig KaggleLikeConfig();

/// Due-diligence preset (the analyst scenario of the roll-up/drill-down
/// paper, DESIGN.md §13): every story anchors on a company, stories are
/// larger and entity-denser (coverage of the corporate neighbourhood —
/// subsidiaries, cities, agencies — is the point), and vocabulary mismatch
/// is mild. Exploration queries over this corpus produce result sets that
/// roll up cleanly by country / sector ancestors.
SyntheticNewsConfig DueDiligenceConfig();

/// \brief Ground truth of one story cluster.
struct StoryInfo {
  kg::NodeId anchor = kg::kInvalidNode;
  std::vector<kg::NodeId> cluster_entities;  // includes the anchor
};

/// \brief Generator output.
struct SyntheticCorpus {
  Corpus corpus;
  std::vector<StoryInfo> stories;
};

/// \brief Deterministic corpus generator over a synthetic KG.
class SyntheticNewsGenerator {
 public:
  /// `kg` must outlive the generator.
  SyntheticNewsGenerator(const kg::SyntheticKg* kg, SyntheticNewsConfig config);

  SyntheticCorpus Generate(const std::string& id_prefix = "doc");

 private:
  std::vector<kg::NodeId> BuildCluster(kg::NodeId anchor, Rng* rng) const;

  const kg::SyntheticKg* kg_;
  SyntheticNewsConfig config_;
};

}  // namespace corpus
}  // namespace newslink

#endif  // NEWSLINK_CORPUS_SYNTHETIC_NEWS_H_
