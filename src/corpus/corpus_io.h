// Corpus persistence: a one-document-per-line TSV format
// (id, story_id, timestamp_ms, title, text — tabs/newlines escaped), so
// generated corpora can be saved, diffed, and reloaded (or swapped for
// real data). The timestamp column is required: a four-field line (the
// pre-time format) is a Status, not a silent timestamp of 0, so stale
// corpora are regenerated instead of quietly losing recency ranking.

#ifndef NEWSLINK_CORPUS_CORPUS_IO_H_
#define NEWSLINK_CORPUS_CORPUS_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "corpus/corpus.h"

namespace newslink {
namespace corpus {

/// Write the corpus to `path` (overwrites).
Status SaveTsv(const Corpus& corpus, const std::string& path);

/// Load a corpus written by SaveTsv.
Result<Corpus> LoadTsv(const std::string& path);

}  // namespace corpus
}  // namespace newslink

#endif  // NEWSLINK_CORPUS_CORPUS_IO_H_
