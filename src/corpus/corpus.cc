#include "corpus/corpus.h"

#include <numeric>

#include "common/binary_io.h"
#include "common/logging.h"

namespace newslink {
namespace corpus {

uint64_t DocumentFingerprint(const Document& doc) {
  Fingerprinter fp;
  fp.Add(doc.id)
      .Add(static_cast<uint64_t>(doc.story_id))
      .Add(static_cast<uint64_t>(doc.timestamp_ms))
      .Add(doc.title)
      .Add(doc.text);
  return fp.Digest();
}

uint64_t ChainCorpusFingerprint(uint64_t chain, const Document& doc) {
  Fingerprinter fp;
  fp.Add(chain).Add(DocumentFingerprint(doc));
  return fp.Digest();
}

CorpusSplit SplitCorpus(size_t n, double train_frac, double validation_frac,
                        Rng* rng) {
  NL_CHECK(train_frac >= 0 && validation_frac >= 0 &&
           train_frac + validation_frac <= 1.0);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  const size_t n_train = static_cast<size_t>(train_frac * n);
  const size_t n_val = static_cast<size_t>(validation_frac * n);

  CorpusSplit split;
  split.train.assign(order.begin(), order.begin() + n_train);
  split.validation.assign(order.begin() + n_train,
                          order.begin() + n_train + n_val);
  split.test.assign(order.begin() + n_train + n_val, order.end());
  return split;
}

}  // namespace corpus
}  // namespace newslink
