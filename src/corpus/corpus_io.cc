#include "corpus/corpus_io.h"

#include <fstream>
#include <limits>

#include "common/string_util.h"

namespace newslink {
namespace corpus {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out.push_back('\t');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

Status SaveTsv(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError(StrCat("cannot open ", path));
  for (const Document& doc : corpus.docs()) {
    out << Escape(doc.id) << '\t' << doc.story_id << '\t' << doc.timestamp_ms
        << '\t' << Escape(doc.title) << '\t' << Escape(doc.text) << '\n';
  }
  if (!out) return Status::IOError("corpus write failed");
  return Status::OK();
}

Result<Corpus> LoadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError(StrCat("cannot open ", path));
  Corpus corpus;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 5) {
      return Status::IOError(StrCat("malformed corpus line (want 5 fields, ",
                                    "got ", fields.size(), "): ", line));
    }
    Document doc;
    doc.id = Unescape(fields[0]);
    if (!ParseUint32(fields[1], &doc.story_id)) {
      return Status::IOError(
          StrCat("corpus line has bad story id '", fields[1], "': ", line));
    }
    // Timestamps are non-negative epoch-milliseconds that must fit int64;
    // ParseUint64 already rejects signs, non-digits, and uint64 overflow.
    uint64_t ts = 0;
    if (!ParseUint64(fields[2], &ts) ||
        ts > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return Status::IOError(
          StrCat("corpus line has bad timestamp '", fields[2], "': ", line));
    }
    doc.timestamp_ms = static_cast<int64_t>(ts);
    doc.title = Unescape(fields[3]);
    doc.text = Unescape(fields[4]);
    corpus.Add(std::move(doc));
  }
  if (in.bad()) return Status::IOError(StrCat("read failed on ", path));
  return corpus;
}

}  // namespace corpus
}  // namespace newslink
