#include "corpus/corpus_io.h"

#include <fstream>

#include "common/string_util.h"

namespace newslink {
namespace corpus {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out.push_back('\t');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

Status SaveTsv(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError(StrCat("cannot open ", path));
  for (const Document& doc : corpus.docs()) {
    out << Escape(doc.id) << '\t' << doc.story_id << '\t'
        << Escape(doc.title) << '\t' << Escape(doc.text) << '\n';
  }
  if (!out) return Status::IOError("corpus write failed");
  return Status::OK();
}

Result<Corpus> LoadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError(StrCat("cannot open ", path));
  Corpus corpus;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 4) {
      return Status::IOError(StrCat("malformed corpus line: ", line));
    }
    Document doc;
    doc.id = Unescape(fields[0]);
    if (!ParseUint32(fields[1], &doc.story_id)) {
      return Status::IOError(
          StrCat("corpus line has bad story id '", fields[1], "': ", line));
    }
    doc.title = Unescape(fields[2]);
    doc.text = Unescape(fields[3]);
    corpus.Add(std::move(doc));
  }
  if (in.bad()) return Status::IOError(StrCat("read failed on ", path));
  return corpus;
}

}  // namespace corpus
}  // namespace newslink
