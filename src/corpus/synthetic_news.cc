#include "corpus/synthetic_news.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "kg/label_index.h"

namespace newslink {
namespace corpus {

SyntheticNewsConfig CnnLikeConfig() {
  SyntheticNewsConfig config;
  config.seed = 1001;
  config.synonym_registers = 2;
  config.unknown_entity_prob = 0.025;
  config.offcluster_entity_prob = 0.05;
  config.topic_word_prob = 0.45;
  return config;
}

SyntheticNewsConfig KaggleLikeConfig() {
  SyntheticNewsConfig config;
  config.seed = 2002;
  config.synonym_registers = 3;     // heavier vocabulary mismatch
  config.unknown_entity_prob = 0.035;
  config.offcluster_entity_prob = 0.14;
  config.topic_word_prob = 0.38;    // more generic filler
  return config;
}

SyntheticNewsConfig DueDiligenceConfig() {
  SyntheticNewsConfig config;
  config.seed = 3003;
  config.anchor_category = "company";
  config.num_stories = 120;
  // Denser stories: more docs and more entity mentions per sentence, so a
  // company's corporate neighbourhood (city, country, owners, agencies)
  // shows up across its coverage and roll-up buckets have mass.
  config.docs_per_story_min = 4;
  config.docs_per_story_max = 9;
  config.entities_per_sentence_min = 2;
  config.entities_per_sentence_max = 4;
  config.max_cluster_entities = 16;
  // Mild mismatch: the analyst task is exploration, not partial-query
  // disambiguation.
  config.synonym_registers = 2;
  config.unknown_entity_prob = 0.02;
  config.offcluster_entity_prob = 0.04;
  config.topic_word_prob = 0.42;
  return config;
}

SyntheticNewsGenerator::SyntheticNewsGenerator(const kg::SyntheticKg* kg,
                                               SyntheticNewsConfig config)
    : kg_(kg), config_(config) {}

std::vector<kg::NodeId> SyntheticNewsGenerator::BuildCluster(
    kg::NodeId anchor, Rng* rng) const {
  (void)rng;
  const kg::KnowledgeGraph& graph = kg_->graph;
  std::vector<kg::NodeId> cluster = {anchor};
  std::set<kg::NodeId> visited = {anchor};
  std::queue<std::pair<kg::NodeId, int>> frontier;
  frontier.push({anchor, 0});
  while (!frontier.empty() &&
         cluster.size() < static_cast<size_t>(config_.max_cluster_entities)) {
    const auto [v, depth] = frontier.front();
    frontier.pop();
    if (depth >= config_.cluster_radius) continue;
    for (const kg::Arc& arc : graph.OutArcs(v)) {
      if (!visited.insert(arc.dst).second) continue;
      cluster.push_back(arc.dst);
      frontier.push({arc.dst, depth + 1});
      if (cluster.size() >= static_cast<size_t>(config_.max_cluster_entities)) {
        break;
      }
    }
  }
  return cluster;
}

SyntheticCorpus SyntheticNewsGenerator::Generate(
    const std::string& id_prefix) {
  Rng rng(config_.seed);
  // Dedicated stream for timestamp jitter: drawing it from `rng` would
  // shift every downstream text sample and silently change the corpus.
  Rng ts_rng(config_.seed ^ 0x74696d657374616dULL);  // "timestam"
  kg::NameForge forge(&rng);
  const kg::KnowledgeGraph& graph = kg_->graph;
  SyntheticCorpus out;

  // Reserved surface forms: every normalized KG label. Vocabulary words and
  // invented out-of-KG names must not collide with them, or the gazetteer
  // would "match" filler text.
  std::unordered_set<std::string> reserved;
  for (kg::NodeId v = 0; v < graph.num_nodes(); ++v) {
    reserved.insert(kg::NormalizeLabel(graph.label(v)));
  }

  auto fresh_word = [&]() {
    std::string w = forge.Word();
    while (reserved.contains(w)) w = forge.Word();
    return w;
  };

  // General vocabulary, Zipf-weighted.
  std::vector<std::string> general_vocab;
  general_vocab.reserve(config_.general_vocab_size);
  for (int i = 0; i < config_.general_vocab_size; ++i) {
    general_vocab.push_back(fresh_word());
  }
  ZipfTable zipf(general_vocab.size(), config_.general_zipf_exponent);

  // Domain-shared topical vocabulary pools.
  std::vector<std::vector<std::string>> domain_pool(config_.num_domains);
  for (auto& pool : domain_pool) {
    pool.reserve(config_.words_per_domain);
    for (int i = 0; i < config_.words_per_domain; ++i) {
      pool.push_back(fresh_word());
    }
  }

  // Connective stopwords sprinkled in so the text reads like prose and the
  // BOW models face realistic term statistics.
  const char* const kConnectives[] = {"the", "of",   "in",  "and", "to",
                                      "a",   "for",  "on",  "with", "after",
                                      "over", "near", "from"};

  // Anchors are assigned without replacement (wrapping only when there are
  // more stories than anchors): distinct stories sit on distinct KG
  // neighbourhoods, so the entity signal can tell stories apart even when
  // their domain vocabulary overlaps.
  std::vector<kg::NodeId> anchors =
      config_.anchor_category.empty()
          ? kg_->story_anchors
          : kg_->Category(config_.anchor_category);
  NL_CHECK(!anchors.empty())
      << "synthetic KG has no story anchors"
      << (config_.anchor_category.empty()
              ? ""
              : StrCat(" in category \"", config_.anchor_category, "\""));
  rng.Shuffle(&anchors);

  // Pool of quotable sentences from already-generated documents, with the
  // story they came from (quotes always cross story boundaries).
  std::vector<std::pair<std::string, uint32_t>> quote_pool;

  uint32_t doc_counter = 0;
  for (int s = 0; s < config_.num_stories; ++s) {
    StoryInfo story;
    story.anchor = anchors[static_cast<size_t>(s) % anchors.size()];
    story.cluster_entities = BuildCluster(story.anchor, &rng);
    const std::vector<kg::NodeId>& cluster = story.cluster_entities;

    // Topic slots: each slot has one realization per synonym register,
    // drawn from the story's domain pool (shared across stories).
    const std::vector<std::string>& pool =
        domain_pool[rng.Uniform(domain_pool.size())];
    std::vector<std::vector<std::string>> topic(
        config_.topic_slots_per_story,
        std::vector<std::string>(config_.synonym_registers));
    for (auto& slot : topic) {
      for (std::string& word : slot) word = pool[rng.Uniform(pool.size())];
    }

    // Out-of-KG entities are *story-level* (eyewitnesses, minor officials):
    // reused across the story's coverage, so they fail entity linking
    // (Table V) without becoming unique document fingerprints.
    std::vector<std::string> unknown_pool;
    for (int u = 0; u < 2; ++u) {
      std::string name = forge.PersonName();
      while (reserved.contains(kg::NormalizeLabel(name))) {
        name = forge.PersonName();
      }
      unknown_pool.push_back(std::move(name));
    }

    const int num_docs = static_cast<int>(rng.UniformInt(
        config_.docs_per_story_min, config_.docs_per_story_max));
    for (int d = 0; d < num_docs; ++d) {
      // Round-robin register assignment: every document has same-register
      // siblings sharing its topical vocabulary, so a single sentence never
      // identifies its source document by unique words alone (the paper's
      // partial-query task is about ambiguity, not fingerprinting).
      const int reg = d % config_.synonym_registers;

      // Document focus: a biased-to-the-front subset of the cluster, so
      // same-story documents overlap on core entities but differ in the
      // periphery (partially matched entities, paper Table I).
      const size_t focus_size = static_cast<size_t>(rng.UniformInt(
          3, static_cast<int64_t>(std::min<size_t>(cluster.size(), 10))));
      std::vector<kg::NodeId> focus;
      std::set<kg::NodeId> focus_set;
      size_t attempts = 0;
      while (focus.size() < focus_size && attempts < 100) {
        ++attempts;
        const double u = rng.UniformDouble();
        const size_t idx = static_cast<size_t>(u * u * cluster.size());
        const kg::NodeId v = cluster[std::min(idx, cluster.size() - 1)];
        if (focus_set.insert(v).second) focus.push_back(v);
      }
      if (focus.empty()) focus.push_back(story.anchor);

      auto sample_entity_label = [&]() -> std::string {
        if (rng.Bernoulli(config_.unknown_entity_prob)) {
          return unknown_pool[rng.Uniform(unknown_pool.size())];
        }
        if (rng.Bernoulli(config_.offcluster_entity_prob)) {
          return graph.label(
              static_cast<kg::NodeId>(rng.Uniform(graph.num_nodes())));
        }
        return graph.label(focus[rng.Uniform(focus.size())]);
      };

      const int num_sentences = static_cast<int>(rng.UniformInt(
          config_.sentences_per_doc_min, config_.sentences_per_doc_max));
      std::vector<std::string> sentences;
      for (int snt = 0; snt < num_sentences; ++snt) {
        const int num_words = static_cast<int>(rng.UniformInt(
            config_.words_per_sentence_min, config_.words_per_sentence_max));
        std::vector<std::string> words;
        for (int w = 0; w < num_words; ++w) {
          const double roll = rng.UniformDouble();
          if (roll < 0.25) {
            words.push_back(kConnectives[rng.Uniform(std::size(kConnectives))]);
          } else if (roll < 0.25 + config_.topic_word_prob) {
            const size_t slot = rng.Uniform(topic.size());
            words.push_back(topic[slot][reg]);
          } else {
            words.push_back(general_vocab[zipf.Sample(&rng)]);
          }
        }
        // Inject entity mentions at random interior positions.
        const int num_entities = static_cast<int>(rng.UniformInt(
            config_.entities_per_sentence_min,
            config_.entities_per_sentence_max));
        for (int e = 0; e < num_entities; ++e) {
          const size_t pos = 1 + rng.Uniform(words.size());
          words.insert(words.begin() + pos, sample_entity_label());
        }
        // Capitalize the sentence-initial token (only if it is a plain
        // word; entity labels keep their casing).
        if (!words[0].empty() &&
            std::islower(static_cast<unsigned char>(words[0][0]))) {
          words[0][0] = static_cast<char>(
              std::toupper(static_cast<unsigned char>(words[0][0])));
        }
        sentences.push_back(Join(words, " ") + ".");
      }

      // Cross-story quotation: splice in one verbatim sentence from an
      // earlier document of another story.
      if (rng.Bernoulli(config_.cross_quote_prob)) {
        for (int attempt = 0; attempt < 8 && !quote_pool.empty(); ++attempt) {
          const auto& [quoted, from_story] =
              quote_pool[rng.Uniform(quote_pool.size())];
          if (from_story == static_cast<uint32_t>(s)) continue;
          const size_t pos = rng.Uniform(sentences.size() + 1);
          sentences.insert(sentences.begin() + pos, quoted);
          break;
        }
      }
      // Feed this document's most *notable* (entity-dense) sentences into
      // the quote pool — quotes carry content, and entity-dense sentences
      // are exactly what downstream consumers reuse.
      {
        auto density = [](const std::string& sentence) {
          int caps = 0, words = 0;
          bool in_word = false;
          for (size_t i = 0; i < sentence.size(); ++i) {
            const bool alpha =
                std::isalpha(static_cast<unsigned char>(sentence[i])) != 0;
            if (alpha && !in_word) {
              ++words;
              if (std::isupper(static_cast<unsigned char>(sentence[i])) &&
                  i > 0) {
                ++caps;
              }
            }
            in_word = alpha;
          }
          return words > 0 ? static_cast<double>(caps) / words : 0.0;
        };
        std::vector<size_t> order(sentences.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           return density(sentences[a]) > density(sentences[b]);
                         });
        for (size_t q = 0; q < 2 && q < order.size(); ++q) {
          quote_pool.emplace_back(sentences[order[q]],
                                  static_cast<uint32_t>(s));
        }
      }

      Document doc;
      doc.id = StrCat(id_prefix, "-", doc_counter++);
      doc.title = StrCat(graph.label(story.anchor), " ", topic[0][reg]);
      doc.text = Join(sentences, " ");
      doc.story_id = static_cast<uint32_t>(s);
      const int64_t jitter =
          config_.timestamp_jitter_ms > 0
              ? ts_rng.UniformInt(-config_.timestamp_jitter_ms,
                                  config_.timestamp_jitter_ms)
              : 0;
      doc.timestamp_ms = std::max<int64_t>(
          1, config_.timestamp_start_ms +
                 static_cast<int64_t>(out.corpus.size()) *
                     config_.timestamp_spacing_ms +
                 jitter);
      out.corpus.Add(std::move(doc));
    }
    out.stories.push_back(std::move(story));
  }
  return out;
}

}  // namespace corpus
}  // namespace newslink
