// News corpus containers and train/validation/test splitting
// (the paper splits 80/10/10, Sec. VII-A).

#ifndef NEWSLINK_CORPUS_CORPUS_H_
#define NEWSLINK_CORPUS_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace newslink {
namespace corpus {

/// \brief One news document.
struct Document {
  std::string id;      // e.g. "cnn-000123"
  std::string title;
  std::string text;    // full body, sentence-per-line style prose
  /// Ground-truth story (event cluster) id from the generator. Evaluation
  /// harness bookkeeping only — engines never see it.
  uint32_t story_id = 0;
  /// Publication instant, milliseconds since the Unix epoch. 0 means
  /// "unknown": such documents never match a time_range filter's lower
  /// bound semantics specially — they simply carry timestamp 0 — and a
  /// corpus whose documents are all unset leaves recency ranking disabled
  /// (DESIGN.md Sec. 15).
  int64_t timestamp_ms = 0;
};

/// \brief An ordered collection of documents.
class Corpus {
 public:
  size_t Add(Document doc) {
    docs_.push_back(std::move(doc));
    return docs_.size() - 1;
  }

  const Document& doc(size_t i) const { return docs_[i]; }
  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  const std::vector<Document>& docs() const { return docs_; }

 private:
  std::vector<Document> docs_;
};

/// Content fingerprint of one document (FNV-1a over id, story, timestamp,
/// title, text). Used to chain the corpus fingerprint stored in engine
/// snapshots.
uint64_t DocumentFingerprint(const Document& doc);

/// Fold `doc` into a running corpus fingerprint. Chaining document by
/// document (rather than hashing the whole corpus at once) lets bulk
/// Index() and incremental AddDocument() agree on the same value, so a
/// snapshot taken after live ingestion still carries a verifiable corpus
/// identity.
uint64_t ChainCorpusFingerprint(uint64_t chain, const Document& doc);

/// \brief Index sets of a random split.
struct CorpusSplit {
  std::vector<size_t> train;
  std::vector<size_t> validation;
  std::vector<size_t> test;
};

/// Shuffle [0, n) with `rng` and cut into train/validation/test fractions.
/// test receives the remainder; fractions must sum to <= 1.
CorpusSplit SplitCorpus(size_t n, double train_frac, double validation_frac,
                        Rng* rng);

}  // namespace corpus
}  // namespace newslink

#endif  // NEWSLINK_CORPUS_CORPUS_H_
