#include "eval/ranking_metrics.h"

#include <algorithm>
#include <cmath>

namespace newslink {
namespace eval {

double ReciprocalRank(const std::vector<baselines::SearchHit>& results,
                      size_t relevant_doc) {
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].doc_index == relevant_doc) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

double DcgAtK(const std::vector<baselines::SearchHit>& results,
              const std::set<size_t>& relevant, size_t k) {
  double dcg = 0.0;
  const size_t limit = std::min(k, results.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.contains(results[i].doc_index)) {
      dcg += 1.0 / std::log2(static_cast<double>(i + 2));
    }
  }
  return dcg;
}

double NdcgAtK(const std::vector<baselines::SearchHit>& results,
               const std::set<size_t>& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  double ideal = 0.0;
  const size_t ideal_hits = std::min(k, relevant.size());
  for (size_t i = 0; i < ideal_hits; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i + 2));
  }
  return DcgAtK(results, relevant, k) / ideal;
}

}  // namespace eval
}  // namespace newslink
