// Orchestration of the paper's Partial Query Similarity Search evaluation
// (Sec. VII-B): builds both query sets over the test split, precomputes the
// FastText judge vectors of every corpus document, and scores engines with
// SIM@k / HIT@k. Also reports the entity matching ratio of Table V.

#ifndef NEWSLINK_EVAL_EVALUATION_RUNNER_H_
#define NEWSLINK_EVAL_EVALUATION_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/search_engine.h"
#include "corpus/corpus.h"
#include "eval/metrics.h"
#include "eval/query_selection.h"
#include "text/gazetteer_ner.h"
#include "vec/fasttext_model.h"

namespace newslink {
namespace eval {

struct EvalConfig {
  std::vector<int> sim_ks = {5, 10, 20};
  std::vector<int> hit_ks = {1, 5};
  /// Cap on test queries per policy (0 = no cap).
  size_t max_test_queries = 0;
  uint64_t seed = 31337;
  /// Fraction of the corpus centroid subtracted from the judge vectors
  /// before renormalizing (common-component removal). 0 disables; 1 removes
  /// it fully. Without removal, averaged word vectors share one dominant
  /// direction and every cosine saturates near 1, washing out SIM@k
  /// differences (every engine reads ~1.000). Full removal (the default)
  /// spreads cosines over [0, 1]: absolute SIM values are therefore NOT on
  /// the paper's saturated scale, but engine *ordering* — the reproduction
  /// target — is preserved and far better resolved.
  double judge_center_alpha = 1.0;
};

/// \brief Scores of one engine under both query-selection policies.
struct EngineScores {
  std::string engine;
  MetricScores density;  // largest-entity-density queries
  MetricScores random;   // randomly selected queries
};

class EvaluationRunner {
 public:
  /// All pointers must outlive the runner. `judge` must already be trained.
  EvaluationRunner(const corpus::Corpus* corpus,
                   const corpus::CorpusSplit* split,
                   const text::GazetteerNer* ner,
                   const vec::FastTextModel* judge, EvalConfig config = {});

  /// Segment test docs, build both query sets, encode judge vectors.
  void Prepare();

  /// Evaluate an already-indexed engine against both query sets. Every
  /// query is issued through the request-scoped Search(SearchRequest)
  /// entry point; `base_request` carries per-evaluation overrides (e.g. a
  /// swept fusion β) and its query/k fields are replaced per test query.
  /// `label` overrides engine.name() in the reported scores (useful when
  /// one engine instance serves several parameterizations). Thread-safe:
  /// concurrent Evaluate calls on one runner share only immutable state.
  EngineScores Evaluate(const baselines::SearchEngine& engine,
                        const baselines::SearchRequest& base_request = {},
                        const std::string& label = "") const;

  /// Table V: mean (matched / identified) mentions over density queries.
  double AverageEntityMatchingRatio() const;

  const std::vector<TestQuery>& density_queries() const {
    return density_queries_;
  }
  const std::vector<TestQuery>& random_queries() const {
    return random_queries_;
  }
  const std::vector<vec::Vector>& judge_vectors() const {
    return judge_vectors_;
  }

 private:
  MetricScores RunQuerySet(const baselines::SearchEngine& engine,
                           const baselines::SearchRequest& base_request,
                           const std::vector<TestQuery>& queries) const;

  const corpus::Corpus* corpus_;
  const corpus::CorpusSplit* split_;
  const text::GazetteerNer* ner_;
  const vec::FastTextModel* judge_;
  EvalConfig config_;

  std::vector<TestQuery> density_queries_;
  std::vector<TestQuery> random_queries_;
  std::vector<vec::Vector> judge_vectors_;
  bool prepared_ = false;
};

}  // namespace eval
}  // namespace newslink

#endif  // NEWSLINK_EVAL_EVALUATION_RUNNER_H_
