// Evaluation metrics of the paper (Sec. VII-B): SIM@k (Eq. 4, average
// cosine similarity between the query document and the top-k results in
// the FastText judge space) and HIT@k (fraction of queries whose source
// document appears in the top-k).

#ifndef NEWSLINK_EVAL_METRICS_H_
#define NEWSLINK_EVAL_METRICS_H_

#include <map>
#include <vector>

#include "baselines/search_engine.h"
#include "vec/dense_vector.h"

namespace newslink {
namespace eval {

/// \brief SIM@k / HIT@k tables keyed by k.
struct MetricScores {
  std::map<int, double> sim_at;
  std::map<int, double> hit_at;
};

/// \brief Per-query accumulator for the two metrics.
///
/// Feed it one (query source doc, ranked results) pair per test query along
/// with the precomputed unit judge vectors of all corpus documents.
class MetricsAccumulator {
 public:
  MetricsAccumulator(std::vector<int> sim_ks, std::vector<int> hit_ks)
      : sim_ks_(std::move(sim_ks)), hit_ks_(std::move(hit_ks)) {}

  /// `judge_vectors[d]` must be the unit-norm judge embedding of corpus
  /// document d; `results` ranked best-first.
  void AddQuery(size_t query_doc,
                const std::vector<baselines::SearchHit>& results,
                const std::vector<vec::Vector>& judge_vectors);

  /// Averages over all added queries.
  MetricScores Finalize() const;

  size_t num_queries() const { return num_queries_; }

 private:
  std::vector<int> sim_ks_;
  std::vector<int> hit_ks_;
  std::map<int, double> sim_sums_;
  std::map<int, double> hit_sums_;
  size_t num_queries_ = 0;
};

}  // namespace eval
}  // namespace newslink

#endif  // NEWSLINK_EVAL_METRICS_H_
