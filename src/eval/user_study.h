// Simulated user study (paper Fig. 5 / Sec. VII-D). Humans are not
// available in this reproduction, but the paper's own analysis names the
// three factors behind non-helpful votes: (1) the connection was already
// known / information already in the text, (2) the extra information is
// redundant with the text, (3) too much information overwhelms. We encode
// exactly those factors as a deterministic rubric and sample a panel of
// participants with jittered thresholds.

#ifndef NEWSLINK_EVAL_USER_STUDY_H_
#define NEWSLINK_EVAL_USER_STUDY_H_

#include <string>
#include <vector>

#include "embed/document_embedding.h"
#include "kg/knowledge_graph.h"

namespace newslink {
namespace eval {

/// \brief One news pair presented to the panel: a query document, its top
/// result (retrieved with β = 1, per the paper), and their embeddings.
struct StudyCase {
  std::string query_text;
  std::string result_text;
  const embed::DocumentEmbedding* query_embedding = nullptr;
  const embed::DocumentEmbedding* result_embedding = nullptr;
};

/// \brief Rubric features of one case.
struct CaseFeatures {
  /// Induced entities (not mentioned in either text) in the overlap region —
  /// genuinely new information contributed by the KG.
  int novel_nodes = 0;
  /// Embedding nodes whose labels already occur in the texts / all nodes.
  double redundancy = 0.0;
  /// Nodes shared by both embeddings (the overlap that explains relatedness).
  int overlap_nodes = 0;
  /// Total distinct nodes shown to the participant.
  int total_nodes = 0;
};

struct StudyOutcome {
  int helpful = 0;
  int neutral = 0;
  int not_helpful = 0;

  int total() const { return helpful + neutral + not_helpful; }
};

class SimulatedUserStudy {
 public:
  SimulatedUserStudy(const kg::KnowledgeGraph* graph, int participants = 20,
                     uint64_t seed = 5)
      : graph_(graph), participants_(participants), seed_(seed) {}

  /// Extract the rubric features of one case.
  CaseFeatures Features(const StudyCase& c) const;

  /// Run the panel over all cases; every (participant, case) pair casts one
  /// vote, aggregated into the outcome histogram.
  StudyOutcome Run(const std::vector<StudyCase>& cases) const;

 private:
  const kg::KnowledgeGraph* graph_;
  int participants_;
  uint64_t seed_;
};

}  // namespace eval
}  // namespace newslink

#endif  // NEWSLINK_EVAL_USER_STUDY_H_
