// Partial-query construction for the evaluation task (paper Sec. VII-B):
// from each test document pick (a) the sentence with the largest entity
// density and (b) a random sentence, and use it as the search query.

#ifndef NEWSLINK_EVAL_QUERY_SELECTION_H_
#define NEWSLINK_EVAL_QUERY_SELECTION_H_

#include <optional>
#include <string>

#include "common/rng.h"
#include "text/news_segmenter.h"

namespace newslink {
namespace eval {

/// \brief One evaluation query: a sentence standing in for its document.
struct TestQuery {
  size_t doc_index = 0;   // corpus index of the source document Q
  std::string sentence;   // the partial query q
  double entity_density = 0.0;
  /// identified/matched mention counts of the query sentence (Table V).
  size_t mentions_identified = 0;
  size_t mentions_matched = 0;
};

/// The sentence with the largest entity density (#entity mentions / #word
/// tokens). Sentences without mentions are skipped; nullopt if none has any.
std::optional<TestQuery> DensestQuery(const text::SegmentedDocument& segmented,
                                      size_t doc_index);

/// A uniformly random sentence with at least one word (entity presence not
/// required — randomness is the point of the paper's second query set).
std::optional<TestQuery> RandomQuery(const text::SegmentedDocument& segmented,
                                     size_t doc_index, Rng* rng);

/// Entity density of a segment: mentions / word tokens (0 for empty text).
double EntityDensity(const text::NewsSegment& segment);

}  // namespace eval
}  // namespace newslink

#endif  // NEWSLINK_EVAL_QUERY_SELECTION_H_
