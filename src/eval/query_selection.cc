#include "eval/query_selection.h"

#include "text/tokenizer.h"

namespace newslink {
namespace eval {

namespace {

size_t WordCount(const std::string& sentence) {
  size_t n = 0;
  for (const text::Token& t : text::Tokenize(sentence)) {
    if (t.is_word) ++n;
  }
  return n;
}

TestQuery MakeQuery(const text::NewsSegment& segment, size_t doc_index) {
  TestQuery q;
  q.doc_index = doc_index;
  q.sentence = segment.sentence;
  q.entity_density = EntityDensity(segment);
  q.mentions_identified = segment.mentions.size();
  for (const text::EntityMention& m : segment.mentions) {
    if (m.in_kg) ++q.mentions_matched;
  }
  return q;
}

}  // namespace

double EntityDensity(const text::NewsSegment& segment) {
  const size_t words = WordCount(segment.sentence);
  if (words == 0) return 0.0;
  return static_cast<double>(segment.mentions.size()) /
         static_cast<double>(words);
}

std::optional<TestQuery> DensestQuery(const text::SegmentedDocument& segmented,
                                      size_t doc_index) {
  const text::NewsSegment* best = nullptr;
  double best_density = 0.0;
  for (const text::NewsSegment& s : segmented.segments) {
    if (s.mentions.empty()) continue;
    const double density = EntityDensity(s);
    if (best == nullptr || density > best_density) {
      best = &s;
      best_density = density;
    }
  }
  if (best == nullptr) return std::nullopt;
  return MakeQuery(*best, doc_index);
}

std::optional<TestQuery> RandomQuery(const text::SegmentedDocument& segmented,
                                     size_t doc_index, Rng* rng) {
  std::vector<const text::NewsSegment*> eligible;
  for (const text::NewsSegment& s : segmented.segments) {
    if (WordCount(s.sentence) > 0) eligible.push_back(&s);
  }
  if (eligible.empty()) return std::nullopt;
  return MakeQuery(*eligible[rng->Uniform(eligible.size())], doc_index);
}

}  // namespace eval
}  // namespace newslink
