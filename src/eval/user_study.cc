#include "eval/user_study.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "kg/label_index.h"

namespace newslink {
namespace eval {

CaseFeatures SimulatedUserStudy::Features(const StudyCase& c) const {
  NL_CHECK(c.query_embedding != nullptr && c.result_embedding != nullptr);
  CaseFeatures f;

  std::set<kg::NodeId> q_nodes;
  for (const auto& [node, count] : c.query_embedding->node_counts) {
    q_nodes.insert(node);
  }
  std::set<kg::NodeId> all_nodes = q_nodes;
  int overlap = 0;
  for (const auto& [node, count] : c.result_embedding->node_counts) {
    if (q_nodes.contains(node)) ++overlap;
    all_nodes.insert(node);
  }
  f.overlap_nodes = overlap;
  f.total_nodes = static_cast<int>(all_nodes.size());

  // A node is "already in the text" when its normalized label occurs as a
  // substring of either (normalized) document.
  const std::string texts = kg::NormalizeLabel(
      StrCat(c.query_text, " ", c.result_text));
  int in_text = 0;
  int novel = 0;
  for (kg::NodeId v : all_nodes) {
    const std::string label = kg::NormalizeLabel(graph_->label(v));
    const bool mentioned =
        !label.empty() && texts.find(label) != std::string::npos;
    if (mentioned) {
      ++in_text;
    } else {
      ++novel;
    }
  }
  f.novel_nodes = novel;
  f.redundancy = f.total_nodes > 0
                     ? static_cast<double>(in_text) / f.total_nodes
                     : 1.0;
  return f;
}

StudyOutcome SimulatedUserStudy::Run(
    const std::vector<StudyCase>& cases) const {
  StudyOutcome outcome;
  Rng rng(seed_);
  for (int p = 0; p < participants_; ++p) {
    // Participant-specific dispositions (the jitter models prior knowledge:
    // a participant who "already knows the connection" discounts novelty).
    const bool knows_connection = rng.UniformDouble() < 0.25;
    const double redundancy_tolerance = 0.78 + 0.20 * rng.UniformDouble();
    const int overload_threshold =
        40 + static_cast<int>(rng.Uniform(40));  // 40-79 nodes

    for (const StudyCase& c : cases) {
      const CaseFeatures f = Features(c);
      const bool overloaded = f.total_nodes > overload_threshold;
      const bool redundant = f.redundancy > redundancy_tolerance;

      if (overloaded) {
        // Factor (3): too much information overwhelms.
        ++outcome.not_helpful;
      } else if (knows_connection || f.novel_nodes == 0) {
        // Factor (1): nothing new to this participant ("if participants
        // already know the connections ... the additional information does
        // not help much"). They split between dismissing it outright and
        // granting it neutral value.
        if (f.overlap_nodes == 0 || rng.Bernoulli(0.5)) {
          ++outcome.not_helpful;
        } else {
          ++outcome.neutral;
        }
      } else if (redundant) {
        // Factor (2): the extra information mostly repeats the text.
        ++outcome.neutral;
      } else {
        ++outcome.helpful;
      }
    }
  }
  return outcome;
}

}  // namespace eval
}  // namespace newslink
