#include "eval/evaluation_runner.h"

#include <algorithm>

#include "common/logging.h"
#include "text/news_segmenter.h"

namespace newslink {
namespace eval {

EvaluationRunner::EvaluationRunner(const corpus::Corpus* corpus,
                                   const corpus::CorpusSplit* split,
                                   const text::GazetteerNer* ner,
                                   const vec::FastTextModel* judge,
                                   EvalConfig config)
    : corpus_(corpus),
      split_(split),
      ner_(ner),
      judge_(judge),
      config_(config) {}

void EvaluationRunner::Prepare() {
  Rng rng(config_.seed);
  text::NewsSegmenter segmenter(ner_);

  std::vector<size_t> test_docs = split_->test;
  if (config_.max_test_queries > 0 &&
      test_docs.size() > config_.max_test_queries) {
    test_docs.resize(config_.max_test_queries);
  }

  for (size_t doc_index : test_docs) {
    const text::SegmentedDocument segmented =
        segmenter.Segment(corpus_->doc(doc_index).text);
    if (auto q = DensestQuery(segmented, doc_index)) {
      density_queries_.push_back(std::move(*q));
    }
    if (auto q = RandomQuery(segmented, doc_index, &rng)) {
      random_queries_.push_back(std::move(*q));
    }
  }

  judge_vectors_.reserve(corpus_->size());
  for (const corpus::Document& doc : corpus_->docs()) {
    judge_vectors_.push_back(judge_->EncodeText(doc.text));
  }
  if (config_.judge_center_alpha > 0.0 && !judge_vectors_.empty()) {
    vec::Vector mean(judge_vectors_[0].size(), 0.0f);
    for (const vec::Vector& v : judge_vectors_) {
      vec::AddScaled(mean, v, 1.0f);
    }
    vec::Scale(mean, 1.0f / static_cast<float>(judge_vectors_.size()));
    for (vec::Vector& v : judge_vectors_) {
      vec::AddScaled(v, mean,
                     -static_cast<float>(config_.judge_center_alpha));
      vec::NormalizeInPlace(v);
    }
  }
  prepared_ = true;
}

MetricScores EvaluationRunner::RunQuerySet(
    const baselines::SearchEngine& engine,
    const baselines::SearchRequest& base_request,
    const std::vector<TestQuery>& queries) const {
  int max_k = 1;
  for (int k : config_.sim_ks) max_k = std::max(max_k, k);
  for (int k : config_.hit_ks) max_k = std::max(max_k, k);

  MetricsAccumulator acc(config_.sim_ks, config_.hit_ks);
  for (const TestQuery& q : queries) {
    baselines::SearchRequest request = base_request;
    request.query = q.sentence;
    request.k = static_cast<size_t>(max_k);
    const baselines::SearchResponse response = engine.Search(request);
    acc.AddQuery(q.doc_index, response.hits, judge_vectors_);
  }
  return acc.Finalize();
}

EngineScores EvaluationRunner::Evaluate(
    const baselines::SearchEngine& engine,
    const baselines::SearchRequest& base_request,
    const std::string& label) const {
  NL_CHECK(prepared_) << "call Prepare() first";
  EngineScores scores;
  scores.engine = label.empty() ? engine.name() : label;
  scores.density = RunQuerySet(engine, base_request, density_queries_);
  scores.random = RunQuerySet(engine, base_request, random_queries_);
  return scores;
}

double EvaluationRunner::AverageEntityMatchingRatio() const {
  NL_CHECK(prepared_) << "call Prepare() first";
  double sum = 0.0;
  size_t n = 0;
  for (const TestQuery& q : density_queries_) {
    if (q.mentions_identified == 0) continue;
    sum += static_cast<double>(q.mentions_matched) /
           static_cast<double>(q.mentions_identified);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 1.0;
}

}  // namespace eval
}  // namespace newslink
