#include "eval/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace newslink {
namespace eval {

void MetricsAccumulator::AddQuery(
    size_t query_doc, const std::vector<baselines::SearchHit>& results,
    const std::vector<vec::Vector>& judge_vectors) {
  NL_CHECK(query_doc < judge_vectors.size());
  ++num_queries_;

  const vec::Vector& q = judge_vectors[query_doc];
  // Prefix sums of cosine similarity over the ranked results.
  std::vector<double> prefix(results.size() + 1, 0.0);
  for (size_t j = 0; j < results.size(); ++j) {
    const vec::Vector& r = judge_vectors[results[j].doc_index];
    prefix[j + 1] = prefix[j] + static_cast<double>(vec::Dot(q, r));
  }

  for (int k : sim_ks_) {
    const size_t kk = std::min<size_t>(k, results.size());
    // Average over k as in Eq. 4 (missing results contribute 0).
    sim_sums_[k] += kk > 0 ? prefix[kk] / static_cast<double>(k) : 0.0;
  }
  for (int k : hit_ks_) {
    const size_t kk = std::min<size_t>(k, results.size());
    bool hit = false;
    for (size_t j = 0; j < kk; ++j) {
      if (results[j].doc_index == query_doc) {
        hit = true;
        break;
      }
    }
    hit_sums_[k] += hit ? 1.0 : 0.0;
  }
}

MetricScores MetricsAccumulator::Finalize() const {
  MetricScores out;
  const double n = num_queries_ > 0 ? static_cast<double>(num_queries_) : 1.0;
  for (int k : sim_ks_) {
    auto it = sim_sums_.find(k);
    out.sim_at[k] = it == sim_sums_.end() ? 0.0 : it->second / n;
  }
  for (int k : hit_ks_) {
    auto it = hit_sums_.find(k);
    out.hit_at[k] = it == hit_sums_.end() ? 0.0 : it->second / n;
  }
  return out;
}

}  // namespace eval
}  // namespace newslink
