// Standard ranking metrics beyond the paper's SIM@k / HIT@k: reciprocal
// rank and (binary-relevance) NDCG@k. Used by the extended evaluation and
// handy for downstream users comparing engines on their own labels.

#ifndef NEWSLINK_EVAL_RANKING_METRICS_H_
#define NEWSLINK_EVAL_RANKING_METRICS_H_

#include <set>
#include <vector>

#include "baselines/search_engine.h"

namespace newslink {
namespace eval {

/// 1/rank of `relevant_doc` within `results` (1-indexed), 0 when absent.
double ReciprocalRank(const std::vector<baselines::SearchHit>& results,
                      size_t relevant_doc);

/// Binary-relevance DCG@k: sum of 1/log2(rank+1) over relevant hits.
double DcgAtK(const std::vector<baselines::SearchHit>& results,
              const std::set<size_t>& relevant, size_t k);

/// NDCG@k with binary relevance; 0 when `relevant` is empty.
double NdcgAtK(const std::vector<baselines::SearchHit>& results,
               const std::set<size_t>& relevant, size_t k);

}  // namespace eval
}  // namespace newslink

#endif  // NEWSLINK_EVAL_RANKING_METRICS_H_
