#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace newslink {
namespace net {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// RFC 7230 token characters (methods, header names).
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, name)) return &v;
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("Connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && EqualsIgnoreCase(*connection, "keep-alive");
  }
  return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 411:
      return "Length Required";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(HttpReasonPhrase(response.status));
  out.append("\r\n");
  if (!response.content_type.empty()) {
    out.append("Content-Type: ");
    out.append(response.content_type);
    out.append("\r\n");
  }
  out.append("Content-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\n");
  out.append(keep_alive ? "Connection: keep-alive\r\n"
                        : "Connection: close\r\n");
  for (const auto& [k, v] : response.headers) {
    out.append(k);
    out.append(": ");
    out.append(v);
    out.append("\r\n");
  }
  out.append("\r\n");
  out.append(response.body);
  return out;
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string_view message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = message;
  return state_;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view bytes) {
  // Always buffer: bytes arriving after kComplete belong to the next
  // pipelined request and are parsed after Reset().
  buffer_.append(bytes);
  if (state_ != State::kNeedMore) return state_;
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Advance() {
  if (!head_done_) {
    // Find the blank line terminating the head. Accept strict CRLFCRLF and
    // bare-LF line endings (curl always sends CRLF; tests may not).
    size_t head_end = buffer_.find("\r\n\r\n");
    size_t separator_len = 4;
    if (head_end == std::string::npos) {
      head_end = buffer_.find("\n\n");
      separator_len = 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(431, "request head exceeds limit");
      }
      return state_;
    }
    if (head_end > limits_.max_head_bytes) {
      return Fail(431, "request head exceeds limit");
    }
    const State s = ParseHead(head_end, separator_len);
    if (s == State::kError) return s;
    head_done_ = true;
  }
  if (buffer_.size() < body_expected_) {
    return state_;  // kNeedMore
  }
  request_.body = buffer_.substr(0, body_expected_);
  buffer_.erase(0, body_expected_);
  state_ = State::kComplete;
  return state_;
}

HttpRequestParser::State HttpRequestParser::ParseHead(size_t head_end,
                                                      size_t separator_len) {
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + separator_len);

  // Split into lines on LF, trimming an optional trailing CR.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= head.size()) {
    size_t nl = head.find('\n', start);
    std::string line = nl == std::string::npos
                           ? head.substr(start)
                           : head.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    Fail(400, "empty request line");
    return state_;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const std::vector<std::string> parts = SplitWhitespace(lines[0]);
  if (parts.size() != 3) {
    Fail(400, "malformed request line");
    return state_;
  }
  if (!IsToken(parts[0])) {
    Fail(400, "invalid method token");
    return state_;
  }
  if (parts[1].empty() || parts[1][0] != '/') {
    Fail(400, "request target must be origin-form");
    return state_;
  }
  if (parts[2] != "HTTP/1.1" && parts[2] != "HTTP/1.0") {
    Fail(505, "unsupported HTTP version");
    return state_;
  }
  request_.method = parts[0];
  request_.target = parts[1];
  request_.version = parts[2];

  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, "malformed header line");
      return state_;
    }
    std::string name = lines[i].substr(0, colon);
    if (!IsToken(name)) {
      Fail(400, "invalid header name");
      return state_;
    }
    std::string value(Trim(std::string_view(lines[i]).substr(colon + 1)));
    request_.headers.emplace_back(std::move(name), std::move(value));
    if (request_.headers.size() > limits_.max_headers) {
      Fail(431, "too many headers");
      return state_;
    }
  }

  // Body framing. Chunked coding is deliberately unsupported: every client
  // of this API sends sized bodies.
  const std::string* te = request_.FindHeader("Transfer-Encoding");
  if (te != nullptr) {
    Fail(501, "transfer encodings are not supported");
    return state_;
  }
  const std::string* cl = request_.FindHeader("Content-Length");
  if (cl == nullptr) {
    if (request_.method == "POST" || request_.method == "PUT") {
      Fail(411, "POST requires Content-Length");
      return state_;
    }
    body_expected_ = 0;
    return state_;
  }
  uint64_t length = 0;
  if (!ParseUint64(*cl, &length)) {
    Fail(400, "invalid Content-Length");
    return state_;
  }
  if (length > limits_.max_body_bytes) {
    Fail(413, "body exceeds limit");
    return state_;
  }
  body_expected_ = static_cast<size_t>(length);
  return state_;
}

void HttpRequestParser::Reset() {
  request_ = HttpRequest{};
  state_ = State::kNeedMore;
  head_done_ = false;
  body_expected_ = 0;
  error_status_ = 0;
  error_message_.clear();
  if (!buffer_.empty()) {
    // Pipelined bytes: immediately try to parse the next request.
    Advance();
  }
}

}  // namespace net
}  // namespace newslink
