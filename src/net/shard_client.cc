#include "net/shard_client.h"

#include <utility>

#include "common/string_util.h"
#include "net/http_client.h"
#include "net/status_http.h"

namespace newslink {
namespace net {

std::string ShardClient::address() const {
  return StrCat(host_, ":", port_);
}

Result<json::Value> ShardClient::Call(const char* path,
                                      const json::Value& body,
                                      double deadline_seconds) const {
  HttpClientOptions options;
  options.deadline_seconds = deadline_seconds;
  Result<HttpClientResponse> http = http_.Post(path, body.Dump(), options);
  Status status = Status::OK();
  json::Value parsed;
  if (!http.ok()) {
    status = http.status();
  } else {
    Result<json::Value> decoded = json::Parse(http->body);
    if (!decoded.ok()) {
      status = Status::IOError(
          StrCat("unparseable response body: ", decoded.status().message()));
    } else if (http->status != 200) {
      // The server's {"error": {"code", "message"}} body round-trips back
      // into the Status the handler returned (409 → FailedPrecondition).
      status = Status::Internal(StrCat("shard answered HTTP ", http->status));
      if (const json::Value* err = decoded->Find("error")) {
        const json::Value* code = err->Find("code");
        const json::Value* message = err->Find("message");
        if (code != nullptr && code->is_string() && message != nullptr &&
            message->is_string()) {
          status = StatusFromWire(code->AsString(), message->AsString());
        }
      }
    } else {
      parsed = std::move(*decoded);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok()) {
    healthy_ = true;
    last_error_.clear();
    return parsed;
  }
  healthy_ = false;
  last_error_ = status.ToString();
  return status;
}

Result<ShardPlanRpcResponse> ShardClient::Plan(const ShardQuery& query,
                                               double deadline_seconds) const {
  ShardPlanRpcRequest request;
  request.shard = shard_;
  request.deadline_seconds = deadline_seconds;
  request.query = query;
  NL_ASSIGN_OR_RETURN(
      json::Value body,
      Call("/v1/shard/plan", ShardPlanRequestToJson(request),
           deadline_seconds));
  Result<ShardPlanRpcResponse> decoded = ShardPlanResponseFromJson(body);
  std::lock_guard<std::mutex> lock(mu_);
  if (!decoded.ok()) {
    healthy_ = false;
    last_error_ = decoded.status().ToString();
  } else {
    epoch_ = decoded->plan.epoch;
  }
  return decoded;
}

Result<ShardSearchRpcResponse> ShardClient::Search(
    const ShardQuery& query, const ShardGlobalStats& global,
    uint64_t expected_epoch, double deadline_seconds) const {
  ShardSearchRpcRequest request;
  request.shard = shard_;
  request.expected_epoch = expected_epoch;
  request.deadline_seconds = deadline_seconds;
  request.query = query;
  request.global = global;
  NL_ASSIGN_OR_RETURN(
      json::Value body,
      Call("/v1/shard/search", ShardSearchRequestToJson(request),
           deadline_seconds));
  Result<ShardSearchRpcResponse> decoded = ShardSearchResponseFromJson(body);
  std::lock_guard<std::mutex> lock(mu_);
  if (!decoded.ok()) {
    healthy_ = false;
    last_error_ = decoded.status().ToString();
  } else {
    epoch_ = decoded->result.epoch;
  }
  return decoded;
}

json::Value ShardClient::HealthJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value out = json::Value::Object();
  out.Set("shard", json::Value::Uint(static_cast<uint64_t>(shard_)));
  out.Set("address", json::Value::Str(StrCat(host_, ":", port_)));
  out.Set("healthy", json::Value::Bool(healthy_));
  out.Set("epoch", json::Value::Uint(epoch_));
  out.Set("connection_reuses", json::Value::Uint(http_.connection_reuses()));
  out.Set("connection_reconnects",
          json::Value::Uint(http_.connection_reconnects()));
  if (!last_error_.empty()) {
    out.Set("last_error", json::Value::Str(last_error_));
  }
  return out;
}

}  // namespace net
}  // namespace newslink
