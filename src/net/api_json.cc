#include "net/api_json.h"

#include <cmath>
#include <utility>

#include "common/string_util.h"

namespace newslink {
namespace net {

namespace {

/// Field must be a number >= 0 that is exactly an integer.
Result<size_t> AsSize(const json::Value& v, std::string_view field) {
  if (v.type() != json::Value::Type::kNumber) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a number"));
  }
  const double d = v.AsDouble();
  if (!(d >= 0) || d != std::floor(d)) {
    return Status::InvalidArgument(
        StrCat("\"", field, "\" must be a non-negative integer"));
  }
  return static_cast<size_t>(d);
}

Result<bool> AsBoolStrict(const json::Value& v, std::string_view field) {
  if (v.type() != json::Value::Type::kBool) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a boolean"));
  }
  return v.AsBool();
}

Result<std::string> AsStringStrict(const json::Value& v,
                                   std::string_view field) {
  if (v.type() != json::Value::Type::kString) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a string"));
  }
  return v.AsString();
}

}  // namespace

Result<baselines::SearchRequest> SearchRequestFromJson(
    const json::Value& value) {
  if (value.type() != json::Value::Type::kObject) {
    return Status::InvalidArgument("search request must be a JSON object");
  }
  baselines::SearchRequest request;
  bool have_query = false;
  for (const auto& [key, field] : value.members()) {
    if (key == "query") {
      NL_ASSIGN_OR_RETURN(request.query, AsStringStrict(field, key));
      have_query = true;
    } else if (key == "k") {
      NL_ASSIGN_OR_RETURN(request.k, AsSize(field, key));
    } else if (key == "beta") {
      if (field.type() != json::Value::Type::kNumber) {
        return Status::InvalidArgument("\"beta\" must be a number");
      }
      request.beta = field.AsDouble();
    } else if (key == "rerank_depth") {
      NL_ASSIGN_OR_RETURN(size_t depth, AsSize(field, key));
      request.rerank_depth = depth;
    } else if (key == "exhaustive_fusion") {
      NL_ASSIGN_OR_RETURN(bool flag, AsBoolStrict(field, key));
      request.exhaustive_fusion = flag;
    } else if (key == "explain") {
      NL_ASSIGN_OR_RETURN(request.explain, AsBoolStrict(field, key));
    } else if (key == "max_paths") {
      NL_ASSIGN_OR_RETURN(request.max_paths_per_result, AsSize(field, key));
    } else if (key == "trace") {
      NL_ASSIGN_OR_RETURN(request.trace, AsBoolStrict(field, key));
    } else if (key == "deadline_seconds") {
      if (field.type() != json::Value::Type::kNumber ||
          !(field.AsDouble() > 0)) {
        return Status::InvalidArgument(
            "\"deadline_seconds\" must be a positive number");
      }
      request.deadline_seconds = field.AsDouble();
    } else {
      return Status::InvalidArgument(
          StrCat("unknown search request field: \"", key, "\""));
    }
  }
  if (!have_query || request.query.empty()) {
    return Status::InvalidArgument("\"query\" is required and must be non-empty");
  }
  if (request.k == 0) {
    return Status::InvalidArgument("\"k\" must be at least 1");
  }
  return request;
}

json::Value TraceSpanToJson(const TraceSpan& span) {
  json::Value out = json::Value::Object();
  out.Set("name", json::Value::Str(span.name));
  out.Set("start_ms", json::Value::Number(span.start_seconds * 1e3));
  out.Set("dur_ms", json::Value::Number(span.duration_seconds * 1e3));
  if (!span.notes.empty()) {
    json::Value notes = json::Value::Object();
    for (const auto& [key, note] : span.notes) {
      notes.Set(key, json::Value::Str(note));
    }
    out.Set("notes", std::move(notes));
  }
  if (!span.children.empty()) {
    json::Value children = json::Value::Array();
    for (const TraceSpan& child : span.children) {
      children.Append(TraceSpanToJson(child));
    }
    out.Set("children", std::move(children));
  }
  return out;
}

json::Value SearchResponseToJson(const baselines::SearchResponse& response,
                                 const corpus::Corpus* corpus,
                                 const kg::KnowledgeGraph* graph) {
  json::Value out = json::Value::Object();
  json::Value hits = json::Value::Array();
  for (const baselines::SearchHit& hit : response.hits) {
    json::Value h = json::Value::Object();
    h.Set("doc_index", json::Value::Uint(hit.doc_index));
    h.Set("score", json::Value::Number(hit.score));
    if (corpus != nullptr && hit.doc_index < corpus->size()) {
      const corpus::Document& doc = corpus->doc(hit.doc_index);
      h.Set("doc_id", json::Value::Str(doc.id));
      h.Set("title", json::Value::Str(doc.title));
    }
    if (!hit.paths.empty()) {
      json::Value paths = json::Value::Array();
      for (const embed::RelationshipPath& path : hit.paths) {
        json::Value p = json::Value::Object();
        p.Set("length", json::Value::Uint(path.length()));
        if (graph != nullptr) {
          p.Set("rendered", json::Value::Str(path.Render(*graph)));
        }
        paths.Append(std::move(p));
      }
      h.Set("paths", std::move(paths));
    }
    hits.Append(std::move(h));
  }
  out.Set("hits", std::move(hits));
  out.Set("epoch", json::Value::Uint(response.epoch));
  out.Set("snapshot_docs", json::Value::Uint(response.snapshot_docs));
  if (response.deadline_exceeded) {
    out.Set("deadline_exceeded", json::Value::Bool(true));
  }
  json::Value timings = json::Value::Object();
  for (const auto& [bucket, seconds] : response.timings.buckets()) {
    timings.Set(StrCat(bucket, "_ms"), json::Value::Number(seconds * 1e3));
  }
  out.Set("timings", std::move(timings));
  if (!response.trace.empty()) {
    out.Set("trace", TraceSpanToJson(response.trace));
  }
  return out;
}

Result<corpus::Document> DocumentFromJson(const json::Value& value) {
  if (value.type() != json::Value::Type::kObject) {
    return Status::InvalidArgument("document must be a JSON object");
  }
  corpus::Document doc;
  for (const auto& [key, field] : value.members()) {
    if (key == "id") {
      NL_ASSIGN_OR_RETURN(doc.id, AsStringStrict(field, key));
    } else if (key == "title") {
      NL_ASSIGN_OR_RETURN(doc.title, AsStringStrict(field, key));
    } else if (key == "text") {
      NL_ASSIGN_OR_RETURN(doc.text, AsStringStrict(field, key));
    } else if (key == "story_id") {
      NL_ASSIGN_OR_RETURN(size_t story, AsSize(field, key));
      doc.story_id = static_cast<uint32_t>(story);
    } else {
      return Status::InvalidArgument(
          StrCat("unknown document field: \"", key, "\""));
    }
  }
  if (doc.text.empty()) {
    return Status::InvalidArgument("\"text\" is required and must be non-empty");
  }
  return doc;
}

}  // namespace net
}  // namespace newslink
