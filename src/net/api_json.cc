#include "net/api_json.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/string_util.h"

namespace newslink {
namespace net {

namespace {

/// Field must be a number >= 0 that is exactly an integer.
Result<size_t> AsSize(const json::Value& v, std::string_view field) {
  if (v.type() != json::Value::Type::kNumber) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a number"));
  }
  const double d = v.AsDouble();
  if (!(d >= 0) || d != std::floor(d)) {
    return Status::InvalidArgument(
        StrCat("\"", field, "\" must be a non-negative integer"));
  }
  return static_cast<size_t>(d);
}

Result<bool> AsBoolStrict(const json::Value& v, std::string_view field) {
  if (v.type() != json::Value::Type::kBool) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a boolean"));
  }
  return v.AsBool();
}

Result<std::string> AsStringStrict(const json::Value& v,
                                   std::string_view field) {
  if (v.type() != json::Value::Type::kString) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a string"));
  }
  return v.AsString();
}

/// The optional public-envelope version stamp: additive versioning —
/// absence is always accepted, a mismatch is FailedPrecondition (409),
/// mirroring the shard RPC handshake.
Status CheckEnvelopeVersion(const json::Value& field) {
  NL_ASSIGN_OR_RETURN(const size_t version, AsSize(field, "api_version"));
  if (static_cast<uint64_t>(version) != kApiVersion) {
    return Status::FailedPrecondition(
        StrCat("api_version mismatch: client speaks ", version,
               ", this server speaks ", kApiVersion));
  }
  return Status::OK();
}

/// Epoch-milliseconds wire value: a non-negative integer that JSON's
/// double numbers carry exactly (at most 2^53 — five orders of magnitude
/// past any real publication time).
Result<int64_t> AsEpochMs(const json::Value& v, std::string_view field) {
  if (v.type() != json::Value::Type::kNumber) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a number"));
  }
  const double d = v.AsDouble();
  if (!(d >= 0) || d != std::floor(d) || d > 9007199254740992.0) {
    return Status::InvalidArgument(
        StrCat("\"", field,
               "\" must be a non-negative integer epoch-milliseconds value "
               "(at most 2^53)"));
  }
  return static_cast<int64_t>(d);
}

/// {"after_ms"?: int, "before_ms"?: int} — half-open [after, before);
/// either bound may be omitted (0 / unbounded).
Result<baselines::TimeRange> TimeRangeFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("\"time_range\" must be a JSON object");
  }
  baselines::TimeRange range;
  for (const auto& [key, field] : value.members()) {
    if (key == "after_ms") {
      NL_ASSIGN_OR_RETURN(range.after_ms, AsEpochMs(field, key));
    } else if (key == "before_ms") {
      NL_ASSIGN_OR_RETURN(range.before_ms, AsEpochMs(field, key));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown time_range field: \"", key, "\""));
    }
  }
  if (range.after_ms >= range.before_ms) {
    return Status::InvalidArgument(
        "\"time_range\" must satisfy after_ms < before_ms (the window is "
        "half-open [after_ms, before_ms))");
  }
  return range;
}

/// The grouped "ranking" object of the current request shape.
Status RankingFromJson(const json::Value& value,
                       baselines::SearchRequest* request) {
  if (!value.is_object()) {
    return Status::InvalidArgument("\"ranking\" must be a JSON object");
  }
  for (const auto& [key, field] : value.members()) {
    if (key == "beta") {
      if (field.type() != json::Value::Type::kNumber) {
        return Status::InvalidArgument("\"ranking.beta\" must be a number");
      }
      request->beta = field.AsDouble();
    } else if (key == "rerank_depth") {
      NL_ASSIGN_OR_RETURN(const size_t depth, AsSize(field, key));
      request->rerank_depth = depth;
    } else if (key == "exhaustive") {
      NL_ASSIGN_OR_RETURN(const bool flag, AsBoolStrict(field, key));
      request->exhaustive_fusion = flag;
    } else if (key == "recency_half_life_s") {
      if (field.type() != json::Value::Type::kNumber ||
          !(field.AsDouble() >= 0)) {
        return Status::InvalidArgument(
            "\"ranking.recency_half_life_s\" must be a non-negative number");
      }
      request->recency_half_life_seconds = field.AsDouble();
    } else {
      return Status::InvalidArgument(
          StrCat("unknown ranking field: \"", key, "\""));
    }
  }
  return Status::OK();
}

/// The "filter" object (currently just "time_range").
Status FilterFromJson(const json::Value& value,
                      std::optional<baselines::TimeRange>* time_range) {
  if (!value.is_object()) {
    return Status::InvalidArgument("\"filter\" must be a JSON object");
  }
  for (const auto& [key, field] : value.members()) {
    if (key == "time_range") {
      NL_ASSIGN_OR_RETURN(const baselines::TimeRange range,
                          TimeRangeFromJson(field));
      *time_range = range;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown filter field: \"", key, "\""));
    }
  }
  return Status::OK();
}

}  // namespace

Result<json::Value> DecodeEnvelope(std::string_view body) {
  NL_ASSIGN_OR_RETURN(json::Value value, json::Parse(body));
  if (!value.is_object() && !value.is_array()) {
    return Status::InvalidArgument(
        "request body must be a JSON object or array");
  }
  return value;
}

Result<SearchEnvelope> DecodeSearchEnvelope(std::string_view body,
                                            size_t max_batch) {
  NL_ASSIGN_OR_RETURN(const json::Value value, DecodeEnvelope(body));
  SearchEnvelope envelope;
  envelope.batched = value.is_array();
  if (envelope.batched) {
    if (value.size() == 0) {
      return Status::InvalidArgument(
          "batch must contain at least one request");
    }
    if (value.size() > max_batch) {
      return Status::InvalidArgument(StrCat(
          "batch of ", value.size(), " exceeds limit of ", max_batch));
    }
    envelope.requests.reserve(value.size());
    for (const json::Value& item : value.items()) {
      NL_ASSIGN_OR_RETURN(baselines::SearchRequest request,
                          SearchRequestFromJson(item));
      envelope.requests.push_back(std::move(request));
    }
  } else {
    NL_ASSIGN_OR_RETURN(baselines::SearchRequest request,
                        SearchRequestFromJson(value));
    envelope.requests.push_back(std::move(request));
  }
  return envelope;
}

Result<baselines::SearchRequest> SearchRequestFromJson(
    const json::Value& value) {
  if (value.type() != json::Value::Type::kObject) {
    return Status::InvalidArgument("search request must be a JSON object");
  }
  baselines::SearchRequest request;
  bool have_query = false;
  bool have_ranking = false;
  // First deprecated flat alias seen — a request mixing the legacy flat
  // ranking fields with a "ranking" object is ambiguous and rejected.
  const char* legacy_alias = nullptr;
  for (const auto& [key, field] : value.members()) {
    if (key == "query") {
      NL_ASSIGN_OR_RETURN(request.query, AsStringStrict(field, key));
      have_query = true;
    } else if (key == "k") {
      NL_ASSIGN_OR_RETURN(request.k, AsSize(field, key));
    } else if (key == "ranking") {
      NL_RETURN_IF_ERROR(RankingFromJson(field, &request));
      have_ranking = true;
    } else if (key == "filter") {
      NL_RETURN_IF_ERROR(FilterFromJson(field, &request.time_range));
    } else if (key == "beta") {
      // DEPRECATED alias of "ranking.beta".
      if (field.type() != json::Value::Type::kNumber) {
        return Status::InvalidArgument("\"beta\" must be a number");
      }
      request.beta = field.AsDouble();
      legacy_alias = "beta";
    } else if (key == "rerank_depth") {
      // DEPRECATED alias of "ranking.rerank_depth".
      NL_ASSIGN_OR_RETURN(size_t depth, AsSize(field, key));
      request.rerank_depth = depth;
      legacy_alias = "rerank_depth";
    } else if (key == "exhaustive_fusion") {
      // DEPRECATED alias of "ranking.exhaustive".
      NL_ASSIGN_OR_RETURN(bool flag, AsBoolStrict(field, key));
      request.exhaustive_fusion = flag;
      legacy_alias = "exhaustive_fusion";
    } else if (key == "explain") {
      NL_ASSIGN_OR_RETURN(request.explain, AsBoolStrict(field, key));
    } else if (key == "max_paths") {
      NL_ASSIGN_OR_RETURN(request.max_paths_per_result, AsSize(field, key));
    } else if (key == "trace") {
      NL_ASSIGN_OR_RETURN(request.trace, AsBoolStrict(field, key));
    } else if (key == "deadline_seconds") {
      if (field.type() != json::Value::Type::kNumber ||
          !(field.AsDouble() > 0)) {
        return Status::InvalidArgument(
            "\"deadline_seconds\" must be a positive number");
      }
      request.deadline_seconds = field.AsDouble();
    } else if (key == "api_version") {
      NL_RETURN_IF_ERROR(CheckEnvelopeVersion(field));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown search request field: \"", key, "\""));
    }
  }
  if (have_ranking && legacy_alias != nullptr) {
    return Status::InvalidArgument(
        StrCat("\"", legacy_alias,
               "\" is a deprecated alias of the \"ranking\" object; a "
               "request must use one shape, not both"));
  }
  if (!have_query || request.query.empty()) {
    return Status::InvalidArgument("\"query\" is required and must be non-empty");
  }
  if (request.k == 0) {
    return Status::InvalidArgument("\"k\" must be at least 1");
  }
  return request;
}

json::Value TraceSpanToJson(const TraceSpan& span) {
  json::Value out = json::Value::Object();
  out.Set("name", json::Value::Str(span.name));
  out.Set("start_ms", json::Value::Number(span.start_seconds * 1e3));
  out.Set("dur_ms", json::Value::Number(span.duration_seconds * 1e3));
  if (!span.notes.empty()) {
    json::Value notes = json::Value::Object();
    for (const auto& [key, note] : span.notes) {
      notes.Set(key, json::Value::Str(note));
    }
    out.Set("notes", std::move(notes));
  }
  if (!span.children.empty()) {
    json::Value children = json::Value::Array();
    for (const TraceSpan& child : span.children) {
      children.Append(TraceSpanToJson(child));
    }
    out.Set("children", std::move(children));
  }
  return out;
}

json::Value SearchResponseToJson(const baselines::SearchResponse& response,
                                 const corpus::Corpus* corpus,
                                 const kg::KnowledgeGraph* graph) {
  json::Value out = json::Value::Object();
  json::Value hits = json::Value::Array();
  for (const baselines::SearchHit& hit : response.hits) {
    json::Value h = json::Value::Object();
    h.Set("doc_index", json::Value::Uint(hit.doc_index));
    h.Set("score", json::Value::Number(hit.score));
    if (corpus != nullptr && hit.doc_index < corpus->size()) {
      const corpus::Document& doc = corpus->doc(hit.doc_index);
      h.Set("doc_id", json::Value::Str(doc.id));
      h.Set("title", json::Value::Str(doc.title));
    }
    if (!hit.paths.empty()) {
      json::Value paths = json::Value::Array();
      for (const embed::RelationshipPath& path : hit.paths) {
        json::Value p = json::Value::Object();
        p.Set("length", json::Value::Uint(path.length()));
        if (graph != nullptr) {
          p.Set("rendered", json::Value::Str(path.Render(*graph)));
        }
        paths.Append(std::move(p));
      }
      h.Set("paths", std::move(paths));
    }
    hits.Append(std::move(h));
  }
  out.Set("hits", std::move(hits));
  out.Set("epoch", json::Value::Uint(response.epoch));
  out.Set("snapshot_docs", json::Value::Uint(response.snapshot_docs));
  if (response.deadline_exceeded) {
    out.Set("deadline_exceeded", json::Value::Bool(true));
  }
  // Scatter-gather block: additive — emitted only for sharded responses,
  // so single-engine consumers keep seeing the exact pre-sharding shape.
  if (response.shards_total > 0) {
    out.Set("shards_total", json::Value::Uint(response.shards_total));
    out.Set("shards_answered", json::Value::Uint(response.shards_answered));
    out.Set("degraded", json::Value::Bool(response.degraded));
  }
  json::Value timings = json::Value::Object();
  for (const auto& [bucket, seconds] : response.timings.buckets()) {
    timings.Set(StrCat(bucket, "_ms"), json::Value::Number(seconds * 1e3));
  }
  out.Set("timings", std::move(timings));
  if (!response.trace.empty()) {
    out.Set("trace", TraceSpanToJson(response.trace));
  }
  return out;
}

Result<corpus::Document> DocumentFromJson(const json::Value& value) {
  if (value.type() != json::Value::Type::kObject) {
    return Status::InvalidArgument("document must be a JSON object");
  }
  corpus::Document doc;
  for (const auto& [key, field] : value.members()) {
    if (key == "id") {
      NL_ASSIGN_OR_RETURN(doc.id, AsStringStrict(field, key));
    } else if (key == "title") {
      NL_ASSIGN_OR_RETURN(doc.title, AsStringStrict(field, key));
    } else if (key == "text") {
      NL_ASSIGN_OR_RETURN(doc.text, AsStringStrict(field, key));
    } else if (key == "story_id") {
      NL_ASSIGN_OR_RETURN(size_t story, AsSize(field, key));
      doc.story_id = static_cast<uint32_t>(story);
    } else if (key == "timestamp_ms") {
      NL_ASSIGN_OR_RETURN(doc.timestamp_ms, AsEpochMs(field, key));
    } else if (key == "api_version") {
      NL_RETURN_IF_ERROR(CheckEnvelopeVersion(field));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown document field: \"", key, "\""));
    }
  }
  if (doc.text.empty()) {
    return Status::InvalidArgument("\"text\" is required and must be non-empty");
  }
  return doc;
}

// --- Explore codecs (DESIGN.md Sec. 13) ---------------------------------

Result<ExploreRpcRequest> ExploreRequestFromJson(const json::Value& value) {
  if (value.type() != json::Value::Type::kObject) {
    return Status::InvalidArgument("explore request must be a JSON object");
  }
  ExploreRpcRequest request;
  for (const auto& [key, field] : value.members()) {
    if (key == "query") {
      NL_ASSIGN_OR_RETURN(request.query, AsStringStrict(field, key));
    } else if (key == "k") {
      NL_ASSIGN_OR_RETURN(request.k, AsSize(field, key));
    } else if (key == "beta") {
      if (field.type() != json::Value::Type::kNumber) {
        return Status::InvalidArgument("\"beta\" must be a number");
      }
      request.beta = field.AsDouble();
    } else if (key == "deadline_seconds") {
      if (field.type() != json::Value::Type::kNumber ||
          !(field.AsDouble() > 0)) {
        return Status::InvalidArgument(
            "\"deadline_seconds\" must be a positive number");
      }
      request.deadline_seconds = field.AsDouble();
    } else if (key == "filter") {
      NL_RETURN_IF_ERROR(FilterFromJson(field, &request.time_range));
    } else if (key == "session") {
      NL_ASSIGN_OR_RETURN(request.session, AsStringStrict(field, key));
    } else if (key == "drill") {
      NL_ASSIGN_OR_RETURN(const size_t node, AsSize(field, key));
      if (node >= kg::kInvalidNode) {
        return Status::InvalidArgument("\"drill\" is not a valid node id");
      }
      request.drill = static_cast<kg::NodeId>(node);
      request.has_drill = true;
    } else if (key == "up") {
      NL_ASSIGN_OR_RETURN(request.up, AsBoolStrict(field, key));
    } else if (key == "api_version") {
      NL_RETURN_IF_ERROR(CheckEnvelopeVersion(field));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown explore request field: \"", key, "\""));
    }
  }
  const bool starts = !request.query.empty();
  const bool navigates = !request.session.empty();
  if (starts == navigates) {
    return Status::InvalidArgument(
        "explore request needs exactly one of \"query\" or \"session\"");
  }
  if ((request.has_drill || request.up) && !navigates) {
    return Status::InvalidArgument(
        "\"drill\" and \"up\" require a \"session\"");
  }
  if (request.has_drill && request.up) {
    return Status::InvalidArgument(
        "\"drill\" and \"up\" are mutually exclusive");
  }
  return request;
}

json::Value ExploreResultToJson(const ExploreResult& result,
                                const corpus::Corpus* corpus,
                                const kg::KnowledgeGraph* graph) {
  json::Value out = json::Value::Object();
  out.Set("session", json::Value::Str(result.session_id));
  out.Set("epoch", json::Value::Uint(result.epoch));
  out.Set("snapshot_docs", json::Value::Uint(result.snapshot_docs));
  out.Set("total_hits", json::Value::Uint(result.total_hits));
  json::Value scope = json::Value::Array();
  for (const kg::NodeId node : result.scope) {
    json::Value s = json::Value::Object();
    s.Set("node", json::Value::Uint(node));
    if (graph != nullptr && node < graph->num_nodes()) {
      s.Set("label", json::Value::Str(graph->label(node)));
    }
    scope.Append(std::move(s));
  }
  out.Set("scope", std::move(scope));
  json::Value buckets = json::Value::Array();
  for (const ExploreBucket& bucket : result.buckets) {
    json::Value b = json::Value::Object();
    if (bucket.other()) {
      b.Set("other", json::Value::Bool(true));
    } else {
      b.Set("entity", json::Value::Uint(bucket.node));
      if (graph != nullptr && bucket.node < graph->num_nodes()) {
        b.Set("label", json::Value::Str(graph->label(bucket.node)));
        b.Set("entity_type", json::Value::Str(kg::EntityTypeName(
                                 graph->type(bucket.node))));
      }
    }
    b.Set("doc_count", json::Value::Uint(bucket.doc_count));
    b.Set("score_mass", json::Value::Number(bucket.score_mass));
    json::Value top = json::Value::Array();
    for (const ExploreHit& hit : bucket.top_hits) {
      json::Value h = json::Value::Object();
      h.Set("doc_index", json::Value::Uint(hit.doc_index));
      h.Set("score", json::Value::Number(hit.score));
      if (corpus != nullptr && hit.doc_index < corpus->size()) {
        const corpus::Document& doc = corpus->doc(hit.doc_index);
        h.Set("doc_id", json::Value::Str(doc.id));
        h.Set("title", json::Value::Str(doc.title));
      }
      top.Append(std::move(h));
    }
    b.Set("top_docs", std::move(top));
    buckets.Append(std::move(b));
  }
  out.Set("buckets", std::move(buckets));
  if (result.deadline_exceeded) {
    out.Set("deadline_exceeded", json::Value::Bool(true));
  }
  return out;
}

// --- Shard RPC codecs (versioned) ---------------------------------------

namespace {

/// Field must be a number that is exactly a non-negative integer (u64).
Result<uint64_t> AsU64(const json::Value& v, std::string_view field) {
  NL_ASSIGN_OR_RETURN(const size_t u, AsSize(v, field));
  return static_cast<uint64_t>(u);
}

Result<double> AsNumberStrict(const json::Value& v, std::string_view field) {
  if (v.type() != json::Value::Type::kNumber) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be a number"));
  }
  return v.AsDouble();
}

json::Value U64VectorToJson(const std::vector<uint64_t>& values) {
  json::Value out = json::Value::Array();
  for (const uint64_t v : values) out.Append(json::Value::Uint(v));
  return out;
}

json::Value U32VectorToJson(const std::vector<uint32_t>& values) {
  json::Value out = json::Value::Array();
  for (const uint32_t v : values) out.Append(json::Value::Uint(v));
  return out;
}

Result<std::vector<uint64_t>> U64VectorFromJson(const json::Value& v,
                                                std::string_view field) {
  if (!v.is_array()) {
    return Status::InvalidArgument(StrCat("\"", field, "\" must be an array"));
  }
  std::vector<uint64_t> out;
  out.reserve(v.size());
  for (const json::Value& item : v.items()) {
    NL_ASSIGN_OR_RETURN(const uint64_t value, AsU64(item, field));
    out.push_back(value);
  }
  return out;
}

Result<std::vector<uint32_t>> U32VectorFromJson(const json::Value& v,
                                                std::string_view field) {
  NL_ASSIGN_OR_RETURN(const std::vector<uint64_t> wide,
                      U64VectorFromJson(v, field));
  std::vector<uint32_t> out;
  out.reserve(wide.size());
  for (const uint64_t value : wide) {
    if (value > UINT32_MAX) {
      return Status::InvalidArgument(
          StrCat("\"", field, "\" entry exceeds 32 bits"));
    }
    out.push_back(static_cast<uint32_t>(value));
  }
  return out;
}

/// The version handshake: every shard message leads with api_version, and
/// both sides reject a peer speaking another version with
/// FailedPrecondition — mapped to HTTP 409 — so rolling upgrades fail
/// loudly at the first RPC instead of silently merging wrong numbers.
Status CheckApiVersion(bool seen, uint64_t version) {
  if (!seen) {
    return Status::FailedPrecondition(
        "shard message carries no api_version (peer predates the "
        "versioned shard RPC)");
  }
  if (version != kShardApiVersion) {
    return Status::FailedPrecondition(
        StrCat("shard api_version mismatch: peer speaks ", version,
               ", this binary speaks ", kShardApiVersion));
  }
  return Status::OK();
}

json::Value ShardQueryToJson(const ShardQuery& query) {
  json::Value out = json::Value::Object();
  json::Value stems = json::Value::Array();
  for (const auto& [stem, qtf] : query.text_stems) {
    json::Value pair = json::Value::Array();
    pair.Append(json::Value::Str(stem));
    pair.Append(json::Value::Uint(qtf));
    stems.Append(std::move(pair));
  }
  out.Set("text_stems", std::move(stems));
  json::Value nodes = json::Value::Array();
  for (const auto& [node, weight] : query.node_terms) {
    json::Value pair = json::Value::Array();
    pair.Append(json::Value::Uint(node));
    pair.Append(json::Value::Uint(weight));
    nodes.Append(std::move(pair));
  }
  out.Set("node_terms", std::move(nodes));
  out.Set("use_bow", json::Value::Bool(query.use_bow));
  out.Set("use_bon", json::Value::Bool(query.use_bon));
  out.Set("kprime", json::Value::Uint(query.kprime));
  out.Set("exhaustive", json::Value::Bool(query.exhaustive));
  // Time fields (v2). Bounds ride only when real: JSON numbers are
  // doubles, so "unbounded" travels as absence, not as INT64_MAX. An
  // infinite half-life decays by exactly 1.0 everywhere, so it travels as
  // "no decay" — same scores, and JSON cannot carry infinities anyway.
  if (query.has_time_range) {
    out.Set("has_time_range", json::Value::Bool(true));
    if (query.after_ms > 0) {
      out.Set("after_ms",
              json::Value::Uint(static_cast<uint64_t>(query.after_ms)));
    }
    if (query.before_ms != std::numeric_limits<int64_t>::max()) {
      out.Set("before_ms",
              json::Value::Uint(static_cast<uint64_t>(query.before_ms)));
    }
  }
  if (query.recency_half_life_s > 0 &&
      std::isfinite(query.recency_half_life_s)) {
    out.Set("recency_half_life_s",
            json::Value::Number(query.recency_half_life_s));
    out.Set("now_ms", json::Value::Uint(static_cast<uint64_t>(query.now_ms)));
  }
  return out;
}

Result<ShardQuery> ShardQueryFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("\"query\" must be a JSON object");
  }
  ShardQuery query;
  for (const auto& [key, field] : value.members()) {
    if (key == "text_stems") {
      if (!field.is_array()) {
        return Status::InvalidArgument("\"text_stems\" must be an array");
      }
      for (const json::Value& item : field.items()) {
        if (!item.is_array() || item.size() != 2) {
          return Status::InvalidArgument(
              "\"text_stems\" entries must be [stem, count] pairs");
        }
        NL_ASSIGN_OR_RETURN(std::string stem,
                            AsStringStrict(item.at(0), key));
        NL_ASSIGN_OR_RETURN(const uint64_t qtf, AsU64(item.at(1), key));
        query.text_stems.push_back(
            {std::move(stem), static_cast<uint32_t>(qtf)});
      }
    } else if (key == "node_terms") {
      if (!field.is_array()) {
        return Status::InvalidArgument("\"node_terms\" must be an array");
      }
      for (const json::Value& item : field.items()) {
        if (!item.is_array() || item.size() != 2) {
          return Status::InvalidArgument(
              "\"node_terms\" entries must be [node, weight] pairs");
        }
        NL_ASSIGN_OR_RETURN(const uint64_t node, AsU64(item.at(0), key));
        NL_ASSIGN_OR_RETURN(const uint64_t weight, AsU64(item.at(1), key));
        query.node_terms.push_back({static_cast<uint32_t>(node),
                                    static_cast<uint32_t>(weight)});
      }
    } else if (key == "use_bow") {
      NL_ASSIGN_OR_RETURN(query.use_bow, AsBoolStrict(field, key));
    } else if (key == "use_bon") {
      NL_ASSIGN_OR_RETURN(query.use_bon, AsBoolStrict(field, key));
    } else if (key == "kprime") {
      NL_ASSIGN_OR_RETURN(query.kprime, AsU64(field, key));
    } else if (key == "exhaustive") {
      NL_ASSIGN_OR_RETURN(query.exhaustive, AsBoolStrict(field, key));
    } else if (key == "has_time_range") {
      NL_ASSIGN_OR_RETURN(query.has_time_range, AsBoolStrict(field, key));
    } else if (key == "after_ms") {
      NL_ASSIGN_OR_RETURN(query.after_ms, AsEpochMs(field, key));
    } else if (key == "before_ms") {
      NL_ASSIGN_OR_RETURN(query.before_ms, AsEpochMs(field, key));
    } else if (key == "recency_half_life_s") {
      NL_ASSIGN_OR_RETURN(const double half_life,
                          AsNumberStrict(field, key));
      if (!(half_life >= 0)) {
        return Status::InvalidArgument(
            "\"recency_half_life_s\" must be a non-negative number");
      }
      query.recency_half_life_s = half_life;
    } else if (key == "now_ms") {
      NL_ASSIGN_OR_RETURN(query.now_ms, AsEpochMs(field, key));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown shard query field: \"", key, "\""));
    }
  }
  return query;
}

/// The statistics block shared by plan responses and search requests
/// (field names identical; only the wrapper differs).
template <typename Stats>
void StatsToJson(const Stats& stats, json::Value* out) {
  out->Set("num_docs", json::Value::Uint(stats.num_docs));
  out->Set("text_total_length", json::Value::Uint(stats.text_total_length));
  out->Set("node_total_length", json::Value::Uint(stats.node_total_length));
  out->Set("text_min_doc_length",
           json::Value::Uint(stats.text_min_doc_length));
  out->Set("node_min_doc_length",
           json::Value::Uint(stats.node_min_doc_length));
  out->Set("text_df", U64VectorToJson(stats.text_df));
  out->Set("node_df", U64VectorToJson(stats.node_df));
  out->Set("text_max_tf", U32VectorToJson(stats.text_max_tf));
  out->Set("node_max_tf", U32VectorToJson(stats.node_max_tf));
  out->Set("has_timestamps", json::Value::Bool(stats.has_timestamps));
}

/// Decode one statistics field into `stats`; true when `key` was one.
template <typename Stats>
Result<bool> StatsFieldFromJson(std::string_view key,
                                const json::Value& field, Stats* stats) {
  if (key == "num_docs") {
    NL_ASSIGN_OR_RETURN(stats->num_docs, AsU64(field, key));
  } else if (key == "text_total_length") {
    NL_ASSIGN_OR_RETURN(stats->text_total_length, AsU64(field, key));
  } else if (key == "node_total_length") {
    NL_ASSIGN_OR_RETURN(stats->node_total_length, AsU64(field, key));
  } else if (key == "text_min_doc_length") {
    NL_ASSIGN_OR_RETURN(const uint64_t v, AsU64(field, key));
    stats->text_min_doc_length = static_cast<uint32_t>(v);
  } else if (key == "node_min_doc_length") {
    NL_ASSIGN_OR_RETURN(const uint64_t v, AsU64(field, key));
    stats->node_min_doc_length = static_cast<uint32_t>(v);
  } else if (key == "text_df") {
    NL_ASSIGN_OR_RETURN(stats->text_df, U64VectorFromJson(field, key));
  } else if (key == "node_df") {
    NL_ASSIGN_OR_RETURN(stats->node_df, U64VectorFromJson(field, key));
  } else if (key == "text_max_tf") {
    NL_ASSIGN_OR_RETURN(stats->text_max_tf, U32VectorFromJson(field, key));
  } else if (key == "node_max_tf") {
    NL_ASSIGN_OR_RETURN(stats->node_max_tf, U32VectorFromJson(field, key));
  } else if (key == "has_timestamps") {
    NL_ASSIGN_OR_RETURN(stats->has_timestamps, AsBoolStrict(field, key));
  } else {
    return false;
  }
  return true;
}

}  // namespace

json::Value ShardPlanRequestToJson(const ShardPlanRpcRequest& request) {
  json::Value out = json::Value::Object();
  out.Set("api_version", json::Value::Uint(kShardApiVersion));
  out.Set("shard", json::Value::Uint(request.shard));
  if (request.deadline_seconds > 0) {
    out.Set("deadline_seconds", json::Value::Number(request.deadline_seconds));
  }
  out.Set("query", ShardQueryToJson(request.query));
  return out;
}

Result<ShardPlanRpcRequest> ShardPlanRequestFromJson(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("shard plan request must be a JSON object");
  }
  ShardPlanRpcRequest request;
  bool have_version = false;
  uint64_t version = 0;
  bool have_query = false;
  for (const auto& [key, field] : value.members()) {
    if (key == "api_version") {
      NL_ASSIGN_OR_RETURN(version, AsU64(field, key));
      have_version = true;
    } else if (key == "shard") {
      NL_ASSIGN_OR_RETURN(request.shard, AsU64(field, key));
    } else if (key == "deadline_seconds") {
      NL_ASSIGN_OR_RETURN(request.deadline_seconds,
                          AsNumberStrict(field, key));
    } else if (key == "query") {
      NL_ASSIGN_OR_RETURN(request.query, ShardQueryFromJson(field));
      have_query = true;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown shard plan request field: \"", key, "\""));
    }
  }
  NL_RETURN_IF_ERROR(CheckApiVersion(have_version, version));
  if (!have_query) {
    return Status::InvalidArgument("shard plan request needs a \"query\"");
  }
  return request;
}

json::Value ShardPlanResponseToJson(const ShardPlanRpcResponse& response) {
  json::Value out = json::Value::Object();
  out.Set("api_version", json::Value::Uint(kShardApiVersion));
  out.Set("shard", json::Value::Uint(response.shard));
  out.Set("epoch", json::Value::Uint(response.plan.epoch));
  StatsToJson(response.plan, &out);
  return out;
}

Result<ShardPlanRpcResponse> ShardPlanResponseFromJson(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument(
        "shard plan response must be a JSON object");
  }
  ShardPlanRpcResponse response;
  bool have_version = false;
  uint64_t version = 0;
  for (const auto& [key, field] : value.members()) {
    if (key == "api_version") {
      NL_ASSIGN_OR_RETURN(version, AsU64(field, key));
      have_version = true;
    } else if (key == "shard") {
      NL_ASSIGN_OR_RETURN(response.shard, AsU64(field, key));
    } else if (key == "epoch") {
      NL_ASSIGN_OR_RETURN(response.plan.epoch, AsU64(field, key));
    } else {
      NL_ASSIGN_OR_RETURN(const bool consumed,
                          StatsFieldFromJson(key, field, &response.plan));
      if (!consumed) {
        return Status::InvalidArgument(
            StrCat("unknown shard plan response field: \"", key, "\""));
      }
    }
  }
  NL_RETURN_IF_ERROR(CheckApiVersion(have_version, version));
  return response;
}

json::Value ShardSearchRequestToJson(const ShardSearchRpcRequest& request) {
  json::Value out = json::Value::Object();
  out.Set("api_version", json::Value::Uint(kShardApiVersion));
  out.Set("shard", json::Value::Uint(request.shard));
  out.Set("expected_epoch", json::Value::Uint(request.expected_epoch));
  if (request.deadline_seconds > 0) {
    out.Set("deadline_seconds", json::Value::Number(request.deadline_seconds));
  }
  out.Set("query", ShardQueryToJson(request.query));
  json::Value global = json::Value::Object();
  StatsToJson(request.global, &global);
  out.Set("global", std::move(global));
  return out;
}

Result<ShardSearchRpcRequest> ShardSearchRequestFromJson(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument(
        "shard search request must be a JSON object");
  }
  ShardSearchRpcRequest request;
  bool have_version = false;
  uint64_t version = 0;
  bool have_query = false;
  bool have_global = false;
  for (const auto& [key, field] : value.members()) {
    if (key == "api_version") {
      NL_ASSIGN_OR_RETURN(version, AsU64(field, key));
      have_version = true;
    } else if (key == "shard") {
      NL_ASSIGN_OR_RETURN(request.shard, AsU64(field, key));
    } else if (key == "expected_epoch") {
      NL_ASSIGN_OR_RETURN(request.expected_epoch, AsU64(field, key));
    } else if (key == "deadline_seconds") {
      NL_ASSIGN_OR_RETURN(request.deadline_seconds,
                          AsNumberStrict(field, key));
    } else if (key == "query") {
      NL_ASSIGN_OR_RETURN(request.query, ShardQueryFromJson(field));
      have_query = true;
    } else if (key == "global") {
      if (!field.is_object()) {
        return Status::InvalidArgument("\"global\" must be a JSON object");
      }
      for (const auto& [stat_key, stat_field] : field.members()) {
        NL_ASSIGN_OR_RETURN(
            const bool consumed,
            StatsFieldFromJson(stat_key, stat_field, &request.global));
        if (!consumed) {
          return Status::InvalidArgument(
              StrCat("unknown global statistics field: \"", stat_key, "\""));
        }
      }
      have_global = true;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown shard search request field: \"", key, "\""));
    }
  }
  NL_RETURN_IF_ERROR(CheckApiVersion(have_version, version));
  if (!have_query || !have_global) {
    return Status::InvalidArgument(
        "shard search request needs \"query\" and \"global\"");
  }
  return request;
}

json::Value ShardSearchResponseToJson(const ShardSearchRpcResponse& response) {
  json::Value out = json::Value::Object();
  out.Set("api_version", json::Value::Uint(kShardApiVersion));
  out.Set("shard", json::Value::Uint(response.shard));
  out.Set("epoch", json::Value::Uint(response.result.epoch));
  out.Set("snapshot_docs", json::Value::Uint(response.result.snapshot_docs));
  out.Set("bow_max", json::Value::Number(response.result.bow_max));
  out.Set("bon_max", json::Value::Number(response.result.bon_max));
  out.Set("bow_scored", json::Value::Uint(response.result.bow_scored));
  out.Set("bon_scored", json::Value::Uint(response.result.bon_scored));
  json::Value candidates = json::Value::Array();
  for (const ShardCandidate& c : response.result.candidates) {
    json::Value quad = json::Value::Array();
    quad.Append(json::Value::Uint(c.doc));
    quad.Append(json::Value::Number(c.bow));
    quad.Append(json::Value::Number(c.bon));
    quad.Append(json::Value::Uint(static_cast<uint64_t>(c.ts)));
    candidates.Append(std::move(quad));
  }
  out.Set("candidates", std::move(candidates));
  return out;
}

Result<ShardSearchRpcResponse> ShardSearchResponseFromJson(
    const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument(
        "shard search response must be a JSON object");
  }
  ShardSearchRpcResponse response;
  bool have_version = false;
  uint64_t version = 0;
  for (const auto& [key, field] : value.members()) {
    if (key == "api_version") {
      NL_ASSIGN_OR_RETURN(version, AsU64(field, key));
      have_version = true;
    } else if (key == "shard") {
      NL_ASSIGN_OR_RETURN(response.shard, AsU64(field, key));
    } else if (key == "epoch") {
      NL_ASSIGN_OR_RETURN(response.result.epoch, AsU64(field, key));
    } else if (key == "snapshot_docs") {
      NL_ASSIGN_OR_RETURN(response.result.snapshot_docs, AsU64(field, key));
    } else if (key == "bow_max") {
      NL_ASSIGN_OR_RETURN(response.result.bow_max, AsNumberStrict(field, key));
    } else if (key == "bon_max") {
      NL_ASSIGN_OR_RETURN(response.result.bon_max, AsNumberStrict(field, key));
    } else if (key == "bow_scored") {
      NL_ASSIGN_OR_RETURN(response.result.bow_scored, AsU64(field, key));
    } else if (key == "bon_scored") {
      NL_ASSIGN_OR_RETURN(response.result.bon_scored, AsU64(field, key));
    } else if (key == "candidates") {
      if (!field.is_array()) {
        return Status::InvalidArgument("\"candidates\" must be an array");
      }
      response.result.candidates.reserve(field.size());
      for (const json::Value& item : field.items()) {
        if (!item.is_array() || item.size() != 4) {
          return Status::InvalidArgument(
              "\"candidates\" entries must be [doc, bow, bon, ts] "
              "quadruples");
        }
        ShardCandidate c;
        NL_ASSIGN_OR_RETURN(const uint64_t doc, AsU64(item.at(0), key));
        c.doc = static_cast<uint32_t>(doc);
        NL_ASSIGN_OR_RETURN(c.bow, AsNumberStrict(item.at(1), key));
        NL_ASSIGN_OR_RETURN(c.bon, AsNumberStrict(item.at(2), key));
        NL_ASSIGN_OR_RETURN(c.ts, AsEpochMs(item.at(3), key));
        response.result.candidates.push_back(c);
      }
    } else {
      return Status::InvalidArgument(
          StrCat("unknown shard search response field: \"", key, "\""));
    }
  }
  NL_RETURN_IF_ERROR(CheckApiVersion(have_version, version));
  return response;
}

}  // namespace net
}  // namespace newslink
