// SIGINT/SIGTERM → graceful drain, the async-signal-safe way: the handler
// writes one byte to a self-pipe; a normal thread blocks on the read end
// and then calls HttpServer::Shutdown(). Nothing signal-unsafe ever runs
// in handler context.

#ifndef NEWSLINK_NET_DRAIN_H_
#define NEWSLINK_NET_DRAIN_H_

#include <atomic>

#include "common/status.h"

namespace newslink {
namespace net {

/// \brief Process-wide shutdown signal latch (install once).
class DrainSignal {
 public:
  /// The single instance (signal handlers need a global target).
  static DrainSignal& Instance();

  /// Install SIGINT + SIGTERM handlers routing into this latch. Also
  /// ignores SIGPIPE (socket writes report EPIPE instead). Idempotent.
  Status Install();

  /// Block until a signal arrives (or Trigger() is called).
  void Wait();

  /// True once signaled.
  bool signaled() const { return signaled_.load(std::memory_order_acquire); }

  /// Programmatic trigger, for tests and for "drain now" admin paths.
  void Trigger();

 private:
  DrainSignal() = default;

  std::atomic<bool> installed_{false};
  std::atomic<bool> signaled_{false};
};

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_DRAIN_H_
