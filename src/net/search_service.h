// The /v1 API surface (DESIGN.md Sec. 10): a SearchService binds one
// NewsLinkEngine, its corpus, and the knowledge graph to HTTP routes:
//
//   POST /v1/search     one SearchRequest object (or an array of them —
//                       answered via SearchBatch) → SearchResponse JSON
//   POST /v1/documents  one document → live AddDocument, new epoch
//   POST /v1/explore    roll-up / drill-down session operations (only when
//                       an ExploreEngine is attached; DESIGN.md Sec. 13)
//   GET  /metrics       Prometheus text exposition of the engine registry
//   GET  /v1/stats      engine + corpus + registry snapshot as JSON
//   GET  /healthz       liveness probe
//
// Shard RPC (DESIGN.md Sec. 12) — the versioned internal surface a
// scatter-gather coordinator drives when this server is one shard of a
// document-partitioned collection:
//
//   POST /v1/shard/plan    per-shard collection statistics for a query
//   POST /v1/shard/search  candidates scored with collection-wide stats;
//                          answers 409 when the shard's epoch moved past
//                          the plan's `expected_epoch` (re-plan, don't mix)
//
// Concurrency: searches run lock-free on the engine's epoch snapshots.
// The corpus, however, is a plain append-only vector shared with ingestion,
// so a shared_mutex guards it — ingest appends under the exclusive side
// *before* the engine publishes the new epoch, and response rendering reads
// titles under the shared side. Any doc_index a snapshot can return is
// therefore always present in the corpus.
//
// Admission control: at most max_inflight_searches search requests run at
// once; excess requests are answered 503 without touching the engine.

#ifndef NEWSLINK_NET_SEARCH_SERVICE_H_
#define NEWSLINK_NET_SEARCH_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <shared_mutex>
#include <string_view>

#include "corpus/corpus.h"
#include "kg/knowledge_graph.h"
#include "net/http.h"
#include "net/http_server.h"
#include "newslink/explore_engine.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace net {

/// Registry series maintained by the service (registered on the engine's
/// registry so one /metrics scrape covers engine, server, and service).
inline constexpr std::string_view kSearchRejected =
    "search_requests_rejected_total";
inline constexpr std::string_view kDocumentsIngested =
    "http_documents_ingested_total";

struct SearchServiceOptions {
  /// Concurrent /v1/search requests admitted; excess get 503. The value 0
  /// rejects every search — useful to test admission deterministically and
  /// as an administrative "shed all load" mode.
  size_t max_inflight_searches = 64;
  /// Maximum requests in one batched /v1/search array body.
  size_t max_batch = 64;
};

/// \brief Binds an engine + corpus + graph to the /v1 HTTP API.
///
/// The engine, corpus, and graph must outlive the service; the service must
/// outlive the HttpServer it registered routes on.
class SearchService {
 public:
  SearchService(newslink::NewsLinkEngine* engine, corpus::Corpus* corpus,
                const kg::KnowledgeGraph* graph,
                SearchServiceOptions options = {});

  /// Attach the exploration subsystem: RegisterRoutes then also exposes
  /// POST /v1/explore (roll-up / drill-down, DESIGN.md Sec. 13). The
  /// explore engine must wrap the same NewsLinkEngine and outlive the
  /// service. Call before RegisterRoutes.
  void AttachExplore(newslink::ExploreEngine* explore) { explore_ = explore; }

  /// Register every endpoint on `server` (call before server->Start()).
  void RegisterRoutes(HttpServer* server);

  // Handlers are public so tests can drive the service without a socket.
  HttpResponse HandleSearch(const HttpRequest& request);
  HttpResponse HandleAddDocument(const HttpRequest& request);
  HttpResponse HandleExplore(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request) const;
  HttpResponse HandleHealth(const HttpRequest& request) const;
  HttpResponse HandleStats(const HttpRequest& request) const;
  HttpResponse HandleShardPlan(const HttpRequest& request) const;
  HttpResponse HandleShardSearch(const HttpRequest& request) const;

 private:
  newslink::NewsLinkEngine* engine_;
  corpus::Corpus* corpus_;
  const kg::KnowledgeGraph* graph_;
  newslink::ExploreEngine* explore_ = nullptr;
  SearchServiceOptions options_;

  /// Guards corpus_ (append-only): exclusive for ingest, shared for reads.
  mutable std::shared_mutex corpus_mu_;

  std::atomic<size_t> inflight_searches_{0};
  metrics::Counter* rejected_;
  metrics::Counter* ingested_;
  metrics::Gauge* current_epoch_;
};

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_SEARCH_SERVICE_H_
