// The scatter-gather coordinator (DESIGN.md Sec. 12): serves the public
// /v1 search API by fanning every query out to N shard servers over the
// /v1/shard RPC surface and merging their candidates with the exact
// arithmetic of the in-process ShardedEngine (newslink/shard_merge.h).
//
//   POST /v1/search  single or batched SearchRequest → SearchResponse;
//                    `explain` is rejected loudly (document embeddings
//                    live on the shards, not here)
//   GET  /v1/stats   per-shard health / epoch / last-error blocks
//   GET  /metrics    Prometheus exposition (coordinator counters)
//   GET  /healthz    liveness probe
//
// Query flow: the coordinator runs NLP + NE once (it holds the knowledge
// graph and config, but no corpus), PLANs every shard, merges the
// per-shard statistics, then SEARCHes every shard with the collection-wide
// view. A shard that answers 409 (its epoch moved between the two phases)
// triggers ONE full re-plan round; a shard that is down or misses its
// per-shard deadline budget is dropped from the merge — the response still
// answers 200 with `degraded: true` and shards_answered < shards_total.
//
// Documents are assumed round-robin partitioned by global corpus row
// (`newslink_cli serve --shard-index i --shard-count n`), so shard s's
// local row l is global row l*n + s — which keeps the merged tie order
// identical to a single engine over the union.

#ifndef NEWSLINK_NET_COORDINATOR_SERVICE_H_
#define NEWSLINK_NET_COORDINATOR_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "baselines/search_engine.h"
#include "common/thread_pool.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/shard_client.h"
#include "newslink/newslink_engine.h"

namespace newslink {
namespace net {

/// Coordinator registry series (registered on the prep engine's registry
/// so one /metrics scrape covers NLP, RPC, and service counters).
inline constexpr std::string_view kCoordinatorDegraded =
    "coordinator_degraded_responses_total";
inline constexpr std::string_view kCoordinatorShardErrors =
    "coordinator_shard_rpc_errors_total";

struct CoordinatorOptions {
  /// Wall-clock budget per shard RPC, seconds (0 = none). A request's own
  /// deadline_seconds tightens this further; a shard that exceeds the
  /// budget is dropped from the merge (degraded response, HTTP 200).
  double shard_deadline_seconds = 0.25;
  /// Concurrent /v1/search requests admitted; excess get 503.
  size_t max_inflight_searches = 64;
  /// Maximum requests in one batched /v1/search array body.
  size_t max_batch = 64;
};

/// \brief Serves /v1/search by scatter-gather over shard servers.
///
/// `prep` is a NewsLinkEngine with the knowledge graph loaded but no
/// corpus — it runs the per-query NLP/NE pipeline and builds the
/// shard-portable query. It must outlive the service; the service must
/// outlive the HttpServer it registered routes on.
class CoordinatorService {
 public:
  CoordinatorService(const newslink::NewsLinkEngine* prep,
                     NewsLinkConfig config,
                     std::vector<std::unique_ptr<ShardClient>> shards,
                     CoordinatorOptions options = {});

  /// Register every endpoint on `server` (call before server->Start()).
  void RegisterRoutes(HttpServer* server);

  /// One scatter-gather query (public so tests can drive the merge
  /// without a coordinator-side socket). `request.explain` must be false.
  baselines::SearchResponse Search(
      const baselines::SearchRequest& request) const;

  std::string name() const;
  size_t num_shards() const { return shards_.size(); }

  // Handlers are public so tests can drive the service without a socket.
  HttpResponse HandleSearch(const HttpRequest& request);
  HttpResponse HandleStats(const HttpRequest& request) const;
  HttpResponse HandleHealth(const HttpRequest& request) const;
  HttpResponse HandleMetrics(const HttpRequest& request) const;

 private:
  const newslink::NewsLinkEngine* prep_;
  const NewsLinkConfig config_;
  const std::vector<std::unique_ptr<ShardClient>> shards_;
  const CoordinatorOptions options_;

  /// Fans Plan/Search RPCs out; sized to the shard count so one query's
  /// round trips run concurrently. ParallelFor is reentrant, so batched
  /// requests may fan out from inside a worker.
  mutable ThreadPool pool_;

  std::atomic<size_t> inflight_searches_{0};
  metrics::Counter* queries_;
  metrics::Histogram* query_seconds_;
  metrics::Counter* degraded_;
  metrics::Counter* shard_errors_;
  metrics::Counter* rejected_;
};

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_COORDINATOR_SERVICE_H_
