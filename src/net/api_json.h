// JSON codecs for the /v1 wire protocol (DESIGN.md Sec. 10): strict
// request decoding (unknown fields are InvalidArgument, so client typos
// fail loudly instead of silently running a default query) and response
// encoding shared by the server and any in-process caller that wants the
// wire representation.
//
// The /v1 envelope (DESIGN.md Sec. 13): every public request codec —
// search, documents, explore — accepts an OPTIONAL "api_version" field.
// Absent means "whatever the server speaks" (so pre-envelope clients keep
// working bit-for-bit); present-but-mismatched decodes to
// FailedPrecondition (HTTP 409), the same handshake the shard RPC has
// always enforced. Every error, on every route, is rendered by
// status_http's single {"error": {code, status, message}} shape, and every
// route funnels its body through DecodeEnvelope instead of growing its own
// parse/validate boilerplate.

// The shard RPC surface (DESIGN.md Sec. 12) also lives here: versioned
// /v1/shard/plan + /v1/shard/search codecs for coordinator↔shard traffic.
// Every shard message carries `api_version`; a missing or mismatched
// version decodes to FailedPrecondition (HTTP 409), so incompatible peers
// fail loudly instead of drifting. Scores travel as JSON numbers, which
// common/json round-trips bit-exactly (shortest-round-trip rendering), so
// the distributed merge stays bit-identical to the in-process one.

#ifndef NEWSLINK_NET_API_JSON_H_
#define NEWSLINK_NET_API_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/search_engine.h"
#include "common/json.h"
#include "common/result.h"
#include "corpus/corpus.h"
#include "kg/knowledge_graph.h"
#include "newslink/explore_engine.h"
#include "newslink/shard_api.h"

namespace newslink {
namespace net {

/// Version of the public /v1 envelope. Clients may stamp requests with
/// "api_version": a mismatch is FailedPrecondition (409); omission is
/// always accepted (additive versioning — old clients never break).
inline constexpr uint64_t kApiVersion = 1;

/// Parse a /v1 request body: the shared front door of every route. Returns
/// the parsed JSON when the body is an object or an array (the only two
/// shapes any /v1 request takes); malformed JSON and scalar bodies are
/// InvalidArgument. Version and field validation stay in the per-route
/// codecs, which all understand "api_version".
Result<json::Value> DecodeEnvelope(std::string_view body);

/// Decode one search request object. The current shape groups the ranking
/// knobs and the result filters (DESIGN.md Sec. 15):
///   {"query": "...", "k": 10,
///    "ranking": {"beta": 0.6, "rerank_depth": 50, "exhaustive": false,
///                "recency_half_life_s": 86400},
///    "filter": {"time_range": {"after_ms": 0, "before_ms": 0}},
///    "explain": true, "max_paths": 5, "trace": false,
///    "deadline_seconds": 0.2, "api_version": 1}
/// Only "query" is required; everything else falls back to the engine's
/// defaults. "time_range" is half-open [after_ms, before_ms): inclusive
/// after, exclusive before; either bound may be omitted.
///
/// DEPRECATED aliases: the pre-grouping flat fields "beta",
/// "rerank_depth", and "exhaustive_fusion" are still accepted so existing
/// clients keep working, but mixing any of them with a "ranking" object in
/// one request is InvalidArgument (400) — a request speaks exactly one
/// shape. Unknown fields and wrong types are InvalidArgument.
Result<baselines::SearchRequest> SearchRequestFromJson(
    const json::Value& value);

/// \brief A decoded /v1/search body: one request, or a batch of them.
struct SearchEnvelope {
  bool batched = false;
  std::vector<baselines::SearchRequest> requests;
};

/// Decode a full /v1/search body — a single request object or an array of
/// them (batch), shared by the single-engine service and the coordinator.
/// Empty batches and batches over `max_batch` are InvalidArgument;
/// per-element failures propagate the element's status.
Result<SearchEnvelope> DecodeSearchEnvelope(std::string_view body,
                                            size_t max_batch);

/// Encode a response; hits carry doc identity from `corpus` and, when the
/// engine attached explanation paths, their rendered arrow notation from
/// `graph` (both may be null: hits then carry indices/scores only).
///   {"hits": [{"doc_index", "score", "doc_id", "title", "paths": [...]}],
///    "epoch", "snapshot_docs", "deadline_exceeded"?, "timings": {...},
///    "trace"?: {...}}
json::Value SearchResponseToJson(const baselines::SearchResponse& response,
                                 const corpus::Corpus* corpus,
                                 const kg::KnowledgeGraph* graph);

/// Decode one document for live ingestion:
///   {"id": "...", "title": "...", "text": "...", "story_id": 0,
///    "timestamp_ms": 1700000000000, "api_version": 1}
/// "text" is required and must be non-empty; "id" defaults to a
/// server-assigned value when empty/absent; "timestamp_ms" (publication
/// time, epoch ms) defaults to the server's ingestion wall clock when
/// absent or 0; unknown fields are InvalidArgument.
Result<corpus::Document> DocumentFromJson(const json::Value& value);

/// Span tree as a json::Value (mirrors TraceSpan::ToJson's shape:
/// {"name", "start_ms", "dur_ms", "notes"?, "children"?}).
json::Value TraceSpanToJson(const TraceSpan& span);

// --- Explore (roll-up / drill-down; DESIGN.md Sec. 13) -------------------

/// \brief POST /v1/explore body. Exactly one mode:
///   start:      {"query": "...", "k"?: 50, "beta"?: 0.6,
///                "filter"?: {"time_range": {...}},
///                "deadline_seconds"?: 0.2}
///   drill-down: {"session": "x1", "drill": <node id>}
///   roll-up:    {"session": "x1", "up": true}
///   refresh:    {"session": "x1"}
/// plus the optional "api_version" every /v1 codec takes. "drill" and
/// "up" require "session" and exclude each other and "query". The start
/// mode's "filter" mirrors /v1/search: the whole session explores the
/// time-windowed result set.
struct ExploreRpcRequest {
  std::string query;  // non-empty = start a session
  size_t k = 0;       // 0 = the explore engine's configured default
  std::optional<double> beta;
  std::optional<double> deadline_seconds;
  std::optional<baselines::TimeRange> time_range;

  std::string session;  // non-empty = navigate an existing session
  bool has_drill = false;
  kg::NodeId drill = kg::kInvalidNode;
  bool up = false;
};

Result<ExploreRpcRequest> ExploreRequestFromJson(const json::Value& value);

/// Encode one exploration view:
///   {"session", "epoch", "snapshot_docs", "total_hits",
///    "scope": [{"node", "label"?}, ...],
///    "buckets": [{"entity", "label"?, "entity_type"?, "doc_count",
///                 "score_mass", "top_docs": [{"doc_index", "score",
///                 "doc_id"?, "title"?}, ...]}  |  {"other": true, ...}],
///    "deadline_exceeded"?: true}
/// `corpus` / `graph` may be null (indices only, as with search). The sum
/// of doc_count over buckets — "other" included — equals total_hits.
json::Value ExploreResultToJson(const ExploreResult& result,
                                const corpus::Corpus* corpus,
                                const kg::KnowledgeGraph* graph);

// --- Shard RPC (versioned; newslink::kShardApiVersion) ------------------

/// \brief POST /v1/shard/plan body: the coordinator-prepared query plus
/// the target shard id and its wall-clock budget for this phase.
struct ShardPlanRpcRequest {
  uint64_t shard = 0;
  /// Per-shard deadline budget, seconds (0 = none). Advisory on the shard
  /// side — the coordinator's client enforces it on the wire.
  double deadline_seconds = 0;
  ShardQuery query;
};

/// \brief /v1/shard/plan 200 body.
struct ShardPlanRpcResponse {
  uint64_t shard = 0;
  ShardPlan plan;
};

/// \brief POST /v1/shard/search body. `expected_epoch` echoes the plan's
/// epoch; a shard whose published epoch moved answers FailedPrecondition
/// (409) so the coordinator re-plans instead of mixing epochs.
struct ShardSearchRpcRequest {
  uint64_t shard = 0;
  uint64_t expected_epoch = 0;
  double deadline_seconds = 0;
  ShardQuery query;
  ShardGlobalStats global;
};

/// \brief /v1/shard/search 200 body (docs-scored counters included).
struct ShardSearchRpcResponse {
  uint64_t shard = 0;
  ShardSearchResult result;
};

// Encoders always stamp api_version = kShardApiVersion. Decoders reject a
// missing/mismatched api_version with FailedPrecondition and any unknown
// field with InvalidArgument (same strictness as the public /v1 codecs).
json::Value ShardPlanRequestToJson(const ShardPlanRpcRequest& request);
Result<ShardPlanRpcRequest> ShardPlanRequestFromJson(const json::Value& value);
json::Value ShardPlanResponseToJson(const ShardPlanRpcResponse& response);
Result<ShardPlanRpcResponse> ShardPlanResponseFromJson(
    const json::Value& value);
json::Value ShardSearchRequestToJson(const ShardSearchRpcRequest& request);
Result<ShardSearchRpcRequest> ShardSearchRequestFromJson(
    const json::Value& value);
json::Value ShardSearchResponseToJson(const ShardSearchRpcResponse& response);
Result<ShardSearchRpcResponse> ShardSearchResponseFromJson(
    const json::Value& value);

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_API_JSON_H_
