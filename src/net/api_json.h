// JSON codecs for the /v1 wire protocol (DESIGN.md Sec. 10): strict
// request decoding (unknown fields are InvalidArgument, so client typos
// fail loudly instead of silently running a default query) and response
// encoding shared by the server and any in-process caller that wants the
// wire representation.

// The shard RPC surface (DESIGN.md Sec. 12) also lives here: versioned
// /v1/shard/plan + /v1/shard/search codecs for coordinator↔shard traffic.
// Every shard message carries `api_version`; a missing or mismatched
// version decodes to FailedPrecondition (HTTP 409), so incompatible peers
// fail loudly instead of drifting. Scores travel as JSON numbers, which
// common/json round-trips bit-exactly (shortest-round-trip rendering), so
// the distributed merge stays bit-identical to the in-process one.

#ifndef NEWSLINK_NET_API_JSON_H_
#define NEWSLINK_NET_API_JSON_H_

#include <cstdint>

#include "baselines/search_engine.h"
#include "common/json.h"
#include "common/result.h"
#include "corpus/corpus.h"
#include "kg/knowledge_graph.h"
#include "newslink/shard_api.h"

namespace newslink {
namespace net {

/// Decode one search request object:
///   {"query": "...", "k": 10, "beta": 0.6, "rerank_depth": 50,
///    "exhaustive_fusion": false, "explain": true, "max_paths": 5,
///    "trace": false, "deadline_seconds": 0.2}
/// Only "query" is required; everything else falls back to the engine's
/// defaults. Unknown fields and wrong types are InvalidArgument.
Result<baselines::SearchRequest> SearchRequestFromJson(
    const json::Value& value);

/// Encode a response; hits carry doc identity from `corpus` and, when the
/// engine attached explanation paths, their rendered arrow notation from
/// `graph` (both may be null: hits then carry indices/scores only).
///   {"hits": [{"doc_index", "score", "doc_id", "title", "paths": [...]}],
///    "epoch", "snapshot_docs", "deadline_exceeded"?, "timings": {...},
///    "trace"?: {...}}
json::Value SearchResponseToJson(const baselines::SearchResponse& response,
                                 const corpus::Corpus* corpus,
                                 const kg::KnowledgeGraph* graph);

/// Decode one document for live ingestion:
///   {"id": "...", "title": "...", "text": "...", "story_id": 0}
/// "text" is required and must be non-empty; "id" defaults to a
/// server-assigned value when empty/absent; unknown fields are
/// InvalidArgument.
Result<corpus::Document> DocumentFromJson(const json::Value& value);

/// Span tree as a json::Value (mirrors TraceSpan::ToJson's shape:
/// {"name", "start_ms", "dur_ms", "notes"?, "children"?}).
json::Value TraceSpanToJson(const TraceSpan& span);

// --- Shard RPC (versioned; newslink::kShardApiVersion) ------------------

/// \brief POST /v1/shard/plan body: the coordinator-prepared query plus
/// the target shard id and its wall-clock budget for this phase.
struct ShardPlanRpcRequest {
  uint64_t shard = 0;
  /// Per-shard deadline budget, seconds (0 = none). Advisory on the shard
  /// side — the coordinator's client enforces it on the wire.
  double deadline_seconds = 0;
  ShardQuery query;
};

/// \brief /v1/shard/plan 200 body.
struct ShardPlanRpcResponse {
  uint64_t shard = 0;
  ShardPlan plan;
};

/// \brief POST /v1/shard/search body. `expected_epoch` echoes the plan's
/// epoch; a shard whose published epoch moved answers FailedPrecondition
/// (409) so the coordinator re-plans instead of mixing epochs.
struct ShardSearchRpcRequest {
  uint64_t shard = 0;
  uint64_t expected_epoch = 0;
  double deadline_seconds = 0;
  ShardQuery query;
  ShardGlobalStats global;
};

/// \brief /v1/shard/search 200 body (docs-scored counters included).
struct ShardSearchRpcResponse {
  uint64_t shard = 0;
  ShardSearchResult result;
};

// Encoders always stamp api_version = kShardApiVersion. Decoders reject a
// missing/mismatched api_version with FailedPrecondition and any unknown
// field with InvalidArgument (same strictness as the public /v1 codecs).
json::Value ShardPlanRequestToJson(const ShardPlanRpcRequest& request);
Result<ShardPlanRpcRequest> ShardPlanRequestFromJson(const json::Value& value);
json::Value ShardPlanResponseToJson(const ShardPlanRpcResponse& response);
Result<ShardPlanRpcResponse> ShardPlanResponseFromJson(
    const json::Value& value);
json::Value ShardSearchRequestToJson(const ShardSearchRpcRequest& request);
Result<ShardSearchRpcRequest> ShardSearchRequestFromJson(
    const json::Value& value);
json::Value ShardSearchResponseToJson(const ShardSearchRpcResponse& response);
Result<ShardSearchRpcResponse> ShardSearchResponseFromJson(
    const json::Value& value);

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_API_JSON_H_
