// JSON codecs for the /v1 wire protocol (DESIGN.md Sec. 10): strict
// request decoding (unknown fields are InvalidArgument, so client typos
// fail loudly instead of silently running a default query) and response
// encoding shared by the server and any in-process caller that wants the
// wire representation.

#ifndef NEWSLINK_NET_API_JSON_H_
#define NEWSLINK_NET_API_JSON_H_

#include "baselines/search_engine.h"
#include "common/json.h"
#include "common/result.h"
#include "corpus/corpus.h"
#include "kg/knowledge_graph.h"

namespace newslink {
namespace net {

/// Decode one search request object:
///   {"query": "...", "k": 10, "beta": 0.6, "rerank_depth": 50,
///    "exhaustive_fusion": false, "explain": true, "max_paths": 5,
///    "trace": false, "deadline_seconds": 0.2}
/// Only "query" is required; everything else falls back to the engine's
/// defaults. Unknown fields and wrong types are InvalidArgument.
Result<baselines::SearchRequest> SearchRequestFromJson(
    const json::Value& value);

/// Encode a response; hits carry doc identity from `corpus` and, when the
/// engine attached explanation paths, their rendered arrow notation from
/// `graph` (both may be null: hits then carry indices/scores only).
///   {"hits": [{"doc_index", "score", "doc_id", "title", "paths": [...]}],
///    "epoch", "snapshot_docs", "deadline_exceeded"?, "timings": {...},
///    "trace"?: {...}}
json::Value SearchResponseToJson(const baselines::SearchResponse& response,
                                 const corpus::Corpus* corpus,
                                 const kg::KnowledgeGraph* graph);

/// Decode one document for live ingestion:
///   {"id": "...", "title": "...", "text": "...", "story_id": 0}
/// "text" is required and must be non-empty; "id" defaults to a
/// server-assigned value when empty/absent; unknown fields are
/// InvalidArgument.
Result<corpus::Document> DocumentFromJson(const json::Value& value);

/// Span tree as a json::Value (mirrors TraceSpan::ToJson's shape:
/// {"name", "start_ms", "dur_ms", "notes"?, "children"?}).
json::Value TraceSpanToJson(const TraceSpan& span);

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_API_JSON_H_
