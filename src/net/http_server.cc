#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "net/status_http.h"

namespace newslink {
namespace net {

namespace {

void SetSocketTimeout(int fd, int option, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

std::string_view PathOf(std::string_view target) {
  const size_t q = target.find('?');
  return q == std::string_view::npos ? target : target.substr(0, q);
}

std::string QueryParam(std::string_view target, std::string_view key) {
  const size_t q = target.find('?');
  if (q == std::string_view::npos) return "";
  std::string_view query = target.substr(q + 1);
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (eq == std::string_view::npos && pair == key) return "";
    if (amp == std::string_view::npos) break;
    query = query.substr(amp + 1);
  }
  return "";
}

HttpServer::HttpServer(HttpServerOptions options, metrics::Registry* registry)
    : options_(std::move(options)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<metrics::Registry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  connections_ =
      registry_->GetCounter(kHttpConnections, "TCP connections accepted");
  connections_rejected_ = registry_->GetCounter(
      kHttpConnectionsRejected, "connections refused by admission control");
  requests_ = registry_->GetCounter(kHttpRequests, "HTTP requests served");
  request_errors_ = registry_->GetCounter(
      kHttpRequestErrors, "HTTP responses with a 4xx/5xx status");
  request_seconds_ = registry_->GetHistogram(
      kHttpRequestSeconds, {}, "request latency (parse to response flushed)");
  inflight_ = registry_->GetGauge(kHttpInflightRequests,
                                  "requests currently being handled");
}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Handle(std::string method, std::string path,
                        Handler handler) {
  NL_CHECK(!running()) << "register routes before Start()";
  routes_.push_back(Route{std::move(method), std::move(path),
                          std::move(handler)});
}

Status HttpServer::Start() {
  if (running()) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrCat("not an IPv4 address: ", options_.bind_address));
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        StrCat("bind ", options_.bind_address, ":", options_.port, ": ",
               std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status =
        Status::IOError(StrCat("listen: ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  draining_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_done_ = false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (drain) or fatal: stop accepting.
      return;
    }
    connections_->Inc();
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    if (options_.max_connections > 0 &&
        open_connections_.load(std::memory_order_acquire) >=
            options_.max_connections) {
      // Admission control: refuse before parsing anything.
      connections_rejected_->Inc();
      const std::string wire = SerializeResponse(
          ErrorResponseAt(503, "server connection limit reached"),
          /*keep_alive=*/false);
      (void)WriteAll(fd, wire);
      ::close(fd);
      continue;
    }
    open_connections_.fetch_add(1, std::memory_order_acq_rel);
    SetSocketTimeout(fd, SO_RCVTIMEO, options_.read_timeout_seconds);
    SetSocketTimeout(fd, SO_SNDTIMEO, options_.write_timeout_seconds);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      active_fds_.insert(fd);
    }
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  const std::string_view path = PathOf(request.target);
  bool path_matched = false;
  for (const Route& route : routes_) {
    if (route.path == path) {
      if (route.method == request.method) return route.handler(request);
      path_matched = true;
    }
  }
  if (path_matched) {
    return ErrorResponseAt(405, StrCat(request.method, " not allowed here"));
  }
  return ErrorResponseAt(404, StrCat("no such endpoint: ", path));
}

bool HttpServer::WriteAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // write timeout or peer gone
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void HttpServer::HandleConnection(int fd) {
  if (draining_.load(std::memory_order_acquire)) {
    // Queued behind the drain: refuse without parsing.
    const std::string wire = SerializeResponse(
        ErrorResponseAt(503, "server is draining"), /*keep_alive=*/false);
    (void)WriteAll(fd, wire);
  } else {
    HttpRequestParser parser(options_.limits);
    size_t served = 0;
    char buf[8192];
    while (true) {
      // Read until one full request (or a hard error) is in hand.
      bool peer_gone = false;
      bool idle_timeout = false;
      bool mid_request_timeout = false;
      bool saw_bytes = false;
      while (parser.state() == HttpRequestParser::State::kNeedMore) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
          saw_bytes = true;
          parser.Consume(std::string_view(buf, static_cast<size_t>(n)));
          continue;
        }
        if (n == 0) {
          peer_gone = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (saw_bytes) {
            mid_request_timeout = true;
          } else {
            idle_timeout = true;  // idle keep-alive: close silently
          }
          break;
        }
        peer_gone = true;
        break;
      }
      if (peer_gone || idle_timeout) break;
      if (mid_request_timeout) {
        request_errors_->Inc();
        const std::string wire = SerializeResponse(
            ErrorResponseAt(408, "timed out reading request"),
            /*keep_alive=*/false);
        (void)WriteAll(fd, wire);
        break;
      }
      if (parser.state() == HttpRequestParser::State::kError) {
        request_errors_->Inc();
        const std::string wire = SerializeResponse(
            ErrorResponseAt(parser.error_status(), parser.error_message()),
            /*keep_alive=*/false);
        (void)WriteAll(fd, wire);
        break;
      }

      // One complete request: route it.
      WallTimer timer;
      inflight_->Add(1.0);
      const HttpResponse response = Dispatch(parser.request());
      requests_->Inc();
      if (response.status >= 400) request_errors_->Inc();
      ++served;
      const bool keep_alive =
          options_.keep_alive && parser.request().KeepAlive() &&
          served < options_.max_requests_per_connection &&
          !draining_.load(std::memory_order_acquire);
      const bool wrote = WriteAll(fd, SerializeResponse(response, keep_alive));
      inflight_->Add(-1.0);
      request_seconds_->Observe(timer.ElapsedSeconds());
      if (!wrote || !keep_alive) break;
      parser.Reset();
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    active_fds_.erase(fd);
  }
  ::close(fd);
  open_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

void HttpServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_ || !running_.load(std::memory_order_acquire)) return;

  draining_.store(true, std::memory_order_release);
  // Unblock accept(): half-close then close the listener. The accept
  // thread exits on the failed accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Wake idle keep-alive readers: half-close the receive side so their
  // blocked recv() returns 0. In-flight handlers are untouched — their
  // sockets can still write responses.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }

  // The pool destructor drains queued connections (each sees draining_ and
  // answers 503) and joins every worker: in-flight requests finish here.
  pool_.reset();

  running_.store(false, std::memory_order_release);
  shutdown_done_ = true;
}

}  // namespace net
}  // namespace newslink
