#include "net/status_http.h"

#include "common/json.h"
#include "common/logging.h"

namespace newslink {
namespace net {

int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return 200;
    case Status::Code::kInvalidArgument:
    case Status::Code::kOutOfRange:
      return 400;
    case Status::Code::kNotFound:
      return 404;
    case Status::Code::kAlreadyExists:
    case Status::Code::kFailedPrecondition:
      return 409;
    case Status::Code::kTimeout:
      return 408;
    case Status::Code::kUnimplemented:
      return 501;
    case Status::Code::kInternal:
    case Status::Code::kIOError:
      return 500;
  }
  return 500;
}

std::string_view StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kTimeout:
      return "Timeout";
    case Status::Code::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

Status StatusFromWire(std::string_view code_name, std::string_view message) {
  if (code_name == "InvalidArgument") return Status::InvalidArgument(message);
  if (code_name == "NotFound") return Status::NotFound(message);
  if (code_name == "AlreadyExists") return Status::AlreadyExists(message);
  if (code_name == "OutOfRange") return Status::OutOfRange(message);
  if (code_name == "FailedPrecondition") {
    return Status::FailedPrecondition(message);
  }
  if (code_name == "IOError") return Status::IOError(message);
  if (code_name == "Timeout") return Status::Timeout(message);
  if (code_name == "Unimplemented") return Status::Unimplemented(message);
  return Status::Internal(message);
}

HttpResponse ErrorResponse(const Status& status) {
  NL_DCHECK(!status.ok()) << "ErrorResponse needs a non-OK status";
  const int http = StatusToHttp(status);
  json::Value body = json::Value::Object();
  json::Value& err = body.Set("error", json::Value::Object());
  err.Set("code", json::Value::Str(StatusCodeName(status.code())));
  err.Set("status", json::Value::Int(http));
  err.Set("message", json::Value::Str(status.message()));
  HttpResponse response;
  response.status = http;
  response.body = body.Dump();
  return response;
}

HttpResponse ErrorResponseAt(int http_status, std::string_view message) {
  json::Value body = json::Value::Object();
  json::Value& err = body.Set("error", json::Value::Object());
  err.Set("code", json::Value::Str(HttpReasonPhrase(http_status)));
  err.Set("status", json::Value::Int(http_status));
  err.Set("message", json::Value::Str(message));
  HttpResponse response;
  response.status = http_status;
  response.body = body.Dump();
  return response;
}

}  // namespace net
}  // namespace newslink
