// The ONE place engine Status codes become HTTP statuses and JSON error
// bodies (DESIGN.md Sec. 10, "error model"). Every endpoint handler routes
// its failures through ErrorResponse so clients always see the same shape:
//
//   {"error": {"code": "InvalidArgument", "status": 400, "message": "..."}}

#ifndef NEWSLINK_NET_STATUS_HTTP_H_
#define NEWSLINK_NET_STATUS_HTTP_H_

#include <string_view>

#include "common/status.h"
#include "net/http.h"

namespace newslink {
namespace net {

/// HTTP status for a Status code: OK→200, InvalidArgument/OutOfRange→400,
/// NotFound→404, AlreadyExists/FailedPrecondition→409, Timeout→408,
/// Unimplemented→501, IOError/Internal (and anything else)→500.
int StatusToHttp(const Status& status);

/// Stable wire name of a Status code ("InvalidArgument", ...).
std::string_view StatusCodeName(Status::Code code);

/// Inverse of StatusCodeName for RPC clients: rebuild the Status a peer's
/// error body describes. An unrecognized code name becomes Internal (the
/// message survives either way).
Status StatusFromWire(std::string_view code_name, std::string_view message);

/// JSON error body + mapped HTTP status for a non-OK Status.
HttpResponse ErrorResponse(const Status& status);

/// An error response at an explicit HTTP status (for transport-level
/// failures — parse errors, admission rejections — that have no Status).
HttpResponse ErrorResponseAt(int http_status, std::string_view message);

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_STATUS_HTTP_H_
