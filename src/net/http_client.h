// Minimal blocking HTTP/1.1 client for the internal shard RPC (DESIGN.md
// Sec. 12). Dependency-free like the rest of src/net: a wall-clock
// deadline covering connect + send + receive, and a strict parser for
// exactly the responses our own HttpServer produces (status line, headers,
// Content-Length-sized or to-EOF body). Not a general browser-grade client
// on purpose — it talks to peers we control.
//
// Two entry points:
//   - The HttpCall/HttpGet/HttpPost free functions: one fresh connection
//     per call ("Connection: close"), for one-shot traffic.
//   - HttpClient: bound to one host:port, keeps a small stack of idle
//     keep-alive connections and reuses them across calls. A reused
//     connection can always have gone stale (the server closed it between
//     calls — idle timeout, request cap, restart); a transport failure on
//     a REUSED connection is therefore retried exactly once on a fresh
//     connection before surfacing. Reuse / reconnect / open counts are
//     exposed for client metrics.

#ifndef NEWSLINK_NET_HTTP_CLIENT_H_
#define NEWSLINK_NET_HTTP_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace newslink {
namespace net {

/// \brief One parsed response: status + body (headers are consumed
/// internally — Content-Length drives the read; nothing else is needed).
struct HttpClientResponse {
  int status = 0;
  std::string body;
};

struct HttpClientOptions {
  /// Whole-call wall-clock budget (connect + send + receive), seconds.
  /// <= 0 means no deadline. Covers the stale-connection retry too.
  double deadline_seconds = 5.0;
  /// Response body ceiling; larger answers are IOError.
  size_t max_body_bytes = 64 * 1024 * 1024;
};

/// Blocking request to `host:port` (dotted-quad or "localhost"). `method`
/// is "GET" or "POST"; `body` is sent with Content-Length (empty = none).
/// Status codes are returned, not mapped: a 409 from a shard is a valid
/// protocol answer, not a transport failure. Errors: Timeout when the
/// deadline cuts connect/read short, IOError for refused connections,
/// resets, and malformed responses.
Result<HttpClientResponse> HttpCall(std::string_view method,
                                    std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options = {});

Result<HttpClientResponse> HttpGet(std::string_view host, uint16_t port,
                                   std::string_view path,
                                   const HttpClientOptions& options = {});

Result<HttpClientResponse> HttpPost(std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options = {});

/// \brief Keep-alive client bound to one host:port.
///
/// Thread-safe: concurrent calls each check an idle connection out of the
/// pool (or open a fresh one) and return it when the response arrived
/// cleanly, so N concurrent callers use up to N connections and the pool
/// keeps at most `max_idle` of them warm between calls. A response is only
/// eligible for reuse when it was Content-Length framed and the server did
/// not answer "Connection: close" — read-to-EOF responses consume their
/// connection by definition.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, size_t max_idle = 4);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Result<HttpClientResponse> Call(std::string_view method,
                                  std::string_view path,
                                  std::string_view request_body,
                                  const HttpClientOptions& options = {});
  Result<HttpClientResponse> Get(std::string_view path,
                                 const HttpClientOptions& options = {});
  Result<HttpClientResponse> Post(std::string_view path,
                                  std::string_view request_body,
                                  const HttpClientOptions& options = {});

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  // --- Client metrics (cumulative) --------------------------------------
  /// Fresh TCP connections opened.
  uint64_t connections_opened() const {
    return opened_.load(std::memory_order_relaxed);
  }
  /// Calls that started on an idle keep-alive connection.
  uint64_t connection_reuses() const {
    return reuses_.load(std::memory_order_relaxed);
  }
  /// Stale-connection retries: a reused connection failed and the call was
  /// replayed once on a fresh one.
  uint64_t connection_reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  /// Pop an idle connection; -1 when none.
  int PopIdle();
  /// Park `fd` for reuse, or close it when the pool is full.
  void ParkOrClose(int fd);

  const std::string host_;
  const uint16_t port_;
  const size_t max_idle_;

  std::mutex mu_;
  std::vector<int> idle_;  // guarded by mu_

  std::atomic<uint64_t> opened_{0};
  std::atomic<uint64_t> reuses_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_HTTP_CLIENT_H_
