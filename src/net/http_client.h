// Minimal blocking HTTP/1.1 client for the internal shard RPC (DESIGN.md
// Sec. 12). Dependency-free like the rest of src/net: one connection per
// call ("Connection: close"), a wall-clock deadline covering connect +
// send + receive, and a strict parser for exactly the responses our own
// HttpServer produces (status line, headers, Content-Length-sized or
// to-EOF body). Not a general browser-grade client on purpose — it talks
// to peers we control.

#ifndef NEWSLINK_NET_HTTP_CLIENT_H_
#define NEWSLINK_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace newslink {
namespace net {

/// \brief One parsed response: status + body (headers are consumed
/// internally — Content-Length drives the read; nothing else is needed).
struct HttpClientResponse {
  int status = 0;
  std::string body;
};

struct HttpClientOptions {
  /// Whole-call wall-clock budget (connect + send + receive), seconds.
  /// <= 0 means no deadline.
  double deadline_seconds = 5.0;
  /// Response body ceiling; larger answers are IOError.
  size_t max_body_bytes = 64 * 1024 * 1024;
};

/// Blocking request to `host:port` (dotted-quad or "localhost"). `method`
/// is "GET" or "POST"; `body` is sent with Content-Length (empty = none).
/// Status codes are returned, not mapped: a 409 from a shard is a valid
/// protocol answer, not a transport failure. Errors: Timeout when the
/// deadline cuts connect/read short, IOError for refused connections,
/// resets, and malformed responses.
Result<HttpClientResponse> HttpCall(std::string_view method,
                                    std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options = {});

Result<HttpClientResponse> HttpGet(std::string_view host, uint16_t port,
                                   std::string_view path,
                                   const HttpClientOptions& options = {});

Result<HttpClientResponse> HttpPost(std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options = {});

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_HTTP_CLIENT_H_
