#include "net/drain.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace newslink {
namespace net {

namespace {

/// Self-pipe written by the handler, read by Wait(). File-scope: signal
/// handlers cannot capture state.
int g_pipe_read = -1;
int g_pipe_write = -1;

void OnSignal(int /*signo*/) {
  const char byte = 1;
  // write() is async-signal-safe; a full pipe just means we're already
  // draining, so the lost byte is harmless.
  [[maybe_unused]] ssize_t n = ::write(g_pipe_write, &byte, 1);
}

}  // namespace

DrainSignal& DrainSignal::Instance() {
  static DrainSignal instance;
  return instance;
}

Status DrainSignal::Install() {
  bool expected = false;
  if (!installed_.compare_exchange_strong(expected, true)) {
    return Status::OK();  // already installed
  }
  int fds[2];
  if (::pipe(fds) != 0) {
    installed_.store(false);
    return Status::IOError(StrCat("pipe: ", std::strerror(errno)));
  }
  g_pipe_read = fds[0];
  g_pipe_write = fds[1];

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (::sigaction(SIGINT, &action, nullptr) != 0 ||
      ::sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::IOError(StrCat("sigaction: ", std::strerror(errno)));
  }
  ::signal(SIGPIPE, SIG_IGN);
  return Status::OK();
}

void DrainSignal::Wait() {
  char byte = 0;
  while (true) {
    if (signaled()) return;
    const ssize_t n = ::read(g_pipe_read, &byte, 1);
    if (n == 1) break;
    if (n < 0 && errno == EINTR) continue;
    break;  // pipe closed — treat as a shutdown request
  }
  signaled_.store(true, std::memory_order_release);
}

void DrainSignal::Trigger() {
  signaled_.store(true, std::memory_order_release);
  if (g_pipe_write >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_pipe_write, &byte, 1);
  }
}

}  // namespace net
}  // namespace newslink
