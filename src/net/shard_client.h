// Typed RPC stub for one shard server (DESIGN.md Sec. 12): wraps a
// keep-alive net/HttpClient + the api_json shard codecs into Plan/Search
// calls the coordinator can fan out. The client also keeps the shard's
// last-known health (reachable? which epoch? what failed?) so /v1/stats
// can report per-shard state without extra probes.

#ifndef NEWSLINK_NET_SHARD_CLIENT_H_
#define NEWSLINK_NET_SHARD_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "net/api_json.h"
#include "net/http_client.h"

namespace newslink {
namespace net {

/// \brief RPC client for one shard of a scatter-gather deployment.
///
/// RPCs ride the owned HttpClient's keep-alive connection pool (stale
/// connections are retried once on a fresh one; see net/http_client.h) and
/// the health bookkeeping is thread-safe, so a coordinator may fan out
/// Plan/Search over a thread pool while /v1/stats reads HealthJson().
class ShardClient {
 public:
  ShardClient(size_t shard, std::string host, uint16_t port)
      : shard_(shard),
        host_(std::move(host)),
        port_(port),
        http_(host_, port_) {}

  /// Phase 1: fetch this shard's collection statistics for `query`.
  /// `deadline_seconds` (0 = none) bounds the whole call on the wire.
  Result<ShardPlanRpcResponse> Plan(const ShardQuery& query,
                                    double deadline_seconds) const;

  /// Phase 2: retrieve candidates scored with the collection statistics.
  /// A shard whose epoch moved past `expected_epoch` answers 409, which
  /// surfaces here as FailedPrecondition — re-plan and retry.
  Result<ShardSearchRpcResponse> Search(const ShardQuery& query,
                                        const ShardGlobalStats& global,
                                        uint64_t expected_epoch,
                                        double deadline_seconds) const;

  size_t shard() const { return shard_; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  std::string address() const;

  /// Last-known state as a /v1/stats block:
  ///   {"shard", "address", "healthy", "epoch", "connection_reuses",
  ///    "connection_reconnects", "last_error"?}
  /// "healthy" reflects the most recent call (true after any success,
  /// false after any failure or before the first call completes).
  json::Value HealthJson() const;

  /// The underlying keep-alive client (reuse / reconnect counters).
  const HttpClient& http() const { return http_; }

 private:
  /// POST `body` to `path`, map non-200 answers back to their Status, and
  /// record health on the way out.
  Result<json::Value> Call(const char* path, const json::Value& body,
                           double deadline_seconds) const;

  const size_t shard_;
  const std::string host_;
  const uint16_t port_;
  mutable HttpClient http_;

  mutable std::mutex mu_;
  mutable bool healthy_ = false;
  mutable uint64_t epoch_ = 0;
  mutable std::string last_error_;
};

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_SHARD_CLIENT_H_
