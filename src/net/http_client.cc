#include "net/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "common/timer.h"

namespace newslink {
namespace net {

namespace {

/// RAII socket so every early return closes the fd.
class OwnedFd {
 public:
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

void SetSocketTimeout(int fd, int option, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// Connect with a deadline: non-blocking connect + poll, then back to
/// blocking mode (per-syscall timeouts take over from there).
Status ConnectWithDeadline(int fd, const sockaddr_in& addr, double seconds) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::IOError(StrCat("connect: ", std::strerror(errno)));
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        seconds > 0 ? static_cast<int>(seconds * 1e3) + 1 : -1;
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return Status::Timeout("connect timed out");
    if (rc < 0) return Status::IOError(StrCat("poll: ", std::strerror(errno)));
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::IOError(StrCat("connect: ", std::strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return Status::OK();
}

}  // namespace

Result<HttpClientResponse> HttpCall(std::string_view method,
                                    std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options) {
  WallTimer timer;
  const double deadline = options.deadline_seconds;
  const auto remaining = [&timer, deadline]() {
    return deadline > 0 ? deadline - timer.ElapsedSeconds() : 0.0;
  };

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string host_str(host == "localhost" ? "127.0.0.1" : host);
  if (::inet_pton(AF_INET, host_str.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("host must be a dotted-quad address, got \"", host, "\""));
  }

  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NL_RETURN_IF_ERROR(ConnectWithDeadline(fd.get(), addr, remaining()));

  std::string request = StrCat(method, " ", path, " HTTP/1.1\r\nHost: ", host,
                               ":", port, "\r\nConnection: close\r\n");
  if (!request_body.empty()) {
    request += StrCat("Content-Type: application/json\r\nContent-Length: ",
                      request_body.size(), "\r\n");
  }
  request += "\r\n";
  request.append(request_body);

  // Per-syscall timeouts track the shrinking budget; the explicit deadline
  // check in the read loop bounds the total even across many short reads.
  SetSocketTimeout(fd.get(), SO_SNDTIMEO, remaining());
  size_t sent = 0;
  while (sent < request.size()) {
    if (deadline > 0 && remaining() <= 0) {
      return Status::Timeout("send deadline exceeded");
    }
    const ssize_t n = ::send(fd.get(), request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("send timed out");
      }
      return Status::IOError(StrCat("send: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  // Read head + body. "Connection: close" means EOF ends the response;
  // Content-Length (always present from our server for non-empty bodies)
  // lets us stop as soon as the body is complete.
  std::string data;
  size_t head_end = std::string::npos;
  size_t content_length = std::string::npos;
  char buf[16384];
  while (true) {
    if (deadline > 0 && remaining() <= 0) {
      return Status::Timeout("read deadline exceeded");
    }
    SetSocketTimeout(fd.get(), SO_RCVTIMEO, remaining());
    const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("read timed out");
      }
      return Status::IOError(StrCat("recv: ", std::strerror(errno)));
    }
    if (n == 0) break;  // EOF
    data.append(buf, static_cast<size_t>(n));
    if (data.size() > options.max_body_bytes) {
      return Status::IOError("response exceeds size limit");
    }
    if (head_end == std::string::npos) {
      head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Scan the (case-insensitive) Content-Length header.
        std::string_view head(data.data(), head_end);
        size_t line_start = 0;
        while (line_start < head.size()) {
          size_t line_end = head.find("\r\n", line_start);
          if (line_end == std::string_view::npos) line_end = head.size();
          const std::string_view line =
              head.substr(line_start, line_end - line_start);
          const size_t colon = line.find(':');
          if (colon != std::string_view::npos) {
            std::string name(line.substr(0, colon));
            for (char& c : name) c = static_cast<char>(std::tolower(c));
            if (name == "content-length") {
              size_t v = colon + 1;
              while (v < line.size() && line[v] == ' ') ++v;
              content_length = 0;
              for (; v < line.size(); ++v) {
                if (line[v] < '0' || line[v] > '9') {
                  return Status::IOError("malformed Content-Length");
                }
                content_length = content_length * 10 +
                                 static_cast<size_t>(line[v] - '0');
                if (content_length > options.max_body_bytes) {
                  return Status::IOError("response exceeds size limit");
                }
              }
            }
          }
          line_start = line_end + 2;
        }
      }
    }
    if (head_end != std::string::npos &&
        content_length != std::string::npos &&
        data.size() >= head_end + 4 + content_length) {
      break;  // full body in hand; no need to wait for FIN
    }
  }

  if (head_end == std::string::npos) {
    return Status::IOError("connection closed before response head");
  }
  // Status line: "HTTP/1.1 200 OK".
  const size_t line_end = data.find("\r\n");
  std::string_view status_line(data.data(), line_end);
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > status_line.size()) {
    return Status::IOError("malformed status line");
  }
  int status = 0;
  for (size_t i = sp1 + 1; i < sp1 + 4; ++i) {
    if (status_line[i] < '0' || status_line[i] > '9') {
      return Status::IOError("malformed status code");
    }
    status = status * 10 + (status_line[i] - '0');
  }

  HttpClientResponse response;
  response.status = status;
  response.body = data.substr(head_end + 4);
  if (content_length != std::string::npos &&
      response.body.size() < content_length) {
    return Status::IOError("connection closed mid-body");
  }
  if (content_length != std::string::npos) {
    response.body.resize(content_length);
  }
  return response;
}

Result<HttpClientResponse> HttpGet(std::string_view host, uint16_t port,
                                   std::string_view path,
                                   const HttpClientOptions& options) {
  return HttpCall("GET", host, port, path, "", options);
}

Result<HttpClientResponse> HttpPost(std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options) {
  return HttpCall("POST", host, port, path, request_body, options);
}

}  // namespace net
}  // namespace newslink
