#include "net/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"

namespace newslink {
namespace net {

namespace {

/// RAII socket so every early return closes the fd.
class OwnedFd {
 public:
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  int get() const { return fd_; }
  /// Hand ownership to the caller (destructor becomes a no-op).
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_;
};

void SetSocketTimeout(int fd, int option, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// Connect with a deadline: non-blocking connect + poll, then back to
/// blocking mode (per-syscall timeouts take over from there).
Status ConnectWithDeadline(int fd, const sockaddr_in& addr, double seconds) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::IOError(StrCat("connect: ", std::strerror(errno)));
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        seconds > 0 ? static_cast<int>(seconds * 1e3) + 1 : -1;
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return Status::Timeout("connect timed out");
    if (rc < 0) return Status::IOError(StrCat("poll: ", std::strerror(errno)));
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::IOError(StrCat("connect: ", std::strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return Status::OK();
}

/// Open a connected TCP socket to host:port within `deadline_left`.
Result<int> OpenConnection(std::string_view host, uint16_t port,
                           double deadline_left) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string host_str(host == "localhost" ? "127.0.0.1" : host);
  if (::inet_pton(AF_INET, host_str.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("host must be a dotted-quad address, got \"", host, "\""));
  }
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NL_RETURN_IF_ERROR(ConnectWithDeadline(fd.get(), addr, deadline_left));
  return fd.release();
}

/// Send one serialized request within the shrinking budget.
Status SendAll(int fd, std::string_view request, const WallTimer& timer,
               double deadline) {
  const double left =
      deadline > 0 ? deadline - timer.ElapsedSeconds() : 0.0;
  SetSocketTimeout(fd, SO_SNDTIMEO, left);
  size_t sent = 0;
  while (sent < request.size()) {
    if (deadline > 0 && timer.ElapsedSeconds() >= deadline) {
      return Status::Timeout("send deadline exceeded");
    }
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("send timed out");
      }
      return Status::IOError(StrCat("send: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Read and parse one response. `reusable`, when non-null, is set to true
/// only when the response was Content-Length framed, fully consumed, and
/// the server did not announce "Connection: close" — the conditions under
/// which the next request may ride the same connection.
Result<HttpClientResponse> ReadResponse(int fd, const HttpClientOptions& options,
                                        const WallTimer& timer,
                                        bool* reusable) {
  if (reusable != nullptr) *reusable = false;
  const double deadline = options.deadline_seconds;

  std::string data;
  size_t head_end = std::string::npos;
  size_t content_length = std::string::npos;
  bool server_closes = false;
  char buf[16384];
  while (true) {
    const double left =
        deadline > 0 ? deadline - timer.ElapsedSeconds() : 0.0;
    if (deadline > 0 && left <= 0) {
      return Status::Timeout("read deadline exceeded");
    }
    SetSocketTimeout(fd, SO_RCVTIMEO, left);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("read timed out");
      }
      return Status::IOError(StrCat("recv: ", std::strerror(errno)));
    }
    if (n == 0) break;  // EOF
    data.append(buf, static_cast<size_t>(n));
    if (data.size() > options.max_body_bytes) {
      return Status::IOError("response exceeds size limit");
    }
    if (head_end == std::string::npos) {
      head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Scan the (case-insensitive) Content-Length / Connection headers.
        std::string_view head(data.data(), head_end);
        size_t line_start = 0;
        while (line_start < head.size()) {
          size_t line_end = head.find("\r\n", line_start);
          if (line_end == std::string_view::npos) line_end = head.size();
          const std::string_view line =
              head.substr(line_start, line_end - line_start);
          const size_t colon = line.find(':');
          if (colon != std::string_view::npos) {
            std::string name(line.substr(0, colon));
            for (char& c : name) c = static_cast<char>(std::tolower(c));
            std::string value(line.substr(colon + 1));
            size_t v0 = 0;
            while (v0 < value.size() && value[v0] == ' ') ++v0;
            value.erase(0, v0);
            if (name == "content-length") {
              content_length = 0;
              for (const char c : value) {
                if (c < '0' || c > '9') {
                  return Status::IOError("malformed Content-Length");
                }
                content_length =
                    content_length * 10 + static_cast<size_t>(c - '0');
                if (content_length > options.max_body_bytes) {
                  return Status::IOError("response exceeds size limit");
                }
              }
            } else if (name == "connection") {
              for (char& c : value) c = static_cast<char>(std::tolower(c));
              if (value == "close") server_closes = true;
            }
          }
          line_start = line_end + 2;
        }
      }
    }
    if (head_end != std::string::npos &&
        content_length != std::string::npos &&
        data.size() >= head_end + 4 + content_length) {
      break;  // full body in hand; no need to wait for FIN
    }
  }

  if (head_end == std::string::npos) {
    return Status::IOError("connection closed before response head");
  }
  // Status line: "HTTP/1.1 200 OK".
  const size_t line_end = data.find("\r\n");
  std::string_view status_line(data.data(), line_end);
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 + 4 > status_line.size()) {
    return Status::IOError("malformed status line");
  }
  int status = 0;
  for (size_t i = sp1 + 1; i < sp1 + 4; ++i) {
    if (status_line[i] < '0' || status_line[i] > '9') {
      return Status::IOError("malformed status code");
    }
    status = status * 10 + (status_line[i] - '0');
  }

  HttpClientResponse response;
  response.status = status;
  response.body = data.substr(head_end + 4);
  if (content_length != std::string::npos &&
      response.body.size() < content_length) {
    return Status::IOError("connection closed mid-body");
  }
  if (content_length != std::string::npos) {
    // Exactly the framed body survived (no trailing bytes): only then is
    // the connection positioned at a request boundary and safe to reuse.
    if (reusable != nullptr) {
      *reusable = !server_closes && response.body.size() == content_length;
    }
    response.body.resize(content_length);
  }
  return response;
}

std::string SerializeRequest(std::string_view method, std::string_view host,
                             uint16_t port, std::string_view path,
                             std::string_view request_body, bool keep_alive) {
  std::string request =
      StrCat(method, " ", path, " HTTP/1.1\r\nHost: ", host, ":", port,
             keep_alive ? "\r\nConnection: keep-alive\r\n"
                        : "\r\nConnection: close\r\n");
  if (!request_body.empty()) {
    request += StrCat("Content-Type: application/json\r\nContent-Length: ",
                      request_body.size(), "\r\n");
  }
  request += "\r\n";
  request.append(request_body);
  return request;
}

}  // namespace

Result<HttpClientResponse> HttpCall(std::string_view method,
                                    std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options) {
  WallTimer timer;
  const double deadline = options.deadline_seconds;
  NL_ASSIGN_OR_RETURN(
      const int raw_fd,
      OpenConnection(host, port,
                     deadline > 0 ? deadline - timer.ElapsedSeconds() : 0.0));
  OwnedFd fd(raw_fd);
  const std::string request = SerializeRequest(method, host, port, path,
                                               request_body,
                                               /*keep_alive=*/false);
  NL_RETURN_IF_ERROR(SendAll(fd.get(), request, timer, deadline));
  return ReadResponse(fd.get(), options, timer, nullptr);
}

Result<HttpClientResponse> HttpGet(std::string_view host, uint16_t port,
                                   std::string_view path,
                                   const HttpClientOptions& options) {
  return HttpCall("GET", host, port, path, "", options);
}

Result<HttpClientResponse> HttpPost(std::string_view host, uint16_t port,
                                    std::string_view path,
                                    std::string_view request_body,
                                    const HttpClientOptions& options) {
  return HttpCall("POST", host, port, path, request_body, options);
}

// --- HttpClient (keep-alive pool) ----------------------------------------

HttpClient::HttpClient(std::string host, uint16_t port, size_t max_idle)
    : host_(std::move(host)), port_(port), max_idle_(max_idle) {}

HttpClient::~HttpClient() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : idle_) ::close(fd);
  idle_.clear();
}

int HttpClient::PopIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.empty()) return -1;
  const int fd = idle_.back();
  idle_.pop_back();
  return fd;
}

void HttpClient::ParkOrClose(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (idle_.size() < max_idle_) {
      idle_.push_back(fd);
      return;
    }
  }
  ::close(fd);
}

Result<HttpClientResponse> HttpClient::Call(std::string_view method,
                                            std::string_view path,
                                            std::string_view request_body,
                                            const HttpClientOptions& options) {
  WallTimer timer;
  const double deadline = options.deadline_seconds;
  const auto remaining = [&timer, deadline]() {
    return deadline > 0 ? deadline - timer.ElapsedSeconds() : 0.0;
  };
  const std::string request = SerializeRequest(method, host_, port_, path,
                                               request_body,
                                               /*keep_alive=*/true);

  OwnedFd fd(PopIdle());
  bool reused = fd.get() >= 0;
  if (reused) {
    reuses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    NL_ASSIGN_OR_RETURN(const int fresh,
                        OpenConnection(host_, port_, remaining()));
    fd.reset(fresh);
    opened_.fetch_add(1, std::memory_order_relaxed);
  }

  for (int attempt = 0;; ++attempt) {
    const Status send_status = SendAll(fd.get(), request, timer, deadline);
    bool reusable = false;
    Result<HttpClientResponse> response =
        send_status.ok()
            ? ReadResponse(fd.get(), options, timer, &reusable)
            : Result<HttpClientResponse>(send_status);
    if (response.ok()) {
      if (reusable) {
        ParkOrClose(fd.release());
      }
      return response;
    }
    // A REUSED connection that fails at the transport layer (EPIPE on
    // send, reset, or EOF before the response head) has almost certainly
    // been closed by the server while idle — retry ONCE on a fresh
    // connection. Timeouts are not retried (the server may be processing
    // the request), and fresh-connection failures are real errors.
    const bool stale_candidate =
        reused && attempt == 0 && response.status().IsIOError();
    if (!stale_candidate) return response.status();
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    NL_ASSIGN_OR_RETURN(const int fresh,
                        OpenConnection(host_, port_, remaining()));
    fd.reset(fresh);
    opened_.fetch_add(1, std::memory_order_relaxed);
    reused = false;
  }
}

Result<HttpClientResponse> HttpClient::Get(std::string_view path,
                                           const HttpClientOptions& options) {
  return Call("GET", path, "", options);
}

Result<HttpClientResponse> HttpClient::Post(std::string_view path,
                                            std::string_view request_body,
                                            const HttpClientOptions& options) {
  return Call("POST", path, request_body, options);
}

}  // namespace net
}  // namespace newslink
