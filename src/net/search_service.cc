#include "net/search_service.h"

#include <chrono>
#include <mutex>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "net/api_json.h"
#include "net/status_http.h"

namespace newslink {
namespace net {

namespace {

HttpResponse JsonOk(const json::Value& body, int status = 200) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  response.body.push_back('\n');
  return response;
}

}  // namespace

SearchService::SearchService(newslink::NewsLinkEngine* engine,
                             corpus::Corpus* corpus,
                             const kg::KnowledgeGraph* graph,
                             SearchServiceOptions options)
    : engine_(engine), corpus_(corpus), graph_(graph), options_(options) {
  metrics::Registry* registry = engine_->mutable_metrics();
  rejected_ = registry->GetCounter(
      kSearchRejected, "searches refused by admission control");
  ingested_ = registry->GetCounter(kDocumentsIngested,
                                   "documents ingested over HTTP");
  current_epoch_ = registry->GetGauge(newslink::kCurrentEpoch,
                                      "latest published epoch");
}

void SearchService::RegisterRoutes(HttpServer* server) {
  server->Handle("POST", "/v1/search",
                 [this](const HttpRequest& r) { return HandleSearch(r); });
  server->Handle("POST", "/v1/documents", [this](const HttpRequest& r) {
    return HandleAddDocument(r);
  });
  if (explore_ != nullptr) {
    server->Handle("POST", "/v1/explore",
                   [this](const HttpRequest& r) { return HandleExplore(r); });
  }
  server->Handle("GET", "/metrics",
                 [this](const HttpRequest& r) { return HandleMetrics(r); });
  server->Handle("GET", "/healthz",
                 [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Handle("GET", "/v1/stats",
                 [this](const HttpRequest& r) { return HandleStats(r); });
  server->Handle("POST", "/v1/shard/plan", [this](const HttpRequest& r) {
    return HandleShardPlan(r);
  });
  server->Handle("POST", "/v1/shard/search", [this](const HttpRequest& r) {
    return HandleShardSearch(r);
  });
}

HttpResponse SearchService::HandleShardPlan(const HttpRequest& request) const {
  Result<json::Value> body = DecodeEnvelope(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  Result<ShardPlanRpcRequest> decoded = ShardPlanRequestFromJson(*body);
  if (!decoded.ok()) return ErrorResponse(decoded.status());

  ShardPlanRpcResponse response;
  response.shard = decoded->shard;
  response.plan = engine_->PlanShard(decoded->query, engine_->PinEpoch());
  return JsonOk(ShardPlanResponseToJson(response));
}

HttpResponse SearchService::HandleShardSearch(
    const HttpRequest& request) const {
  Result<json::Value> body = DecodeEnvelope(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  Result<ShardSearchRpcRequest> decoded = ShardSearchRequestFromJson(*body);
  if (!decoded.ok()) return ErrorResponse(decoded.status());

  // Both phases must read one epoch: if ingestion published since the
  // plan, answer 409 so the coordinator re-plans with fresh statistics
  // instead of scoring this shard against another epoch's collection.
  const newslink::ShardEpochPin pin = engine_->PinEpoch();
  if (pin.epoch() != decoded->expected_epoch) {
    return ErrorResponse(Status::FailedPrecondition(
        StrCat("shard epoch moved: plan saw ", decoded->expected_epoch,
               ", current is ", pin.epoch())));
  }
  ShardSearchRpcResponse response;
  response.shard = decoded->shard;
  response.result = engine_->SearchShard(decoded->query, decoded->global, pin);
  return JsonOk(ShardSearchResponseToJson(response));
}

HttpResponse SearchService::HandleSearch(const HttpRequest& request) {
  // Decode before admitting: malformed requests should cost a 400, not an
  // admission slot.
  Result<SearchEnvelope> envelope =
      DecodeSearchEnvelope(request.body, options_.max_batch);
  if (!envelope.ok()) return ErrorResponse(envelope.status());
  const bool batched = envelope->batched;
  std::vector<baselines::SearchRequest>& requests = envelope->requests;

  // Admission: one slot per HTTP request, batch or not.
  if (inflight_searches_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_inflight_searches) {
    inflight_searches_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_->Inc();
    return ErrorResponseAt(503, "search admission limit reached");
  }

  std::vector<baselines::SearchResponse> responses =
      batched ? engine_->SearchBatch(requests)
              : std::vector<baselines::SearchResponse>{
                    engine_->Search(requests.front())};
  inflight_searches_.fetch_sub(1, std::memory_order_acq_rel);

  // Corpus reads (titles) happen under the shared lock; every doc_index in
  // a response is < its snapshot_docs <= corpus size (ingest appends the
  // corpus before publishing the epoch).
  std::shared_lock<std::shared_mutex> lock(corpus_mu_);
  if (batched) {
    json::Value out = json::Value::Array();
    for (const baselines::SearchResponse& response : responses) {
      out.Append(SearchResponseToJson(response, corpus_, graph_));
    }
    return JsonOk(out);
  }
  return JsonOk(SearchResponseToJson(responses.front(), corpus_, graph_));
}

HttpResponse SearchService::HandleExplore(const HttpRequest& request) {
  if (explore_ == nullptr) {
    return ErrorResponse(
        Status::FailedPrecondition("exploration is not enabled"));
  }
  Result<json::Value> body = DecodeEnvelope(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  Result<ExploreRpcRequest> decoded = ExploreRequestFromJson(*body);
  if (!decoded.ok()) return ErrorResponse(decoded.status());

  Result<newslink::ExploreResult> result = [&]() {
    if (!decoded->query.empty()) {
      baselines::SearchRequest search;
      search.query = decoded->query;
      search.k = decoded->k;  // 0 = the explore engine's default
      search.beta = decoded->beta;
      search.deadline_seconds = decoded->deadline_seconds;
      // The session explores the time-windowed result set: the filter
      // rides the underlying search, so every bucket and drill-down view
      // is cut from window-admitted documents only.
      search.time_range = decoded->time_range;
      return explore_->StartSession(search);
    }
    if (decoded->has_drill) {
      return explore_->DrillDown(decoded->session, decoded->drill);
    }
    if (decoded->up) return explore_->RollUp(decoded->session);
    return explore_->View(decoded->session);
  }();
  if (!result.ok()) return ErrorResponse(result.status());

  // Titles render under the shared corpus lock; every cached doc_index is
  // < its session's snapshot_docs <= corpus size, however much ingestion
  // has happened since the session pinned its epoch.
  std::shared_lock<std::shared_mutex> lock(corpus_mu_);
  return JsonOk(ExploreResultToJson(*result, corpus_, graph_));
}

HttpResponse SearchService::HandleAddDocument(const HttpRequest& request) {
  Result<json::Value> body = DecodeEnvelope(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  Result<corpus::Document> decoded = DocumentFromJson(*body);
  if (!decoded.ok()) return ErrorResponse(decoded.status());
  corpus::Document doc = std::move(*decoded);

  size_t doc_index = 0;
  {
    // Exclusive: the corpus append must be visible before the engine
    // publishes the epoch that can return this doc_index.
    std::unique_lock<std::shared_mutex> lock(corpus_mu_);
    if (doc.id.empty()) doc.id = StrCat("live-", corpus_->size());
    // A streamed document without an explicit publication time is "news
    // breaking now": stamp the ingestion wall clock so recency ranking and
    // time-range search see it immediately.
    if (doc.timestamp_ms == 0) {
      doc.timestamp_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count();
    }
    corpus_->Add(doc);
    doc_index = engine_->AddDocument(doc);
  }
  ingested_->Inc();

  json::Value out = json::Value::Object();
  out.Set("doc_index", json::Value::Uint(doc_index));
  out.Set("doc_id", json::Value::Str(doc.id));
  out.Set("epoch",
          json::Value::Uint(static_cast<uint64_t>(current_epoch_->Value())));
  return JsonOk(out, 201);
}

HttpResponse SearchService::HandleMetrics(const HttpRequest&) const {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = engine_->Metrics().RenderPrometheus();
  return response;
}

HttpResponse SearchService::HandleHealth(const HttpRequest&) const {
  json::Value out = json::Value::Object();
  out.Set("status", json::Value::Str("ok"));
  out.Set("engine", json::Value::Str(engine_->name()));
  return JsonOk(out);
}

HttpResponse SearchService::HandleStats(const HttpRequest&) const {
  json::Value out = json::Value::Object();
  out.Set("engine", json::Value::Str(engine_->name()));
  {
    std::shared_lock<std::shared_mutex> lock(corpus_mu_);
    out.Set("docs", json::Value::Uint(corpus_->size()));
  }
  out.Set("epoch",
          json::Value::Uint(static_cast<uint64_t>(current_epoch_->Value())));
  // The registry renders itself to JSON text; re-parse so it nests as a
  // real object instead of an escaped string.
  Result<json::Value> registry_json =
      json::Parse(engine_->Metrics().RenderJson());
  if (registry_json.ok()) out.Set("metrics", std::move(*registry_json));
  return JsonOk(out);
}

}  // namespace net
}  // namespace newslink
