#include "net/coordinator_service.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "net/api_json.h"
#include "net/search_service.h"
#include "net/status_http.h"
#include "newslink/shard_merge.h"

namespace newslink {
namespace net {

namespace {

HttpResponse JsonOk(const json::Value& body, int status = 200) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  response.body.push_back('\n');
  return response;
}

}  // namespace

CoordinatorService::CoordinatorService(
    const newslink::NewsLinkEngine* prep, NewsLinkConfig config,
    std::vector<std::unique_ptr<ShardClient>> shards,
    CoordinatorOptions options)
    : prep_(prep),
      config_(config),
      shards_(std::move(shards)),
      options_(options),
      pool_(std::max<size_t>(shards_.size(), 1)),
      queries_(prep_->mutable_metrics()->GetCounter(baselines::kEngineQueries)),
      query_seconds_(prep_->mutable_metrics()->GetHistogram(
          baselines::kEngineQuerySeconds)),
      degraded_(prep_->mutable_metrics()->GetCounter(
          kCoordinatorDegraded, "responses merged over a partial shard set")),
      shard_errors_(prep_->mutable_metrics()->GetCounter(
          kCoordinatorShardErrors, "shard RPCs that failed or timed out")),
      rejected_(prep_->mutable_metrics()->GetCounter(
          kSearchRejected, "searches refused by admission control")) {
  NL_CHECK(!shards_.empty()) << "coordinator needs at least one shard";
}

std::string CoordinatorService::name() const {
  return StrCat("Coordinator[", shards_.size(), " shards]");
}

void CoordinatorService::RegisterRoutes(HttpServer* server) {
  server->Handle("POST", "/v1/search",
                 [this](const HttpRequest& r) { return HandleSearch(r); });
  server->Handle("GET", "/metrics",
                 [this](const HttpRequest& r) { return HandleMetrics(r); });
  server->Handle("GET", "/healthz",
                 [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Handle("GET", "/v1/stats",
                 [this](const HttpRequest& r) { return HandleStats(r); });
}

baselines::SearchResponse CoordinatorService::Search(
    const baselines::SearchRequest& request) const {
  const double beta = request.beta.value_or(config_.beta);
  const size_t k = request.k;
  const size_t n = shards_.size();

  WallTimer deadline_timer;
  const double deadline = request.deadline_seconds.value_or(0.0);
  // Budget for the next shard RPC: the per-shard cap, tightened by
  // whatever remains of the request's own deadline. <= 0 means the
  // request deadline already passed — skip the call entirely.
  const auto wire_budget = [this, &deadline_timer, deadline]() {
    double budget = options_.shard_deadline_seconds;
    if (deadline > 0.0) {
      const double left = deadline - deadline_timer.ElapsedSeconds();
      budget = budget > 0.0 ? std::min(budget, left) : left;
      if (left <= 0.0) return -1.0;
    }
    return budget;
  };

  Trace query_trace;
  // Anchor for the hand-spliced shard spans below (a Trace is
  // single-threaded; shard wall times are recorded in the workers).
  WallTimer trace_timer;
  const size_t root_handle = query_trace.Begin("search");

  baselines::SearchResponse response;
  response.shards_total = n;

  // --- NLP + NE on the query: once, at the coordinator ------------------
  embed::DocumentEmbedding query_embedding;
  {
    ScopedSpan span(&query_trace, "nlp");
    const text::SegmentedDocument segmented =
        prep_->SegmentText(request.query);
    query_trace.Note("segments", std::to_string(segmented.segments.size()));
  }
  {
    ScopedSpan span(&query_trace, "ne");
    if (beta > 0.0) {
      query_embedding = prep_->EmbedText(request.query);
    } else {
      query_trace.Note("skipped", "beta=0");
    }
  }

  // --- NS: two-phase scatter-gather over RPC ------------------------------
  std::vector<std::unique_ptr<ShardSearchResult>> results(n);
  std::vector<std::string> shard_errors(n);
  std::vector<double> shard_start(n, 0.0);
  std::vector<double> shard_seconds(n, 0.0);
  std::atomic<bool> timed_out{false};
  {
    ScopedSpan span(&query_trace, "ns");
    const ShardQuery shard_query =
        prep_->PrepareShardQuery(request, query_embedding);

    // Whether any answering shard holds real timestamps (drives the merge's
    // recency decay); re-derived per round with the rest of the merged plan.
    bool collection_has_timestamps = false;
    // A shard whose epoch moves between PLAN and SEARCH answers 409; the
    // whole round restarts once, because its new statistics change the
    // collection-wide view every other shard scored with.
    for (int round = 0; round < 2; ++round) {
      std::vector<std::optional<ShardPlan>> plans(n);
      pool_.ParallelFor(n, [&](size_t s) {
        const double budget = wire_budget();
        if (budget <= 0.0 && deadline > 0.0) {
          shard_errors[s] = "TIMEOUT: request deadline exhausted";
          timed_out.store(true, std::memory_order_relaxed);
          return;
        }
        Result<ShardPlanRpcResponse> plan =
            shards_[s]->Plan(shard_query, budget);
        if (plan.ok()) {
          plans[s] = std::move(plan->plan);
          shard_errors[s].clear();
        } else {
          shard_errors[s] = plan.status().ToString();
          if (plan.status().IsTimeout()) {
            timed_out.store(true, std::memory_order_relaxed);
          }
        }
      });

      ShardGlobalStats global;
      size_t planned = 0;
      for (const std::optional<ShardPlan>& plan : plans) {
        if (plan.has_value()) {
          MergeShardPlan(*plan, &global);
          ++planned;
        }
      }
      if (planned == 0) break;
      collection_has_timestamps = global.has_timestamps;

      std::atomic<bool> epoch_moved{false};
      pool_.ParallelFor(n, [&](size_t s) {
        if (!plans[s].has_value()) return;
        const double budget = wire_budget();
        if (budget <= 0.0 && deadline > 0.0) {
          shard_errors[s] = "TIMEOUT: request deadline exhausted";
          timed_out.store(true, std::memory_order_relaxed);
          return;
        }
        shard_start[s] = trace_timer.ElapsedSeconds();
        WallTimer timer;
        Result<ShardSearchRpcResponse> result =
            shards_[s]->Search(shard_query, global, plans[s]->epoch, budget);
        shard_seconds[s] = timer.ElapsedSeconds();
        if (result.ok()) {
          results[s] =
              std::make_unique<ShardSearchResult>(std::move(result->result));
          shard_errors[s].clear();
        } else {
          shard_errors[s] = result.status().ToString();
          if (result.status().IsFailedPrecondition()) {
            epoch_moved.store(true, std::memory_order_relaxed);
          }
          if (result.status().IsTimeout()) {
            timed_out.store(true, std::memory_order_relaxed);
          }
        }
      });
      if (!epoch_moved.load(std::memory_order_relaxed)) break;
      if (round == 0) {
        // Results scored against the stale merge must not mix with the
        // retry's — drop everything and re-plan at the new epochs.
        for (std::unique_ptr<ShardSearchResult>& r : results) r.reset();
      }
    }

    ShardFuseParams fuse;
    fuse.beta = beta;
    fuse.use_bow = shard_query.use_bow;
    fuse.use_bon = shard_query.use_bon;
    fuse.k = k;
    fuse.recency_half_life_s = shard_query.recency_half_life_s;
    fuse.now_ms = shard_query.now_ms;
    fuse.has_timestamps = collection_has_timestamps;
    std::vector<const ShardSearchResult*> ptrs(n);
    for (size_t s = 0; s < n; ++s) ptrs[s] = results[s].get();
    // Round-robin partition: shard s's local row l is global row l*n + s.
    const std::vector<ir::ScoredDoc> merged = MergeShardCandidates(
        fuse, ptrs, [n](size_t s, uint32_t local) {
          return static_cast<uint32_t>(local * n + s);
        });
    response.hits.reserve(merged.size());
    for (const ir::ScoredDoc& scored : merged) {
      baselines::SearchHit hit;
      hit.doc_index = scored.doc;
      hit.score = scored.score;
      response.hits.push_back(std::move(hit));
    }
    query_trace.Note("shards", std::to_string(n));
  }

  for (size_t s = 0; s < n; ++s) {
    if (results[s] == nullptr) continue;
    ++response.shards_answered;
    response.epoch += results[s]->epoch;
    response.snapshot_docs += results[s]->snapshot_docs;
  }
  response.degraded = response.shards_answered < response.shards_total;
  if (response.degraded) degraded_->Inc();
  if (timed_out.load(std::memory_order_relaxed)) {
    response.deadline_exceeded = true;
    query_trace.Note("deadline_exceeded", "true");
  }
  for (const std::string& error : shard_errors) {
    if (!error.empty()) shard_errors_->Inc();
  }

  query_trace.End(root_handle);
  TraceSpan root = query_trace.Finish();
  // One span child per shard under "ns", timed in the workers above.
  for (TraceSpan& child : root.children) {
    if (child.name != "ns") continue;
    for (size_t s = 0; s < n; ++s) {
      TraceSpan shard_span;
      shard_span.name = StrCat("shard", s);
      shard_span.start_seconds = shard_start[s];
      shard_span.duration_seconds = shard_seconds[s];
      if (results[s] != nullptr) {
        shard_span.notes.push_back(
            {"epoch", std::to_string(results[s]->epoch)});
        shard_span.notes.push_back(
            {"candidates", std::to_string(results[s]->candidates.size())});
      } else {
        shard_span.notes.push_back({"error", shard_errors[s]});
      }
      child.children.push_back(std::move(shard_span));
    }
    break;
  }

  queries_->Inc();
  query_seconds_->Observe(root.duration_seconds);
  response.timings = SpanBreakdown(root);
  if (request.trace) response.trace = std::move(root);
  return response;
}

HttpResponse CoordinatorService::HandleSearch(const HttpRequest& request) {
  Result<SearchEnvelope> envelope =
      DecodeSearchEnvelope(request.body, options_.max_batch);
  if (!envelope.ok()) return ErrorResponse(envelope.status());
  const bool batched = envelope->batched;
  std::vector<baselines::SearchRequest>& requests = envelope->requests;
  for (const baselines::SearchRequest& r : requests) {
    if (r.explain) {
      return ErrorResponse(Status::InvalidArgument(
          "\"explain\" is not available on a coordinator (document "
          "embeddings live on the shards; query a shard directly)"));
    }
  }

  if (inflight_searches_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_inflight_searches) {
    inflight_searches_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_->Inc();
    return ErrorResponseAt(503, "search admission limit reached");
  }
  std::vector<baselines::SearchResponse> responses(requests.size());
  pool_.ParallelFor(requests.size(),
                    [&](size_t i) { responses[i] = Search(requests[i]); });
  inflight_searches_.fetch_sub(1, std::memory_order_acq_rel);

  // No corpus or graph here: hits carry indices and scores only.
  if (batched) {
    json::Value out = json::Value::Array();
    for (const baselines::SearchResponse& response : responses) {
      out.Append(SearchResponseToJson(response, nullptr, nullptr));
    }
    return JsonOk(out);
  }
  return JsonOk(SearchResponseToJson(responses.front(), nullptr, nullptr));
}

HttpResponse CoordinatorService::HandleStats(const HttpRequest&) const {
  json::Value out = json::Value::Object();
  out.Set("engine", json::Value::Str(name()));
  out.Set("shards_total",
          json::Value::Uint(static_cast<uint64_t>(shards_.size())));
  json::Value shard_blocks = json::Value::Array();
  for (const std::unique_ptr<ShardClient>& shard : shards_) {
    shard_blocks.Append(shard->HealthJson());
  }
  out.Set("shards", std::move(shard_blocks));
  Result<json::Value> registry_json =
      json::Parse(prep_->Metrics().RenderJson());
  if (registry_json.ok()) out.Set("metrics", std::move(*registry_json));
  return JsonOk(out);
}

HttpResponse CoordinatorService::HandleHealth(const HttpRequest&) const {
  json::Value out = json::Value::Object();
  out.Set("status", json::Value::Str("ok"));
  out.Set("engine", json::Value::Str(name()));
  return JsonOk(out);
}

HttpResponse CoordinatorService::HandleMetrics(const HttpRequest&) const {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = prep_->Metrics().RenderPrometheus();
  return response;
}

}  // namespace net
}  // namespace newslink
