// HTTP/1.1 wire types: request/response structs, an incremental
// request parser with hard limits, and the response serializer
// (DESIGN.md Sec. 10). Dependency-free — the server speaks exactly the
// subset the NewsLink API needs: identity bodies sized by Content-Length,
// keep-alive, no chunked transfer coding (501 on request).
//
// The parser is a byte-feed state machine: hand it whatever recv()
// produced and it answers "need more", "one request complete", or "this
// connection is unsalvageable" with the HTTP status to send back. Limits
// (header bytes, body bytes, header count) are enforced *while* reading,
// so an abusive client cannot balloon memory before being rejected.

#ifndef NEWSLINK_NET_HTTP_H_
#define NEWSLINK_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace newslink {
namespace net {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;   // uppercase token, e.g. "POST"
  std::string target;   // origin-form path, e.g. "/v1/search"
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this name, case-insensitively; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;

  /// Connection persistence: HTTP/1.1 defaults to keep-alive unless the
  /// client sent "Connection: close"; HTTP/1.0 requires an explicit
  /// "Connection: keep-alive".
  bool KeepAlive() const;
};

/// \brief One response to serialize.
struct HttpResponse {
  int status = 200;
  /// Content-Type of `body`; the serializer emits it (with Content-Length)
  /// unless the body is empty.
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Canonical reason phrase ("OK", "Not Found", ...); "Unknown" otherwise.
std::string_view HttpReasonPhrase(int status);

/// Serialize status line + headers + body. `keep_alive` controls the
/// Connection header the server advertises back.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// \brief Hard limits enforced while parsing a request.
struct HttpParserLimits {
  size_t max_head_bytes = 16 * 1024;        // request line + headers
  size_t max_body_bytes = 4 * 1024 * 1024;  // Content-Length ceiling
  size_t max_headers = 64;
};

/// \brief Incremental parser for one connection.
///
/// Feed bytes with Consume until it reports kComplete (read the request,
/// then Reset for the next keep-alive request — pipelined leftover bytes
/// carry over) or kError (send error_status() and close). Not thread-safe;
/// one parser per connection.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpRequestParser(HttpParserLimits limits = {})
      : limits_(limits) {}

  /// Append bytes from the socket and advance the state machine.
  State Consume(std::string_view bytes);

  State state() const { return state_; }

  /// Valid only in kComplete.
  const HttpRequest& request() const { return request_; }

  /// Valid only in kError: the 4xx/5xx to answer before closing.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Discard the completed request and start parsing the next one from any
  /// leftover (pipelined) bytes already consumed.
  void Reset();

 private:
  State Fail(int status, std::string_view message);
  /// Try to finish head / body parsing from buffer_.
  State Advance();
  State ParseHead(size_t head_end, size_t separator_len);

  HttpParserLimits limits_;
  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kNeedMore;
  bool head_done_ = false;
  size_t body_expected_ = 0;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_HTTP_H_
