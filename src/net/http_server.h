// net::HttpServer — the from-scratch HTTP/1.1 serving layer (DESIGN.md
// Sec. 10): one listener + accept thread, a worker pool (common/ThreadPool)
// owning one connection per task, per-connection read/write timeouts,
// request-size limits, keep-alive, connection-level admission control, and
// graceful drain (stop accepting, let in-flight requests finish, join).
//
// Threading model: Start() spawns the accept thread; each accepted
// connection is handed to the pool, whose worker runs the connection's
// whole keep-alive loop (read → route → handler → write). Handlers run on
// worker threads and must be thread-safe across each other — the engine's
// request-scoped Search API is exactly that.
//
// Drain semantics: Shutdown() (idempotent, callable from any thread or a
// signal-watcher) closes the listener so no new connection is admitted,
// half-closes idle connections so blocked readers wake, lets every
// in-flight request complete and its response flush, then joins all
// threads. Queued-but-unstarted connections receive 503.

#ifndef NEWSLINK_NET_HTTP_SERVER_H_
#define NEWSLINK_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/http.h"

namespace newslink {
namespace net {

/// Registry series maintained by the server.
inline constexpr std::string_view kHttpConnections = "http_connections_total";
inline constexpr std::string_view kHttpConnectionsRejected =
    "http_connections_rejected_total";
inline constexpr std::string_view kHttpRequests = "http_requests_total";
inline constexpr std::string_view kHttpRequestErrors =
    "http_request_errors_total";
inline constexpr std::string_view kHttpRequestSeconds = "http_request_seconds";
inline constexpr std::string_view kHttpInflightRequests =
    "http_inflight_requests";

/// Path component of a request target ("/v1/stats?format=json" → "/v1/stats").
std::string_view PathOf(std::string_view target);

/// Value of `key` in the target's query string ("" when absent). Handles
/// '&'-separated pairs; no percent-decoding (API parameters are tokens).
std::string QueryParam(std::string_view target, std::string_view key);

struct HttpServerOptions {
  /// Dotted-quad address to bind ("127.0.0.1" loopback, "0.0.0.0" all).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read the choice from port()).
  uint16_t port = 0;
  /// Worker threads == maximum concurrently-served connections
  /// (0 = hardware concurrency).
  size_t num_workers = 8;
  /// Admission control: accepted-but-unfinished connections beyond this
  /// bound are answered 503 immediately (never parsed). 0 = unlimited.
  size_t max_connections = 256;
  /// Per-connection socket timeouts. A read timeout mid-request answers
  /// 408; on an idle keep-alive connection it just closes.
  double read_timeout_seconds = 10.0;
  double write_timeout_seconds = 10.0;
  /// Request parsing limits (head bytes, body bytes, header count).
  HttpParserLimits limits;
  /// Serve multiple requests per connection.
  bool keep_alive = true;
  size_t max_requests_per_connection = 1024;
};

/// \brief Minimal multi-threaded HTTP/1.1 server.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `registry`, when given, receives the http_* series (and must outlive
  /// the server); nullptr gives the server a private registry.
  explicit HttpServer(HttpServerOptions options = {},
                      metrics::Registry* registry = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-path route (query strings are stripped before
  /// matching). Must be called before Start().
  void Handle(std::string method, std::string path, Handler handler);

  /// Bind, listen, and start accepting. Fails with IOError when the
  /// address or port is unavailable.
  Status Start();

  /// The bound port (after Start(); useful with options.port == 0).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Graceful drain; blocks until every worker finished. Idempotent and
  /// safe to call concurrently (later callers wait for the first).
  void Shutdown();

 private:
  struct Route {
    std::string method;
    std::string path;
    Handler handler;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Route a parsed request; never fails (404/405 fall out here).
  HttpResponse Dispatch(const HttpRequest& request);
  /// Best-effort full write honoring the socket's write timeout.
  bool WriteAll(int fd, std::string_view bytes);

  HttpServerOptions options_;
  std::unique_ptr<metrics::Registry> owned_registry_;
  metrics::Registry* registry_;
  metrics::Counter* connections_;
  metrics::Counter* connections_rejected_;
  metrics::Counter* requests_;
  metrics::Counter* request_errors_;
  metrics::Histogram* request_seconds_;
  metrics::Gauge* inflight_;

  std::vector<Route> routes_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  /// Connections currently owned by a worker or queued for one.
  std::atomic<size_t> open_connections_{0};
  std::mutex conns_mu_;
  std::unordered_set<int> active_fds_;  // guarded by conns_mu_

  std::mutex shutdown_mu_;  // serializes concurrent Shutdown callers
  bool shutdown_done_ = false;
};

}  // namespace net
}  // namespace newslink

#endif  // NEWSLINK_NET_HTTP_SERVER_H_
