#include "ir/reorder.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace newslink {
namespace ir {

std::vector<uint32_t> SignatureSortOrder(
    std::span<const uint64_t> signatures) {
  std::vector<uint32_t> order(signatures.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (signatures[a] != signatures[b]) return signatures[a] < signatures[b];
    return a < b;
  });
  return order;
}

std::vector<uint32_t> InvertPermutation(std::span<const uint32_t> order) {
  std::vector<uint32_t> inverse(order.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    NL_DCHECK(order[i] < order.size());
    inverse[order[i]] = i;
  }
  return inverse;
}

bool IsPermutation(std::span<const uint32_t> ids) {
  std::vector<bool> seen(ids.size(), false);
  for (const uint32_t id : ids) {
    if (id >= ids.size() || seen[id]) return false;
    seen[id] = true;
  }
  return true;
}

}  // namespace ir
}  // namespace newslink
