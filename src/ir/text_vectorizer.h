// Text -> sparse term-count vectors: tokenization, stopword removal and
// Porter stemming, shared by every BOW-based engine.

#ifndef NEWSLINK_IR_TEXT_VECTORIZER_H_
#define NEWSLINK_IR_TEXT_VECTORIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "ir/inverted_index.h"
#include "ir/term_dictionary.h"

namespace newslink {
namespace ir {

/// A query as (stem, count) pairs, sorted by stem — the dictionary-free
/// representation that means the same thing to every index. This is what
/// travels between a search coordinator and its shards: local term ids are
/// meaningless across dictionaries, stems are not.
using StemCounts = std::vector<std::pair<std::string, uint32_t>>;

/// \brief Stateless pipeline around a TermDictionary.
class TextVectorizer {
 public:
  /// Counts for indexing: new terms are interned into `dict`.
  /// Output is sorted by term id; stopwords and single characters dropped.
  static TermCounts CountsForIndexing(const std::string& text,
                                      TermDictionary* dict);

  /// Counts for querying: unknown terms are dropped (they match nothing).
  /// Output order is the canonical stem order of StemsForQuery, NOT term-id
  /// order, so every dictionary maps the same query to the same term
  /// *sequence* (scoring accumulates per-doc contributions in query order;
  /// a canonical order makes shard scores bit-equal to single-index ones).
  static TermCounts CountsForQuery(const std::string& text,
                                   const TermDictionary& dict);

  /// The query pipeline without a dictionary: tokenize, drop stopwords and
  /// single characters, Porter-stem, count. Sorted by stem.
  static StemCounts StemsForQuery(const std::string& text);

  /// Map prepared stems through `dict`, preserving their order; unknown
  /// stems are dropped. CountsForQuery == CountsFromStems(StemsForQuery).
  static TermCounts CountsFromStems(const StemCounts& stems,
                                    const TermDictionary& dict);
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_TEXT_VECTORIZER_H_
