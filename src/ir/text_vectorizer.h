// Text -> sparse term-count vectors: tokenization, stopword removal and
// Porter stemming, shared by every BOW-based engine.

#ifndef NEWSLINK_IR_TEXT_VECTORIZER_H_
#define NEWSLINK_IR_TEXT_VECTORIZER_H_

#include <string>

#include "ir/inverted_index.h"
#include "ir/term_dictionary.h"

namespace newslink {
namespace ir {

/// \brief Stateless pipeline around a TermDictionary.
class TextVectorizer {
 public:
  /// Counts for indexing: new terms are interned into `dict`.
  /// Output is sorted by term id; stopwords and single characters dropped.
  static TermCounts CountsForIndexing(const std::string& text,
                                      TermDictionary* dict);

  /// Counts for querying: unknown terms are dropped (they match nothing).
  static TermCounts CountsForQuery(const std::string& text,
                                   const TermDictionary& dict);
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_TEXT_VECTORIZER_H_
