// Variable-byte (VByte) compression for posting lists: doc-id deltas and
// term frequencies encoded in 7-bit groups with a continuation bit — the
// classic space/speed point for inverted indexes (Scholer et al. 2002).
// CompressedPostingList stores (delta-gap docids, tf) streams ~3-5x smaller
// than raw Posting vectors while decoding at memory speed.
//
// The list is laid out in fixed-size blocks of kPostingBlockSize postings
// (Ding & Suel's block-max organization): each block carries its first/last
// doc id, its maximum term frequency, and the byte offset of its encoded
// payload, so a reader can skip whole blocks whose max-tf bound cannot
// matter and decode any block independently of the rest of the stream.
//
// Every decode path is bounds-checked and returns Status: truncated
// streams, overlong or >32-bit encodings, zero gaps/frequencies, and
// doc-id overflow all surface as IOError — never as an out-of-bounds read
// or undefined shift, even in Release builds where NL_DCHECK compiles away.

#ifndef NEWSLINK_IR_VARBYTE_H_
#define NEWSLINK_IR_VARBYTE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "ir/inverted_index.h"

namespace newslink {
namespace ir {

/// Append the VByte encoding of `value` to `out`.
void VarByteEncode(uint32_t value, std::vector<uint8_t>* out);

/// Decode one VByte value from `data` starting at *pos into *value,
/// advancing *pos past the consumed bytes. Returns IOError — without
/// reading past the buffer or shifting beyond 31 bits — when the stream is
/// truncated, the encoding spans more than 5 bytes, the final byte would
/// overflow 32 bits, or the encoding is overlong (a multi-byte encoding
/// whose last byte contributes no bits). On error *pos is left at the
/// offending byte.
Status VarByteDecode(std::span<const uint8_t> data, size_t* pos,
                     uint32_t* value);

/// Decode `count` (doc-gap, tf) pairs from `bytes` starting at *pos,
/// calling `fn(Posting)` for each. `start_doc` seeds the delta chain (the
/// previous block's last doc id, or 0 for the head of a list, where the
/// first gap is the absolute doc id and may be zero iff
/// `allow_zero_first_gap`). Structural validation matches the index
/// restore path: zero gaps after the first posting, zero term frequencies,
/// and doc ids overflowing 32 bits are IOError, so a corrupt stream can
/// never materialize an invalid posting.
template <typename Fn>
Status DecodePostings(std::span<const uint8_t> bytes, size_t* pos,
                      size_t count, DocId start_doc, bool allow_zero_first_gap,
                      Fn&& fn) {
  DocId doc = start_doc;
  for (size_t i = 0; i < count; ++i) {
    uint32_t gap = 0;
    uint32_t tf = 0;
    NL_RETURN_IF_ERROR(VarByteDecode(bytes, pos, &gap));
    NL_RETURN_IF_ERROR(VarByteDecode(bytes, pos, &tf));
    if (gap == 0 && !(i == 0 && allow_zero_first_gap)) {
      return Status::IOError("posting stream: zero doc-id gap");
    }
    const uint64_t next = static_cast<uint64_t>(doc) + gap;
    if (next > static_cast<uint64_t>(kInvalidDoc) - 1) {
      return Status::IOError("posting stream: doc id overflows");
    }
    if (tf == 0) {
      return Status::IOError("posting stream: zero term frequency");
    }
    doc = static_cast<DocId>(next);
    fn(Posting{doc, tf});
  }
  return Status::OK();
}

/// \brief Per-block metadata of a CompressedPostingList (block-max form).
struct PostingBlock {
  DocId first_doc = 0;
  DocId last_doc = 0;
  /// Maximum term frequency inside the block: the block-max bound.
  uint32_t max_tf = 0;
  /// Offset of the block's first encoded byte inside the list's stream.
  size_t byte_offset = 0;
};

/// \brief A delta-gap, VByte-compressed posting list in block-max form.
class CompressedPostingList {
 public:
  CompressedPostingList() = default;

  /// Compress an uncompressed list. Out-of-order doc ids are sorted and
  /// duplicates merged (term frequencies summed) before encoding, so this
  /// constructor always produces a valid list.
  explicit CompressedPostingList(std::span<const Posting> postings);

  /// Append a posting. Doc ids must arrive in strictly increasing order and
  /// tf must be positive; violations return InvalidArgument without
  /// touching the list. (The delta-gap encoding stores `doc - last_doc_`,
  /// so a non-monotonic id would silently wrap uint32_t and corrupt every
  /// posting after it — rejection here is what keeps the stream decodable.)
  Status Append(const Posting& posting);

  /// Decode the full list into *out (cleared first). IOError on a corrupt
  /// stream; *out then holds the valid prefix decoded so far.
  Status Decode(std::vector<Posting>* out) const;

  /// Decode one block independently of the rest of the stream (*out is
  /// cleared first). The decoded postings are cross-checked against the
  /// block's metadata, so corruption inside the payload is IOError.
  Status DecodeBlock(size_t block, std::vector<Posting>* out) const;

  /// Visit each posting without materializing the vector. Stops with
  /// IOError at the first corrupt byte (see DecodePostings).
  template <typename Fn>
  Status ForEach(Fn&& fn) const {
    size_t pos = 0;
    NL_RETURN_IF_ERROR(DecodePostings(
        std::span<const uint8_t>(bytes_), &pos, count_, 0,
        /*allow_zero_first_gap=*/true, fn));
    if (pos != bytes_.size()) {
      return Status::IOError("posting stream: trailing bytes after postings");
    }
    return Status::OK();
  }

  size_t size() const { return count_; }
  size_t byte_size() const { return bytes_.size(); }

  /// Number of blocks (the last one may be partially filled).
  size_t num_blocks() const { return blocks_.size(); }
  const PostingBlock& block(size_t i) const { return blocks_[i]; }
  /// Postings in block `i` (kPostingBlockSize except possibly the last).
  size_t BlockCount(size_t i) const {
    return i + 1 < blocks_.size()
               ? kPostingBlockSize
               : count_ - (blocks_.size() - 1) * kPostingBlockSize;
  }

 private:
  std::vector<uint8_t> bytes_;
  std::vector<PostingBlock> blocks_;
  size_t count_ = 0;
  uint32_t last_doc_ = 0;
  bool empty_ = true;
};

/// \brief Drop-in compressed counterpart of InvertedIndex.
///
/// Identical statistics (doc lengths, document frequency, average length);
/// postings are materialized on access. Query paths that only need a
/// single pass can use ForEachPosting to avoid the copy.
class CompressedInvertedIndex {
 public:
  /// Compress an existing index.
  explicit CompressedInvertedIndex(const InvertedIndex& index);

  DocId AddDocument(const TermCounts& counts);

  size_t num_docs() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }
  uint32_t DocLength(DocId doc) const { return doc_lengths_[doc]; }
  double avg_doc_length() const;
  uint32_t DocFreq(TermId term) const;

  /// Decoded postings of `term` (empty for unknown terms). The streams are
  /// produced by Append, so decoding cannot fail; a corrupt stream here
  /// would mean in-process memory corruption and is NL_DCHECKed.
  std::vector<Posting> Postings(TermId term) const;

  template <typename Fn>
  Status ForEachPosting(TermId term, Fn&& fn) const {
    if (term >= postings_.size()) return Status::OK();
    return postings_[term].ForEach(fn);
  }

  /// Total bytes of compressed posting data.
  size_t PostingBytes() const;

  CompressedInvertedIndex() = default;

 private:
  std::vector<CompressedPostingList> postings_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_length_ = 0;
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_VARBYTE_H_
