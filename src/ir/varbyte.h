// Variable-byte (VByte) compression for posting lists: doc-id deltas and
// term frequencies encoded in 7-bit groups with a continuation bit — the
// classic space/speed point for inverted indexes (Scholer et al. 2002).
// CompressedPostingList stores (delta-gap docids, tf) streams ~3-5x smaller
// than raw Posting vectors while decoding at memory speed.

#ifndef NEWSLINK_IR_VARBYTE_H_
#define NEWSLINK_IR_VARBYTE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "ir/inverted_index.h"

namespace newslink {
namespace ir {

/// Append the VByte encoding of `value` to `out`.
void VarByteEncode(uint32_t value, std::vector<uint8_t>* out);

/// Decode one VByte value from `data` starting at *pos; advances *pos.
/// Returns the decoded value (callers must ensure *pos < data.size()).
uint32_t VarByteDecode(const std::vector<uint8_t>& data, size_t* pos);

/// \brief A delta-gap, VByte-compressed posting list.
class CompressedPostingList {
 public:
  CompressedPostingList() = default;

  /// Compress an uncompressed list. Out-of-order doc ids are sorted and
  /// duplicates merged (term frequencies summed) before encoding, so this
  /// constructor always produces a valid list.
  explicit CompressedPostingList(std::span<const Posting> postings);

  /// Append a posting. Doc ids must arrive in strictly increasing order and
  /// tf must be positive; violations return InvalidArgument without
  /// touching the list. (The delta-gap encoding stores `doc - last_doc_`,
  /// so a non-monotonic id would silently wrap uint32_t and corrupt every
  /// posting after it — rejection here is what keeps the stream decodable.)
  Status Append(const Posting& posting);

  /// Decode the full list.
  std::vector<Posting> Decode() const;

  /// Visit each posting without materializing the vector.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    size_t pos = 0;
    uint32_t doc = 0;
    for (size_t i = 0; i < count_; ++i) {
      doc += VarByteDecode(bytes_, &pos);
      const uint32_t tf = VarByteDecode(bytes_, &pos);
      fn(Posting{doc, tf});
    }
  }

  size_t size() const { return count_; }
  size_t byte_size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
  size_t count_ = 0;
  uint32_t last_doc_ = 0;
  bool empty_ = true;
};

/// \brief Drop-in compressed counterpart of InvertedIndex.
///
/// Identical statistics (doc lengths, document frequency, average length);
/// postings are materialized on access. Query paths that only need a
/// single pass can use ForEachPosting to avoid the copy.
class CompressedInvertedIndex {
 public:
  /// Compress an existing index.
  explicit CompressedInvertedIndex(const InvertedIndex& index);

  DocId AddDocument(const TermCounts& counts);

  size_t num_docs() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }
  uint32_t DocLength(DocId doc) const { return doc_lengths_[doc]; }
  double avg_doc_length() const;
  uint32_t DocFreq(TermId term) const;

  std::vector<Posting> Postings(TermId term) const;

  template <typename Fn>
  void ForEachPosting(TermId term, Fn&& fn) const {
    if (term < postings_.size()) postings_[term].ForEach(fn);
  }

  /// Total bytes of compressed posting data.
  size_t PostingBytes() const;

  CompressedInvertedIndex() = default;

 private:
  std::vector<CompressedPostingList> postings_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_length_ = 0;
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_VARBYTE_H_
