#include "ir/index_io.h"

#include <limits>
#include <string_view>
#include <unordered_set>

#include "common/string_util.h"
#include "ir/reorder.h"

namespace newslink {
namespace ir {

void SerializeTermDictionary(const TermDictionary& dict, ByteWriter* out) {
  const size_t n = dict.size();
  out->WriteU64(n);
  for (TermId id = 0; id < n; ++id) out->WriteString(dict.term(id));
}

Status DeserializeTermStrings(ByteReader* reader,
                              std::vector<std::string>* terms) {
  uint64_t count;
  NL_RETURN_IF_ERROR(reader->ReadU64(&count));
  // Each term costs at least its 4-byte length prefix.
  NL_RETURN_IF_ERROR(reader->CheckCount(count, 4));
  terms->clear();
  terms->reserve(count);
  std::unordered_set<std::string_view> seen;
  seen.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string term;
    NL_RETURN_IF_ERROR(reader->ReadString(&term));
    terms->push_back(std::move(term));
  }
  for (const std::string& term : *terms) {
    if (!seen.insert(term).second) {
      return Status::IOError(StrCat("duplicate dictionary term '", term, "'"));
    }
  }
  return Status::OK();
}

void SerializeInvertedIndex(const InvertedIndex& index, ByteWriter* out) {
  const size_t num_docs = index.num_docs();
  out->WriteU64(num_docs);
  for (DocId d = 0; d < num_docs; ++d) out->WriteVarint(index.DocLength(d));
  const size_t num_terms = index.num_terms();
  out->WriteU64(num_terms);
  for (TermId t = 0; t < num_terms; ++t) {
    const PostingView postings = index.Postings(t);
    out->WriteVarint(static_cast<uint32_t>(postings.size()));
    DocId last_doc = 0;
    bool first = true;
    for (const Posting& p : postings) {
      out->WriteVarint(first ? p.doc : p.doc - last_doc);
      out->WriteVarint(p.tf);
      last_doc = p.doc;
      first = false;
    }
  }
}

Status DeserializeInvertedIndex(ByteReader* reader, InvertedIndex* index) {
  if (index->num_docs() != 0 || index->num_terms() != 0) {
    return Status::FailedPrecondition(
        "DeserializeInvertedIndex requires an empty index");
  }
  uint64_t num_docs;
  NL_RETURN_IF_ERROR(reader->ReadU64(&num_docs));
  NL_RETURN_IF_ERROR(reader->CheckCount(num_docs, 1));
  std::vector<uint32_t> lengths;
  lengths.reserve(num_docs);
  for (uint64_t d = 0; d < num_docs; ++d) {
    uint32_t length;
    NL_RETURN_IF_ERROR(reader->ReadVarint(&length));
    lengths.push_back(length);
  }
  NL_RETURN_IF_ERROR(index->RestoreDocLengths(lengths));

  uint64_t num_terms;
  NL_RETURN_IF_ERROR(reader->ReadU64(&num_terms));
  NL_RETURN_IF_ERROR(reader->CheckCount(num_terms, 1));
  index->EnsureNumTerms(num_terms);
  std::vector<Posting> postings;
  for (uint64_t t = 0; t < num_terms; ++t) {
    uint32_t count;
    NL_RETURN_IF_ERROR(reader->ReadVarint(&count));
    NL_RETURN_IF_ERROR(reader->CheckCount(count, 2));
    postings.clear();
    postings.reserve(count);
    DocId doc = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t gap, tf;
      NL_RETURN_IF_ERROR(reader->ReadVarint(&gap));
      NL_RETURN_IF_ERROR(reader->ReadVarint(&tf));
      if (i > 0 && gap == 0) {
        return Status::IOError(
            StrCat("term ", t, ": zero doc-id gap at posting ", i));
      }
      const uint64_t next = static_cast<uint64_t>(doc) + gap;
      if (next > std::numeric_limits<DocId>::max()) {
        return Status::IOError(StrCat("term ", t, ": doc id overflows"));
      }
      doc = static_cast<DocId>(next);
      postings.push_back(Posting{doc, tf});
    }
    NL_RETURN_IF_ERROR(
        index->RestoreTermPostings(static_cast<TermId>(t), postings));
  }
  return Status::OK();
}

void SerializeDocMap(std::span<const uint32_t> internal_to_external,
                     ByteWriter* out) {
  out->WriteU64(internal_to_external.size());
  for (const uint32_t external : internal_to_external) {
    out->WriteVarint(external);
  }
}

Status DeserializeDocMap(ByteReader* reader, std::vector<uint32_t>* map) {
  uint64_t count;
  NL_RETURN_IF_ERROR(reader->ReadU64(&count));
  NL_RETURN_IF_ERROR(reader->CheckCount(count, 1));
  map->clear();
  map->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t external;
    NL_RETURN_IF_ERROR(reader->ReadVarint(&external));
    map->push_back(external);
  }
  if (!IsPermutation(*map)) {
    return Status::IOError(
        StrCat("doc map is not a permutation of ", count, " doc ids"));
  }
  return Status::OK();
}

}  // namespace ir
}  // namespace newslink
