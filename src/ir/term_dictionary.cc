#include "ir/term_dictionary.h"

#include <mutex>

namespace newslink {
namespace ir {

TermId TermDictionary::GetOrAdd(std::string_view term) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId TermDictionary::Find(std::string_view term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTerm : it->second;
}

std::string TermDictionary::term(TermId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return terms_[id];
}

size_t TermDictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return terms_.size();
}

}  // namespace ir
}  // namespace newslink
