#include "ir/term_dictionary.h"

namespace newslink {
namespace ir {

TermId TermDictionary::GetOrAdd(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId TermDictionary::Find(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTerm : it->second;
}

}  // namespace ir
}  // namespace newslink
