#include "ir/top_k.h"

#include <algorithm>
#include <limits>

namespace newslink {
namespace ir {

bool TopKHeap::Worse(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.doc > b.doc;  // larger id is worse on ties
}

void TopKHeap::Push(ScoredDoc item) {
  if (k_ == 0) return;
  if (items_.size() < k_) {
    items_.push_back(item);
    std::push_heap(items_.begin(), items_.end(),
                   [](const ScoredDoc& a, const ScoredDoc& b) {
                     return !Worse(a, b);  // min-heap: best sinks
                   });
    return;
  }
  if (!Worse(items_.front(), item)) return;  // not better than current worst
  std::pop_heap(items_.begin(), items_.end(),
                [](const ScoredDoc& a, const ScoredDoc& b) {
                  return !Worse(a, b);
                });
  items_.back() = item;
  std::push_heap(items_.begin(), items_.end(),
                 [](const ScoredDoc& a, const ScoredDoc& b) {
                   return !Worse(a, b);
                 });
}

double TopKHeap::Threshold() const {
  // k == 0 means nothing can ever enter the heap, so the entry bar is +inf.
  // (Without this guard, `items_.size() < k_` is false for an empty heap
  // and items_.front() reads an empty vector.)
  if (k_ == 0) return std::numeric_limits<double>::infinity();
  if (items_.size() < k_) return -std::numeric_limits<double>::infinity();
  return items_.front().score;
}

std::vector<ScoredDoc> TopKHeap::Take() {
  std::sort(items_.begin(), items_.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              return Worse(b, a);  // best first
            });
  return std::move(items_);
}

std::vector<ScoredDoc> SelectTopK(const std::vector<ScoredDoc>& scores,
                                  size_t k) {
  TopKHeap heap(k);
  for (const ScoredDoc& s : scores) heap.Push(s);
  return heap.Take();
}

}  // namespace ir
}  // namespace newslink
