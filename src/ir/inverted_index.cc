#include "ir/inverted_index.h"

#include "common/logging.h"

namespace newslink {
namespace ir {

DocId InvertedIndex::AddDocument(const TermCounts& counts) {
  const DocId doc = static_cast<DocId>(doc_lengths_.size());
  uint32_t length = 0;
  for (const auto& [term, tf] : counts) {
    NL_DCHECK(tf > 0);
    if (term >= postings_.size()) postings_.resize(term + 1);
    postings_[term].push_back(Posting{doc, tf});
    length += tf;
  }
  doc_lengths_.push_back(length);
  total_length_ += length;
  return doc;
}

double InvertedIndex::avg_doc_length() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_length_) /
         static_cast<double>(doc_lengths_.size());
}

uint32_t InvertedIndex::DocFreq(TermId term) const {
  if (term >= postings_.size()) return 0;
  return static_cast<uint32_t>(postings_[term].size());
}

std::span<const Posting> InvertedIndex::Postings(TermId term) const {
  if (term >= postings_.size()) return {};
  return {postings_[term].data(), postings_[term].size()};
}

}  // namespace ir
}  // namespace newslink
