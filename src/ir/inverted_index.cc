#include "ir/inverted_index.h"

#include <algorithm>

#include "common/logging.h"

namespace newslink {
namespace ir {

DocId InvertedIndex::AddDocument(const TermCounts& counts) {
  const DocId doc = static_cast<DocId>(doc_lengths_.size());
  uint32_t length = 0;
  for (const auto& [term, tf] : counts) {
    NL_DCHECK(tf > 0);
    terms_.EnsureSize(static_cast<size_t>(term) + 1);
    TermEntry* entry = terms_.Mutable(term);
    PostingChunks* list = entry->list.load(std::memory_order_relaxed);
    if (list == nullptr) {
      list = new PostingChunks();
      entry->list.store(list, std::memory_order_release);
    }
    list->Append(Posting{doc, tf});
    length += tf;
  }
  total_length_.fetch_add(length, std::memory_order_release);
  doc_lengths_.Append(length);
  if (docs_added_ != nullptr) {
    docs_added_->Inc();
    postings_added_->Inc(counts.size());
  }
  return doc;
}

double InvertedIndex::avg_doc_length() const {
  const size_t n = doc_lengths_.size();
  if (n == 0) return 0.0;
  return static_cast<double>(total_length_.load(std::memory_order_acquire)) /
         static_cast<double>(n);
}

uint32_t InvertedIndex::DocFreq(TermId term) const {
  return static_cast<uint32_t>(Postings(term).size());
}

PostingView InvertedIndex::Postings(TermId term) const {
  if (term >= terms_.size()) return {};
  const PostingChunks* list =
      terms_.At(term).list.load(std::memory_order_acquire);
  if (list == nullptr) return {};
  return PostingView(list, list->size());
}

PostingView InvertedIndex::Postings(TermId term,
                                    const IndexSnapshot& snapshot) const {
  if (term >= snapshot.num_terms || term >= terms_.size()) return {};
  const PostingChunks* list =
      terms_.At(term).list.load(std::memory_order_acquire);
  if (list == nullptr) return {};
  const PostingView live(list, list->size());
  // Postings are sorted by doc id, so the snapshot's extent of this list is
  // the prefix of docs below the snapshot's doc count.
  const auto bound = std::lower_bound(
      live.begin(), live.end(), snapshot.num_docs,
      [](const Posting& p, size_t num_docs) {
        return static_cast<size_t>(p.doc) < num_docs;
      });
  return PostingView(list, static_cast<size_t>(bound - live.begin()));
}

}  // namespace ir
}  // namespace newslink
