#include "ir/inverted_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace newslink {
namespace ir {

DocId InvertedIndex::AddDocument(const TermCounts& counts) {
  const DocId doc = static_cast<DocId>(doc_lengths_.size());
  uint32_t length = 0;
  for (const auto& [term, tf] : counts) {
    NL_DCHECK(tf > 0);
    terms_.EnsureSize(static_cast<size_t>(term) + 1);
    TermEntry* entry = terms_.Mutable(term);
    TermPostings* list = entry->list.load(std::memory_order_relaxed);
    if (list == nullptr) {
      list = new TermPostings();
      entry->list.store(list, std::memory_order_release);
    }
    list->Append(Posting{doc, tf});
    length += tf;
  }
  total_length_.fetch_add(length, std::memory_order_release);
  uint32_t prev_min = min_doc_length_.load(std::memory_order_relaxed);
  while (length < prev_min &&
         !min_doc_length_.compare_exchange_weak(prev_min, length,
                                                std::memory_order_relaxed)) {
  }
  doc_lengths_.Append(length);
  if (docs_added_ != nullptr) {
    docs_added_->Inc();
    postings_added_->Inc(counts.size());
  }
  return doc;
}

Status InvertedIndex::RestoreDocLengths(std::span<const uint32_t> lengths) {
  if (doc_lengths_.size() != 0 || terms_.size() != 0) {
    return Status::FailedPrecondition(
        "RestoreDocLengths requires an empty index");
  }
  uint64_t total = 0;
  uint32_t min_length = min_doc_length_.load(std::memory_order_relaxed);
  for (const uint32_t length : lengths) {
    doc_lengths_.Append(length);
    total += length;
    min_length = std::min(min_length, length);
  }
  min_doc_length_.store(min_length, std::memory_order_relaxed);
  total_length_.store(total, std::memory_order_release);
  if (docs_added_ != nullptr) docs_added_->Inc(lengths.size());
  return Status::OK();
}

void InvertedIndex::EnsureNumTerms(size_t n) {
  if (n > terms_.size()) terms_.EnsureSize(n);
}

Status InvertedIndex::RestoreTermPostings(TermId term,
                                          std::span<const Posting> postings) {
  const size_t num_docs = doc_lengths_.size();
  terms_.EnsureSize(static_cast<size_t>(term) + 1);
  TermEntry* entry = terms_.Mutable(term);
  if (entry->list.load(std::memory_order_relaxed) != nullptr) {
    return Status::FailedPrecondition(
        StrCat("term ", term, " already has postings"));
  }
  // Validate the whole list before installing anything so a mid-list
  // failure cannot leave a half-restored term.
  DocId last_doc = 0;
  bool first = true;
  for (const Posting& p : postings) {
    if (!first && p.doc <= last_doc) {
      return Status::InvalidArgument(
          StrCat("term ", term, ": doc ids not strictly increasing (", p.doc,
                 " after ", last_doc, ")"));
    }
    if (static_cast<size_t>(p.doc) >= num_docs) {
      return Status::InvalidArgument(
          StrCat("term ", term, ": doc id ", p.doc, " out of range (",
                 num_docs, " docs)"));
    }
    if (p.tf == 0) {
      return Status::InvalidArgument(
          StrCat("term ", term, ": doc ", p.doc, " has zero term frequency"));
    }
    last_doc = p.doc;
    first = false;
  }
  if (postings.empty()) return Status::OK();
  auto* list = new TermPostings();
  for (const Posting& p : postings) list->Append(p);
  entry->list.store(list, std::memory_order_release);
  if (postings_added_ != nullptr) postings_added_->Inc(postings.size());
  return Status::OK();
}

double InvertedIndex::avg_doc_length() const {
  const size_t n = doc_lengths_.size();
  if (n == 0) return 0.0;
  return static_cast<double>(total_length_.load(std::memory_order_acquire)) /
         static_cast<double>(n);
}

uint32_t InvertedIndex::DocFreq(TermId term) const {
  return static_cast<uint32_t>(Postings(term).size());
}

PostingView InvertedIndex::Postings(TermId term) const {
  if (term >= terms_.size()) return {};
  const TermPostings* list =
      terms_.At(term).list.load(std::memory_order_acquire);
  if (list == nullptr) return {};
  return PostingView(&list->postings, list->postings.size());
}

PostingView InvertedIndex::Postings(TermId term,
                                    const IndexSnapshot& snapshot) const {
  if (term >= snapshot.num_terms || term >= terms_.size()) return {};
  const TermPostings* list =
      terms_.At(term).list.load(std::memory_order_acquire);
  if (list == nullptr) return {};
  const PostingView live(&list->postings, list->postings.size());
  // Postings are sorted by doc id, so the snapshot's extent of this list is
  // the prefix of docs below the snapshot's doc count.
  const auto bound = std::lower_bound(
      live.begin(), live.end(), snapshot.num_docs,
      [](const Posting& p, size_t num_docs) {
        return static_cast<size_t>(p.doc) < num_docs;
      });
  return PostingView(&list->postings,
                     static_cast<size_t>(bound - live.begin()));
}

TermBlockMax InvertedIndex::BlockMax(TermId term) const {
  if (term >= terms_.size()) return {};
  const TermPostings* list =
      terms_.At(term).list.load(std::memory_order_acquire);
  if (list == nullptr) return {};
  TermBlockMax out;
  out.block_max = &list->block_max;
  out.num_blocks = list->block_max.size();  // acquire: entries are readable
  out.max_tf = list->max_tf.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ir
}  // namespace newslink
