// Top-k selection utilities (paper Sec. VI cites threshold-style top-k
// ranking [49]; at our corpus scales a bounded min-heap over the scored
// accumulator set is the appropriate engine).

#ifndef NEWSLINK_IR_TOP_K_H_
#define NEWSLINK_IR_TOP_K_H_

#include <vector>

#include "ir/scorer.h"

namespace newslink {
namespace ir {

/// \brief Bounded min-heap keeping the k best (score, doc) pairs.
///
/// Ties break towards smaller doc ids so results are deterministic.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  void Push(ScoredDoc item);

  /// Smallest score currently needed to enter the heap: -inf while unfull,
  /// +inf when k == 0 (nothing can ever enter).
  double Threshold() const;

  /// Extract results ordered best-first. The heap is consumed.
  std::vector<ScoredDoc> Take();

  size_t size() const { return items_.size(); }

 private:
  static bool Worse(const ScoredDoc& a, const ScoredDoc& b);

  size_t k_;
  std::vector<ScoredDoc> items_;  // min-heap on score
};

/// Select the k highest-scoring documents from an unordered score list.
std::vector<ScoredDoc> SelectTopK(const std::vector<ScoredDoc>& scores,
                                  size_t k);

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_TOP_K_H_
