// Append-only chunked storage with stable element addresses — the memory
// primitive behind epoch-snapshot isolation. A single writer appends while
// any number of readers traverse already-published elements without locks:
// elements live in geometrically growing chunks that are never moved or
// freed, and the element count is published with a release store so a
// reader that acquire-loads the size can safely read every element below
// it. (std::vector push_back reallocates and std::deque::operator[] reads
// a block map the writer mutates; neither survives concurrent readers.)

#ifndef NEWSLINK_IR_APPEND_ONLY_H_
#define NEWSLINK_IR_APPEND_ONLY_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>

namespace newslink {
namespace ir {

/// \brief Single-writer / multi-reader append-only array.
///
/// Chunk c holds (1 << (kBaseLog2 + c)) elements, so kMaxChunks chunks
/// address 2^kBaseLog2 * (2^kMaxChunks - 1) elements through a fixed
/// directory — no directory reallocation, ever. Readers may call size()
/// (acquire) and At(i) for any i below a size they previously observed.
/// Append / EnsureSize are writer-only. Move is a writer-side operation
/// (setup-time transfer, not safe concurrently with readers).
template <typename T, size_t kBaseLog2 = 6, size_t kMaxChunks = 26>
class AppendOnlyStore {
 public:
  AppendOnlyStore() = default;

  AppendOnlyStore(AppendOnlyStore&& other) noexcept { StealFrom(&other); }
  AppendOnlyStore& operator=(AppendOnlyStore&& other) noexcept {
    if (this != &other) {
      Free();
      StealFrom(&other);
    }
    return *this;
  }
  AppendOnlyStore(const AppendOnlyStore&) = delete;
  AppendOnlyStore& operator=(const AppendOnlyStore&) = delete;

  ~AppendOnlyStore() { Free(); }

  /// Published element count (acquire: everything below it is readable).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Element i; i must be below a size() the caller has already observed
  /// (or the caller is the writer).
  const T& At(size_t i) const { return *Slot(i); }

  /// Writer only: append one element and publish the new size.
  void Append(T value) {
    const size_t i = size_.load(std::memory_order_relaxed);
    *MutableSlot(i) = std::move(value);
    size_.store(i + 1, std::memory_order_release);
  }

  /// Writer only: grow to n default-constructed elements (no-op if already
  /// that large). Used for id spaces with holes (e.g. sparse node ids).
  void EnsureSize(size_t n) {
    const size_t old = size_.load(std::memory_order_relaxed);
    if (n <= old) return;
    MutableSlot(n - 1);  // allocate every chunk up to the last slot
    size_.store(n, std::memory_order_release);
  }

  /// Writer only: mutable access (e.g. to grow an element in place).
  T* Mutable(size_t i) { return MutableSlot(i); }

 private:
  static constexpr size_t ChunkCapacity(size_t c) {
    return size_t{1} << (kBaseLog2 + c);
  }
  static constexpr size_t ChunkStart(size_t c) {
    return (size_t{1} << (kBaseLog2 + c)) - (size_t{1} << kBaseLog2);
  }
  static void Locate(size_t i, size_t* chunk, size_t* offset) {
    const size_t t = (i >> kBaseLog2) + 1;
    *chunk = static_cast<size_t>(std::bit_width(t)) - 1;
    *offset = i - ChunkStart(*chunk);
  }

  const T* Slot(size_t i) const {
    size_t c, off;
    Locate(i, &c, &off);
    return chunks_[c].load(std::memory_order_acquire) + off;
  }

  T* MutableSlot(size_t i) {
    size_t c, off;
    Locate(i, &c, &off);
    // Allocate every chunk up to c so EnsureSize leaves no holes.
    for (size_t k = 0; k <= c; ++k) {
      if (chunks_[k].load(std::memory_order_relaxed) == nullptr) {
        chunks_[k].store(new T[ChunkCapacity(k)](),
                         std::memory_order_release);
      }
    }
    return chunks_[c].load(std::memory_order_relaxed) + off;
  }

  void Free() {
    for (size_t c = 0; c < kMaxChunks; ++c) {
      delete[] chunks_[c].load(std::memory_order_relaxed);
      chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }

  void StealFrom(AppendOnlyStore* other) {
    for (size_t c = 0; c < kMaxChunks; ++c) {
      chunks_[c].store(other->chunks_[c].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      other->chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(other->size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other->size_.store(0, std::memory_order_relaxed);
  }

  std::atomic<T*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> size_{0};
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_APPEND_ONLY_H_
