#include "ir/varbyte.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace newslink {
namespace ir {

void VarByteEncode(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value & 0x7F) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

Status VarByteDecode(std::span<const uint8_t> data, size_t* pos,
                     uint32_t* value) {
  uint32_t result = 0;
  // A uint32_t needs at most 5 groups of 7 bits; the 5th group may only
  // carry the top 4 bits (shift 28). Capping the loop here is what keeps a
  // malicious continuation-bit run from shifting past 31 bits (UB) or
  // walking off the end of the buffer.
  for (int shift = 0; shift <= 28; shift += 7) {
    if (*pos >= data.size()) {
      return Status::IOError("varbyte: truncated encoding");
    }
    const uint8_t byte = data[*pos];
    const uint32_t payload = byte & 0x7F;
    if (shift == 28 && payload > 0x0F) {
      return Status::IOError("varbyte: value overflows 32 bits");
    }
    if (shift > 0 && payload == 0 && (byte & 0x80) == 0) {
      // VarByteEncode never emits a final byte with no payload bits; such
      // an overlong encoding means the stream was not produced by us.
      return Status::IOError("varbyte: overlong encoding");
    }
    result |= payload << shift;
    if ((byte & 0x80) == 0) {
      ++(*pos);
      *value = result;
      return Status::OK();
    }
    ++(*pos);
  }
  --(*pos);  // Leave *pos at the offending 6th byte.
  return Status::IOError("varbyte: encoding longer than 5 bytes");
}

CompressedPostingList::CompressedPostingList(
    std::span<const Posting> postings) {
  std::vector<Posting> sorted(postings.begin(), postings.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Posting& a, const Posting& b) {
                     return a.doc < b.doc;
                   });
  for (size_t i = 0; i < sorted.size(); ++i) {
    Posting merged = sorted[i];
    while (i + 1 < sorted.size() && sorted[i + 1].doc == merged.doc) {
      merged.tf += sorted[++i].tf;
    }
    if (merged.tf == 0) continue;
    const Status s = Append(merged);
    NL_DCHECK(s.ok()) << s.ToString();
    (void)s;
  }
}

Status CompressedPostingList::Append(const Posting& posting) {
  if (!empty_ && posting.doc <= last_doc_) {
    return Status::InvalidArgument(
        StrCat("posting doc ids must be strictly increasing: got ",
               posting.doc, " after ", last_doc_));
  }
  if (posting.tf == 0) {
    return Status::InvalidArgument(
        StrCat("posting for doc ", posting.doc, " has zero term frequency"));
  }
  if (count_ % kPostingBlockSize == 0) {
    blocks_.push_back(PostingBlock{posting.doc, posting.doc, 0, bytes_.size()});
  }
  const uint32_t gap = empty_ ? posting.doc : posting.doc - last_doc_;
  VarByteEncode(gap, &bytes_);
  VarByteEncode(posting.tf, &bytes_);
  PostingBlock& blk = blocks_.back();
  blk.last_doc = posting.doc;
  blk.max_tf = std::max(blk.max_tf, posting.tf);
  last_doc_ = posting.doc;
  empty_ = false;
  ++count_;
  return Status::OK();
}

Status CompressedPostingList::Decode(std::vector<Posting>* out) const {
  out->clear();
  out->reserve(count_);
  return ForEach([out](const Posting& p) { out->push_back(p); });
}

Status CompressedPostingList::DecodeBlock(size_t block,
                                          std::vector<Posting>* out) const {
  out->clear();
  if (block >= blocks_.size()) {
    return Status::InvalidArgument(
        StrCat("block ", block, " out of range (", blocks_.size(), " blocks)"));
  }
  const PostingBlock& meta = blocks_[block];
  const size_t count = BlockCount(block);
  const size_t end_byte =
      block + 1 < blocks_.size() ? blocks_[block + 1].byte_offset
                                 : bytes_.size();
  const DocId start_doc = block == 0 ? 0 : blocks_[block - 1].last_doc;
  size_t pos = meta.byte_offset;
  out->reserve(count);
  NL_RETURN_IF_ERROR(DecodePostings(
      std::span<const uint8_t>(bytes_), &pos, count, start_doc,
      /*allow_zero_first_gap=*/block == 0,
      [out](const Posting& p) { out->push_back(p); }));
  // Cross-check the payload against the block's metadata: a corrupted byte
  // that still decodes as valid varbytes shows up as a boundary mismatch.
  if (pos != end_byte || out->front().doc != meta.first_doc ||
      out->back().doc != meta.last_doc) {
    return Status::IOError(
        StrCat("posting block ", block, " does not match its metadata"));
  }
  return Status::OK();
}

CompressedInvertedIndex::CompressedInvertedIndex(const InvertedIndex& index) {
  postings_.reserve(index.num_terms());
  for (TermId t = 0; t < index.num_terms(); ++t) {
    // InvertedIndex postings are sorted by construction, so Append cannot
    // fail here.
    CompressedPostingList list;
    for (const Posting& p : index.Postings(t)) {
      const Status s = list.Append(p);
      NL_DCHECK(s.ok()) << s.ToString();
      (void)s;
    }
    postings_.push_back(std::move(list));
  }
  doc_lengths_.reserve(index.num_docs());
  for (DocId d = 0; d < index.num_docs(); ++d) {
    doc_lengths_.push_back(index.DocLength(d));
    total_length_ += index.DocLength(d);
  }
}

DocId CompressedInvertedIndex::AddDocument(const TermCounts& counts) {
  const DocId doc = static_cast<DocId>(doc_lengths_.size());
  // Coalesce duplicate terms first: a repeated term would hit this doc's
  // posting twice and trip the monotonicity check in Append.
  TermCounts coalesced(counts);
  std::stable_sort(coalesced.begin(), coalesced.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  uint32_t length = 0;
  for (size_t i = 0; i < coalesced.size(); ++i) {
    const TermId term = coalesced[i].first;
    uint32_t tf = coalesced[i].second;
    while (i + 1 < coalesced.size() && coalesced[i + 1].first == term) {
      tf += coalesced[++i].second;
    }
    if (tf == 0) continue;
    if (term >= postings_.size()) postings_.resize(term + 1);
    const Status s = postings_[term].Append(Posting{doc, tf});
    NL_DCHECK(s.ok()) << s.ToString();
    (void)s;
    length += tf;
  }
  doc_lengths_.push_back(length);
  total_length_ += length;
  return doc;
}

double CompressedInvertedIndex::avg_doc_length() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_length_) /
         static_cast<double>(doc_lengths_.size());
}

uint32_t CompressedInvertedIndex::DocFreq(TermId term) const {
  if (term >= postings_.size()) return 0;
  return static_cast<uint32_t>(postings_[term].size());
}

std::vector<Posting> CompressedInvertedIndex::Postings(TermId term) const {
  if (term >= postings_.size()) return {};
  std::vector<Posting> out;
  const Status s = postings_[term].Decode(&out);
  NL_DCHECK(s.ok()) << s.ToString();
  (void)s;
  return out;
}

size_t CompressedInvertedIndex::PostingBytes() const {
  size_t total = 0;
  for (const CompressedPostingList& list : postings_) {
    total += list.byte_size();
  }
  return total;
}

}  // namespace ir
}  // namespace newslink
