// Document-at-a-time top-k retrieval with MaxScore pruning (Turtle & Flood
// 1995) — the dynamic-pruning family behind the threshold-style top-k
// processing the paper cites for the NS component ([49]). Produces exactly
// the same top-k as exhaustive TAAT scoring while skipping documents that
// cannot make the heap.

#ifndef NEWSLINK_IR_MAX_SCORE_H_
#define NEWSLINK_IR_MAX_SCORE_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "ir/inverted_index.h"
#include "ir/scorer.h"

namespace newslink {
namespace ir {

/// \brief BM25 top-k with MaxScore dynamic pruning.
class MaxScoreRetriever {
 public:
  explicit MaxScoreRetriever(const InvertedIndex* index,
                             Bm25Params params = {})
      : index_(index), scorer_(index, params), params_(params) {}

  /// Register cumulative retrieval series (`<prefix>_maxscore_calls_total`,
  /// `<prefix>_maxscore_docs_scored_total`) in `registry`. Call once at
  /// setup, before queries run; the registry must outlive the retriever.
  void EnableMetrics(metrics::Registry* registry, std::string_view prefix) {
    calls_ = registry->GetCounter(std::string(prefix) + "_maxscore_calls_total",
                                  "TopK invocations");
    docs_scored_counter_ = registry->GetCounter(
        std::string(prefix) + "_maxscore_docs_scored_total",
        "documents fully scored (pruning skips the rest)");
  }

  /// Top-k documents for the query within `snapshot`, identical (including
  /// tie order) to SelectTopK(Bm25Scorer::ScoreAll(query, snapshot), k).
  /// Safe to call from many threads concurrently, including while a writer
  /// appends documents: the per-term upper bounds, idf, and avgdl are all
  /// derived from the snapshot, never from live index statistics, so a
  /// concurrent append can neither loosen nor tighten this query's bounds.
  /// `docs_scored`, when non-null, receives this call's count of fully
  /// scored documents (the per-thread-accurate way to read the pruning
  /// instrumentation).
  std::vector<ScoredDoc> TopK(const TermCounts& query, size_t k,
                              const IndexSnapshot& snapshot,
                              size_t* docs_scored = nullptr) const;
  std::vector<ScoredDoc> TopK(const TermCounts& query, size_t k,
                              size_t* docs_scored = nullptr) const {
    return TopK(query, k, index_->Capture(), docs_scored);
  }

  /// Number of documents fully scored by the most recent TopK call on any
  /// thread (single-threaded instrumentation; under concurrency use the
  /// `docs_scored` out-parameter instead).
  size_t last_docs_scored() const {
    return last_docs_scored_.load(std::memory_order_relaxed);
  }

 private:
  /// BM25 contribution of one posting.
  double Score(uint32_t qtf, double idf, const Posting& posting,
               double avgdl) const;

  const InvertedIndex* index_;
  Bm25Scorer scorer_;
  Bm25Params params_;
  mutable std::atomic<size_t> last_docs_scored_{0};
  metrics::Counter* calls_ = nullptr;  // null until EnableMetrics
  metrics::Counter* docs_scored_counter_ = nullptr;
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_MAX_SCORE_H_
