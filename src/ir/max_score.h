// Document-at-a-time top-k retrieval with MaxScore pruning (Turtle & Flood
// 1995) — the dynamic-pruning family behind the threshold-style top-k
// processing the paper cites for the NS component ([49]). Extended to
// Block-Max MaxScore (Ding & Suel 2011): per-block max-tf bounds let the
// essential lists skip whole blocks whose best possible score cannot beat
// the heap threshold. Either way the retriever produces exactly the same
// top-k as exhaustive TAAT scoring while skipping documents that cannot
// make the heap.

#ifndef NEWSLINK_IR_MAX_SCORE_H_
#define NEWSLINK_IR_MAX_SCORE_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "ir/inverted_index.h"
#include "ir/scorer.h"

namespace newslink {
namespace ir {

struct MaxScoreOptions {
  /// Use block-max bounds: per-term bounds tightened from the term's max
  /// observed tf, plus whole-block skipping over the essential lists when
  /// no doc in the current block range can beat the heap threshold.
  /// `false` reverts to classic MaxScore with the loose (k1+1) term bound
  /// — kept for A/B measurement; the returned top-k is identical either
  /// way, only the amount of work differs.
  bool use_block_max = true;
};

/// \brief BM25 top-k with (Block-Max) MaxScore dynamic pruning.
class MaxScoreRetriever {
 public:
  explicit MaxScoreRetriever(const InvertedIndex* index,
                             Bm25Params params = {},
                             MaxScoreOptions options = {})
      : index_(index), scorer_(index, params), params_(params),
        options_(options) {}

  /// Register cumulative retrieval series (`<prefix>_maxscore_calls_total`,
  /// `<prefix>_maxscore_docs_scored_total`,
  /// `<prefix>_maxscore_blocks_skipped_total`) in `registry`. Call once at
  /// setup, before queries run; the registry must outlive the retriever.
  void EnableMetrics(metrics::Registry* registry, std::string_view prefix) {
    calls_ = registry->GetCounter(std::string(prefix) + "_maxscore_calls_total",
                                  "TopK invocations");
    docs_scored_counter_ = registry->GetCounter(
        std::string(prefix) + "_maxscore_docs_scored_total",
        "documents fully scored (pruning skips the rest)");
    blocks_skipped_counter_ = registry->GetCounter(
        std::string(prefix) + "_maxscore_blocks_skipped_total",
        "posting blocks skipped without decoding (block-max pruning)");
  }

  /// Top-k documents for the query within `snapshot`, identical (including
  /// tie order) to SelectTopK(Bm25Scorer::ScoreAll(query, snapshot), k).
  /// Safe to call from many threads concurrently, including while a writer
  /// appends documents: the per-term upper bounds, idf, and avgdl are all
  /// derived from the snapshot, never from live index statistics, so a
  /// concurrent append can neither loosen nor tighten this query's bounds.
  /// (Block-max bounds are monotone under append — the max over a grown
  /// list only rises — so they stay valid upper bounds for the snapshot's
  /// prefix too.) `docs_scored` / `blocks_skipped`, when non-null, receive
  /// this call's counts (the per-thread-accurate way to read the pruning
  /// instrumentation).
  ///
  /// With non-null `collection` (the shard-serving hook), N / avgdl / df /
  /// min-doc-length / term-level max-tf come from it instead of the local
  /// index, so the returned scores equal ScoreAll(query, snapshot,
  /// collection) — the shard's documents scored as members of the whole
  /// collection. Collection-wide max_tf >= the local maximum and a
  /// collection-wide minimum doc length <= the local one only loosen the
  /// pruning bounds, so the result is still exact. Block-level maxima stay
  /// local (they bound local postings, which is all skipping needs).
  ///
  /// With non-null `filter`, rejected candidates are dropped during the
  /// document-at-a-time traversal: their essential cursors advance without
  /// any scoring, `docs_scored` does not count them, and the result equals
  /// the top-k of the accepted documents only. Bound-based skipping stays
  /// valid — the filter only removes candidates, never raises a score.
  std::vector<ScoredDoc> TopK(const TermCounts& query, size_t k,
                              const IndexSnapshot& snapshot,
                              size_t* docs_scored = nullptr,
                              size_t* blocks_skipped = nullptr,
                              const CollectionStats* collection = nullptr,
                              const DocFilter* filter = nullptr) const;
  std::vector<ScoredDoc> TopK(const TermCounts& query, size_t k,
                              size_t* docs_scored = nullptr,
                              size_t* blocks_skipped = nullptr) const {
    return TopK(query, k, index_->Capture(), docs_scored, blocks_skipped);
  }

  /// Number of documents fully scored by the most recent TopK call on any
  /// thread (single-threaded instrumentation; under concurrency use the
  /// `docs_scored` out-parameter instead).
  size_t last_docs_scored() const {
    return last_docs_scored_.load(std::memory_order_relaxed);
  }

  /// Posting blocks skipped without decoding by the most recent TopK call
  /// (same single-threaded caveat as last_docs_scored).
  size_t last_blocks_skipped() const {
    return last_blocks_skipped_.load(std::memory_order_relaxed);
  }

  const MaxScoreOptions& options() const { return options_; }

 private:
  /// BM25 contribution of one posting.
  double Score(uint32_t qtf, double idf, const Posting& posting,
               double avgdl) const;

  /// Upper bound on tf * (k1+1) / (tf + norm) over all documents, given
  /// only that the term frequency is at most `max_tf`: norm is minimized
  /// at dl == 0, and the expression is nondecreasing in tf.
  double TfBound(uint32_t max_tf, double norm_min) const;

  const InvertedIndex* index_;
  Bm25Scorer scorer_;
  Bm25Params params_;
  MaxScoreOptions options_;
  mutable std::atomic<size_t> last_docs_scored_{0};
  mutable std::atomic<size_t> last_blocks_skipped_{0};
  metrics::Counter* calls_ = nullptr;  // null until EnableMetrics
  metrics::Counter* docs_scored_counter_ = nullptr;
  metrics::Counter* blocks_skipped_counter_ = nullptr;
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_MAX_SCORE_H_
