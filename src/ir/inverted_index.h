// Inverted index with document statistics: the retrieval core of the NS
// component and of the Lucene-like baseline.
//
// The index is a single-writer / multi-reader structure built for
// epoch-snapshot isolation: AddDocument (one writer at a time) appends into
// chunked, stable-address storage, and readers score against an immutable
// IndexSnapshot — a set of extents (doc count, term count, total length)
// captured by the writer after an append completes. Because doc ids are
// assigned sequentially and postings are appended in doc-id order, bounding
// every read by "doc < snapshot.num_docs" is exactly a point-in-time view:
// a reader can never observe a half-appended document.

#ifndef NEWSLINK_IR_INVERTED_INDEX_H_
#define NEWSLINK_IR_INVERTED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <iterator>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "ir/append_only.h"
#include "ir/term_dictionary.h"

namespace newslink {
namespace ir {

using DocId = uint32_t;
inline constexpr DocId kInvalidDoc = std::numeric_limits<DocId>::max();

struct Posting {
  DocId doc;
  uint32_t tf;
};

/// Sparse term-frequency vector of a document or query.
using TermCounts = std::vector<std::pair<TermId, uint32_t>>;

/// Chunked posting storage of one term (small first chunk: most terms are
/// rare; capacity covers the full DocId space).
using PostingChunks = AppendOnlyStore<Posting, 4, 28>;

/// Postings per block-max block (Ding & Suel): every posting list — live
/// chunked storage and the compressed snapshot form alike — is divided
/// into runs of this many postings, and each completed run publishes its
/// maximum term frequency so retrieval can bound a block's best possible
/// contribution without decoding it.
inline constexpr size_t kPostingBlockSize = 64;

/// Per-completed-block max-tf storage (one uint32_t per kPostingBlockSize
/// postings; capacity covers the full DocId space worth of blocks).
using BlockMaxStore = AppendOnlyStore<uint32_t, 2, 25>;

/// \brief Block-max metadata of one term, as seen by a reader.
///
/// `num_blocks` counts completed blocks whose per-block max tf is readable
/// in `block_max` (postings beyond `num_blocks * kPostingBlockSize` form an
/// open tail block with no published bound yet — fall back to `max_tf`).
/// `max_tf` is the maximum term frequency over every posting appended so
/// far; because appends only grow it, it is always a valid upper bound for
/// any snapshot-bounded prefix of the list.
struct TermBlockMax {
  const BlockMaxStore* block_max = nullptr;
  size_t num_blocks = 0;
  uint32_t max_tf = 0;
};

/// \brief Immutable extents of an index at one publication point.
///
/// Capturing is writer-side (or quiesced); consuming is lock-free from any
/// thread. All scorer maths (idf, avgdl, norms, MaxScore bounds) must key
/// off these values, never off live index accessors, so concurrent
/// ingestion cannot shift statistics mid-query.
struct IndexSnapshot {
  size_t num_docs = 0;
  size_t num_terms = 0;
  uint64_t total_length = 0;

  double avg_doc_length() const {
    return num_docs == 0 ? 0.0
                         : static_cast<double>(total_length) /
                               static_cast<double>(num_docs);
  }
};

/// \brief Read-only, random-access view of (a bounded prefix of) one
/// term's postings. Iterators stay valid while the index is alive; the
/// underlying elements are immutable once published.
class PostingView {
 public:
  class Iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Posting;
    using difference_type = std::ptrdiff_t;
    using pointer = const Posting*;
    using reference = const Posting&;

    Iterator() = default;
    Iterator(const PostingChunks* chunks, size_t i) : chunks_(chunks), i_(i) {}

    reference operator*() const { return chunks_->At(i_); }
    pointer operator->() const { return &chunks_->At(i_); }
    reference operator[](difference_type n) const { return chunks_->At(i_ + n); }

    Iterator& operator++() { ++i_; return *this; }
    Iterator operator++(int) { Iterator t = *this; ++i_; return t; }
    Iterator& operator--() { --i_; return *this; }
    Iterator operator--(int) { Iterator t = *this; --i_; return t; }
    Iterator& operator+=(difference_type n) { i_ += n; return *this; }
    Iterator& operator-=(difference_type n) { i_ -= n; return *this; }
    friend Iterator operator+(Iterator it, difference_type n) { it += n; return it; }
    friend Iterator operator+(difference_type n, Iterator it) { it += n; return it; }
    friend Iterator operator-(Iterator it, difference_type n) { it -= n; return it; }
    friend difference_type operator-(const Iterator& a, const Iterator& b) {
      return static_cast<difference_type>(a.i_) - static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const Iterator& a, const Iterator& b) { return a.i_ == b.i_; }
    friend bool operator!=(const Iterator& a, const Iterator& b) { return a.i_ != b.i_; }
    friend bool operator<(const Iterator& a, const Iterator& b) { return a.i_ < b.i_; }
    friend bool operator>(const Iterator& a, const Iterator& b) { return a.i_ > b.i_; }
    friend bool operator<=(const Iterator& a, const Iterator& b) { return a.i_ <= b.i_; }
    friend bool operator>=(const Iterator& a, const Iterator& b) { return a.i_ >= b.i_; }

   private:
    const PostingChunks* chunks_ = nullptr;
    size_t i_ = 0;
  };

  PostingView() = default;
  PostingView(const PostingChunks* chunks, size_t count)
      : chunks_(chunks), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const Posting& operator[](size_t i) const { return chunks_->At(i); }
  Iterator begin() const { return Iterator(chunks_, 0); }
  Iterator end() const { return Iterator(chunks_, count_); }

 private:
  const PostingChunks* chunks_ = nullptr;
  size_t count_ = 0;
};

/// \brief Term-at-a-time friendly inverted index (single writer, many
/// concurrent snapshot readers).
///
/// Documents are appended in id order; postings lists are therefore sorted
/// by doc id by construction.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Setup-time transfer only — not safe concurrently with readers.
  InvertedIndex(InvertedIndex&& other) noexcept
      : terms_(std::move(other.terms_)),
        doc_lengths_(std::move(other.doc_lengths_)),
        total_length_(other.total_length_.exchange(
            0, std::memory_order_relaxed)),
        min_doc_length_(other.min_doc_length_.exchange(
            std::numeric_limits<uint32_t>::max(), std::memory_order_relaxed)),
        docs_added_(other.docs_added_),
        postings_added_(other.postings_added_) {}
  InvertedIndex& operator=(InvertedIndex&& other) noexcept {
    if (this != &other) {
      terms_ = std::move(other.terms_);
      doc_lengths_ = std::move(other.doc_lengths_);
      total_length_.store(
          other.total_length_.exchange(0, std::memory_order_relaxed),
          std::memory_order_relaxed);
      min_doc_length_.store(
          other.min_doc_length_.exchange(
              std::numeric_limits<uint32_t>::max(),
              std::memory_order_relaxed),
          std::memory_order_relaxed);
      docs_added_ = other.docs_added_;
      postings_added_ = other.postings_added_;
    }
    return *this;
  }

  /// Register cumulative ingestion series (`<prefix>_index_docs_total`,
  /// `<prefix>_index_postings_total`) in `registry`. Setup-time only (same
  /// single-writer discipline as AddDocument); the registry must outlive
  /// the index.
  void EnableMetrics(metrics::Registry* registry, std::string_view prefix) {
    docs_added_ = registry->GetCounter(
        std::string(prefix) + "_index_docs_total", "documents appended");
    postings_added_ = registry->GetCounter(
        std::string(prefix) + "_index_postings_total", "postings appended");
  }

  /// Add the next document; returns its id (sequential from 0).
  /// Writer-only: at most one thread may append at a time, but appends may
  /// run concurrently with snapshot-bounded readers.
  DocId AddDocument(const TermCounts& counts);

  /// Current extents. Live accessors are exact on the writer thread or on
  /// a quiescent index; concurrent readers should use an IndexSnapshot.
  size_t num_docs() const { return doc_lengths_.size(); }
  size_t num_terms() const { return terms_.size(); }

  /// Sum of term frequencies of the document (doc must be below a
  /// published num_docs).
  uint32_t DocLength(DocId doc) const { return doc_lengths_.At(doc); }
  double avg_doc_length() const;

  /// Smallest document length added so far (0 for an empty index). The
  /// live value only ever decreases, so it lower-bounds the minimum over
  /// any published snapshot's prefix — safe for score upper bounds under
  /// concurrent append.
  uint32_t MinDocLength() const {
    const uint32_t v = min_doc_length_.load(std::memory_order_relaxed);
    return v == std::numeric_limits<uint32_t>::max() ? 0 : v;
  }

  /// Number of documents containing the term (0 for out-of-range terms).
  uint32_t DocFreq(TermId term) const;
  uint32_t DocFreq(TermId term, const IndexSnapshot& snapshot) const {
    return static_cast<uint32_t>(Postings(term, snapshot).size());
  }

  /// Full current extent of a term's postings.
  PostingView Postings(TermId term) const;

  /// Postings bounded to the snapshot: only docs < snapshot.num_docs.
  PostingView Postings(TermId term, const IndexSnapshot& snapshot) const;

  /// Block-max metadata of a term (zeroed for unknown/empty terms). The
  /// bounds are upper bounds for ANY prefix of the list, so a reader
  /// working against a snapshot may use them directly: a completed block
  /// that extends past the snapshot still bounds the snapshot-visible part
  /// of that block from above (max over a superset). A reader that races
  /// an append may observe fewer completed blocks than postings imply;
  /// the open tail is then covered by `max_tf`.
  TermBlockMax BlockMax(TermId term) const;

  // --- Snapshot-restore API (used by index_io) ------------------------
  //
  // Restoring bypasses AddDocument so a loaded index is bit-identical in
  // layout to a freshly built one without replaying documents. All three
  // calls are setup-time only (no concurrent readers); RestoreDocLengths
  // must run first so posting validation can bound doc ids.

  /// Install all document lengths at once. The index must be empty.
  Status RestoreDocLengths(std::span<const uint32_t> lengths);

  /// Grow the term-slot directory to `n` entries (empty postings). Needed
  /// because trailing terms with no postings still count toward num_terms.
  void EnsureNumTerms(size_t n);

  /// Install one term's full posting list. Doc ids must be strictly
  /// increasing, below num_docs(), with positive term frequencies; the
  /// term must not have postings yet. Violations return InvalidArgument —
  /// this is the line of defense that turns a corrupt snapshot section
  /// into a clean load failure instead of a poisoned index.
  Status RestoreTermPostings(TermId term, std::span<const Posting> postings);

  /// Capture the current extents (writer-side or quiesced index).
  IndexSnapshot Capture() const {
    IndexSnapshot snap;
    snap.num_docs = doc_lengths_.size();
    snap.num_terms = terms_.size();
    snap.total_length = total_length_.load(std::memory_order_acquire);
    return snap;
  }

 private:
  /// One term's postings plus its block-max sidecar. Appends keep the
  /// sidecar in lockstep with the postings: the moment a block fills, its
  /// max tf is published into `block_max` and is immutable from then on.
  struct TermPostings {
    PostingChunks postings;
    BlockMaxStore block_max;
    /// Max tf over all postings so far (monotone; relaxed is fine because
    /// it only ever under-approximates transiently for a racing reader,
    /// and snapshot publication orders it for quiesced readers).
    std::atomic<uint32_t> max_tf{0};
    /// Writer-only scratch: max tf of the still-open tail block.
    uint32_t tail_max = 0;

    /// Writer-only. Postings must arrive in strictly increasing doc order
    /// (callers validate); publishes block metadata as blocks complete.
    void Append(const Posting& p) {
      if (p.tf > max_tf.load(std::memory_order_relaxed)) {
        max_tf.store(p.tf, std::memory_order_relaxed);
      }
      if (p.tf > tail_max) tail_max = p.tf;
      postings.Append(p);
      if (postings.size() % kPostingBlockSize == 0) {
        block_max.Append(tail_max);
        tail_max = 0;
      }
    }
  };

  /// One slot per term id; the posting storage is allocated lazily on the
  /// term's first posting (sparse id spaces — BON uses KG node ids — would
  /// otherwise pay the full chunk directory per empty slot).
  struct TermEntry {
    std::atomic<TermPostings*> list{nullptr};

    ~TermEntry() { delete list.load(std::memory_order_relaxed); }
    TermEntry() = default;
    TermEntry(const TermEntry&) = delete;
    TermEntry& operator=(const TermEntry&) = delete;
  };

  AppendOnlyStore<TermEntry> terms_;
  AppendOnlyStore<uint32_t> doc_lengths_;
  std::atomic<uint64_t> total_length_{0};
  std::atomic<uint32_t> min_doc_length_{
      std::numeric_limits<uint32_t>::max()};
  metrics::Counter* docs_added_ = nullptr;  // null until EnableMetrics
  metrics::Counter* postings_added_ = nullptr;
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_INVERTED_INDEX_H_
