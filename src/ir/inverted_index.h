// Inverted index with document statistics: the retrieval core of the NS
// component and of the Lucene-like baseline.

#ifndef NEWSLINK_IR_INVERTED_INDEX_H_
#define NEWSLINK_IR_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ir/term_dictionary.h"

namespace newslink {
namespace ir {

using DocId = uint32_t;
inline constexpr DocId kInvalidDoc = std::numeric_limits<DocId>::max();

struct Posting {
  DocId doc;
  uint32_t tf;
};

/// Sparse term-frequency vector of a document or query.
using TermCounts = std::vector<std::pair<TermId, uint32_t>>;

/// \brief Term-at-a-time friendly inverted index.
///
/// Documents are appended in id order; postings lists are therefore sorted
/// by doc id by construction.
class InvertedIndex {
 public:
  /// Add the next document; returns its id (sequential from 0).
  DocId AddDocument(const TermCounts& counts);

  size_t num_docs() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }

  /// Sum of term frequencies of the document.
  uint32_t DocLength(DocId doc) const { return doc_lengths_[doc]; }
  double avg_doc_length() const;

  /// Number of documents containing the term (0 for out-of-range terms).
  uint32_t DocFreq(TermId term) const;

  std::span<const Posting> Postings(TermId term) const;

 private:
  std::vector<std::vector<Posting>> postings_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_length_ = 0;
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_INVERTED_INDEX_H_
