#include "ir/simhash.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace newslink {
namespace ir {

namespace {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint16_t Block(uint64_t signature, int block) {
  return static_cast<uint16_t>(signature >> (16 * block));
}

}  // namespace

uint64_t SimHash(const std::string& text) {
  std::map<std::string, int> features;
  for (const std::string& w : text::WordTokens(text)) {
    if (w.size() < 2 || text::IsStopword(w)) continue;
    ++features[text::PorterStem(w)];
  }
  int acc[64] = {0};
  for (const auto& [feature, weight] : features) {
    const uint64_t h = Fnv1a64(feature);
    for (int bit = 0; bit < 64; ++bit) {
      acc[bit] += (h >> bit) & 1 ? weight : -weight;
    }
  }
  uint64_t signature = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (acc[bit] > 0) signature |= uint64_t{1} << bit;
  }
  return signature;
}

int HammingDistance(uint64_t a, uint64_t b) {
  return std::popcount(a ^ b);
}

size_t SimHashIndex::Add(uint64_t signature) {
  const size_t id = signatures_.size();
  signatures_.push_back(signature);
  for (int b = 0; b < 4; ++b) {
    auto& table = blocks_[b];
    if (table.empty()) table.resize(1 << 16);
    table[Block(signature, b)].push_back(id);
  }
  return id;
}

std::vector<size_t> SimHashIndex::FindNear(uint64_t signature,
                                           int max_distance) const {
  std::vector<size_t> out;
  if (max_distance > 3) {
    // Pigeonhole no longer guarantees a shared block: scan.
    for (size_t id = 0; id < signatures_.size(); ++id) {
      if (HammingDistance(signatures_[id], signature) <= max_distance) {
        out.push_back(id);
      }
    }
    return out;
  }
  std::vector<bool> seen(signatures_.size(), false);
  for (int b = 0; b < 4; ++b) {
    if (blocks_[b].empty()) continue;
    for (size_t id : blocks_[b][Block(signature, b)]) {
      if (seen[id]) continue;
      seen[id] = true;
      if (HammingDistance(signatures_[id], signature) <= max_distance) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> ClusterNearDuplicates(
    const std::vector<uint64_t>& signatures, int max_distance) {
  // Union-find over near-duplicate pairs surfaced by the block index.
  std::vector<size_t> parent(signatures.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  SimHashIndex index;
  for (size_t i = 0; i < signatures.size(); ++i) {
    for (size_t j : index.FindNear(signatures[i], max_distance)) {
      const size_t a = find(i);
      const size_t b = find(j);
      if (a != b) parent[a] = b;
    }
    index.Add(signatures[i]);
  }

  // Dense group ids in first-seen order.
  std::map<size_t, size_t> group_ids;
  std::vector<size_t> groups(signatures.size());
  for (size_t i = 0; i < signatures.size(); ++i) {
    const size_t root = find(i);
    auto [it, inserted] = group_ids.emplace(root, group_ids.size());
    groups[i] = it->second;
  }
  return groups;
}

}  // namespace ir
}  // namespace newslink
