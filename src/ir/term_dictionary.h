// Term dictionary shared by the BOW and BON retrieval paths. For BOW the
// "terms" are stemmed words; for BON they are KG node ids rendered as terms
// — the paper's insight that BON is "BOW whose words are replaced by nodes"
// (Sec. VI) means one dictionary + index implementation serves both.

#ifndef NEWSLINK_IR_TERM_DICTIONARY_H_
#define NEWSLINK_IR_TERM_DICTIONARY_H_

#include <cstdint>
#include <limits>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace newslink {
namespace ir {

using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = std::numeric_limits<TermId>::max();

/// \brief Bidirectional string <-> TermId mapping.
///
/// Interning (GetOrAdd) takes the writer lock; lookups (Find, term, size)
/// take a shared lock, so any number of query threads may resolve terms
/// while a single ingestion writer interns new vocabulary. A term interned
/// after a reader's snapshot was published simply has no postings within
/// that snapshot, so a "too fresh" id is harmless on the query path.
class TermDictionary {
 public:
  /// Intern a term, assigning a fresh id on first sight (writer path).
  TermId GetOrAdd(std::string_view term);

  /// Look up without interning; kInvalidTerm when absent.
  TermId Find(std::string_view term) const;

  /// The term string of an id (by value: the backing storage may grow
  /// concurrently).
  std::string term(TermId id) const;

  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_TERM_DICTIONARY_H_
