#include "ir/max_score.h"

#include <algorithm>
#include <limits>

#include "ir/top_k.h"

namespace newslink {
namespace ir {

double MaxScoreRetriever::Score(uint32_t qtf, double idf,
                                const Posting& posting, double avgdl) const {
  const double dl = static_cast<double>(index_->DocLength(posting.doc));
  const double norm =
      params_.k1 *
      (1.0 - params_.b + params_.b * (avgdl > 0 ? dl / avgdl : 0.0));
  const double tf = static_cast<double>(posting.tf);
  return qtf * idf * tf * (params_.k1 + 1.0) / (tf + norm);
}

double MaxScoreRetriever::TfBound(uint32_t max_tf, double norm_min) const {
  // tf * (k1+1) / (tf + c) is nondecreasing in tf for c >= 0, so plugging
  // a lower bound on the norm and the maximum tf bounds every posting from
  // above.
  const double tf = static_cast<double>(max_tf);
  return tf * (params_.k1 + 1.0) / (tf + norm_min);
}

std::vector<ScoredDoc> MaxScoreRetriever::TopK(
    const TermCounts& query, size_t k, const IndexSnapshot& snapshot,
    size_t* docs_scored, size_t* blocks_skipped,
    const CollectionStats* collection, const DocFilter* filter) const {
  size_t scored = 0;
  size_t skipped_blocks = 0;
  const double avgdl =
      collection ? collection->avg_doc_length() : snapshot.avg_doc_length();
  const double num_docs = static_cast<double>(
      collection ? collection->num_docs : snapshot.num_docs);
  // Smallest norm any scored doc can have: norm is increasing in dl, the
  // live MinDocLength() only ever decreases, and Score() uses this same
  // snapshot avgdl — so this floor is valid even under concurrent append.
  // A collection-wide minimum (shard serving) is <= the local one: bounds
  // merely loosen.
  const double min_dl = static_cast<double>(
      collection ? collection->min_doc_length : index_->MinDocLength());
  const double norm_min = std::max(
      0.0, params_.k1 * (1.0 - params_.b +
                         params_.b * (avgdl > 0 ? min_dl / avgdl : 0.0)));
  struct Term {
    PostingView postings;
    TermBlockMax blocks;
    double idf;
    uint32_t qtf;
    double bound;  // maximum possible contribution of this term
  };
  std::vector<Term> terms;
  for (size_t i = 0; i < query.size(); ++i) {
    const auto& [term, qtf] = query[i];
    const PostingView postings = index_->Postings(term, snapshot);
    if (postings.empty()) continue;
    const double idf =
        collection
            ? Bm25Scorer::IdfValue(num_docs,
                                   static_cast<double>(collection->df[i]))
            : scorer_.Idf(term, snapshot);
    // tf * (k1+1) / (tf + norm) < (k1 + 1) for norm > 0; == at norm == 0.
    double bound = qtf * idf * (params_.k1 + 1.0);
    TermBlockMax blocks;
    if (options_.use_block_max) {
      blocks = index_->BlockMax(term);
      // Tighter: the term's max tf caps every posting (the live max is a
      // superset max, hence still valid for this snapshot's prefix). With
      // collection stats the cap is the collection-wide maximum, >= any
      // local tf — looser but keeps the bound ordering identical to a
      // single index over the union.
      const uint32_t tf_cap =
          collection ? collection->max_tf[i] : blocks.max_tf;
      if (tf_cap > 0) {
        bound = qtf * idf * TfBound(tf_cap, norm_min);
      }
    }
    terms.push_back(Term{postings, blocks, idf, qtf, bound});
  }
  auto finish = [&](std::vector<ScoredDoc> result) {
    last_docs_scored_.store(scored, std::memory_order_relaxed);
    last_blocks_skipped_.store(skipped_blocks, std::memory_order_relaxed);
    if (docs_scored != nullptr) *docs_scored = scored;
    if (blocks_skipped != nullptr) *blocks_skipped = skipped_blocks;
    if (calls_ != nullptr) {
      calls_->Inc();
      docs_scored_counter_->Inc(scored);
      blocks_skipped_counter_->Inc(skipped_blocks);
    }
    return result;
  };
  if (terms.empty() || k == 0) return finish({});

  // Ascending by bound: terms[0..e) become non-essential as the threshold
  // grows. Stable, so equal-bound terms keep their query order — a shard
  // evaluating a sub-collection with CollectionStats accumulates per-doc
  // contributions in the same sequence as a single index over the union.
  std::stable_sort(terms.begin(), terms.end(),
                   [](const Term& a, const Term& b) {
                     return a.bound < b.bound;
                   });
  std::vector<double> prefix(terms.size() + 1, 0.0);
  for (size_t i = 0; i < terms.size(); ++i) {
    prefix[i + 1] = prefix[i] + terms[i].bound;
  }

  TopKHeap heap(k);
  std::vector<size_t> cursor(terms.size(), 0);
  size_t first_essential = 0;

  auto advance_essential_split = [&]() {
    // terms[0..first_essential) cannot alone lift a doc over the threshold.
    // Strict comparison: exact ties must still be scored, because a tying
    // doc with a smaller id displaces the heap's worst entry.
    const double threshold = heap.Threshold();
    while (first_essential < terms.size() &&
           prefix[first_essential + 1] < threshold) {
      ++first_essential;
    }
  };

  while (true) {
    advance_essential_split();
    if (first_essential >= terms.size()) break;  // nothing can qualify

    // Next candidate: smallest doc id among essential cursors.
    DocId next = kInvalidDoc;
    for (size_t t = first_essential; t < terms.size(); ++t) {
      if (cursor[t] < terms[t].postings.size()) {
        next = std::min(next, terms[t].postings[cursor[t]].doc);
      }
    }
    if (next == kInvalidDoc) break;

    // Filter pushdown: a rejected candidate is dropped here, before any
    // scoring — its essential cursors advance past it and `scored` stays
    // untouched, so the docs_scored counters surface the pruning.
    if (filter != nullptr && !filter->Accept(next)) {
      for (size_t t = first_essential; t < terms.size(); ++t) {
        if (cursor[t] < terms[t].postings.size() &&
            terms[t].postings[cursor[t]].doc == next) {
          ++cursor[t];
        }
      }
      continue;
    }

    if (options_.use_block_max) {
      // Block-max check: bound the best score any doc in [next, safe_end]
      // could reach, where safe_end is the smallest current-block-end doc
      // across the essential lists (every essential posting for a doc in
      // that range lies inside its list's current block, so the block max
      // caps its tf). If even that bound cannot beat the threshold, jump
      // all essential cursors past safe_end without decoding a thing.
      double upper = prefix[first_essential];
      DocId safe_end = kInvalidDoc;
      for (size_t t = first_essential; t < terms.size(); ++t) {
        const size_t n = terms[t].postings.size();
        if (cursor[t] >= n) continue;
        const size_t block = cursor[t] / kPostingBlockSize;
        if (block < terms[t].blocks.num_blocks) {
          const uint32_t block_max_tf = terms[t].blocks.block_max->At(block);
          upper += terms[t].qtf * terms[t].idf * TfBound(block_max_tf, norm_min);
          const size_t block_end =
              std::min((block + 1) * kPostingBlockSize, n) - 1;
          safe_end = std::min(safe_end, terms[t].postings[block_end].doc);
        } else {
          // Open tail block (no published block max): fall back to the
          // term-level bound over the rest of the list.
          upper += terms[t].bound;
          safe_end = std::min(safe_end, terms[t].postings[n - 1].doc);
        }
      }
      // Strict: a doc tying the threshold must still be scored (it can
      // displace the heap's worst entry), so only skip when even the upper
      // bound falls short. safe_end >= next, so the range is never empty
      // and the skip below always advances the cursor that defined `next`.
      if (upper < heap.Threshold()) {
        for (size_t t = first_essential; t < terms.size(); ++t) {
          const PostingView& postings = terms[t].postings;
          if (cursor[t] >= postings.size()) continue;
          const auto it = std::upper_bound(
              postings.begin() + static_cast<std::ptrdiff_t>(cursor[t]),
              postings.end(), safe_end,
              [](DocId doc, const Posting& p) { return doc < p.doc; });
          const size_t new_pos =
              static_cast<size_t>(it - postings.begin());
          skipped_blocks +=
              new_pos / kPostingBlockSize - cursor[t] / kPostingBlockSize;
          cursor[t] = new_pos;
        }
        continue;
      }
    }

    // Score essential terms at `next`, advancing their cursors.
    double score = 0.0;
    for (size_t t = first_essential; t < terms.size(); ++t) {
      if (cursor[t] < terms[t].postings.size() &&
          terms[t].postings[cursor[t]].doc == next) {
        score += Score(terms[t].qtf, terms[t].idf,
                       terms[t].postings[cursor[t]], avgdl);
        ++cursor[t];
      }
    }

    // Probe non-essential terms, best bound first, pruning when even the
    // remaining bounds cannot reach the threshold. Strict comparison for
    // the same tie-displacement reason as above.
    for (size_t t = first_essential; t-- > 0;) {
      if (score + prefix[t + 1] < heap.Threshold()) break;
      const PostingView& postings = terms[t].postings;
      const auto it = std::lower_bound(
          postings.begin(), postings.end(), next,
          [](const Posting& p, DocId doc) { return p.doc < doc; });
      if (it != postings.end() && it->doc == next) {
        score += Score(terms[t].qtf, terms[t].idf, *it, avgdl);
      }
    }

    ++scored;
    heap.Push(ScoredDoc{next, score});
  }
  return finish(heap.Take());
}

}  // namespace ir
}  // namespace newslink
