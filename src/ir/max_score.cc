#include "ir/max_score.h"

#include <algorithm>
#include <limits>

#include "ir/top_k.h"

namespace newslink {
namespace ir {

double MaxScoreRetriever::Score(uint32_t qtf, double idf,
                                const Posting& posting, double avgdl) const {
  const double dl = static_cast<double>(index_->DocLength(posting.doc));
  const double norm =
      params_.k1 *
      (1.0 - params_.b + params_.b * (avgdl > 0 ? dl / avgdl : 0.0));
  const double tf = static_cast<double>(posting.tf);
  return qtf * idf * tf * (params_.k1 + 1.0) / (tf + norm);
}

std::vector<ScoredDoc> MaxScoreRetriever::TopK(const TermCounts& query,
                                               size_t k,
                                               const IndexSnapshot& snapshot,
                                               size_t* docs_scored) const {
  size_t scored = 0;
  const double avgdl = snapshot.avg_doc_length();
  struct Term {
    PostingView postings;
    double idf;
    uint32_t qtf;
    double bound;  // maximum possible contribution of this term
  };
  std::vector<Term> terms;
  for (const auto& [term, qtf] : query) {
    const PostingView postings = index_->Postings(term, snapshot);
    if (postings.empty()) continue;
    const double idf = scorer_.Idf(term, snapshot);
    // tf * (k1+1) / (tf + norm) < (k1 + 1) for norm > 0; == at norm == 0.
    const double bound = qtf * idf * (params_.k1 + 1.0);
    terms.push_back(Term{postings, idf, qtf, bound});
  }
  if (terms.empty() || k == 0) {
    last_docs_scored_.store(0, std::memory_order_relaxed);
    if (docs_scored != nullptr) *docs_scored = 0;
    if (calls_ != nullptr) calls_->Inc();
    return {};
  }

  // Ascending by bound: terms[0..e) become non-essential as the threshold
  // grows.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.bound < b.bound; });
  std::vector<double> prefix(terms.size() + 1, 0.0);
  for (size_t i = 0; i < terms.size(); ++i) {
    prefix[i + 1] = prefix[i] + terms[i].bound;
  }

  TopKHeap heap(k);
  std::vector<size_t> cursor(terms.size(), 0);
  size_t first_essential = 0;

  auto advance_essential_split = [&]() {
    // terms[0..first_essential) cannot alone lift a doc over the threshold.
    // Strict comparison: exact ties must still be scored, because a tying
    // doc with a smaller id displaces the heap's worst entry.
    const double threshold = heap.Threshold();
    while (first_essential < terms.size() &&
           prefix[first_essential + 1] < threshold) {
      ++first_essential;
    }
  };

  while (true) {
    advance_essential_split();
    if (first_essential >= terms.size()) break;  // nothing can qualify

    // Next candidate: smallest doc id among essential cursors.
    DocId next = kInvalidDoc;
    for (size_t t = first_essential; t < terms.size(); ++t) {
      if (cursor[t] < terms[t].postings.size()) {
        next = std::min(next, terms[t].postings[cursor[t]].doc);
      }
    }
    if (next == kInvalidDoc) break;

    // Score essential terms at `next`, advancing their cursors.
    double score = 0.0;
    for (size_t t = first_essential; t < terms.size(); ++t) {
      if (cursor[t] < terms[t].postings.size() &&
          terms[t].postings[cursor[t]].doc == next) {
        score += Score(terms[t].qtf, terms[t].idf,
                       terms[t].postings[cursor[t]], avgdl);
        ++cursor[t];
      }
    }

    // Probe non-essential terms, best bound first, pruning when even the
    // remaining bounds cannot reach the threshold. Strict comparison for
    // the same tie-displacement reason as above.
    for (size_t t = first_essential; t-- > 0;) {
      if (score + prefix[t + 1] < heap.Threshold()) break;
      const PostingView& postings = terms[t].postings;
      const auto it = std::lower_bound(
          postings.begin(), postings.end(), next,
          [](const Posting& p, DocId doc) { return p.doc < doc; });
      if (it != postings.end() && it->doc == next) {
        score += Score(terms[t].qtf, terms[t].idf, *it, avgdl);
      }
    }

    ++scored;
    heap.Push(ScoredDoc{next, score});
  }
  last_docs_scored_.store(scored, std::memory_order_relaxed);
  if (docs_scored != nullptr) *docs_scored = scored;
  if (calls_ != nullptr) {
    calls_->Inc();
    docs_scored_counter_->Inc(scored);
  }
  return heap.Take();
}

}  // namespace ir
}  // namespace newslink
