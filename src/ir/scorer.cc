#include "ir/scorer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace newslink {
namespace ir {

namespace {

std::vector<ScoredDoc> AccumulatorsToVector(
    const std::unordered_map<DocId, double>& acc) {
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  return out;
}

}  // namespace

double Bm25Scorer::IdfValue(double num_docs, double df) {
  return std::log(1.0 + (num_docs - df + 0.5) / (df + 0.5));
}

double Bm25Scorer::Idf(TermId term, const IndexSnapshot& snapshot) const {
  return IdfValue(static_cast<double>(snapshot.num_docs),
                  static_cast<double>(index_->DocFreq(term, snapshot)));
}

std::vector<ScoredDoc> Bm25Scorer::ScoreAll(
    const TermCounts& query, const IndexSnapshot& snapshot,
    const CollectionStats* collection, const DocFilter* filter) const {
  std::unordered_map<DocId, double> acc;
  const double avgdl =
      collection ? collection->avg_doc_length() : snapshot.avg_doc_length();
  const double n = static_cast<double>(
      collection ? collection->num_docs : snapshot.num_docs);
  for (size_t i = 0; i < query.size(); ++i) {
    const auto& [term, qtf] = query[i];
    const double df = static_cast<double>(
        collection ? collection->df[i] : index_->DocFreq(term, snapshot));
    const double idf = IdfValue(n, df);
    for (const Posting& p : index_->Postings(term, snapshot)) {
      if (filter != nullptr && !filter->Accept(p.doc)) continue;
      const double dl = static_cast<double>(index_->DocLength(p.doc));
      const double norm =
          params_.k1 * (1.0 - params_.b +
                        params_.b * (avgdl > 0 ? dl / avgdl : 0.0));
      const double tf = static_cast<double>(p.tf);
      acc[p.doc] += qtf * idf * tf * (params_.k1 + 1.0) / (tf + norm);
    }
  }
  return AccumulatorsToVector(acc);
}

double Bm25Scorer::ScoreDoc(const TermCounts& query, DocId doc,
                            const IndexSnapshot& snapshot,
                            const CollectionStats* collection) const {
  const double avgdl =
      collection ? collection->avg_doc_length() : snapshot.avg_doc_length();
  const double n = static_cast<double>(
      collection ? collection->num_docs : snapshot.num_docs);
  const double dl = static_cast<double>(index_->DocLength(doc));
  const double norm =
      params_.k1 *
      (1.0 - params_.b + params_.b * (avgdl > 0 ? dl / avgdl : 0.0));
  double score = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    const auto& [term, qtf] = query[i];
    const PostingView postings = index_->Postings(term, snapshot);
    const auto it = std::lower_bound(
        postings.begin(), postings.end(), doc,
        [](const Posting& p, DocId d) { return p.doc < d; });
    if (it == postings.end() || it->doc != doc) continue;
    const double df = static_cast<double>(
        collection ? collection->df[i] : index_->DocFreq(term, snapshot));
    const double tf = static_cast<double>(it->tf);
    score += qtf * IdfValue(n, df) * tf * (params_.k1 + 1.0) / (tf + norm);
  }
  return score;
}

TfIdfCosineScorer::TfIdfCosineScorer(const InvertedIndex* index)
    : index_(index) {
  Norms(index_->Capture());  // eager first computation, as before
}

std::shared_ptr<const std::vector<double>> TfIdfCosineScorer::ComputeNorms(
    const IndexSnapshot& snapshot) const {
  auto norms = std::make_shared<std::vector<double>>(snapshot.num_docs, 0.0);
  for (TermId t = 0; t < snapshot.num_terms; ++t) {
    const double idf = Idf(t, snapshot);
    for (const Posting& p : index_->Postings(t, snapshot)) {
      const double w = (1.0 + std::log(static_cast<double>(p.tf))) * idf;
      (*norms)[p.doc] += w * w;
    }
  }
  for (double& n : *norms) n = n > 0 ? std::sqrt(n) : 1.0;
  return norms;
}

std::shared_ptr<const std::vector<double>> TfIdfCosineScorer::Norms(
    const IndexSnapshot& snapshot) const {
  {
    std::lock_guard<std::mutex> lock(norms_mu_);
    if (doc_norms_ != nullptr && doc_norms_->size() == snapshot.num_docs) {
      return doc_norms_;
    }
  }
  // Computed outside the lock: a slow recompute must not serialize queries
  // that already have a matching cache entry.
  auto norms = ComputeNorms(snapshot);
  std::lock_guard<std::mutex> lock(norms_mu_);
  // Keep the cache monotone: only advance it, so one stale reader cannot
  // evict the entry every concurrent fresh reader wants.
  if (doc_norms_ == nullptr || doc_norms_->size() < norms->size()) {
    doc_norms_ = norms;
  }
  return norms;
}

double TfIdfCosineScorer::Idf(TermId term,
                              const IndexSnapshot& snapshot) const {
  const double n = static_cast<double>(snapshot.num_docs);
  const double df = static_cast<double>(index_->DocFreq(term, snapshot));
  if (df == 0.0) return 0.0;
  return std::log(1.0 + n / df);
}

std::vector<ScoredDoc> TfIdfCosineScorer::ScoreAll(
    const TermCounts& query, const IndexSnapshot& snapshot) const {
  const std::shared_ptr<const std::vector<double>> doc_norms = Norms(snapshot);
  // Query norm.
  double qnorm = 0.0;
  for (const auto& [term, qtf] : query) {
    const double w =
        (1.0 + std::log(static_cast<double>(qtf))) * Idf(term, snapshot);
    qnorm += w * w;
  }
  qnorm = qnorm > 0 ? std::sqrt(qnorm) : 1.0;

  std::unordered_map<DocId, double> acc;
  for (const auto& [term, qtf] : query) {
    const double idf = Idf(term, snapshot);
    if (idf == 0.0) continue;
    const double qw = (1.0 + std::log(static_cast<double>(qtf))) * idf;
    for (const Posting& p : index_->Postings(term, snapshot)) {
      const double dw = (1.0 + std::log(static_cast<double>(p.tf))) * idf;
      acc[p.doc] += qw * dw;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, dot] : acc) {
    out.push_back(ScoredDoc{doc, dot / (qnorm * (*doc_norms)[doc])});
  }
  return out;
}

}  // namespace ir
}  // namespace newslink
