#include "ir/scorer.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <unordered_map>

namespace newslink {
namespace ir {

namespace {

std::vector<ScoredDoc> AccumulatorsToVector(
    const std::unordered_map<DocId, double>& acc) {
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) out.push_back(ScoredDoc{doc, score});
  return out;
}

}  // namespace

double Bm25Scorer::Idf(TermId term) const {
  const double n = static_cast<double>(index_->num_docs());
  const double df = static_cast<double>(index_->DocFreq(term));
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<ScoredDoc> Bm25Scorer::ScoreAll(const TermCounts& query) const {
  std::unordered_map<DocId, double> acc;
  const double avgdl = index_->avg_doc_length();
  for (const auto& [term, qtf] : query) {
    const double idf = Idf(term);
    for (const Posting& p : index_->Postings(term)) {
      const double dl = static_cast<double>(index_->DocLength(p.doc));
      const double norm =
          params_.k1 * (1.0 - params_.b +
                        params_.b * (avgdl > 0 ? dl / avgdl : 0.0));
      const double tf = static_cast<double>(p.tf);
      acc[p.doc] += qtf * idf * tf * (params_.k1 + 1.0) / (tf + norm);
    }
  }
  return AccumulatorsToVector(acc);
}

double Bm25Scorer::ScoreDoc(const TermCounts& query, DocId doc) const {
  const double avgdl = index_->avg_doc_length();
  const double dl = static_cast<double>(index_->DocLength(doc));
  const double norm =
      params_.k1 *
      (1.0 - params_.b + params_.b * (avgdl > 0 ? dl / avgdl : 0.0));
  double score = 0.0;
  for (const auto& [term, qtf] : query) {
    const std::span<const Posting> postings = index_->Postings(term);
    const auto it = std::lower_bound(
        postings.begin(), postings.end(), doc,
        [](const Posting& p, DocId d) { return p.doc < d; });
    if (it == postings.end() || it->doc != doc) continue;
    const double tf = static_cast<double>(it->tf);
    score += qtf * Idf(term) * tf * (params_.k1 + 1.0) / (tf + norm);
  }
  return score;
}

TfIdfCosineScorer::TfIdfCosineScorer(const InvertedIndex* index)
    : index_(index) {
  Norms();  // eager first computation, as before
}

std::shared_ptr<const std::vector<double>> TfIdfCosineScorer::Norms() const {
  std::lock_guard<std::mutex> lock(norms_mu_);
  if (doc_norms_ != nullptr && doc_norms_->size() == index_->num_docs()) {
    return doc_norms_;
  }
  auto norms = std::make_shared<std::vector<double>>(index_->num_docs(), 0.0);
  for (TermId t = 0; t < index_->num_terms(); ++t) {
    const double idf = Idf(t);
    for (const Posting& p : index_->Postings(t)) {
      const double w = (1.0 + std::log(static_cast<double>(p.tf))) * idf;
      (*norms)[p.doc] += w * w;
    }
  }
  for (double& n : *norms) n = n > 0 ? std::sqrt(n) : 1.0;
  doc_norms_ = std::move(norms);
  return doc_norms_;
}

double TfIdfCosineScorer::Idf(TermId term) const {
  const double n = static_cast<double>(index_->num_docs());
  const double df = static_cast<double>(index_->DocFreq(term));
  if (df == 0.0) return 0.0;
  return std::log(1.0 + n / df);
}

std::vector<ScoredDoc> TfIdfCosineScorer::ScoreAll(
    const TermCounts& query) const {
  const std::shared_ptr<const std::vector<double>> doc_norms = Norms();
  // Query norm.
  double qnorm = 0.0;
  for (const auto& [term, qtf] : query) {
    const double w = (1.0 + std::log(static_cast<double>(qtf))) * Idf(term);
    qnorm += w * w;
  }
  qnorm = qnorm > 0 ? std::sqrt(qnorm) : 1.0;

  std::unordered_map<DocId, double> acc;
  for (const auto& [term, qtf] : query) {
    const double idf = Idf(term);
    if (idf == 0.0) continue;
    const double qw = (1.0 + std::log(static_cast<double>(qtf))) * idf;
    for (const Posting& p : index_->Postings(term)) {
      const double dw = (1.0 + std::log(static_cast<double>(p.tf))) * idf;
      acc[p.doc] += qw * dw;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, dot] : acc) {
    out.push_back(ScoredDoc{doc, dot / (qnorm * (*doc_norms)[doc])});
  }
  return out;
}

}  // namespace ir
}  // namespace newslink
