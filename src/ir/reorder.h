// Doc-ID reordering for block-max pruning: renumber documents so that
// textually similar documents receive adjacent internal ids. Clustered ids
// make posting blocks coherent — a block's max tf is close to its typical
// tf — which tightens block-max bounds and lets Block-Max MaxScore skip
// more (Ding & Suel 2011; the full solution is recursive graph bisection,
// Dhulipala et al. 2016 — sorting by SimHash signature is the classic
// cheap first cut that captures most of the clustering win at O(n log n)).
//
// The permutation lives at the index-build boundary: internal ids order
// postings and embeddings, external ids (corpus row numbers) are what the
// public API speaks. Helpers here build, invert, and validate that
// mapping; the engine owns applying it consistently.

#ifndef NEWSLINK_IR_REORDER_H_
#define NEWSLINK_IR_REORDER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace newslink {
namespace ir {

/// Order documents by similarity signature: returns `order` such that
/// order[internal_id] = external_id, sorted ascending by
/// (signatures[external_id], external_id). The secondary key makes the
/// permutation deterministic, and in particular the identity permutation
/// when all signatures collide.
std::vector<uint32_t> SignatureSortOrder(std::span<const uint64_t> signatures);

/// Inverse of a permutation: result[order[i]] = i. `order` must be a valid
/// permutation of [0, order.size()).
std::vector<uint32_t> InvertPermutation(std::span<const uint32_t> order);

/// True iff `ids` is a permutation of [0, ids.size()) — the validation
/// gate for doc-id maps loaded from disk.
bool IsPermutation(std::span<const uint32_t> ids);

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_REORDER_H_
