#include "ir/text_vectorizer.h"

#include <algorithm>
#include <map>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace newslink {
namespace ir {

namespace {

template <typename LookupFn>
TermCounts Count(const std::string& text, LookupFn&& lookup) {
  std::map<TermId, uint32_t> counts;
  for (const std::string& word : text::WordTokens(text)) {
    if (word.size() < 2 || text::IsStopword(word)) continue;
    const TermId id = lookup(text::PorterStem(word));
    if (id == kInvalidTerm) continue;
    ++counts[id];
  }
  return TermCounts(counts.begin(), counts.end());
}

}  // namespace

TermCounts TextVectorizer::CountsForIndexing(const std::string& text,
                                             TermDictionary* dict) {
  return Count(text,
               [dict](const std::string& stem) { return dict->GetOrAdd(stem); });
}

TermCounts TextVectorizer::CountsForQuery(const std::string& text,
                                          const TermDictionary& dict) {
  return CountsFromStems(StemsForQuery(text), dict);
}

StemCounts TextVectorizer::StemsForQuery(const std::string& text) {
  std::map<std::string, uint32_t> counts;
  for (const std::string& word : text::WordTokens(text)) {
    if (word.size() < 2 || text::IsStopword(word)) continue;
    ++counts[text::PorterStem(word)];
  }
  return StemCounts(counts.begin(), counts.end());
}

TermCounts TextVectorizer::CountsFromStems(const StemCounts& stems,
                                           const TermDictionary& dict) {
  TermCounts counts;
  counts.reserve(stems.size());
  for (const auto& [stem, qtf] : stems) {
    const TermId id = dict.Find(stem);
    if (id == kInvalidTerm) continue;
    counts.push_back({id, qtf});
  }
  return counts;
}

}  // namespace ir
}  // namespace newslink
