// Binary (de)serialization of the IR layer for engine snapshots
// (DESIGN.md Sec. 9): TermDictionary and InvertedIndex to/from section
// payloads of a snapshot file. Posting lists use the same delta-gap +
// varint layout as CompressedPostingList, so the on-disk form inherits the
// varbyte codec's compression; every read is bounds-checked and every
// structural invariant (monotonic doc ids, in-range lengths, positive term
// frequencies) is re-validated on load, so a corrupt payload that slipped
// past the CRCs still fails with a Status instead of poisoning the index.

#ifndef NEWSLINK_IR_INDEX_IO_H_
#define NEWSLINK_IR_INDEX_IO_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/status.h"
#include "ir/inverted_index.h"
#include "ir/term_dictionary.h"

namespace newslink {
namespace ir {

/// Serialize the dictionary: u64 term count followed by length-prefixed
/// term strings in id order. Deterministic (ids are dense and ordered).
void SerializeTermDictionary(const TermDictionary& dict, ByteWriter* out);

/// Parse the term strings (slot i holds the term of id i). Duplicate terms
/// — which would silently alias two ids — are rejected. Parsing into plain
/// strings (not a TermDictionary) lets callers validate every snapshot
/// section before mutating any engine state.
Status DeserializeTermStrings(ByteReader* reader,
                              std::vector<std::string>* terms);

/// Serialize an index captured at quiescence: u64 num_docs, varint doc
/// lengths, u64 num_terms, then per term a varint posting count and the
/// delta-gap (doc, tf) varint stream.
void SerializeInvertedIndex(const InvertedIndex& index, ByteWriter* out);

/// Rebuild an index via the restore API. `index` must be empty.
Status DeserializeInvertedIndex(ByteReader* reader, InvertedIndex* index);

/// Serialize a doc-id map (internal id -> external corpus row, from the
/// doc-reordering pass): u64 count followed by varint external ids.
/// Deterministic.
void SerializeDocMap(std::span<const uint32_t> internal_to_external,
                     ByteWriter* out);

/// Parse and validate a doc-id map. The map must be a permutation of
/// [0, count) — anything else (out-of-range id, duplicate) is IOError, so
/// a corrupt map can never mis-route a search hit to the wrong document.
Status DeserializeDocMap(ByteReader* reader, std::vector<uint32_t>* map);

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_INDEX_IO_H_
