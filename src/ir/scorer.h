// Relevance scoring over an InvertedIndex: BM25 (Robertson & Zaragoza 2009,
// the paper's term weighting, with Lucene 7.x default parameters) and
// TF-IDF / cosine VSM (Salton et al. 1975).
//
// Every scoring method is parameterized by an ir::IndexSnapshot so that all
// collection statistics (N, df, avgdl, norms) come from one published epoch
// — a query never mixes statistics from before and after a concurrent
// append. The snapshot-free overloads capture the current extents on entry
// and exist for single-phase engines (index once, then query).

#ifndef NEWSLINK_IR_SCORER_H_
#define NEWSLINK_IR_SCORER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "ir/inverted_index.h"

namespace newslink {
namespace ir {

struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  bool operator==(const ScoredDoc& o) const {
    return doc == o.doc && score == o.score;
  }
};

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// \brief Document admission predicate pushed down into retrieval (the
/// time_range filter of DESIGN.md Sec. 15 travels through this).
///
/// A plain function pointer + context instead of std::function or a
/// virtual: the posting-traversal loops are the hottest code in the
/// engine, and a direct call through a stable pointer keeps them
/// branch-predictable. `accept` takes doc ids in the INDEX's id space
/// (internal ids when the engine reordered documents) and must be a pure
/// function of snapshot-bounded state for the duration of the query.
/// Rejected documents are skipped during traversal — never scored, never
/// counted in docs_scored — so filtering prunes work instead of
/// truncating an unfiltered top-k.
struct DocFilter {
  bool (*accept)(const void* ctx, DocId doc) = nullptr;
  const void* ctx = nullptr;

  bool Accept(DocId doc) const {
    return accept == nullptr || accept(ctx, doc);
  }
};

/// \brief Collection-level statistics to score with *instead of* the
/// snapshot's own.
///
/// The distributed-search hook: a shard holding one partition of a corpus
/// scores its documents with the statistics of the whole collection (union
/// of shards) so that per-document BM25 values are bit-identical to a
/// single index over the union. Document-level inputs (tf, doc length)
/// still come from the local index — only N, avgdl, df, and the pruning
/// bounds' inputs are replaced.
///
/// `df` (and `max_tf`, when used for bounds) are aligned *by query
/// position*: entry i describes the i-th entry of the TermCounts passed
/// alongside, because local term ids differ per shard and cannot key a
/// shared table.
struct CollectionStats {
  uint64_t num_docs = 0;
  uint64_t total_length = 0;
  /// Smallest document length in the collection (bounds input; a global
  /// minimum is <= any local one, so bounds stay valid upper bounds).
  uint32_t min_doc_length = 0;
  /// Collection document frequency of query entry i.
  std::vector<uint64_t> df;
  /// Collection-wide maximum tf of query entry i (0 = unknown; bounds then
  /// fall back to the loose (k1+1) cap).
  std::vector<uint32_t> max_tf;

  /// Mirrors IndexSnapshot::avg_doc_length() arithmetic exactly.
  double avg_doc_length() const {
    return num_docs == 0 ? 0.0
                         : static_cast<double>(total_length) /
                               static_cast<double>(num_docs);
  }
};

/// \brief Term-at-a-time BM25 scorer.
class Bm25Scorer {
 public:
  explicit Bm25Scorer(const InvertedIndex* index, Bm25Params params = {})
      : index_(index), params_(params) {}

  /// Lucene-style BM25 idf: ln(1 + (N - df + 0.5) / (df + 0.5)); always > 0.
  double Idf(TermId term, const IndexSnapshot& snapshot) const;
  double Idf(TermId term) const { return Idf(term, index_->Capture()); }

  /// The idf formula on raw statistics — the one arithmetic every path
  /// (snapshot-local or CollectionStats-overridden) goes through, so a
  /// shard given the collection's (N, df) reproduces the exact bits.
  static double IdfValue(double num_docs, double df);

  /// Score every snapshot document containing at least one query term.
  /// Query term multiplicity contributes linearly, as in Lucene.
  /// With non-null `collection`, N / avgdl / df come from it (df by query
  /// position) instead of the snapshot; postings and doc lengths are still
  /// the snapshot's. With non-null `filter`, rejected documents are
  /// skipped during posting traversal (they never enter an accumulator).
  std::vector<ScoredDoc> ScoreAll(const TermCounts& query,
                                  const IndexSnapshot& snapshot,
                                  const CollectionStats* collection = nullptr,
                                  const DocFilter* filter = nullptr) const;
  std::vector<ScoredDoc> ScoreAll(const TermCounts& query) const {
    return ScoreAll(query, index_->Capture());
  }

  /// BM25 score of one document (binary search per postings list): the
  /// random-access path used to complete candidate scores after pruned
  /// retrieval. Equals the doc's ScoreAll entry (0 when no term matches).
  /// `collection` as in ScoreAll.
  double ScoreDoc(const TermCounts& query, DocId doc,
                  const IndexSnapshot& snapshot,
                  const CollectionStats* collection = nullptr) const;
  double ScoreDoc(const TermCounts& query, DocId doc) const {
    return ScoreDoc(query, doc, index_->Capture());
  }

 private:
  const InvertedIndex* index_;
  Bm25Params params_;
};

/// \brief TF-IDF cosine scorer (lnc.ltc-flavoured VSM).
///
/// Document weights use (1 + ln tf) * idf with idf = ln(1 + N / df);
/// scores are cosine similarities (both vectors length-normalized).
/// Document norms are recomputed per snapshot doc count (idf depends on N,
/// so incremental patching would be wrong) and cached behind a mutex +
/// shared_ptr, so concurrent ScoreAll calls against different epochs are
/// each exact.
class TfIdfCosineScorer {
 public:
  explicit TfIdfCosineScorer(const InvertedIndex* index);

  double Idf(TermId term, const IndexSnapshot& snapshot) const;
  double Idf(TermId term) const { return Idf(term, index_->Capture()); }

  std::vector<ScoredDoc> ScoreAll(const TermCounts& query,
                                  const IndexSnapshot& snapshot) const;
  std::vector<ScoredDoc> ScoreAll(const TermCounts& query) const {
    return ScoreAll(query, index_->Capture());
  }

 private:
  /// Per-doc norms for exactly `snapshot`. The single-entry cache is keyed
  /// by the snapshot's doc count (norms are a pure function of it); a query
  /// holding an older epoch than the cache recomputes without clobbering
  /// the newer entry.
  std::shared_ptr<const std::vector<double>> Norms(
      const IndexSnapshot& snapshot) const;

  std::shared_ptr<const std::vector<double>> ComputeNorms(
      const IndexSnapshot& snapshot) const;

  const InvertedIndex* index_;
  mutable std::mutex norms_mu_;
  mutable std::shared_ptr<const std::vector<double>> doc_norms_;  // guarded
};

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_SCORER_H_
