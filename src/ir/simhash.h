// SimHash near-duplicate detection (Charikar 2002, as deployed for web/news
// dedup). Real news corpora — including the paper's CNN/Kaggle datasets —
// are full of syndicated near-duplicates; detecting them matters both for
// corpus hygiene and for interpreting HIT@k (a near-duplicate of the query
// document is an arguably-correct answer).

#ifndef NEWSLINK_IR_SIMHASH_H_
#define NEWSLINK_IR_SIMHASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace newslink {
namespace ir {

/// 64-bit SimHash over stemmed, stopword-filtered word features, with
/// term-frequency weighting.
uint64_t SimHash(const std::string& text);

/// Hamming distance between two signatures (0 = likely identical content).
int HammingDistance(uint64_t a, uint64_t b);

/// \brief Index for near-duplicate lookup over a document collection.
///
/// Uses the standard 4-block permutation trick: two signatures within
/// Hamming distance 3 share at least one of four 16-bit blocks, so
/// candidate retrieval is a hash lookup rather than a linear scan.
class SimHashIndex {
 public:
  /// Add the next document's signature; ids are sequential from 0.
  size_t Add(uint64_t signature);

  /// All previously added documents within `max_distance` Hamming bits of
  /// `signature` (max_distance <= 3 uses the block index; larger values
  /// fall back to a scan).
  std::vector<size_t> FindNear(uint64_t signature, int max_distance) const;

  size_t size() const { return signatures_.size(); }
  uint64_t signature(size_t id) const { return signatures_[id]; }

 private:
  std::vector<uint64_t> signatures_;
  /// block index: for each of the 4 blocks, 16-bit value -> doc ids.
  std::vector<std::vector<size_t>> blocks_[4];
};

/// Convenience: cluster a corpus of signatures into near-duplicate groups
/// (connected components under Hamming distance <= max_distance). Returns
/// a group id per document.
std::vector<size_t> ClusterNearDuplicates(
    const std::vector<uint64_t>& signatures, int max_distance = 3);

}  // namespace ir
}  // namespace newslink

#endif  // NEWSLINK_IR_SIMHASH_H_
