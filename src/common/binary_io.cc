#include "common/binary_io.h"

#include <array>

#include "common/string_util.h"

namespace newslink {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status Truncated(std::string_view what, size_t want, size_t have) {
  return Status::IOError(
      StrCat("truncated read: ", what, " needs ", want, " bytes, ", have,
             " remain"));
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Status ByteReader::ReadU8(uint8_t* out) {
  if (remaining() < 1) return Truncated("u8", 1, remaining());
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* out) {
  if (remaining() < 4) return Truncated("u32", 4, remaining());
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* out) {
  if (remaining() < 8) return Truncated("u64", 8, remaining());
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadFloat(float* out) {
  uint32_t bits;
  NL_RETURN_IF_ERROR(ReadU32(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status ByteReader::ReadDouble(double* out) {
  uint64_t bits;
  NL_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status ByteReader::ReadVarint(uint32_t* out) {
  uint32_t value = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (AtEnd()) return Truncated("varint", 1, 0);
    const uint8_t byte = data_[pos_++];
    const uint32_t group = byte & 0x7F;
    if (shift == 28 && group > 0x0F) {
      return Status::IOError("varint overflows 32 bits");
    }
    value |= group << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return Status::OK();
    }
  }
  return Status::IOError("varint longer than 5 bytes");
}

Status ByteReader::ReadString(std::string* out, size_t max_len) {
  uint32_t len;
  NL_RETURN_IF_ERROR(ReadU32(&len));
  if (len > max_len) {
    return Status::IOError(
        StrCat("string length ", len, " exceeds limit ", max_len));
  }
  if (remaining() < len) return Truncated("string payload", len, remaining());
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status ByteReader::ReadRaw(void* out, size_t n) {
  if (remaining() < n) return Truncated("raw bytes", n, remaining());
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Truncated("skip", n, remaining());
  pos_ += n;
  return Status::OK();
}

Status ByteReader::CheckCount(uint64_t count, size_t min_element_bytes) const {
  const size_t floor = min_element_bytes > 0 ? min_element_bytes : 1;
  if (count > remaining() / floor) {
    return Status::IOError(
        StrCat("element count ", count, " cannot fit in ", remaining(),
               " remaining bytes"));
  }
  return Status::OK();
}

Status ByteReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::IOError(
        StrCat(remaining(), " trailing bytes after payload"));
  }
  return Status::OK();
}

}  // namespace newslink
