#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace newslink {

namespace {

/// The pool whose WorkerLoop is running on this thread (null on external
/// threads). Lets ParallelFor detect reentrancy: a worker that blocked in
/// Wait() would deadlock once every worker is occupied by its caller.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (t_worker_pool == this) {
    // Called from one of our own workers (e.g. a submitted task fans out):
    // Wait() below would block this worker while the loop tasks sit behind
    // it in the queue — with all workers occupied by such callers, nobody
    // ever drains the queue. Run the loop inline on this thread instead.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One task per worker strided over [0, n): cheap for small n, balanced
  // enough for our document-granularity workloads.
  auto counter = std::make_shared<std::atomic<size_t>>(0);
  const size_t workers = std::min(n, threads_.size());
  for (size_t w = 0; w < workers; ++w) {
    Submit([counter, n, &fn] {
      while (true) {
        const size_t i = counter->fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace newslink
