// Result<T>: a value-or-Status holder (Arrow's Result / absl::StatusOr).

#ifndef NEWSLINK_COMMON_RESULT_H_
#define NEWSLINK_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace newslink {

/// \brief Holds either a T or a non-OK Status describing why there is no T.
///
/// Accessing value() on an error Result aborts (programmer error); check
/// ok() or use ValueOr() when failure is expected.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit per StatusOr idiom.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    NL_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NL_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    NL_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    NL_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a T.
};

/// Assign the value of a Result expression or propagate its Status.
#define NL_ASSIGN_OR_RETURN(lhs, expr)                \
  NL_ASSIGN_OR_RETURN_IMPL_(                          \
      NL_STATUS_MACROS_CONCAT_(_nl_res_, __LINE__), lhs, expr)

#define NL_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define NL_STATUS_MACROS_CONCAT_(x, y) NL_STATUS_MACROS_CONCAT_INNER_(x, y)

#define NL_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value();

}  // namespace newslink

#endif  // NEWSLINK_COMMON_RESULT_H_
