// Deterministic random number generation. Every stochastic component in the
// library draws from a seeded Xorshift128+ stream so corpora, models, and
// benchmark tables are bit-reproducible across runs.

#ifndef NEWSLINK_COMMON_RNG_H_
#define NEWSLINK_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace newslink {

/// \brief Xorshift128+ pseudo-random generator (Vigna 2014).
///
/// Fast, decent statistical quality, and — unlike std::mt19937 — guaranteed
/// to produce identical streams on every platform and standard library.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed, as recommended by Vigna.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is absorbing
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t Uniform(uint64_t bound) {
    NL_DCHECK(bound > 0);
    // Modulo bias is negligible for bound << 2^64 (all our uses).
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    NL_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Zipf-distributed rank in [0, n) with exponent s (s=1: classic Zipf).
  /// Uses inverse-CDF over a cached prefix table supplied by ZipfTable.
  template <typename Container>
  size_t SampleFromCdf(const Container& cdf) {
    NL_DCHECK(!cdf.empty());
    const double u = UniformDouble() * cdf.back();
    size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      const size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    NL_DCHECK(k <= n);
    // Floyd's algorithm: O(k) expected insertions.
    std::vector<size_t> out;
    out.reserve(k);
    for (size_t j = n - k; j < n; ++j) {
      const size_t t = Uniform(j + 1);
      bool seen = false;
      for (size_t x : out) {
        if (x == t) {
          seen = true;
          break;
        }
      }
      out.push_back(seen ? j : t);
    }
    return out;
  }

  /// Derive an independent child stream (for per-thread / per-doc seeding).
  Rng Fork(uint64_t salt) {
    return Rng(Next() ^ (salt * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL));
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// \brief Precomputed CDF for Zipf(s) over n ranks, for Rng::SampleFromCdf.
class ZipfTable {
 public:
  ZipfTable(size_t n, double s) : cdf_(n) {
    NL_CHECK(n > 0);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
  }

  size_t Sample(Rng* rng) const { return rng->SampleFromCdf(cdf_); }
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace newslink

#endif  // NEWSLINK_COMMON_RNG_H_
