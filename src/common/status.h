// Status / Result error handling, following the RocksDB / Arrow idiom:
// no exceptions cross library boundaries; recoverable failures travel as
// Status (or Result<T>), programmer errors abort via NL_DCHECK.

#ifndef NEWSLINK_COMMON_STATUS_H_
#define NEWSLINK_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace newslink {

/// \brief Outcome of a fallible operation.
///
/// A Status is cheap to copy when OK (no allocation) and carries a code plus
/// a human-readable message otherwise. Use the factory functions
/// (Status::OK(), Status::InvalidArgument(...), ...) rather than the
/// constructor.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
    kIOError,
    kTimeout,
    kUnimplemented,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status Timeout(std::string_view msg) {
    return Status(Code::kTimeout, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(Code::kUnimplemented, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }

  /// Render as "<CODE>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Propagate a non-OK Status to the caller.
#define NL_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::newslink::Status _nl_st = (expr);          \
    if (!_nl_st.ok()) return _nl_st;             \
  } while (false)

}  // namespace newslink

#endif  // NEWSLINK_COMMON_STATUS_H_
