// Versioned, checksummed, sectioned container for on-disk engine snapshots
// (DESIGN.md Sec. 9). Layout:
//
//   magic "NLSNAP" + u16 format version
//   header: kg / corpus / config fingerprints, document count
//   u32 section count
//   per section: name (u32 len + bytes), u64 payload length,
//                u32 CRC32(payload), payload bytes
//   u32 CRC32 of everything above (whole-file integrity)
//
// Readers verify the magic, the version, the file CRC, and every section
// CRC before handing a single payload byte to a deserializer, so torn
// writes, truncation, and bit flips surface as Status errors — never as a
// crash in a downstream parser. Fingerprints let the loader reject a
// snapshot built against a different KG, corpus, or engine configuration
// instead of silently serving stale artifacts.

#ifndef NEWSLINK_COMMON_SNAPSHOT_FILE_H_
#define NEWSLINK_COMMON_SNAPSHOT_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace newslink {

inline constexpr std::string_view kSnapshotMagic = "NLSNAP";
/// On-disk format version. Readers reject any other version outright (a
/// snapshot is a cache — rebuild, don't migrate). History:
///   1: initial sectioned container.
///   2: doc-id map section ("doc_map") for reorder-aware engines; absence
///      would silently mis-route hits, so v1 files are stale.
///   3: optional LCAG distance-sketch section ("lcag_sketch"); bumped so
///      sketch-built deployments never load a pre-sketch file and silently
///      lose the NE fast path (DESIGN.md Sec. 14). Also carries the
///      optional per-document "timestamps" section (DESIGN.md Sec. 15) —
///      optional on read, so no further bump: a file without it loads
///      with every publication time unknown and recency/window features
///      cleanly disabled.
inline constexpr uint16_t kSnapshotFormatVersion = 3;

/// \brief Identity of the artifacts inside a snapshot.
struct SnapshotHeader {
  uint16_t format_version = kSnapshotFormatVersion;
  /// Fingerprint of the knowledge graph the indexes were built against.
  uint64_t kg_fingerprint = 0;
  /// Chained fingerprint of every document indexed, in order.
  uint64_t corpus_fingerprint = 0;
  /// Fingerprint of the engine-configuration fields that shape the stored
  /// artifacts (embedder kind, LCAG options, BON caps, ...).
  uint64_t config_fingerprint = 0;
  /// Documents covered by the snapshot.
  uint64_t num_docs = 0;
};

/// \brief One named, independently checksummed payload.
struct SnapshotSection {
  std::string name;
  std::vector<uint8_t> payload;
};

/// \brief A fully verified snapshot file (all CRCs already checked).
struct SnapshotFile {
  SnapshotHeader header;
  std::vector<SnapshotSection> sections;

  /// The section named `name`, or nullptr when absent.
  const SnapshotSection* Find(std::string_view name) const;
};

/// Serialize and atomically write (`path` + ".tmp", then rename) the
/// snapshot. The byte stream is deterministic: identical inputs produce
/// identical files, which CI exploits to byte-compare a save after a load.
Status WriteSnapshotFile(const std::string& path, const SnapshotHeader& header,
                         const std::vector<SnapshotSection>& sections);

/// Read and verify a snapshot file: magic, format version, file CRC, and
/// every per-section CRC. Any mismatch or truncation returns a Status.
Result<SnapshotFile> ReadSnapshotFile(const std::string& path);

/// Read and verify only the header (still checks the file CRC, so a cheap
/// "is this snapshot intact and compatible" probe exists for tools).
Result<SnapshotHeader> ReadSnapshotHeader(const std::string& path);

}  // namespace newslink

#endif  // NEWSLINK_COMMON_SNAPSHOT_FILE_H_
