// Wall-clock timing helpers used by the evaluation harness (Fig. 7 and
// Table VIII reproduce per-component time breakdowns).

#ifndef NEWSLINK_COMMON_TIMER_H_
#define NEWSLINK_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace newslink {

/// \brief Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates named time buckets ("nlp", "ne", "ns", ...).
///
/// Not thread-safe; each worker keeps its own TimeBreakdown and merges.
class TimeBreakdown {
 public:
  void Add(const std::string& bucket, double seconds) {
    buckets_[bucket] += seconds;
    counts_[bucket] += 1;
  }

  void Merge(const TimeBreakdown& other) {
    for (const auto& [k, v] : other.buckets_) buckets_[k] += v;
    for (const auto& [k, v] : other.counts_) counts_[k] += v;
  }

  double TotalSeconds(const std::string& bucket) const {
    auto it = buckets_.find(bucket);
    return it == buckets_.end() ? 0.0 : it->second;
  }

  int64_t Count(const std::string& bucket) const {
    auto it = counts_.find(bucket);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Mean seconds per recorded event in the bucket (0 if empty).
  double MeanSeconds(const std::string& bucket) const {
    const int64_t n = Count(bucket);
    return n == 0 ? 0.0 : TotalSeconds(bucket) / static_cast<double>(n);
  }

  const std::map<std::string, double>& buckets() const { return buckets_; }

 private:
  std::map<std::string, double> buckets_;
  std::map<std::string, int64_t> counts_;
};

/// \brief RAII guard that adds its lifetime to a TimeBreakdown bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimeBreakdown* breakdown, std::string bucket)
      : breakdown_(breakdown), bucket_(std::move(bucket)) {}
  ~ScopedTimer() {
    if (breakdown_ != nullptr) breakdown_->Add(bucket_, timer_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBreakdown* breakdown_;
  std::string bucket_;
  WallTimer timer_;
};

}  // namespace newslink

#endif  // NEWSLINK_COMMON_TIMER_H_
