#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace newslink {
namespace json {

namespace {

const char kHexDigits[] = "0123456789abcdef";

/// Encode one Unicode code point as UTF-8.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

const Value* Value::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          out->append("\\u00");
          out->push_back(kHexDigits[c >> 4]);
          out->push_back(kHexDigits[c & 0xF]);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string NumberToString(double v, bool integral) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  if (integral || (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest representation that round-trips a double.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = std::strtod(buf, nullptr);
  if (back == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[40];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) {
        return shorter;
      }
    }
  }
  return buf;
}

void Value::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      out->append(NumberToString(number_, integral_));
      break;
    case Type::kString:
      AppendQuoted(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& v : items_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        AppendQuoted(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Strict recursive-descent parser over a string_view.
class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value v;
    NL_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(std::string_view what) const {
    return Status::InvalidArgument(
        StrCat("JSON parse error at byte ", pos_, ": ", what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, size_t depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        *out = Value::Null();
        return Status::OK();
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        *out = Value::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        *out = Value::Bool(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(Value* out) {
    ++pos_;  // opening quote
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        *out = Value::Str(std::move(s));
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        s.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          s.push_back('"');
          break;
        case '\\':
          s.push_back('\\');
          break;
        case '/':
          s.push_back('/');
          break;
        case 'b':
          s.push_back('\b');
          break;
        case 'f':
          s.push_back('\f');
          break;
        case 'n':
          s.push_back('\n');
          break;
        case 'r':
          s.push_back('\r');
          break;
        case 't':
          s.push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          NL_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            NL_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &s);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    // Leading zero must be alone ("0", "0.5"; "012" is invalid JSON).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("missing fraction digits");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("missing exponent digits");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (std::isinf(v)) return Error("number out of range");
    *out = Value::Number(v);
    if (integral && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
      *out = Value::Int(static_cast<int64_t>(v));
    }
    return Status::OK();
  }

  Status ParseArray(Value* out, size_t depth) {
    ++pos_;  // '['
    Value arr = Value::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = std::move(arr);
      return Status::OK();
    }
    while (true) {
      Value elem;
      SkipWhitespace();
      NL_RETURN_IF_ERROR(ParseValue(&elem, depth + 1));
      arr.Append(std::move(elem));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = std::move(arr);
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Value* out, size_t depth) {
    ++pos_;  // '{'
    Value obj = Value::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      Value key;
      NL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      Value val;
      NL_RETURN_IF_ERROR(ParseValue(&val, depth + 1));
      obj.Set(key.AsString(), std::move(val));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = std::move(obj);
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t max_depth_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

}  // namespace json
}  // namespace newslink
