#include "common/trace.h"

#include <algorithm>
#include <cstdio>

namespace newslink {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string FormatMillis(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds * 1e3);
  return buf;
}

}  // namespace

const TraceSpan* TraceSpan::Find(std::string_view span_name) const {
  if (name == span_name) return this;
  for (const TraceSpan& child : children) {
    if (const TraceSpan* found = child.Find(span_name)) return found;
  }
  return nullptr;
}

double TraceSpan::ChildrenSeconds() const {
  double total = 0.0;
  for (const TraceSpan& child : children) total += child.duration_seconds;
  return total;
}

std::string TraceSpan::ToJson() const {
  std::string out = "{\"name\":" + JsonEscape(name);
  out += ",\"start_ms\":" + FormatMillis(start_seconds);
  out += ",\"dur_ms\":" + FormatMillis(duration_seconds);
  if (!notes.empty()) {
    out += ",\"notes\":{";
    for (size_t i = 0; i < notes.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonEscape(notes[i].first) + ":" + JsonEscape(notes[i].second);
    }
    out += "}";
  }
  if (!children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ",";
      out += children[i].ToJson();
    }
    out += "]";
  }
  out += "}";
  return out;
}

TimeBreakdown SpanBreakdown(const TraceSpan& root) {
  TimeBreakdown out;
  for (const TraceSpan& child : root.children) {
    out.Add(child.name, child.duration_seconds);
  }
  return out;
}

Trace::Trace() : epoch_(Clock::now()) {}

size_t Trace::Begin(std::string_view name) {
  const size_t index = nodes_.size();
  Node node;
  node.name = std::string(name);
  node.start_seconds = Elapsed();
  if (open_.empty()) {
    roots_.push_back(index);
  } else {
    node.parent = open_.back();
    nodes_[open_.back()].children.push_back(index);
  }
  nodes_.push_back(std::move(node));
  open_.push_back(index);
  return index;
}

void Trace::End(size_t handle) {
  // Close handle and (defensively) any span opened after it that was
  // never closed — keeps the tree well-formed under early returns.
  while (!open_.empty()) {
    const size_t top = open_.back();
    open_.pop_back();
    nodes_[top].duration_seconds = Elapsed() - nodes_[top].start_seconds;
    if (top == handle) break;
  }
}

void Trace::Note(std::string_view key, std::string_view value) {
  if (open_.empty()) return;
  nodes_[open_.back()].notes.emplace_back(std::string(key),
                                          std::string(value));
}

TraceSpan Trace::Finish() {
  while (!open_.empty()) {
    const size_t top = open_.back();
    open_.pop_back();
    nodes_[top].duration_seconds = Elapsed() - nodes_[top].start_seconds;
  }

  // Materialize the nested tree from the arena, bottom-up: children were
  // appended after their parents, so a reverse pass sees each node's
  // children already built.
  std::vector<TraceSpan> built(nodes_.size());
  for (size_t i = nodes_.size(); i-- > 0;) {
    TraceSpan& span = built[i];
    span.name = std::move(nodes_[i].name);
    span.start_seconds = nodes_[i].start_seconds;
    span.duration_seconds = nodes_[i].duration_seconds;
    span.notes = std::move(nodes_[i].notes);
    span.children.reserve(nodes_[i].children.size());
    for (size_t child : nodes_[i].children) {
      span.children.push_back(std::move(built[child]));
    }
  }

  TraceSpan root;
  if (roots_.size() == 1) {
    root = std::move(built[roots_[0]]);
  } else if (!roots_.empty()) {
    root.name = "trace";
    double end = 0.0;
    for (size_t r : roots_) {
      end = std::max(end, built[r].start_seconds + built[r].duration_seconds);
      root.children.push_back(std::move(built[r]));
    }
    root.duration_seconds = end;
  }
  nodes_.clear();
  roots_.clear();
  return root;
}

}  // namespace newslink
