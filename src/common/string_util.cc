#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace newslink {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseUint32(std::string_view s, uint32_t* out) {
  uint64_t wide;
  if (!ParseUint64(s, &wide) ||
      wide > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  *out = static_cast<uint32_t>(wide);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  const std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseFloat(std::string_view s, float* out) {
  double wide;
  if (!ParseDouble(s, &wide)) return false;
  *out = static_cast<float>(wide);
  return true;
}

}  // namespace newslink
