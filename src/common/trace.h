// Per-request trace spans (DESIGN.md Sec. 8): every Search call collects a
// tree of named, timed spans — the one source of truth for "where did this
// query's time go". The engine derives its SearchResponse timings from the
// tree, feeds the per-stage histograms from it, attaches it to the
// response when SearchRequest::trace is set, and records it in the
// slow-query log when the query crosses the latency threshold.
//
// A Trace belongs to one request on one thread (it is NOT thread-safe);
// distinct requests each build their own trace concurrently. Span
// begin/end cost one steady_clock read each — a handful of nanoseconds
// against millisecond-scale stages.

#ifndef NEWSLINK_COMMON_TRACE_H_
#define NEWSLINK_COMMON_TRACE_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace newslink {

/// \brief One completed span: a named interval with nested children and
/// optional key/value notes ("cache_hit" = "true", ...).
struct TraceSpan {
  std::string name;
  /// Start offset from the trace epoch, seconds.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<std::pair<std::string, std::string>> notes;
  std::vector<TraceSpan> children;

  bool empty() const { return name.empty() && children.empty(); }

  /// Depth-first search for the first span with this name (may return
  /// `this`); nullptr when absent.
  const TraceSpan* Find(std::string_view span_name) const;

  /// Sum of the direct children's durations — the "accounted for" share of
  /// this span's own duration.
  double ChildrenSeconds() const;

  /// Nested JSON object: {"name", "start_ms", "dur_ms", "notes", "children"}.
  std::string ToJson() const;
};

/// JSON string literal (quotes included) with control characters escaped;
/// shared by the span-tree, slow-query-log, and registry JSON renderers.
std::string JsonEscape(std::string_view s);

/// Legacy bucket view of a span tree: one TimeBreakdown bucket per direct
/// child of the root (the nlp/ne/ns/explain stages), so code written
/// against the old accumulator API keeps working on top of spans.
TimeBreakdown SpanBreakdown(const TraceSpan& root);

/// \brief Collector that builds one span tree for one request.
class Trace {
 public:
  Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Open a span nested under the innermost open span (or at top level).
  /// Returns a handle for End; Begin/End must nest like brackets.
  size_t Begin(std::string_view name);

  void End(size_t handle);

  /// Attach a note to the innermost open span (dropped when none is open).
  void Note(std::string_view key, std::string_view value);

  /// Close any still-open spans and return the tree. A single top-level
  /// span becomes the root; multiple top-level spans are wrapped under a
  /// synthetic "trace" root. The Trace is spent afterwards.
  TraceSpan Finish();

 private:
  using Clock = std::chrono::steady_clock;

  struct Node {
    std::string name;
    double start_seconds = 0.0;
    double duration_seconds = 0.0;
    size_t parent = SIZE_MAX;
    std::vector<std::pair<std::string, std::string>> notes;
    std::vector<size_t> children;  // indices into nodes_
  };

  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  Clock::time_point epoch_;
  std::vector<Node> nodes_;
  std::vector<size_t> roots_;
  std::vector<size_t> open_;  // stack of open node indices
};

/// \brief RAII guard for one span. A null trace makes it a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name)
      : trace_(trace), handle_(trace ? trace->Begin(name) : 0) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->End(handle_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  size_t handle_;
};

}  // namespace newslink

#endif  // NEWSLINK_COMMON_TRACE_H_
