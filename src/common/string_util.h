// Small string helpers shared across the library.

#ifndef NEWSLINK_COMMON_STRING_UTIL_H_
#define NEWSLINK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace newslink {

/// Split on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Split on any whitespace run; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Join with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy (the corpus generator emits ASCII only).
std::string ToLowerAscii(std::string_view s);

/// Strip leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict numeric parsing for file readers: the whole string must be a
/// valid number (no sign for the unsigned forms, no trailing junk, no
/// overflow). Returns false without touching *out on any violation —
/// unlike strtoul, which silently yields 0 or wraps, these make corrupt
/// input detectable.
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseUint32(std::string_view s, uint32_t* out);
bool ParseDouble(std::string_view s, double* out);
bool ParseFloat(std::string_view s, float* out);

/// printf-lite concatenation: StrCat(1, " + ", 2.5) == "1 + 2.5".
namespace internal {
inline void StrCatAppend(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrCatAppend(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  StrCatAppend(os, rest...);
}
}  // namespace internal

template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrCatAppend(os, args...);
  return os.str();
}

}  // namespace newslink

#endif  // NEWSLINK_COMMON_STRING_UTIL_H_
