// Slow-query log (DESIGN.md Sec. 8): a bounded ring of the most recent
// queries whose wall-clock crossed a configurable threshold, each carrying
// its full span tree. The fast path pays one comparison per query; only
// slow queries take the log mutex, so the log never contends with healthy
// traffic.

#ifndef NEWSLINK_COMMON_SLOW_QUERY_LOG_H_
#define NEWSLINK_COMMON_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"

namespace newslink {

/// \brief One logged slow query.
struct SlowQueryRecord {
  std::string query;
  double seconds = 0.0;
  uint64_t epoch = 0;  // index epoch the query ran against
  TraceSpan trace;     // full span tree
};

/// \brief Thread-safe bounded log of recent slow queries.
class SlowQueryLog {
 public:
  /// `threshold_seconds <= 0` disables the log entirely.
  explicit SlowQueryLog(double threshold_seconds = 0.0, size_t capacity = 32)
      : threshold_seconds_(threshold_seconds),
        capacity_(capacity == 0 ? 1 : capacity) {}

  bool enabled() const { return threshold_seconds_ > 0.0; }
  double threshold_seconds() const { return threshold_seconds_; }

  /// True when this duration qualifies — callers check this *before*
  /// building a record so fast queries never pay for one.
  bool ShouldRecord(double seconds) const {
    return enabled() && seconds >= threshold_seconds_;
  }

  /// Append (dropping the oldest entry at capacity). Records below the
  /// threshold are ignored, so callers may call unconditionally.
  void Record(SlowQueryRecord record);

  /// Snapshot, oldest first.
  std::vector<SlowQueryRecord> Entries() const;

  size_t size() const;

  /// JSON array of {"query", "ms", "epoch", "trace"} objects.
  std::string ToJson() const;

 private:
  double threshold_seconds_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowQueryRecord> entries_;  // guarded by mu_
};

}  // namespace newslink

#endif  // NEWSLINK_COMMON_SLOW_QUERY_LOG_H_
