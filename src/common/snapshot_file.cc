#include "common/snapshot_file.h"

#include <cstdio>
#include <fstream>

#include "common/binary_io.h"
#include "common/string_util.h"

namespace newslink {

namespace {

/// Sanity ceilings: a snapshot with more sections or longer names than this
/// is corrupt, not big.
constexpr uint32_t kMaxSections = 64;
constexpr size_t kMaxSectionName = 128;

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError(StrCat("cannot open ", path));
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError(StrCat("read failed on ", path));
  return bytes;
}

/// Parse the verified byte stream. `sections_out == nullptr` stops after
/// the header (the cheap manifest probe).
Status ParseVerified(ByteReader* reader, SnapshotHeader* header,
                     std::vector<SnapshotSection>* sections_out) {
  uint16_t version_lo, version_hi;
  char magic[6];
  NL_RETURN_IF_ERROR(reader->ReadRaw(magic, sizeof(magic)));
  if (std::string_view(magic, sizeof(magic)) != kSnapshotMagic) {
    return Status::IOError("not a NewsLink snapshot (bad magic)");
  }
  uint8_t v0, v1;
  NL_RETURN_IF_ERROR(reader->ReadU8(&v0));
  NL_RETURN_IF_ERROR(reader->ReadU8(&v1));
  version_lo = v0;
  version_hi = v1;
  header->format_version =
      static_cast<uint16_t>(version_lo | (version_hi << 8));
  if (header->format_version != kSnapshotFormatVersion) {
    return Status::IOError(
        StrCat("unsupported snapshot format version ", header->format_version,
               " (this build reads version ", kSnapshotFormatVersion, ")"));
  }
  NL_RETURN_IF_ERROR(reader->ReadU64(&header->kg_fingerprint));
  NL_RETURN_IF_ERROR(reader->ReadU64(&header->corpus_fingerprint));
  NL_RETURN_IF_ERROR(reader->ReadU64(&header->config_fingerprint));
  NL_RETURN_IF_ERROR(reader->ReadU64(&header->num_docs));
  if (sections_out == nullptr) return Status::OK();

  uint32_t num_sections;
  NL_RETURN_IF_ERROR(reader->ReadU32(&num_sections));
  if (num_sections > kMaxSections) {
    return Status::IOError(
        StrCat("implausible section count ", num_sections));
  }
  sections_out->reserve(num_sections);
  for (uint32_t s = 0; s < num_sections; ++s) {
    SnapshotSection section;
    NL_RETURN_IF_ERROR(reader->ReadString(&section.name, kMaxSectionName));
    uint64_t payload_len;
    uint32_t crc;
    NL_RETURN_IF_ERROR(reader->ReadU64(&payload_len));
    NL_RETURN_IF_ERROR(reader->ReadU32(&crc));
    if (payload_len > reader->remaining()) {
      return Status::IOError(
          StrCat("section '", section.name, "' claims ", payload_len,
                 " bytes, ", reader->remaining(), " remain"));
    }
    section.payload.resize(payload_len);
    NL_RETURN_IF_ERROR(reader->ReadRaw(section.payload.data(), payload_len));
    const uint32_t actual = Crc32(section.payload);
    if (actual != crc) {
      return Status::IOError(
          StrCat("section '", section.name, "' CRC mismatch: stored ", crc,
                 ", computed ", actual));
    }
    sections_out->push_back(std::move(section));
  }
  return reader->ExpectEnd();
}

/// Verify the trailing whole-file CRC and return a reader over the covered
/// prefix.
Result<std::span<const uint8_t>> VerifyFileCrc(
    const std::vector<uint8_t>& bytes, const std::string& path) {
  if (bytes.size() < 4) {
    return Status::IOError(StrCat(path, ": too short to be a snapshot"));
  }
  const std::span<const uint8_t> body(bytes.data(), bytes.size() - 4);
  ByteReader tail(
      std::span<const uint8_t>(bytes.data() + body.size(), 4));
  uint32_t stored = 0;
  NL_RETURN_IF_ERROR(tail.ReadU32(&stored));
  const uint32_t actual = Crc32(body);
  if (stored != actual) {
    return Status::IOError(
        StrCat(path, ": file CRC mismatch: stored ", stored, ", computed ",
               actual, " (torn write or corruption)"));
  }
  return body;
}

}  // namespace

const SnapshotSection* SnapshotFile::Find(std::string_view name) const {
  for (const SnapshotSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Status WriteSnapshotFile(const std::string& path, const SnapshotHeader& header,
                         const std::vector<SnapshotSection>& sections) {
  if (sections.size() > kMaxSections) {
    return Status::InvalidArgument(
        StrCat("too many sections: ", sections.size()));
  }
  ByteWriter out;
  out.WriteRaw(kSnapshotMagic.data(), kSnapshotMagic.size());
  out.WriteU8(static_cast<uint8_t>(header.format_version & 0xFF));
  out.WriteU8(static_cast<uint8_t>(header.format_version >> 8));
  out.WriteU64(header.kg_fingerprint);
  out.WriteU64(header.corpus_fingerprint);
  out.WriteU64(header.config_fingerprint);
  out.WriteU64(header.num_docs);
  out.WriteU32(static_cast<uint32_t>(sections.size()));
  for (const SnapshotSection& section : sections) {
    if (section.name.size() > kMaxSectionName) {
      return Status::InvalidArgument(
          StrCat("section name too long: ", section.name));
    }
    out.WriteString(section.name);
    out.WriteU64(section.payload.size());
    out.WriteU32(Crc32(section.payload));
    out.WriteRaw(section.payload.data(), section.payload.size());
  }
  out.WriteU32(Crc32(out.bytes()));

  // Write-then-rename so a crash mid-write never leaves a half snapshot at
  // the published path.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::IOError(StrCat("cannot open ", tmp));
    file.write(reinterpret_cast<const char*>(out.bytes().data()),
               static_cast<std::streamsize>(out.size()));
    if (!file) return Status::IOError(StrCat("write failed on ", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(StrCat("cannot rename ", tmp, " to ", path));
  }
  return Status::OK();
}

Result<SnapshotFile> ReadSnapshotFile(const std::string& path) {
  NL_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes, ReadWholeFile(path));
  NL_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                      VerifyFileCrc(bytes, path));
  SnapshotFile file;
  ByteReader reader(body);
  NL_RETURN_IF_ERROR(ParseVerified(&reader, &file.header, &file.sections));
  return file;
}

Result<SnapshotHeader> ReadSnapshotHeader(const std::string& path) {
  NL_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes, ReadWholeFile(path));
  NL_ASSIGN_OR_RETURN(const std::span<const uint8_t> body,
                      VerifyFileCrc(bytes, path));
  SnapshotHeader header;
  ByteReader reader(body);
  NL_RETURN_IF_ERROR(ParseVerified(&reader, &header, nullptr));
  return header;
}

}  // namespace newslink
