// Bounds-checked binary serialization primitives shared by every on-disk
// artifact (engine snapshots, compressed index sections, embedding codecs).
// All multi-byte integers are little-endian regardless of host order, so a
// snapshot written on one machine loads on any other.
//
// The reader half is deliberately paranoid: every length, count, and value
// read is bounds-checked against the remaining payload and returns Status
// instead of over-reading, so corrupt or truncated files fail cleanly (no
// crash, no UB) — the contract the snapshot loader and the hardened text
// readers both build on.

#ifndef NEWSLINK_COMMON_BINARY_IO_H_
#define NEWSLINK_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace newslink {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

/// \brief Incremental FNV-1a 64-bit fingerprint over typed fields.
///
/// Used for the KG / corpus / config fingerprints embedded in snapshots:
/// cheap, deterministic, and order-sensitive. Not cryptographic — it guards
/// against accidental mismatches (stale artifacts), not adversaries.
class Fingerprinter {
 public:
  Fingerprinter& Add(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(v >> (8 * i)));
    return *this;
  }
  Fingerprinter& Add(std::string_view s) {
    Add(static_cast<uint64_t>(s.size()));
    for (char c : s) Byte(static_cast<uint8_t>(c));
    return *this;
  }
  Fingerprinter& Add(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return Add(bits);
  }

  uint64_t Digest() const { return hash_; }

 private:
  void Byte(uint8_t b) {
    hash_ ^= b;
    hash_ *= 0x100000001b3ull;  // FNV prime
  }
  uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// \brief Append-only byte buffer with fixed-width and varint encoders.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void WriteU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void WriteFloat(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU32(bits);
  }
  void WriteDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }
  /// 7-bit groups with a continuation bit (the posting-list codec).
  void WriteVarint(uint32_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<uint8_t>(v & 0x7F) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<uint8_t>(v));
  }
  /// u32 length prefix + raw bytes.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }
  void WriteRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// \brief Bounds-checked cursor over an immutable byte span.
///
/// Every Read* returns Status::IOError on over-read; the cursor does not
/// advance past the end, so a caller can safely chain reads and check once.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadFloat(float* out);
  Status ReadDouble(double* out);
  /// Rejects encodings longer than 5 bytes or overflowing 32 bits.
  Status ReadVarint(uint32_t* out);
  /// Rejects length prefixes larger than `max_len` or the remaining bytes.
  Status ReadString(std::string* out, size_t max_len = kDefaultMaxString);
  Status ReadRaw(void* out, size_t n);
  Status Skip(size_t n);

  /// A count of elements each occupying at least `min_element_bytes` must
  /// fit in the remaining payload — rejects absurd counts from corrupt
  /// headers before any allocation happens.
  Status CheckCount(uint64_t count, size_t min_element_bytes) const;

  /// Error unless the cursor consumed the payload exactly.
  Status ExpectEnd() const;

  static constexpr size_t kDefaultMaxString = 1 << 20;

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace newslink

#endif  // NEWSLINK_COMMON_BINARY_IO_H_
