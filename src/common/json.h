// Minimal dependency-free JSON document model, writer, and parser shared
// by the network serving layer (src/net) and the CLI. The model is a small
// ordered variant (null / bool / number / string / array / object) — enough
// to round-trip every wire message in DESIGN.md Sec. 10 without pulling in
// a third-party library.
//
// Conventions:
//  - Objects preserve insertion order (responses render deterministically).
//  - Numbers are doubles; integral values parsed or constructed from
//    integers render without a decimal point or exponent, so epochs and
//    document indices survive a round trip textually unchanged.
//  - Strings are UTF-8 byte sequences. The writer escapes the two
//    JSON-mandated characters plus control bytes; multi-byte UTF-8 passes
//    through verbatim. The parser decodes \uXXXX escapes (including
//    surrogate pairs) to UTF-8.
//  - Parse is strict: one document, no trailing garbage, bounded nesting
//    depth. Errors come back as Status::InvalidArgument with a byte offset.

#ifndef NEWSLINK_COMMON_JSON_H_
#define NEWSLINK_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace newslink {
namespace json {

/// \brief One JSON value: the tagged union the parser and writers share.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructed Value is null.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  /// Integer-valued number: renders without '.'/'e' (exact for |v| < 2^53).
  static Value Int(int64_t i) {
    Value v = Number(static_cast<double>(i));
    v.integral_ = true;
    return v;
  }
  static Value Uint(uint64_t u) {
    Value v = Number(static_cast<double>(u));
    v.integral_ = true;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Value Str(std::string_view s) { return Str(std::string(s)); }
  static Value Str(const char* s) { return Str(std::string(s)); }
  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads with a fallback for the wrong type (wire tolerance).
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  uint64_t AsUint(uint64_t fallback = 0) const {
    return is_number() && number_ >= 0 ? static_cast<uint64_t>(number_)
                                       : fallback;
  }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }

  /// True when the number was constructed from / parsed as an integer.
  bool integral() const { return integral_; }

  // --- array interface ----------------------------------------------------
  size_t size() const {
    return is_array() ? items_.size() : (is_object() ? members_.size() : 0);
  }
  const Value& at(size_t i) const { return items_[i]; }
  Value& Append(Value v) {
    items_.push_back(std::move(v));
    return items_.back();
  }
  const std::vector<Value>& items() const { return items_; }

  // --- object interface ---------------------------------------------------
  /// First member with this key; nullptr when absent (or not an object).
  const Value* Find(std::string_view key) const;
  /// Append a member (no key dedup — build each key once).
  Value& Set(std::string_view key, Value v) {
    members_.emplace_back(std::string(key), std::move(v));
    return members_.back().second;
  }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Compact single-line serialization.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  std::string string_;
  std::vector<Value> items_;                           // kArray
  std::vector<std::pair<std::string, Value>> members_;  // kObject
};

/// Append the JSON string literal for `s` (quotes included) to `out`,
/// escaping '"', '\\', and control bytes; UTF-8 passes through.
void AppendQuoted(std::string_view s, std::string* out);

/// Render a finite double; integral values render as integers. NaN and
/// infinities (not representable in JSON) render as null.
std::string NumberToString(double v, bool integral);

/// Strict parse of exactly one JSON document. `max_depth` bounds array /
/// object nesting (default matches the writer's practical depth).
Result<Value> Parse(std::string_view text, size_t max_depth = 100);

}  // namespace json
}  // namespace newslink

#endif  // NEWSLINK_COMMON_JSON_H_
