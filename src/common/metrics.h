// Process-wide observability instruments (DESIGN.md Sec. 8): named
// counters, gauges, and log-bucketed histograms collected in a Registry
// and exported as Prometheus text exposition or a JSON dump.
//
// Hot-path discipline: Inc/Observe are wait-free — a relaxed atomic
// fetch_add on a per-thread shard (cache-line padded, so concurrent query
// threads never bounce a line). Registration (GetCounter / GetGauge /
// GetHistogram) takes a mutex and is meant for construction time; callers
// on the query path cache the returned instrument pointers, which are
// stable for the registry's lifetime.

#ifndef NEWSLINK_COMMON_METRICS_H_
#define NEWSLINK_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace newslink {
namespace metrics {

/// Number of independent atomic shards per hot instrument. 16 covers the
/// container-scale thread counts this repo benches; the cost is 1KiB per
/// counter.
inline constexpr size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
size_t ThisThreadShard();

/// \brief Monotonically increasing counter (wait-free, sharded).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// \brief A value that can go up and down (epoch number, cache entries).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Geometric ("log") bucket layout of a Histogram: finite bucket i covers
/// (min * growth^(i-1), min * growth^i]; one overflow bucket catches the
/// rest. The defaults resolve latencies from 1us to ~10s at 25% relative
/// bucket width — callers that feed percentile gates (the benches) pass a
/// finer growth.
struct HistogramOptions {
  double min = 1e-6;
  double growth = 1.25;
  size_t num_buckets = 72;
};

/// \brief Log-bucketed histogram with percentile estimation.
///
/// Observe is wait-free (one relaxed fetch_add on a sharded bucket plus a
/// sharded sum accumulation). Readers sum the shards for a consistent-
/// enough snapshot; percentiles interpolate linearly inside the resolved
/// bucket, so their relative error is bounded by `growth - 1`.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }

  /// Estimated p-quantile (p in [0, 1]) of everything observed so far.
  /// 0 when empty; the overflow bucket reports its lower bound.
  double Percentile(double p) const;

  /// Bucket counts summed across shards; size num_buckets() + 1 (overflow
  /// last).
  std::vector<uint64_t> BucketCounts() const;

  size_t num_buckets() const { return options_.num_buckets; }

  /// Inclusive upper bound of finite bucket i (i < num_buckets()).
  double BucketUpperBound(size_t i) const;

  const HistogramOptions& options() const { return options_; }

 private:
  size_t BucketFor(double value) const;

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // num_buckets + 1
    std::atomic<double> sum{0.0};
  };

  HistogramOptions options_;
  double inv_log_growth_ = 0.0;
  std::array<Shard, kShards> shards_;
};

/// \brief A named collection of instruments with text/JSON exposition.
///
/// Get* registers on first use and returns the existing instrument on
/// every later call with the same name; returned pointers stay valid for
/// the registry's lifetime. Instruments are exported in registration
/// order. One engine owns one registry (so per-engine tests see exact
/// counts); `Registry::Default()` is the process-wide instance for code
/// without a natural owner.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, HistogramOptions options = {},
                          std::string_view help = "");

  /// Read-side lookups; null / zero when the instrument was never created.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;

  /// Prometheus text exposition format (one # TYPE line per instrument;
  /// histograms expand to _bucket{le=...}/_sum/_count series).
  std::string RenderPrometheus() const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p90, p99, buckets}}}.
  std::string RenderJson() const;

  static Registry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  const Entry* Find(std::string_view name, Kind kind) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

}  // namespace metrics
}  // namespace newslink

#endif  // NEWSLINK_COMMON_METRICS_H_
