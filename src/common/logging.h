// Minimal CHECK / LOG macros (glog-flavoured, stderr only).

#ifndef NEWSLINK_COMMON_LOGGING_H_
#define NEWSLINK_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace newslink {
namespace internal {

/// Accumulates a fatal-check message and aborts on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Turns an ostream& into void so a CHECK can sit in a ternary expression.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace newslink

/// Abort with a message unless `condition` holds. Enabled in all builds:
/// invariants of the search algorithms are cheap relative to graph traversal.
/// Usage: NL_CHECK(x > 0) << "details " << x;
#define NL_CHECK(condition)                                     \
  (condition) ? (void)0                                         \
              : ::newslink::internal::Voidify() &               \
                    ::newslink::internal::FatalLogMessage(      \
                        __FILE__, __LINE__, #condition)         \
                        .stream()

#define NL_CHECK_OK(expr)                                                 \
  do {                                                                    \
    const ::newslink::Status& _nl_chk = (expr);                           \
    if (!_nl_chk.ok()) {                                                  \
      ::newslink::internal::FatalLogMessage(__FILE__, __LINE__, #expr)    \
              .stream()                                                   \
          << _nl_chk.ToString();                                          \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define NL_DCHECK(condition) \
  while (false) NL_CHECK(condition)
#else
#define NL_DCHECK(condition) NL_CHECK(condition)
#endif

#endif  // NEWSLINK_COMMON_LOGGING_H_
