// Fixed-size thread pool. The paper notes corpus embedding "can easily be
// parallelized"; NewsLinkEngine uses this pool to embed documents in
// parallel during index building.

#ifndef NEWSLINK_COMMON_THREAD_POOL_H_
#define NEWSLINK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace newslink {

/// \brief A minimal task-queue thread pool.
///
/// Submitted tasks must not throw (the library is exception-free by policy).
class ThreadPool {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  /// Run fn(i) for i in [0, n), partitioned across the pool, and wait.
  /// fn must be safe to call concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace newslink

#endif  // NEWSLINK_COMMON_THREAD_POOL_H_
