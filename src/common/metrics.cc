#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/trace.h"

namespace newslink {
namespace metrics {

size_t ThisThreadShard() {
  // One counter assigns shard slots round-robin as threads first touch an
  // instrument; thread_local caches the assignment for the thread's life.
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1, std::memory_order_relaxed) %
                              kShards;
  return shard;
}

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (options_.min <= 0.0) options_.min = 1e-9;
  if (options_.growth <= 1.0) options_.growth = 1.0001;
  if (options_.num_buckets == 0) options_.num_buckets = 1;
  inv_log_growth_ = 1.0 / std::log(options_.growth);
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<uint64_t>[]>(
        options_.num_buckets + 1);
    for (size_t i = 0; i <= options_.num_buckets; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

size_t Histogram::BucketFor(double value) const {
  if (!(value > options_.min)) return 0;  // also catches NaN
  // Finite bucket i covers (min * growth^(i-1), min * growth^i].
  const double exact = std::log(value / options_.min) * inv_log_growth_;
  size_t i = static_cast<size_t>(std::ceil(exact - 1e-9));
  if (i == 0) i = 1;
  return std::min(i, options_.num_buckets);  // == num_buckets => overflow
}

void Histogram::Observe(double value) {
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  double cur = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(cur, cur + value,
                                          std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i <= options_.num_buckets; ++i) {
      total += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(options_.num_buckets + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t i = 0; i <= options_.num_buckets; ++i) {
      counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::BucketUpperBound(size_t i) const {
  return options_.min * std::pow(options_.growth, static_cast<double>(i));
}

double Histogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = p * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == options_.num_buckets) {
      // Overflow: no upper bound to interpolate toward.
      return BucketUpperBound(options_.num_buckets - 1);
    }
    const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
    const double upper = BucketUpperBound(i);
    // Linear interpolation within the bucket (uniform assumption).
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return BucketUpperBound(options_.num_buckets - 1);
}

namespace {

/// Formats a double the way Prometheus clients do: shortest-ish decimal.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Counter* Registry::GetCounter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->kind == Kind::kCounter) return e->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->kind == Kind::kGauge) return e->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  HistogramOptions options,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->kind == Kind::kHistogram) {
      return e->histogram.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(options);
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

const Registry::Entry* Registry::Find(std::string_view name, Kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->kind == kind) return e.get();
  }
  return nullptr;
}

const Counter* Registry::FindCounter(std::string_view name) const {
  const Entry* e = Find(name, Kind::kCounter);
  return e == nullptr ? nullptr : e->counter.get();
}

const Gauge* Registry::FindGauge(std::string_view name) const {
  const Entry* e = Find(name, Kind::kGauge);
  return e == nullptr ? nullptr : e->gauge.get();
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  const Entry* e = Find(name, Kind::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

uint64_t Registry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->Value();
}

double Registry::GaugeValue(std::string_view name) const {
  const Gauge* g = FindGauge(name);
  return g == nullptr ? 0.0 : g->Value();
}

std::string Registry::RenderPrometheus() const {
  // Snapshot entry pointers under the lock; instrument reads are atomic.
  std::vector<const Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }

  std::string out;
  for (const Entry* e : entries) {
    if (!e->help.empty()) {
      out += "# HELP " + e->name + " " + e->help + "\n";
    }
    switch (e->kind) {
      case Kind::kCounter:
        out += "# TYPE " + e->name + " counter\n";
        out += e->name + " " + std::to_string(e->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + e->name + " gauge\n";
        out += e->name + " " + FormatDouble(e->gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        out += "# TYPE " + e->name + " histogram\n";
        const std::vector<uint64_t> counts = h.BucketCounts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.num_buckets(); ++i) {
          cumulative += counts[i];
          if (counts[i] == 0) continue;  // sparse exposition: skip empties
          out += e->name + "_bucket{le=\"" +
                 FormatDouble(h.BucketUpperBound(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += counts[h.num_buckets()];
        out += e->name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += e->name + "_sum " + FormatDouble(h.Sum()) + "\n";
        out += e->name + "_count " + std::to_string(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::RenderJson() const {
  std::vector<const Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }

  std::string counters, gauges, histograms;
  for (const Entry* e : entries) {
    switch (e->kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += JsonEscape(e->name) + ":" + std::to_string(e->counter->Value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += JsonEscape(e->name) + ":" + FormatDouble(e->gauge->Value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        if (!histograms.empty()) histograms += ",";
        histograms += JsonEscape(e->name) + ":{\"count\":" + std::to_string(h.Count()) +
                      ",\"sum\":" + FormatDouble(h.Sum()) +
                      ",\"mean\":" + FormatDouble(h.Mean()) +
                      ",\"p50\":" + FormatDouble(h.Percentile(0.50)) +
                      ",\"p90\":" + FormatDouble(h.Percentile(0.90)) +
                      ",\"p99\":" + FormatDouble(h.Percentile(0.99)) +
                      ",\"buckets\":[";
        const std::vector<uint64_t> counts = h.BucketCounts();
        bool first = true;
        for (size_t i = 0; i < counts.size(); ++i) {
          if (counts[i] == 0) continue;
          if (!first) histograms += ",";
          first = false;
          const bool overflow = i == h.num_buckets();
          histograms += "[" +
                        (overflow ? std::string("\"+Inf\"")
                                  : FormatDouble(h.BucketUpperBound(i))) +
                        "," + std::to_string(counts[i]) + "]";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

Registry& Registry::Default() {
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace metrics
}  // namespace newslink
