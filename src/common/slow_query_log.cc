#include "common/slow_query_log.h"

#include <cstdio>

namespace newslink {

void SlowQueryLog::Record(SlowQueryRecord record) {
  if (!ShouldRecord(record.seconds)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(std::move(record));
}

std::vector<SlowQueryRecord> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryRecord>(entries_.begin(), entries_.end());
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<SlowQueryRecord> entries = Entries();
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.3f", entries[i].seconds * 1e3);
    out += "{\"query\":" + JsonEscape(entries[i].query) + ",\"ms\":" + ms +
           ",\"epoch\":" + std::to_string(entries[i].epoch) +
           ",\"trace\":" + entries[i].trace.ToJson() + "}";
  }
  out += "]";
  return out;
}

}  // namespace newslink
