// FastText substitute (Joulin et al. 2017): skip-gram negative sampling
// with character n-gram subword buckets. In the reproduction this model is
// the *evaluation judge* of SIM@k — the paper converts query documents and
// results to FastText vectors and scores their cosine similarity (Sec. VII-B).

#ifndef NEWSLINK_VEC_FASTTEXT_MODEL_H_
#define NEWSLINK_VEC_FASTTEXT_MODEL_H_

#include <string>
#include <vector>

#include "vec/sgns_trainer.h"

namespace newslink {
namespace vec {

struct FastTextConfig {
  SgnsConfig sgns;
  int ngram_min = 3;
  int ngram_max = 5;
  int buckets = 100000;
};

/// \brief Subword-aware word vectors.
class FastTextModel {
 public:
  void Train(const std::vector<std::vector<std::string>>& docs,
             const FastTextConfig& config);

  int dim() const { return config_.sgns.dim; }

  /// Word representation: mean of the word's own vector (if in vocabulary)
  /// and its character n-gram bucket vectors. OOV words still get subword
  /// vectors — the property that makes FastText a robust judge.
  Vector WordVector(const std::string& word) const;

  /// Mean of word vectors over the tokens (the document embedding used for
  /// SIM@k), L2-normalized.
  Vector DocumentVector(const std::vector<std::string>& tokens) const;

  /// Convenience: tokenize + DocumentVector.
  Vector EncodeText(const std::string& text) const;

  const WordVocab& vocab() const { return vocab_; }

 private:
  /// Bucket ids of the word's character n-grams (with <> boundary marks).
  std::vector<uint32_t> Subwords(const std::string& word) const;

  /// Compose the input vector of (word id or -1, subword buckets) into out.
  void ComposeInput(int word_id, const std::vector<uint32_t>& subwords,
                    float* out) const;

  FastTextConfig config_;
  WordVocab vocab_;
  std::vector<float> word_input_;    // vocab x dim
  std::vector<float> bucket_input_;  // buckets x dim
  std::vector<float> output_;        // vocab x dim
};

}  // namespace vec
}  // namespace newslink

#endif  // NEWSLINK_VEC_FASTTEXT_MODEL_H_
