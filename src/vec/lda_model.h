// Latent Dirichlet Allocation (Blei et al. 2003) via collapsed Gibbs
// sampling (Griffiths & Steyvers 2004) — the LDA baseline of Table IV.

#ifndef NEWSLINK_VEC_LDA_MODEL_H_
#define NEWSLINK_VEC_LDA_MODEL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "vec/dense_vector.h"
#include "vec/sgns_trainer.h"

namespace newslink {
namespace vec {

struct LdaConfig {
  int num_topics = 50;
  double alpha = 1.0;   // document-topic prior (paper-style 50/K)
  double beta = 0.01;   // topic-word prior
  int iterations = 30;
  int infer_iterations = 15;
  int min_count = 2;
  uint64_t seed = 77;
};

/// \brief Collapsed-Gibbs LDA with fold-in inference for unseen texts.
class LdaModel {
 public:
  void Train(const std::vector<std::vector<std::string>>& docs,
             const LdaConfig& config);

  int num_topics() const { return config_.num_topics; }
  size_t num_docs() const { return doc_topic_.size(); }

  /// Normalized topic mixture theta of training document i.
  Vector DocTopics(size_t i) const;

  /// Fold-in inference: Gibbs over the new tokens with frozen topic-word
  /// counts. Deterministic (RNG seeded from the tokens).
  Vector Infer(const std::vector<std::string>& tokens) const;
  Vector InferText(const std::string& text) const;

 private:
  double TopicWordProb(int topic, int word) const;

  LdaConfig config_;
  WordVocab vocab_;
  std::vector<std::vector<int>> doc_topic_;  // per-doc topic counts
  std::vector<int> topic_word_;              // K x V counts (flattened)
  std::vector<int> topic_total_;             // K
};

}  // namespace vec
}  // namespace newslink

#endif  // NEWSLINK_VEC_LDA_MODEL_H_
