#include "vec/dense_vector.h"

#include <cmath>

#include "common/logging.h"

namespace newslink {
namespace vec {

float Dot(std::span<const float> a, std::span<const float> b) {
  NL_DCHECK(a.size() == b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float Norm(std::span<const float> a) { return std::sqrt(Dot(a, a)); }

float CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const float na = Norm(a);
  const float nb = Norm(b);
  if (na < 1e-9f || nb < 1e-9f) return 0.0f;
  return Dot(a, b) / (na * nb);
}

void AddScaled(std::span<float> a, std::span<const float> b, float scale) {
  NL_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

void Scale(std::span<float> a, float scale) {
  for (float& x : a) x *= scale;
}

void Fill(std::span<float> a, float value) {
  for (float& x : a) x = value;
}

void NormalizeInPlace(std::span<float> a) {
  const float n = Norm(a);
  if (n < 1e-9f) return;
  Scale(a, 1.0f / n);
}

}  // namespace vec
}  // namespace newslink
