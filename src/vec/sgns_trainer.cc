#include "vec/sgns_trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace newslink {
namespace vec {

std::vector<std::string> TokenizeForVectors(const std::string& text) {
  std::vector<std::string> out;
  for (std::string& w : text::WordTokens(text)) {
    if (w.size() < 2 || text::IsStopword(w)) continue;
    out.push_back(std::move(w));
  }
  return out;
}

float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

void WordVocab::Build(const std::vector<std::vector<std::string>>& docs,
                      int min_count) {
  std::unordered_map<std::string, uint64_t> raw;
  for (const auto& doc : docs) {
    for (const std::string& w : doc) ++raw[w];
  }
  // Deterministic id assignment: sort by (count desc, word asc).
  std::vector<std::pair<std::string, uint64_t>> sorted(raw.begin(), raw.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (auto& [word, count] : sorted) {
    if (count < static_cast<uint64_t>(min_count)) continue;
    ids_.emplace(word, static_cast<int>(words_.size()));
    words_.push_back(word);
    counts_.push_back(count);
    total_ += count;
  }
  // Negative sampling CDF over unigram^0.75.
  negative_cdf_.resize(words_.size());
  double acc = 0.0;
  for (size_t i = 0; i < words_.size(); ++i) {
    acc += std::pow(static_cast<double>(counts_[i]), 0.75);
    negative_cdf_[i] = acc;
  }
}

void WordVocab::Restore(std::vector<std::string> words,
                        std::vector<uint64_t> counts) {
  NL_CHECK(words.size() == counts.size());
  ids_.clear();
  words_ = std::move(words);
  counts_ = std::move(counts);
  total_ = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    ids_.emplace(words_[i], static_cast<int>(i));
    total_ += counts_[i];
  }
  negative_cdf_.resize(words_.size());
  double acc = 0.0;
  for (size_t i = 0; i < words_.size(); ++i) {
    acc += std::pow(static_cast<double>(counts_[i]), 0.75);
    negative_cdf_[i] = acc;
  }
}

int WordVocab::Find(const std::string& word) const {
  auto it = ids_.find(word);
  return it == ids_.end() ? -1 : it->second;
}

int WordVocab::SampleNegative(Rng* rng) const {
  NL_DCHECK(!negative_cdf_.empty());
  return static_cast<int>(rng->SampleFromCdf(negative_cdf_));
}

double WordVocab::KeepProbability(int id, double subsample) const {
  if (subsample <= 0.0) return 1.0;
  const double f =
      static_cast<double>(counts_[id]) / static_cast<double>(total_);
  const double p = (std::sqrt(f / subsample) + 1.0) * (subsample / f);
  return std::min(1.0, p);
}

void Word2VecModel::Train(const std::vector<std::vector<std::string>>& docs,
                          const SgnsConfig& config) {
  config_ = config;
  vocab_.Build(docs, config.min_count);
  const size_t v = vocab_.size();
  const size_t dim = static_cast<size_t>(config.dim);

  Rng rng(config.seed);
  input_.resize(v * dim);
  output_.assign(v * dim, 0.0f);
  for (float& x : input_) {
    x = static_cast<float>((rng.UniformDouble() - 0.5) / config.dim);
  }
  if (v == 0) return;

  std::vector<float> grad(dim);
  const float lr = static_cast<float>(config.learning_rate);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& doc : docs) {
      // Map to ids with subsampling.
      std::vector<int> ids;
      ids.reserve(doc.size());
      for (const std::string& w : doc) {
        const int id = vocab_.Find(w);
        if (id < 0) continue;
        if (rng.UniformDouble() >=
            vocab_.KeepProbability(id, config.subsample)) {
          continue;
        }
        ids.push_back(id);
      }
      for (size_t pos = 0; pos < ids.size(); ++pos) {
        const int center = ids[pos];
        const int window = 1 + static_cast<int>(rng.Uniform(config.window));
        const size_t lo = pos >= static_cast<size_t>(window)
                              ? pos - static_cast<size_t>(window)
                              : 0;
        const size_t hi =
            std::min(ids.size(), pos + static_cast<size_t>(window) + 1);
        for (size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          const int context = ids[c];
          float* in = input_.data() + static_cast<size_t>(center) * dim;
          std::fill(grad.begin(), grad.end(), 0.0f);
          // Positive sample + negatives.
          for (int n = 0; n <= config.negatives; ++n) {
            int target;
            float label;
            if (n == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = vocab_.SampleNegative(&rng);
              if (target == context) continue;
              label = 0.0f;
            }
            float* outv = output_.data() + static_cast<size_t>(target) * dim;
            const float score =
                Sigmoid(Dot({in, dim}, {outv, dim}));
            const float g = lr * (label - score);
            for (size_t k = 0; k < dim; ++k) {
              grad[k] += g * outv[k];
              outv[k] += g * in[k];
            }
          }
          for (size_t k = 0; k < dim; ++k) in[k] += grad[k];
        }
      }
    }
  }
}

void Word2VecModel::Restore(WordVocab vocab, const SgnsConfig& config,
                            std::vector<float> input,
                            std::vector<float> output) {
  const size_t dim = static_cast<size_t>(config.dim);
  NL_CHECK(input.size() == vocab.size() * dim);
  NL_CHECK(output.size() == vocab.size() * dim);
  vocab_ = std::move(vocab);
  config_ = config;
  input_ = std::move(input);
  output_ = std::move(output);
}

const float* Word2VecModel::WordVector(const std::string& word) const {
  const int id = vocab_.Find(word);
  if (id < 0) return nullptr;
  return input_.data() + static_cast<size_t>(id) * config_.dim;
}

Vector Word2VecModel::AverageVector(
    const std::vector<std::string>& tokens) const {
  Vector out(config_.dim, 0.0f);
  int n = 0;
  for (const std::string& w : tokens) {
    const float* v = WordVector(w);
    if (v == nullptr) continue;
    AddScaled(out, {v, static_cast<size_t>(config_.dim)}, 1.0f);
    ++n;
  }
  if (n > 0) Scale(out, 1.0f / static_cast<float>(n));
  return out;
}

Vector Word2VecModel::SifVector(const std::vector<std::string>& tokens,
                                double a) const {
  Vector out(config_.dim, 0.0f);
  int n = 0;
  for (const std::string& w : tokens) {
    const int id = vocab_.Find(w);
    if (id < 0) continue;
    const double p = static_cast<double>(vocab_.count(id)) /
                     static_cast<double>(vocab_.total_count());
    const float weight = static_cast<float>(a / (a + p));
    AddScaled(out,
              {input_.data() + static_cast<size_t>(id) * config_.dim,
               static_cast<size_t>(config_.dim)},
              weight);
    ++n;
  }
  if (n > 0) Scale(out, 1.0f / static_cast<float>(n));
  return out;
}

}  // namespace vec
}  // namespace newslink
