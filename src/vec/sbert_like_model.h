// SBERT substitute (DESIGN.md §2): what the evaluation needs from SBERT is
// "generic pretrained sentence vectors not fitted to the target corpus".
// We model that as SIF-weighted averages (Arora et al. 2017) of skip-gram
// word vectors trained on a *background* corpus, so the encoder carries
// general semantics but no corpus-specific document identity — reproducing
// SBERT's signature profile in the paper: high SIM@k, low HIT@k.

#ifndef NEWSLINK_VEC_SBERT_LIKE_MODEL_H_
#define NEWSLINK_VEC_SBERT_LIKE_MODEL_H_

#include <string>
#include <vector>

#include "vec/sgns_trainer.h"

namespace newslink {
namespace vec {

/// \brief Pretrained-style sentence encoder.
class SbertLikeModel {
 public:
  /// "Pretraining": fit word vectors on background documents (e.g. the
  /// training split — never the test queries).
  void Pretrain(const std::vector<std::vector<std::string>>& background_docs,
                const SgnsConfig& config);

  int dim() const { return model_.dim(); }

  /// Encode a text to a unit-length sentence vector.
  Vector Encode(const std::string& text) const;
  Vector EncodeTokens(const std::vector<std::string>& tokens) const;

 private:
  Word2VecModel model_;
};

}  // namespace vec
}  // namespace newslink

#endif  // NEWSLINK_VEC_SBERT_LIKE_MODEL_H_
