#include "vec/model_io.h"

#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace newslink {
namespace vec {

namespace {

constexpr char kMagic[] = "NLW2V1\n";

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len)) return false;
  if (len > (1u << 20)) return false;  // corrupt header guard
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

void WriteFloats(std::ofstream& out, const std::vector<float>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool ReadFloats(std::ifstream& in, std::vector<float>* v) {
  uint64_t n = 0;
  if (!ReadPod(in, &n)) return false;
  if (n > (1ull << 32)) return false;
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveWord2Vec(const Word2VecModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError(StrCat("cannot open ", path));
  out.write(kMagic, sizeof(kMagic) - 1);

  const SgnsConfig& config = model.config();
  WritePod(out, static_cast<int32_t>(config.dim));
  WritePod(out, config.subsample);
  WritePod(out, static_cast<uint64_t>(model.vocab().size()));
  for (size_t i = 0; i < model.vocab().size(); ++i) {
    WriteString(out, model.vocab().word(static_cast<int>(i)));
    WritePod(out, model.vocab().count(static_cast<int>(i)));
  }
  WriteFloats(out, model.input_matrix());
  WriteFloats(out, model.output_matrix());
  if (!out) return Status::IOError("model write failed");
  return Status::OK();
}

Result<Word2VecModel> LoadWord2Vec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError(StrCat("cannot open ", path));

  char magic[sizeof(kMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::IOError(StrCat(path, " is not a NLW2V1 model file"));
  }

  SgnsConfig config;
  int32_t dim = 0;
  if (!ReadPod(in, &dim) || dim <= 0 || dim > 65536) {
    return Status::IOError("corrupt model header (dim)");
  }
  config.dim = dim;
  if (!ReadPod(in, &config.subsample)) {
    return Status::IOError("corrupt model header (subsample)");
  }

  uint64_t vocab_size = 0;
  if (!ReadPod(in, &vocab_size) || vocab_size > (1ull << 28)) {
    return Status::IOError("corrupt model header (vocab)");
  }
  std::vector<std::string> words;
  std::vector<uint64_t> counts;
  words.reserve(vocab_size);
  counts.reserve(vocab_size);
  for (uint64_t i = 0; i < vocab_size; ++i) {
    std::string word;
    uint64_t count = 0;
    if (!ReadString(in, &word) || !ReadPod(in, &count)) {
      return Status::IOError("corrupt vocabulary entry");
    }
    words.push_back(std::move(word));
    counts.push_back(count);
  }

  std::vector<float> input;
  std::vector<float> output;
  if (!ReadFloats(in, &input) || !ReadFloats(in, &output)) {
    return Status::IOError("corrupt embedding matrices");
  }
  const size_t expected = vocab_size * static_cast<size_t>(dim);
  if (input.size() != expected || output.size() != expected) {
    return Status::IOError("matrix size does not match vocabulary");
  }

  WordVocab vocab;
  vocab.Restore(std::move(words), std::move(counts));
  Word2VecModel model;
  model.Restore(std::move(vocab), config, std::move(input),
                std::move(output));
  return model;
}

}  // namespace vec
}  // namespace newslink
