// Dense float vector operations for the embedding models.

#ifndef NEWSLINK_VEC_DENSE_VECTOR_H_
#define NEWSLINK_VEC_DENSE_VECTOR_H_

#include <span>
#include <vector>

namespace newslink {
namespace vec {

using Vector = std::vector<float>;

float Dot(std::span<const float> a, std::span<const float> b);
float Norm(std::span<const float> a);

/// Cosine similarity; 0 when either vector is (near) zero.
float CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// a += scale * b
void AddScaled(std::span<float> a, std::span<const float> b, float scale);

void Scale(std::span<float> a, float scale);
void Fill(std::span<float> a, float value);

/// Normalize to unit length in place (no-op for near-zero vectors).
void NormalizeInPlace(std::span<float> a);

}  // namespace vec
}  // namespace newslink

#endif  // NEWSLINK_VEC_DENSE_VECTOR_H_
