#include "vec/fasttext_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace newslink {
namespace vec {

namespace {

uint32_t Fnv1a(const std::string& s) {
  uint32_t h = 2166136261u;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

}  // namespace

std::vector<uint32_t> FastTextModel::Subwords(const std::string& word) const {
  std::vector<uint32_t> out;
  const std::string padded = "<" + word + ">";
  for (int n = config_.ngram_min; n <= config_.ngram_max; ++n) {
    if (padded.size() < static_cast<size_t>(n)) break;
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      out.push_back(Fnv1a(padded.substr(i, n)) %
                    static_cast<uint32_t>(config_.buckets));
    }
  }
  return out;
}

void FastTextModel::ComposeInput(int word_id,
                                 const std::vector<uint32_t>& subwords,
                                 float* out) const {
  const size_t dim = static_cast<size_t>(config_.sgns.dim);
  std::fill(out, out + dim, 0.0f);
  int parts = 0;
  if (word_id >= 0) {
    const float* wv = word_input_.data() + static_cast<size_t>(word_id) * dim;
    for (size_t k = 0; k < dim; ++k) out[k] += wv[k];
    ++parts;
  }
  for (uint32_t b : subwords) {
    const float* bv = bucket_input_.data() + static_cast<size_t>(b) * dim;
    for (size_t k = 0; k < dim; ++k) out[k] += bv[k];
    ++parts;
  }
  if (parts > 1) {
    const float inv = 1.0f / static_cast<float>(parts);
    for (size_t k = 0; k < dim; ++k) out[k] *= inv;
  }
}

void FastTextModel::Train(const std::vector<std::vector<std::string>>& docs,
                          const FastTextConfig& config) {
  config_ = config;
  vocab_.Build(docs, config.sgns.min_count);
  const size_t v = vocab_.size();
  const size_t dim = static_cast<size_t>(config.sgns.dim);

  Rng rng(config.sgns.seed);
  word_input_.resize(v * dim);
  bucket_input_.resize(static_cast<size_t>(config.buckets) * dim);
  output_.assign(v * dim, 0.0f);
  for (float& x : word_input_) {
    x = static_cast<float>((rng.UniformDouble() - 0.5) / config.sgns.dim);
  }
  for (float& x : bucket_input_) {
    x = static_cast<float>((rng.UniformDouble() - 0.5) / config.sgns.dim);
  }
  if (v == 0) return;

  // Cache subword buckets per vocabulary word.
  std::vector<std::vector<uint32_t>> subword_cache(v);
  for (size_t i = 0; i < v; ++i) {
    subword_cache[i] = Subwords(vocab_.word(static_cast<int>(i)));
  }

  std::vector<float> composed(dim);
  std::vector<float> grad(dim);
  const float lr = static_cast<float>(config.sgns.learning_rate);

  for (int epoch = 0; epoch < config.sgns.epochs; ++epoch) {
    for (const auto& doc : docs) {
      std::vector<int> ids;
      ids.reserve(doc.size());
      for (const std::string& w : doc) {
        const int id = vocab_.Find(w);
        if (id < 0) continue;
        if (rng.UniformDouble() >=
            vocab_.KeepProbability(id, config.sgns.subsample)) {
          continue;
        }
        ids.push_back(id);
      }
      for (size_t pos = 0; pos < ids.size(); ++pos) {
        const int center = ids[pos];
        const std::vector<uint32_t>& subs = subword_cache[center];
        const int window =
            1 + static_cast<int>(rng.Uniform(config.sgns.window));
        const size_t lo = pos >= static_cast<size_t>(window)
                              ? pos - static_cast<size_t>(window)
                              : 0;
        const size_t hi =
            std::min(ids.size(), pos + static_cast<size_t>(window) + 1);
        for (size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          const int context = ids[c];
          ComposeInput(center, subs, composed.data());
          std::fill(grad.begin(), grad.end(), 0.0f);
          for (int n = 0; n <= config.sgns.negatives; ++n) {
            int target;
            float label;
            if (n == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = vocab_.SampleNegative(&rng);
              if (target == context) continue;
              label = 0.0f;
            }
            float* outv = output_.data() + static_cast<size_t>(target) * dim;
            const float score = Sigmoid(Dot(composed, {outv, dim}));
            const float g = lr * (label - score);
            for (size_t k = 0; k < dim; ++k) {
              grad[k] += g * outv[k];
              outv[k] += g * composed[k];
            }
          }
          // Distribute the input gradient over word + subword vectors
          // (scaled by the same 1/parts used in composition).
          const float inv = 1.0f / static_cast<float>(1 + subs.size());
          float* wv = word_input_.data() + static_cast<size_t>(center) * dim;
          for (size_t k = 0; k < dim; ++k) wv[k] += grad[k] * inv;
          for (uint32_t bkt : subs) {
            float* bv = bucket_input_.data() + static_cast<size_t>(bkt) * dim;
            for (size_t k = 0; k < dim; ++k) bv[k] += grad[k] * inv;
          }
        }
      }
    }
  }
}

Vector FastTextModel::WordVector(const std::string& word) const {
  Vector out(config_.sgns.dim, 0.0f);
  ComposeInput(vocab_.Find(word), Subwords(word), out.data());
  return out;
}

Vector FastTextModel::DocumentVector(
    const std::vector<std::string>& tokens) const {
  Vector out(config_.sgns.dim, 0.0f);
  if (tokens.empty()) return out;
  for (const std::string& w : tokens) {
    const Vector wv = WordVector(w);
    AddScaled(out, wv, 1.0f);
  }
  Scale(out, 1.0f / static_cast<float>(tokens.size()));
  NormalizeInPlace(out);
  return out;
}

Vector FastTextModel::EncodeText(const std::string& text) const {
  return DocumentVector(TokenizeForVectors(text));
}

}  // namespace vec
}  // namespace newslink
