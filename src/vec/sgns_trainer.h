// Skip-gram with negative sampling (Mikolov et al. 2013), from scratch:
// the training engine behind the DOC2VEC / SBERT / FastText substitutes
// (DESIGN.md §2). WordVocab handles frequency-based vocabularies and the
// unigram^0.75 negative-sampling table; Word2VecModel trains plain word
// vectors.

#ifndef NEWSLINK_VEC_SGNS_TRAINER_H_
#define NEWSLINK_VEC_SGNS_TRAINER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "vec/dense_vector.h"

namespace newslink {
namespace vec {

/// Lowercase word tokens with stopwords removed — the unit stream every
/// embedding model consumes.
std::vector<std::string> TokenizeForVectors(const std::string& text);

struct SgnsConfig {
  int dim = 48;
  int window = 4;
  int negatives = 4;
  int epochs = 2;
  int min_count = 2;
  double learning_rate = 0.05;
  /// Frequent-word subsampling threshold (0 disables).
  double subsample = 1e-3;
  uint64_t seed = 42;
};

/// \brief Frequency-pruned vocabulary with a negative-sampling table.
class WordVocab {
 public:
  /// Count words over tokenized documents and keep those with
  /// count >= min_count.
  void Build(const std::vector<std::vector<std::string>>& docs,
             int min_count);

  /// Word id, or -1 if out of vocabulary.
  int Find(const std::string& word) const;

  size_t size() const { return words_.size(); }
  const std::string& word(int id) const { return words_[id]; }
  uint64_t count(int id) const { return counts_[id]; }
  uint64_t total_count() const { return total_; }

  /// Sample a word id ~ unigram^0.75 (negative sampling distribution).
  int SampleNegative(Rng* rng) const;

  /// Keep-probability for frequent-word subsampling (word2vec formula).
  double KeepProbability(int id, double subsample) const;

  /// Rebuild from persisted (word, count) pairs; recomputes the sampling
  /// table. Ids are assigned in the given order.
  void Restore(std::vector<std::string> words, std::vector<uint64_t> counts);

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
  std::vector<double> negative_cdf_;
  uint64_t total_ = 0;
};

/// \brief Plain skip-gram word vectors.
class Word2VecModel {
 public:
  /// Build vocab + train. Deterministic given config.seed.
  void Train(const std::vector<std::vector<std::string>>& docs,
             const SgnsConfig& config);

  const WordVocab& vocab() const { return vocab_; }
  int dim() const { return config_.dim; }

  /// Input vector of a word; nullptr when out of vocabulary.
  const float* WordVector(const std::string& word) const;

  /// Mean of in-vocabulary word vectors (zero vector if none).
  Vector AverageVector(const std::vector<std::string>& tokens) const;

  /// SIF-weighted average (Arora et al. 2017): weight a/(a + p(w)).
  Vector SifVector(const std::vector<std::string>& tokens,
                   double a = 1e-3) const;

  /// Access for derived trainers (Doc2Vec shares the output matrix).
  std::vector<float>& input_matrix() { return input_; }
  const std::vector<float>& output_matrix() const { return output_; }
  const std::vector<float>& input_matrix() const { return input_; }
  const SgnsConfig& config() const { return config_; }

  /// Reconstitute a trained model from persisted state (model_io).
  void Restore(WordVocab vocab, const SgnsConfig& config,
               std::vector<float> input, std::vector<float> output);

 protected:
  friend class Doc2VecModel;

  WordVocab vocab_;
  SgnsConfig config_;
  std::vector<float> input_;   // vocab x dim
  std::vector<float> output_;  // vocab x dim
};

/// Numerically-safe sigmoid.
float Sigmoid(float x);

}  // namespace vec
}  // namespace newslink

#endif  // NEWSLINK_VEC_SGNS_TRAINER_H_
