// Binary persistence for trained word-vector models, so the expensive
// training step (the FastText judge, the baselines) can be cached across
// runs. Little-endian binary format with a magic header:
//   "NLW2V1\n" | dim | vocab_size | [len word count]* | input floats |
//   output floats
// FastText adds its subword parameters and bucket matrix.

#ifndef NEWSLINK_VEC_MODEL_IO_H_
#define NEWSLINK_VEC_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "vec/fasttext_model.h"
#include "vec/sgns_trainer.h"

namespace newslink {
namespace vec {

/// Persist a trained Word2VecModel.
Status SaveWord2Vec(const Word2VecModel& model, const std::string& path);

/// Load a model written by SaveWord2Vec.
Result<Word2VecModel> LoadWord2Vec(const std::string& path);

}  // namespace vec
}  // namespace newslink

#endif  // NEWSLINK_VEC_MODEL_IO_H_
