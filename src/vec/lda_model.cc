#include "vec/lda_model.h"

#include <cmath>

#include "common/logging.h"

namespace newslink {
namespace vec {

double LdaModel::TopicWordProb(int topic, int word) const {
  const double v = static_cast<double>(vocab_.size());
  return (topic_word_[static_cast<size_t>(topic) * vocab_.size() + word] +
          config_.beta) /
         (topic_total_[topic] + config_.beta * v);
}

void LdaModel::Train(const std::vector<std::vector<std::string>>& docs,
                     const LdaConfig& config) {
  config_ = config;
  vocab_.Build(docs, config.min_count);
  const int k = config.num_topics;
  const size_t v = vocab_.size();

  // Token streams as word ids.
  std::vector<std::vector<int>> ids(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    for (const std::string& w : docs[d]) {
      const int id = vocab_.Find(w);
      if (id >= 0) ids[d].push_back(id);
    }
  }

  Rng rng(config.seed);
  doc_topic_.assign(docs.size(), std::vector<int>(k, 0));
  topic_word_.assign(static_cast<size_t>(k) * v, 0);
  topic_total_.assign(k, 0);

  // Random topic initialization.
  std::vector<std::vector<int>> assignments(docs.size());
  for (size_t d = 0; d < ids.size(); ++d) {
    assignments[d].resize(ids[d].size());
    for (size_t i = 0; i < ids[d].size(); ++i) {
      const int t = static_cast<int>(rng.Uniform(k));
      assignments[d][i] = t;
      ++doc_topic_[d][t];
      ++topic_word_[static_cast<size_t>(t) * v + ids[d][i]];
      ++topic_total_[t];
    }
  }

  std::vector<double> probs(k);
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (size_t d = 0; d < ids.size(); ++d) {
      for (size_t i = 0; i < ids[d].size(); ++i) {
        const int word = ids[d][i];
        const int old_t = assignments[d][i];
        --doc_topic_[d][old_t];
        --topic_word_[static_cast<size_t>(old_t) * v + word];
        --topic_total_[old_t];

        double acc = 0.0;
        for (int t = 0; t < k; ++t) {
          acc += (doc_topic_[d][t] + config.alpha) * TopicWordProb(t, word);
          probs[t] = acc;
        }
        const int new_t = static_cast<int>(rng.SampleFromCdf(probs));

        assignments[d][i] = new_t;
        ++doc_topic_[d][new_t];
        ++topic_word_[static_cast<size_t>(new_t) * v + word];
        ++topic_total_[new_t];
      }
    }
  }
}

Vector LdaModel::DocTopics(size_t i) const {
  NL_DCHECK(i < doc_topic_.size());
  const int k = config_.num_topics;
  Vector theta(k);
  double total = 0.0;
  for (int t = 0; t < k; ++t) total += doc_topic_[i][t] + config_.alpha;
  for (int t = 0; t < k; ++t) {
    theta[t] = static_cast<float>((doc_topic_[i][t] + config_.alpha) / total);
  }
  return theta;
}

Vector LdaModel::Infer(const std::vector<std::string>& tokens) const {
  const int k = config_.num_topics;
  std::vector<int> ids;
  for (const std::string& w : tokens) {
    const int id = vocab_.Find(w);
    if (id >= 0) ids.push_back(id);
  }

  uint64_t seed = 14695981039346656037ULL;
  for (const std::string& t : tokens) {
    for (char c : t) {
      seed ^= static_cast<uint8_t>(c);
      seed *= 1099511628211ULL;
    }
  }
  Rng rng(seed);

  std::vector<int> counts(k, 0);
  std::vector<int> assign(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    assign[i] = static_cast<int>(rng.Uniform(k));
    ++counts[assign[i]];
  }
  std::vector<double> probs(k);
  for (int iter = 0; iter < config_.infer_iterations; ++iter) {
    for (size_t i = 0; i < ids.size(); ++i) {
      --counts[assign[i]];
      double acc = 0.0;
      for (int t = 0; t < k; ++t) {
        acc += (counts[t] + config_.alpha) * TopicWordProb(t, ids[i]);
        probs[t] = acc;
      }
      assign[i] = static_cast<int>(rng.SampleFromCdf(probs));
      ++counts[assign[i]];
    }
  }

  Vector theta(k);
  double total = 0.0;
  for (int t = 0; t < k; ++t) total += counts[t] + config_.alpha;
  for (int t = 0; t < k; ++t) {
    theta[t] = static_cast<float>((counts[t] + config_.alpha) / total);
  }
  return theta;
}

Vector LdaModel::InferText(const std::string& text) const {
  return Infer(TokenizeForVectors(text));
}

}  // namespace vec
}  // namespace newslink
