#include "vec/sbert_like_model.h"

namespace newslink {
namespace vec {

void SbertLikeModel::Pretrain(
    const std::vector<std::vector<std::string>>& background_docs,
    const SgnsConfig& config) {
  model_.Train(background_docs, config);
}

Vector SbertLikeModel::EncodeTokens(
    const std::vector<std::string>& tokens) const {
  Vector v = model_.SifVector(tokens);
  NormalizeInPlace(v);
  return v;
}

Vector SbertLikeModel::Encode(const std::string& text) const {
  return EncodeTokens(TokenizeForVectors(text));
}

}  // namespace vec
}  // namespace newslink
