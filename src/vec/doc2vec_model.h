// DOC2VEC substitute: PV-DBOW (Le & Mikolov 2014) trained with negative
// sampling — each document vector is optimized to predict the words it
// contains. Unseen texts are embedded by inference (gradient steps against
// frozen word outputs), matching Gensim's infer_vector protocol used by the
// paper's DOC2VEC baseline.

#ifndef NEWSLINK_VEC_DOC2VEC_MODEL_H_
#define NEWSLINK_VEC_DOC2VEC_MODEL_H_

#include <string>
#include <vector>

#include "vec/sgns_trainer.h"

namespace newslink {
namespace vec {

struct Doc2VecConfig {
  SgnsConfig sgns;
  /// SGD passes over a new text during inference.
  int infer_epochs = 20;
};

/// \brief PV-DBOW document vectors.
class Doc2VecModel {
 public:
  void Train(const std::vector<std::vector<std::string>>& docs,
             const Doc2VecConfig& config);

  int dim() const { return config_.sgns.dim; }
  size_t num_docs() const { return num_docs_; }

  /// Trained vector of training document i.
  std::span<const float> DocVector(size_t i) const;

  /// Infer a vector for an unseen token sequence (deterministic: the
  /// inference RNG is seeded from the tokens).
  Vector Infer(const std::vector<std::string>& tokens) const;

  Vector InferText(const std::string& text) const;

 private:
  Doc2VecConfig config_;
  WordVocab vocab_;
  size_t num_docs_ = 0;
  std::vector<float> doc_vectors_;  // num_docs x dim
  std::vector<float> output_;       // vocab x dim
};

}  // namespace vec
}  // namespace newslink

#endif  // NEWSLINK_VEC_DOC2VEC_MODEL_H_
