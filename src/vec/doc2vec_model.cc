#include "vec/doc2vec_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace newslink {
namespace vec {

void Doc2VecModel::Train(const std::vector<std::vector<std::string>>& docs,
                         const Doc2VecConfig& config) {
  config_ = config;
  num_docs_ = docs.size();
  vocab_.Build(docs, config.sgns.min_count);
  const size_t v = vocab_.size();
  const size_t dim = static_cast<size_t>(config.sgns.dim);

  Rng rng(config.sgns.seed);
  doc_vectors_.resize(num_docs_ * dim);
  output_.assign(v * dim, 0.0f);
  for (float& x : doc_vectors_) {
    x = static_cast<float>((rng.UniformDouble() - 0.5) / config.sgns.dim);
  }
  if (v == 0) return;

  std::vector<float> grad(dim);
  const float lr = static_cast<float>(config.sgns.learning_rate);

  for (int epoch = 0; epoch < config.sgns.epochs; ++epoch) {
    for (size_t d = 0; d < docs.size(); ++d) {
      float* dv = doc_vectors_.data() + d * dim;
      for (const std::string& w : docs[d]) {
        const int word = vocab_.Find(w);
        if (word < 0) continue;
        if (rng.UniformDouble() >=
            vocab_.KeepProbability(word, config.sgns.subsample)) {
          continue;
        }
        std::fill(grad.begin(), grad.end(), 0.0f);
        for (int n = 0; n <= config.sgns.negatives; ++n) {
          int target;
          float label;
          if (n == 0) {
            target = word;
            label = 1.0f;
          } else {
            target = vocab_.SampleNegative(&rng);
            if (target == word) continue;
            label = 0.0f;
          }
          float* outv = output_.data() + static_cast<size_t>(target) * dim;
          const float score = Sigmoid(Dot({dv, dim}, {outv, dim}));
          const float g = lr * (label - score);
          for (size_t k = 0; k < dim; ++k) {
            grad[k] += g * outv[k];
            outv[k] += g * dv[k];
          }
        }
        for (size_t k = 0; k < dim; ++k) dv[k] += grad[k];
      }
    }
  }
}

std::span<const float> Doc2VecModel::DocVector(size_t i) const {
  NL_DCHECK(i < num_docs_);
  const size_t dim = static_cast<size_t>(config_.sgns.dim);
  return {doc_vectors_.data() + i * dim, dim};
}

Vector Doc2VecModel::Infer(const std::vector<std::string>& tokens) const {
  const size_t dim = static_cast<size_t>(config_.sgns.dim);
  // Seed inference deterministically from the token content.
  uint64_t seed = 1469598103934665603ULL;
  for (const std::string& t : tokens) {
    for (char c : t) {
      seed ^= static_cast<uint8_t>(c);
      seed *= 1099511628211ULL;
    }
  }
  Rng rng(seed);

  Vector dv(dim);
  for (float& x : dv) {
    x = static_cast<float>((rng.UniformDouble() - 0.5) / config_.sgns.dim);
  }
  if (vocab_.size() == 0) return dv;

  std::vector<float> grad(dim);
  const float lr = static_cast<float>(config_.sgns.learning_rate);
  for (int epoch = 0; epoch < config_.infer_epochs; ++epoch) {
    // Linearly decayed learning rate, as in Gensim's infer_vector.
    const float elr =
        lr * (1.0f - static_cast<float>(epoch) /
                         static_cast<float>(config_.infer_epochs));
    for (const std::string& w : tokens) {
      const int word = vocab_.Find(w);
      if (word < 0) continue;
      std::fill(grad.begin(), grad.end(), 0.0f);
      for (int n = 0; n <= config_.sgns.negatives; ++n) {
        int target;
        float label;
        if (n == 0) {
          target = word;
          label = 1.0f;
        } else {
          target = vocab_.SampleNegative(&rng);
          if (target == word) continue;
          label = 0.0f;
        }
        const float* outv = output_.data() + static_cast<size_t>(target) * dim;
        const float score = Sigmoid(Dot(dv, {outv, dim}));
        const float g = elr * (label - score);
        for (size_t k = 0; k < dim; ++k) grad[k] += g * outv[k];
        // Output matrix is frozen during inference.
      }
      for (size_t k = 0; k < dim; ++k) dv[k] += grad[k];
    }
  }
  return dv;
}

Vector Doc2VecModel::InferText(const std::string& text) const {
  return Infer(TokenizeForVectors(text));
}

}  // namespace vec
}  // namespace newslink
