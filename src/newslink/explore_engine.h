// ExploreEngine: the news-exploration workload (DESIGN.md §13) — roll-up /
// drill-down over a search result set, after "Enabling Roll-up and
// Drill-down Operations in News Exploration with Knowledge Graphs"
// (PAPERS.md, same group as the source paper).
//
// A session starts with one fused Search() call. Each hit's *matched
// entities* (the distance-0 source nodes of its subgraph embedding) are
// mapped through the FacetHierarchy: at the top level every entity rolls up
// to its root facet (country-level in the synthetic KG); inside a drilled
// scope S it maps to the child of S it descends through. Each document
// votes with its entities and lands in exactly one bucket — majority facet,
// ties to the smallest node id, documents with no mappable entity in the
// explicit "other" bucket — so the buckets PARTITION the result set exactly
// (property-tested). Bucket order is deterministic: doc count desc, score
// mass desc, node id asc, "other" always last.
//
// Sessions are opaque server-side state: session id -> pinned epoch +
// cached rows (doc index, score, entity list — all captured at session
// start) + navigation stack. Drill-down and roll-up replay against that
// cache and NEVER re-run retrieval (asserted via the explore_retrievals
// counter), which also makes navigation immune to concurrent AddDocument
// ingestion: the view a client explores is frozen at its session's epoch.
// The store is LRU-bounded and TTL-evicted; an expired or unknown session
// is NotFound (HTTP 404).

#ifndef NEWSLINK_NEWSLINK_EXPLORE_ENGINE_H_
#define NEWSLINK_NEWSLINK_EXPLORE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "baselines/search_engine.h"
#include "common/metrics.h"
#include "common/result.h"
#include "kg/facet_hierarchy.h"
#include "newslink/newslink_engine.h"

namespace newslink {

/// Registry series maintained by ExploreEngine (registered on the wrapped
/// engine's registry, so one /metrics scrape covers both).
inline constexpr std::string_view kExploreSessionsActive =
    "explore_sessions_active";
inline constexpr std::string_view kExploreSessionsCreated =
    "explore_sessions_created_total";
inline constexpr std::string_view kExploreSessionsExpired =
    "explore_sessions_expired_total";
inline constexpr std::string_view kExploreSessionsEvicted =
    "explore_sessions_evicted_total";
/// Underlying Search() calls — drill-down / roll-up must not move this.
inline constexpr std::string_view kExploreRetrievals =
    "explore_retrievals_total";
inline constexpr std::string_view kExploreDrilldowns =
    "explore_drilldowns_total";
inline constexpr std::string_view kExploreRollups = "explore_rollups_total";
inline constexpr std::string_view kExploreSeconds = "explore_seconds";

struct ExploreOptions {
  /// Result-set size of the underlying retrieval when the request does not
  /// carry its own k.
  size_t result_set_size = 50;
  /// Representative hits returned per bucket.
  size_t top_docs_per_bucket = 3;
  /// LRU bound on live sessions; the least-recently-used session is
  /// dropped when a new one would exceed this.
  size_t max_sessions = 256;
  /// Idle time after which a session expires (touched on every access).
  double session_ttl_seconds = 600.0;
};

/// \brief One representative hit inside a bucket.
struct ExploreHit {
  size_t doc_index = 0;
  double score = 0.0;
};

/// \brief One roll-up bucket.
struct ExploreBucket {
  /// Facet node; kInvalidNode marks the "other" (unmapped) bucket.
  kg::NodeId node = kg::kInvalidNode;
  size_t doc_count = 0;
  double score_mass = 0.0;
  std::vector<ExploreHit> top_hits;

  bool other() const { return node == kg::kInvalidNode; }
};

/// \brief One exploration view (returned by every operation).
struct ExploreResult {
  std::string session_id;
  uint64_t epoch = 0;
  size_t snapshot_docs = 0;
  /// Documents in the current scope == sum of doc_count over `buckets`.
  size_t total_hits = 0;
  /// Navigation stack, outermost drill first; empty at the top level.
  std::vector<kg::NodeId> scope;
  std::vector<ExploreBucket> buckets;
  /// Deadline verdict of the underlying retrieval (StartSession only).
  bool deadline_exceeded = false;
};

/// \brief Roll-up / drill-down session manager over a NewsLinkEngine.
///
/// Thread-safe: any number of threads may start and navigate sessions
/// concurrently with each other and with engine ingestion.
class ExploreEngine {
 public:
  /// `engine` and `hierarchy` must outlive the explore engine. Metric
  /// series register on engine->mutable_metrics().
  ExploreEngine(const NewsLinkEngine* engine,
                const kg::FacetHierarchy* hierarchy,
                ExploreOptions options = {});

  /// Run the query once, cache the result set, return the top-level
  /// roll-up. `request.k == 0` falls back to options.result_set_size.
  Result<ExploreResult> StartSession(const baselines::SearchRequest& request);

  /// Re-scope the session to the bucket rooted at `facet` (a node of the
  /// current view). InvalidArgument for the "other" bucket or a node that
  /// is not a bucket of the current view; NotFound for an expired or
  /// unknown session.
  Result<ExploreResult> DrillDown(const std::string& session_id,
                                  kg::NodeId facet);

  /// Pop one drill level. InvalidArgument when already at the top level;
  /// NotFound for an expired or unknown session.
  Result<ExploreResult> RollUp(const std::string& session_id);

  /// Current view of a session without navigating (a refresh).
  Result<ExploreResult> View(const std::string& session_id);

  /// Live (non-expired) sessions right now.
  size_t ActiveSessions();

  const ExploreOptions& options() const { return options_; }

 private:
  /// One cached hit: everything bucket assignment ever needs, captured at
  /// session start so navigation never touches the engine again.
  struct Row {
    size_t doc_index = 0;
    double score = 0.0;
    std::vector<kg::NodeId> entities;  // matched (source) nodes
  };

  /// One drill level: the chosen facet and the rows inside it.
  struct Frame {
    kg::NodeId scope = kg::kInvalidNode;
    std::vector<uint32_t> rows;  // indices into Session::rows, score desc
  };

  struct Session {
    uint64_t epoch = 0;
    size_t snapshot_docs = 0;
    bool deadline_exceeded = false;
    std::vector<Row> rows;  // score desc (retrieval order)
    std::vector<Frame> stack;
    std::chrono::steady_clock::time_point last_used;
    std::list<std::string>::iterator lru_it;
  };

  /// Buckets of `rows` under `scope` (kInvalidNode = top level), with each
  /// bucket's member rows. Deterministic order; "other" last when present.
  struct BucketMembers {
    ExploreBucket bucket;
    std::vector<uint32_t> rows;
  };
  std::vector<BucketMembers> ComputeBuckets(const Session& session,
                                            const std::vector<uint32_t>& rows,
                                            kg::NodeId scope) const;

  /// Render the current view of a session (caller holds mu_).
  ExploreResult Render(const std::string& session_id, const Session& session)
      const;

  /// Drop expired sessions, then look `session_id` up and touch it.
  /// Returns nullptr (caller maps to NotFound) when absent. Holds mu_.
  Session* FindLocked(const std::string& session_id);
  void EvictExpiredLocked();
  void TouchLocked(const std::string& session_id, Session* session);

  const NewsLinkEngine* engine_;
  const kg::FacetHierarchy* hierarchy_;
  ExploreOptions options_;

  std::mutex mu_;
  std::unordered_map<std::string, Session> sessions_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t next_session_ = 0;

  metrics::Gauge* sessions_active_;
  metrics::Counter* sessions_created_;
  metrics::Counter* sessions_expired_;
  metrics::Counter* sessions_evicted_;
  metrics::Counter* retrievals_;
  metrics::Counter* drilldowns_;
  metrics::Counter* rollups_;
  metrics::Histogram* explore_seconds_;
};

}  // namespace newslink

#endif  // NEWSLINK_NEWSLINK_EXPLORE_ENGINE_H_
