// ShardedEngine: N NewsLinkEngine document-partition shards behind the one
// baselines::SearchEngine interface (DESIGN.md Sec. 12). Index partitions
// the corpus across the shards (round-robin or content-hash by corpus row,
// or an explicit per-row assignment); Search prepares the query once, runs
// the two-phase shard protocol (shard_api.h) over a thread pool against
// one pinned epoch per shard, and merges candidates with shard_merge —
// producing hits bit-identical (scores and tie order) to a single
// NewsLinkEngine over the whole corpus.
//
// Writes: AddDocument routes to the designated write shard; Save/Load
// snapshot persists a manifest (partition permutation + fingerprints)
// alongside one standard engine snapshot per shard, so warm-started shards
// agree with the manifest or fail loudly.

#ifndef NEWSLINK_NEWSLINK_SHARDED_ENGINE_H_
#define NEWSLINK_NEWSLINK_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/search_engine.h"
#include "common/thread_pool.h"
#include "embed/path_explainer.h"
#include "ir/append_only.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"
#include "newslink/newslink_engine.h"

namespace newslink {

struct ShardedOptions {
  /// Number of document-partition shards (>= 1).
  size_t num_shards = 2;
  enum class Partition {
    kRoundRobin,  // row i -> shard i % num_shards
    kHash,        // row i -> DocumentFingerprint(doc) % num_shards
    kExplicit,    // row i -> assignment[i]
  };
  Partition partition = Partition::kRoundRobin;
  /// Per-corpus-row shard, used (and required) with Partition::kExplicit.
  std::vector<uint32_t> assignment;
  /// Shard that absorbs AddDocument traffic.
  size_t write_shard = 0;
  /// Fan-out worker threads (0 = num_shards).
  size_t fanout_threads = 0;
};

/// \brief Scatter-gather search over N in-process NewsLink shards.
class ShardedEngine : public baselines::SearchEngine {
 public:
  /// `graph` and `label_index` must outlive the engine; every shard serves
  /// the same knowledge graph.
  ShardedEngine(const kg::KnowledgeGraph* graph,
                const kg::LabelIndex* label_index,
                NewsLinkConfig config = {}, ShardedOptions options = {});

  std::string name() const override;

  /// Partition `corpus` across the shards and index each partition (shards
  /// sequentially — each shard's NLP/NE stage is internally parallel).
  Status Index(const corpus::Corpus& corpus) override;

  /// Scatter-gather search: plan + search fan-out on the thread pool, one
  /// pinned epoch per shard, merged bit-exact vs a single engine over the
  /// union. The trace tree carries one span child per shard under "ns";
  /// shards_total / shards_answered are filled (in-process shards always
  /// answer: degraded stays false here — the HTTP coordinator is where
  /// shards can go missing).
  baselines::SearchResponse Search(
      const baselines::SearchRequest& request) const override;

  /// Batch fan-out that pins each shard's epoch ONCE for the whole batch
  /// (the base-class default acquires one snapshot per request): cheaper,
  /// and the whole batch answers from one consistent corpus view.
  std::vector<baselines::SearchResponse> SearchBatch(
      std::span<const baselines::SearchRequest> requests) const override;

  /// Append one document: routed to options.write_shard, which publishes
  /// a new epoch there. Returns the document's global corpus row.
  size_t AddDocument(const corpus::Document& doc);

  /// Manifest (partition permutation + fingerprints) at `path`, one engine
  /// snapshot per shard at `path.shard<i>`. LoadSnapshot validates the
  /// manifest against this engine's graph/config and shard count, loads
  /// every shard snapshot (each shard re-validates its own), and checks
  /// per-shard doc counts against the manifest's routing table. A failure
  /// after the first shard loaded leaves earlier shards populated —
  /// discard the engine on error rather than retrying into it.
  Status SaveSnapshot(const std::string& path) const override;
  Status LoadSnapshot(const std::string& path) override;

  /// Where shard `i`'s engine snapshot lives relative to the manifest.
  static std::string ShardSnapshotPath(const std::string& path, size_t shard);

  size_t num_shards() const { return shards_.size(); }
  const NewsLinkEngine& shard(size_t i) const { return *shards_[i]; }
  size_t num_indexed_docs() const {
    return shard_of_row_.size();
  }
  uint64_t corpus_fingerprint() const {
    return corpus_fingerprint_.load(std::memory_order_acquire);
  }

 private:
  /// Shard every request fans out to, under pins acquired by the caller
  /// (one per shard — SearchBatch reuses one set for the whole batch).
  baselines::SearchResponse SearchWithPins(
      const baselines::SearchRequest& request,
      const std::vector<ShardEpochPin>& pins) const;

  /// Route one new global row to `shard`, recording both directions.
  /// Caller holds writer_mu_. Returns the shard-local row.
  uint32_t RecordRoute(uint32_t shard);

  const kg::KnowledgeGraph* graph_;
  NewsLinkConfig config_;
  ShardedOptions options_;
  std::vector<std::unique_ptr<NewsLinkEngine>> shards_;
  embed::PathExplainer explainer_;
  mutable ThreadPool pool_;

  // Routing tables, append-only so queries read them lock-free while
  // AddDocument grows them. A mapping entry is always appended BEFORE the
  // owning shard publishes the document's epoch, so any local row a shard
  // snapshot can return already has its global translation (and vice
  // versa: any global row below a published count resolves).
  ir::AppendOnlyStore<uint32_t> shard_of_row_;    // global row -> shard
  ir::AppendOnlyStore<uint32_t> local_of_row_;    // global row -> local row
  std::vector<std::unique_ptr<ir::AppendOnlyStore<uint32_t>>>
      global_of_local_;                           // [shard] local -> global

  mutable std::mutex writer_mu_;
  std::atomic<uint64_t> corpus_fingerprint_{0};

  metrics::Counter* queries_;
  metrics::Histogram* query_seconds_;
};

}  // namespace newslink

#endif  // NEWSLINK_NEWSLINK_SHARDED_ENGINE_H_
