// Result diversification: MMR-style re-ranking over subgraph-embedding
// overlap, so the top-k doesn't collapse into one story's near-duplicates.
// Real news search surfaces one representative per story cluster; the
// embedding node sets give NewsLink a natural story-similarity signal
// without any clustering ground truth.

#ifndef NEWSLINK_NEWSLINK_DIVERSIFY_H_
#define NEWSLINK_NEWSLINK_DIVERSIFY_H_

#include <vector>

#include "baselines/search_engine.h"
#include "embed/document_embedding.h"

namespace newslink {

struct DiversifyOptions {
  /// MMR trade-off: 1 keeps the original ranking, 0 ranks purely by
  /// dissimilarity to already-selected results.
  double lambda = 0.7;
  /// Number of results to select (0 = all input results, reordered).
  size_t k = 0;
};

/// Jaccard similarity between two embeddings' node sets (0 when either is
/// empty).
double EmbeddingJaccard(const embed::DocumentEmbedding& a,
                        const embed::DocumentEmbedding& b);

/// Greedy maximal-marginal-relevance selection.
///
/// `embeddings[results[i].doc_index]` must be valid for every result.
/// Scores of the input results should be descending (engine output order);
/// returned results carry their MMR selection scores.
std::vector<baselines::SearchHit> DiversifyResults(
    const std::vector<baselines::SearchHit>& results,
    const std::vector<embed::DocumentEmbedding>& embeddings,
    const DiversifyOptions& options = {});

}  // namespace newslink

#endif  // NEWSLINK_NEWSLINK_DIVERSIFY_H_
