// Coordinator-side halves of the shard protocol (shard_api.h): merging
// per-shard plans into collection statistics and fusing per-shard
// candidates into the final top-k. Shared by the in-process ShardedEngine
// and the HTTP scatter-gather coordinator so both merge with literally the
// same arithmetic.

#ifndef NEWSLINK_NEWSLINK_SHARD_MERGE_H_
#define NEWSLINK_NEWSLINK_SHARD_MERGE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/scorer.h"
#include "newslink/shard_api.h"

namespace newslink {

/// How to fuse (resolved request knobs, as NewsLinkEngine::Search resolves
/// them).
struct ShardFuseParams {
  double beta = 0.2;
  bool use_bow = true;
  bool use_bon = false;
  size_t k = 10;
  /// Recency decay inputs (DESIGN.md Sec. 15). Decay multiplies each
  /// candidate's fused score by RecencyDecay(ts, now_ms, half_life) — but
  /// only when recency_half_life_s > 0 AND has_timestamps (from the merged
  /// plan): a timestamp-free collection must score bit-identically to the
  /// pre-time engine.
  double recency_half_life_s = 0.0;
  int64_t now_ms = 0;
  bool has_timestamps = false;
};

/// Fuse every answering shard's candidates (Eq. 3 with per-side max
/// normalization) and merge into the top-k, tie-broken toward smaller
/// global corpus rows — the same heap, arithmetic, and tie order as a
/// single engine over the union.
///
/// `to_global(shard_index, local_row)` maps a shard's corpus row to the
/// row in the union corpus; `shard_index` indexes `shards`. Entries of
/// `shards` may be null (a shard that failed or missed its deadline —
/// degraded merge over the rest).
std::vector<ir::ScoredDoc> MergeShardCandidates(
    const ShardFuseParams& params,
    const std::vector<const ShardSearchResult*>& shards,
    const std::function<uint32_t(size_t, uint32_t)>& to_global);

}  // namespace newslink

#endif  // NEWSLINK_NEWSLINK_SHARD_MERGE_H_
