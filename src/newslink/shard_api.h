// The shard-serving protocol of the sharded NewsLink engine (DESIGN.md
// Sec. 12): the data that travels between a search coordinator and the N
// document-partition shards, whether in-process (ShardedEngine over
// common/ThreadPool) or over HTTP (/v1/shard/plan + /v1/shard/search with
// net/api_json as the RPC codec).
//
// Distributed search is two-phase so that scores are bit-identical to a
// single index over the union of all shards:
//
//   1. PLAN — every shard reports, against one pinned epoch, its document
//      count, total token lengths, per-query-term document frequencies and
//      term-level max-tf (positional, aligned with the ShardQuery). The
//      coordinator sums/maxes these into the collection-wide statistics.
//   2. SEARCH — every shard retrieves its per-side top-k' *scored with the
//      collection statistics* (ir::CollectionStats), completes the missing
//      side of each candidate by random access, and returns raw candidate
//      scores plus its raw per-side list maxima. The coordinator takes the
//      collection per-side max over shards, fuses (Eq. 3), and merges with
//      one ir::TopKHeap over global corpus rows — the same arithmetic, in
//      the same order, as NewsLinkEngine::Search over the union.
//
// Epoch safety: both phases must read one immutable snapshot. In-process
// that is a ShardEpochPin; over RPC the plan response carries the shard's
// epoch, the search request echoes it as `expected_epoch`, and a shard
// whose epoch moved answers FailedPrecondition (HTTP 409) so the
// coordinator re-plans instead of mixing statistics across epochs.

#ifndef NEWSLINK_NEWSLINK_SHARD_API_H_
#define NEWSLINK_NEWSLINK_SHARD_API_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ir/inverted_index.h"
#include "ir/text_vectorizer.h"

namespace newslink {

/// Version of the shard RPC surface (requests and responses carry it as
/// `api_version`). Bump on ANY wire-visible change to the structs below —
/// mismatched peers must fail loudly (FailedPrecondition → 409), never
/// drift silently. History:
///   1: initial two-phase plan/search protocol.
///   2: time-aware search — ShardQuery carries the resolved time_range /
///      recency knobs, plans report has_timestamps, and every candidate
///      carries its timestamp so the coordinator's decayed merge matches
///      a single time-aware engine (DESIGN.md Sec. 15).
inline constexpr uint64_t kShardApiVersion = 2;

/// Multiplicative recency decay (DESIGN.md Sec. 15): 2^(-age / half_life),
/// age clamped at 0 (documents "from the future" are treated as current).
/// Defined inline here — the single arithmetic both NewsLinkEngine::Search
/// and the coordinator merge apply, so distributed fusion stays
/// bit-identical. half_life = +infinity yields exactly 1.0 (multiplying by
/// it is an IEEE identity, the basis of the decay-off exactness property).
inline double RecencyDecay(int64_t timestamp_ms, int64_t now_ms,
                           double half_life_seconds) {
  const double age_ms =
      static_cast<double>(std::max<int64_t>(0, now_ms - timestamp_ms));
  return std::exp2(-age_ms / (half_life_seconds * 1000.0));
}

/// \brief A query in shard-portable form: what to retrieve, prepared once
/// by the coordinator (NLP + NER + query embedding run once, not N times).
///
/// Text terms are stems (dictionary-free, canonical stem order); node
/// terms are KG node ids, which are global — every shard serves the same
/// knowledge graph.
struct ShardQuery {
  /// BOW side, canonical stem order (ir::TextVectorizer::StemsForQuery).
  ir::StemCounts text_stems;
  /// BON side: (node id, query weight) sorted by node id — weights already
  /// carry the source-vs-induced boost.
  ir::TermCounts node_terms;
  /// Which sides to score (use_bow == beta < 1, use_bon == beta > 0).
  bool use_bow = true;
  bool use_bon = false;
  /// Per-side candidate depth k' = max(k, rerank_depth).
  uint64_t kprime = 64;
  /// Exactness oracle: score every posting instead of MaxScore top-k'.
  bool exhaustive = false;

  // Time-aware fields (v2), resolved ONCE by the coordinator so every
  // shard and the merge agree on the window, half-life, and "now".
  /// Publication-time pre-filter [after_ms, before_ms) pushed into each
  /// shard's posting traversal when set.
  bool has_time_range = false;
  int64_t after_ms = 0;
  int64_t before_ms = std::numeric_limits<int64_t>::max();
  /// Recency half-life, seconds (<= 0 = decay off; +inf = decay path with
  /// factor 1.0). Applied by the coordinator at merge time.
  double recency_half_life_s = 0.0;
  /// Decay reference instant, epoch ms (meaningful when half-life > 0).
  int64_t now_ms = 0;
};

/// \brief Phase-1 answer: one shard's collection statistics for the query,
/// read from one pinned epoch.
struct ShardPlan {
  uint64_t epoch = 0;
  uint64_t num_docs = 0;
  uint64_t text_total_length = 0;
  uint64_t node_total_length = 0;
  /// Smallest doc length per side (pruning-bound input; 0 when empty).
  uint32_t text_min_doc_length = 0;
  uint32_t node_min_doc_length = 0;
  /// Positional, aligned with ShardQuery::text_stems / ::node_terms.
  std::vector<uint64_t> text_df;
  std::vector<uint64_t> node_df;
  std::vector<uint32_t> text_max_tf;
  std::vector<uint32_t> node_max_tf;
  /// Whether any of this shard's documents carries a real timestamp (a
  /// collection statistic: the merge only decays when some shard has one).
  bool has_timestamps = false;
};

/// \brief Collection-wide statistics: ShardPlans merged over all shards
/// (sum the counts, max the max-tfs, min the min-lengths).
struct ShardGlobalStats {
  uint64_t num_docs = 0;
  uint64_t text_total_length = 0;
  uint64_t node_total_length = 0;
  uint32_t text_min_doc_length = 0;
  uint32_t node_min_doc_length = 0;
  std::vector<uint64_t> text_df;
  std::vector<uint64_t> node_df;
  std::vector<uint32_t> text_max_tf;
  std::vector<uint32_t> node_max_tf;
  /// OR over the shards' has_timestamps.
  bool has_timestamps = false;
};

/// Fold one shard's plan into the running collection statistics (counts
/// sum, max-tfs max, min-lengths min over non-empty shards).
void MergeShardPlan(const ShardPlan& plan, ShardGlobalStats* out);

/// \brief One candidate document of one shard, scores raw (unnormalized)
/// and computed with the collection statistics.
struct ShardCandidate {
  /// Corpus row within the shard (the shard's external doc id).
  uint32_t doc = 0;
  double bow = 0.0;
  double bon = 0.0;
  /// Publication timestamp (epoch ms, 0 = unknown): the input the merge's
  /// recency decay needs, so it never has to call back into a shard.
  int64_t ts = 0;
};

/// \brief Phase-2 answer: one shard's candidate union with raw per-side
/// list maxima (the coordinator maxes these across shards before
/// normalizing — max of maxima == the union's true per-side maximum,
/// because per-side lists are best-first).
struct ShardSearchResult {
  uint64_t epoch = 0;
  uint64_t snapshot_docs = 0;
  /// Raw maxima over this shard's per-side candidate lists (0 when the
  /// side's list is empty — the >0-else-1 normalization guard is applied
  /// once, by the coordinator, on the collection-wide max).
  double bow_max = 0.0;
  double bon_max = 0.0;
  std::vector<ShardCandidate> candidates;
  /// Work counters (documents fully scored per side, fill-ins included).
  uint64_t bow_scored = 0;
  uint64_t bon_scored = 0;
};

class NewsLinkEngine;

/// \brief An opaque pin on one published engine epoch.
///
/// PlanShard and SearchShard against the same pin are guaranteed to read
/// the same immutable index state even while AddDocument publishes new
/// epochs concurrently. Copyable; the pinned snapshot is reclaimed when
/// the last pin (and concurrent query) releases it.
class ShardEpochPin {
 public:
  ShardEpochPin() = default;

  uint64_t epoch() const { return epoch_; }
  uint64_t num_docs() const { return num_docs_; }
  bool valid() const { return snapshot_ != nullptr; }

 private:
  friend class NewsLinkEngine;
  std::shared_ptr<const void> snapshot_;
  uint64_t epoch_ = 0;
  uint64_t num_docs_ = 0;
};

}  // namespace newslink

#endif  // NEWSLINK_NEWSLINK_SHARD_API_H_
