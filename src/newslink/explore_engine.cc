#include "newslink/explore_engine.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"

namespace newslink {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ExploreEngine::ExploreEngine(const NewsLinkEngine* engine,
                             const kg::FacetHierarchy* hierarchy,
                             ExploreOptions options)
    : engine_(engine), hierarchy_(hierarchy), options_(options) {
  metrics::Registry* registry = engine_->mutable_metrics();
  sessions_active_ =
      registry->GetGauge(kExploreSessionsActive, "live explore sessions");
  sessions_created_ =
      registry->GetCounter(kExploreSessionsCreated, "sessions started");
  sessions_expired_ =
      registry->GetCounter(kExploreSessionsExpired, "sessions TTL-expired");
  sessions_evicted_ =
      registry->GetCounter(kExploreSessionsEvicted, "sessions LRU-evicted");
  retrievals_ = registry->GetCounter(
      kExploreRetrievals, "underlying Search calls issued by explore");
  drilldowns_ = registry->GetCounter(kExploreDrilldowns, "drill-down ops");
  rollups_ = registry->GetCounter(kExploreRollups, "roll-up ops");
  explore_seconds_ = registry->GetHistogram(
      kExploreSeconds, {}, "explore operation latency, seconds");
}

std::vector<ExploreEngine::BucketMembers> ExploreEngine::ComputeBuckets(
    const Session& session, const std::vector<uint32_t>& rows,
    kg::NodeId scope) const {
  // Facet per row: each entity votes for its facet under the scope;
  // majority wins, ties to the smallest facet id; no mappable entity (or
  // no entities at all) lands in "other" (kInvalidNode).
  std::map<kg::NodeId, std::vector<uint32_t>> members;  // facet -> rows
  std::vector<uint32_t> other;
  std::map<kg::NodeId, size_t> votes;  // reused per row (ordered: ties)
  for (uint32_t row : rows) {
    votes.clear();
    for (kg::NodeId e : session.rows[row].entities) {
      kg::NodeId facet = scope == kg::kInvalidNode
                             ? hierarchy_->Root(e)
                             : hierarchy_->ChildToward(scope, e);
      if (facet != kg::kInvalidNode) ++votes[facet];
    }
    if (votes.empty()) {
      other.push_back(row);
      continue;
    }
    kg::NodeId best = kg::kInvalidNode;
    size_t best_votes = 0;
    for (const auto& [facet, n] : votes) {
      if (n > best_votes) {  // first-in-order wins ties (smallest id)
        best = facet;
        best_votes = n;
      }
    }
    members[best].push_back(row);
  }

  std::vector<BucketMembers> out;
  out.reserve(members.size() + 1);
  auto finish = [&](kg::NodeId node, std::vector<uint32_t> member_rows) {
    BucketMembers bm;
    bm.bucket.node = node;
    bm.bucket.doc_count = member_rows.size();
    for (uint32_t row : member_rows) {
      bm.bucket.score_mass += session.rows[row].score;
      if (bm.bucket.top_hits.size() < options_.top_docs_per_bucket) {
        bm.bucket.top_hits.push_back(
            {session.rows[row].doc_index, session.rows[row].score});
      }
    }
    bm.rows = std::move(member_rows);
    out.push_back(std::move(bm));
  };
  for (auto& [facet, member_rows] : members) {
    finish(facet, std::move(member_rows));
  }
  // Deterministic order: doc count desc, score mass desc, node id asc.
  std::sort(out.begin(), out.end(),
            [](const BucketMembers& a, const BucketMembers& b) {
              if (a.bucket.doc_count != b.bucket.doc_count) {
                return a.bucket.doc_count > b.bucket.doc_count;
              }
              if (a.bucket.score_mass != b.bucket.score_mass) {
                return a.bucket.score_mass > b.bucket.score_mass;
              }
              return a.bucket.node < b.bucket.node;
            });
  if (!other.empty()) finish(kg::kInvalidNode, std::move(other));  // last
  return out;
}

ExploreResult ExploreEngine::Render(const std::string& session_id,
                                    const Session& session) const {
  ExploreResult result;
  result.session_id = session_id;
  result.epoch = session.epoch;
  result.snapshot_docs = session.snapshot_docs;
  result.deadline_exceeded = session.deadline_exceeded;
  for (const Frame& frame : session.stack) result.scope.push_back(frame.scope);

  const std::vector<uint32_t>* rows;
  std::vector<uint32_t> top_rows;
  kg::NodeId scope = kg::kInvalidNode;
  if (session.stack.empty()) {
    top_rows.resize(session.rows.size());
    for (uint32_t i = 0; i < top_rows.size(); ++i) top_rows[i] = i;
    rows = &top_rows;
  } else {
    rows = &session.stack.back().rows;
    scope = session.stack.back().scope;
  }
  result.total_hits = rows->size();
  for (auto& bm : ComputeBuckets(session, *rows, scope)) {
    result.buckets.push_back(std::move(bm.bucket));
  }
  return result;
}

void ExploreEngine::EvictExpiredLocked() {
  if (options_.session_ttl_seconds <= 0) return;
  const auto now = Clock::now();
  const auto ttl = std::chrono::duration<double>(options_.session_ttl_seconds);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_used > ttl) {
      lru_.erase(it->second.lru_it);
      it = sessions_.erase(it);
      sessions_expired_->Inc();
    } else {
      ++it;
    }
  }
  sessions_active_->Set(static_cast<int64_t>(sessions_.size()));
}

void ExploreEngine::TouchLocked(const std::string& session_id,
                                Session* session) {
  session->last_used = Clock::now();
  lru_.erase(session->lru_it);
  lru_.push_front(session_id);
  session->lru_it = lru_.begin();
}

ExploreEngine::Session* ExploreEngine::FindLocked(
    const std::string& session_id) {
  EvictExpiredLocked();
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return nullptr;
  TouchLocked(session_id, &it->second);
  return &it->second;
}

Result<ExploreResult> ExploreEngine::StartSession(
    const baselines::SearchRequest& request) {
  WallTimer timer;
  baselines::SearchRequest effective = request;
  if (effective.k == 0) effective.k = options_.result_set_size;
  effective.explain = false;  // paths are dead weight for aggregation

  retrievals_->Inc();
  baselines::SearchResponse response = engine_->Search(effective);

  Session session;
  session.epoch = response.epoch;
  session.snapshot_docs = response.snapshot_docs;
  session.deadline_exceeded = response.deadline_exceeded;
  session.rows.reserve(response.hits.size());
  for (const baselines::SearchHit& hit : response.hits) {
    // doc_index < snapshot_docs is the engine's contract, so the embedding
    // read is safe even while ingestion publishes newer epochs; the entity
    // list is copied NOW so navigation never touches the engine again.
    Row row;
    row.doc_index = hit.doc_index;
    row.score = hit.score;
    row.entities = engine_->doc_embedding(hit.doc_index).SourceNodes();
    session.rows.push_back(std::move(row));
  }

  std::lock_guard<std::mutex> lock(mu_);
  EvictExpiredLocked();
  while (sessions_.size() >= options_.max_sessions && !lru_.empty()) {
    const std::string& victim = lru_.back();
    sessions_.erase(victim);
    lru_.pop_back();
    sessions_evicted_->Inc();
  }
  std::string session_id = StrCat("x", ++next_session_);
  session.last_used = Clock::now();
  lru_.push_front(session_id);
  session.lru_it = lru_.begin();
  auto [it, inserted] = sessions_.emplace(session_id, std::move(session));
  sessions_created_->Inc();
  sessions_active_->Set(static_cast<int64_t>(sessions_.size()));
  ExploreResult result = Render(session_id, it->second);
  explore_seconds_->Observe(timer.ElapsedSeconds());
  return result;
}

Result<ExploreResult> ExploreEngine::DrillDown(const std::string& session_id,
                                               kg::NodeId facet) {
  WallTimer timer;
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindLocked(session_id);
  if (session == nullptr) {
    return Status::NotFound(StrCat("unknown or expired session ", session_id));
  }
  if (facet == kg::kInvalidNode) {
    return Status::InvalidArgument("cannot drill into the \"other\" bucket");
  }

  const std::vector<uint32_t>* rows;
  std::vector<uint32_t> top_rows;
  kg::NodeId scope = kg::kInvalidNode;
  if (session->stack.empty()) {
    top_rows.resize(session->rows.size());
    for (uint32_t i = 0; i < top_rows.size(); ++i) top_rows[i] = i;
    rows = &top_rows;
  } else {
    rows = &session->stack.back().rows;
    scope = session->stack.back().scope;
  }
  for (auto& bm : ComputeBuckets(*session, *rows, scope)) {
    if (bm.bucket.node == facet) {
      session->stack.push_back(Frame{facet, std::move(bm.rows)});
      drilldowns_->Inc();
      ExploreResult result = Render(session_id, *session);
      explore_seconds_->Observe(timer.ElapsedSeconds());
      return result;
    }
  }
  return Status::InvalidArgument(
      StrCat("node ", facet, " is not a bucket of the current view"));
}

Result<ExploreResult> ExploreEngine::RollUp(const std::string& session_id) {
  WallTimer timer;
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindLocked(session_id);
  if (session == nullptr) {
    return Status::NotFound(StrCat("unknown or expired session ", session_id));
  }
  if (session->stack.empty()) {
    return Status::InvalidArgument("already at the top level");
  }
  session->stack.pop_back();
  rollups_->Inc();
  ExploreResult result = Render(session_id, *session);
  explore_seconds_->Observe(timer.ElapsedSeconds());
  return result;
}

Result<ExploreResult> ExploreEngine::View(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = FindLocked(session_id);
  if (session == nullptr) {
    return Status::NotFound(StrCat("unknown or expired session ", session_id));
  }
  return Render(session_id, *session);
}

size_t ExploreEngine::ActiveSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  EvictExpiredLocked();
  return sessions_.size();
}

}  // namespace newslink
