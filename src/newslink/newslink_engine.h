// NewsLinkEngine: the complete framework of the paper (Fig. 2). Indexing
// runs the NLP component (segmentation + NER + Def. 1), the NE component
// (G* subgraph embeddings, optionally the TreeEmb baseline), and builds the
// NS component's dual inverted indexes (BOW over text, BON over embedding
// nodes). Query processing fuses both scores with Equation 3 and can attach
// relationship-path explanations (Tables II/VI).

#ifndef NEWSLINK_NEWSLINK_NEWSLINK_ENGINE_H_
#define NEWSLINK_NEWSLINK_NEWSLINK_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/search_engine.h"
#include "common/timer.h"
#include "embed/document_embedding.h"
#include "embed/path_explainer.h"
#include "ir/inverted_index.h"
#include "ir/max_score.h"
#include "ir/scorer.h"
#include "ir/term_dictionary.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"
#include "text/gazetteer_ner.h"
#include "text/news_segmenter.h"

namespace newslink {

/// \brief Which NE-component model embeds the news segments.
enum class EmbedderKind {
  kLcag,  // the paper's G* model
  kTree,  // the TreeEmb baseline (Table VII / Fig. 7)
};

struct NewsLinkConfig {
  /// β of Equation 3: 0 = pure text (reduces to Lucene), 1 = pure BON.
  double beta = 0.2;
  EmbedderKind embedder = EmbedderKind::kLcag;
  embed::LcagOptions lcag;
  embed::TreeEmbedOptions tree;
  ir::Bm25Params bm25;
  /// BM25 parameters for the BON (node) index. b defaults to 0 (a large
  /// subgraph embedding is context richness, not verbosity); with the tf
  /// cap below, BON rewards *coverage* of the query subgraph plus whether
  /// each covered node is central to the document.
  ir::Bm25Params bon_bm25{0.8, 0.0};
  /// Cap on a node's document-side BON frequency (number of segment
  /// subgraphs containing it). 2 distinguishes central from incidental
  /// nodes without letting repetition races decide rankings.
  uint32_t bon_doc_tf_cap = 2;
  /// Query-side weight of *source* nodes (entities literally mentioned in
  /// the query) relative to induced context nodes (weight 1). Mentioned
  /// entities are first-class evidence; induced context enriches but must
  /// not dominate — a document whose segment grouping induced a
  /// different-but-equivalent context should not be punished.
  uint32_t bon_query_source_weight = 3;
  /// Worker threads for corpus embedding (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Ablation knob: false embeds EVERY news segment instead of only the
  /// maximal entity co-occurrence set of Definition 1.
  bool use_maximal_reduction = true;
  /// Per-side candidate depth k' of the pruned NS path: each index side
  /// retrieves max(k, rerank_depth) candidates with MaxScore before fusion.
  /// Larger values close the (tiny) gap to the exhaustive oracle at the
  /// cost of scoring more documents.
  size_t rerank_depth = 64;
  /// Exactness oracle: score every posting on both sides (the original
  /// behaviour) instead of MaxScore top-k' retrieval + union rescoring.
  bool exhaustive_fusion = false;
  /// Entry capacity of the LCAG result cache shared by the index-time
  /// workers and the query path (0 disables caching).
  size_t lcag_cache_capacity = 4096;
  /// Lock shards of the LCAG cache (parallel index builds contend here).
  size_t lcag_cache_shards = 16;
};

/// \brief Cumulative engine counters; safe to read while queries run.
struct EngineStats {
  uint64_t queries = 0;
  /// Documents fully BM25-scored on the text (BOW) / node (BON) side,
  /// including pruned-path union rescoring. The exhaustive oracle counts
  /// every accumulator it touches, so pruning shows up as a strictly
  /// smaller number on the same workload.
  uint64_t bow_docs_scored = 0;
  uint64_t bon_docs_scored = 0;
  /// NE-component counters: LCAG cache hits/misses/evictions plus timeout
  /// and expansion-budget truncations (both index- and query-time).
  embed::EmbedderStats embedder;
};

/// \brief A search hit with optional relationship-path explanations.
struct ExplainedResult {
  size_t doc_index = 0;
  double score = 0.0;
  std::vector<embed::RelationshipPath> paths;
};

/// \brief The NewsLink search engine.
class NewsLinkEngine : public baselines::SearchEngine {
 public:
  /// `graph` and `label_index` must outlive the engine.
  NewsLinkEngine(const kg::KnowledgeGraph* graph,
                 const kg::LabelIndex* label_index,
                 NewsLinkConfig config = {});

  std::string name() const override;

  /// β only affects query-time fusion (Eq. 3), never the indexes — so one
  /// indexed engine can serve a whole β sweep (paper Table VII).
  void set_beta(double beta) { config_.beta = beta; }
  double beta() const { return config_.beta; }

  /// Query-path knobs (like set_beta: affect fusion only, never the
  /// indexes). Not safe to flip while Search calls are in flight.
  void set_exhaustive_fusion(bool v) { config_.exhaustive_fusion = v; }
  void set_rerank_depth(size_t d) { config_.rerank_depth = d; }

  /// Build embeddings and indexes for the corpus. Embedding is
  /// parallelized across documents (paper Sec. VII-G).
  void Index(const corpus::Corpus& corpus) override;

  /// Index with precomputed embeddings (one per document, as produced by
  /// embed::LoadEmbeddings) — skips the expensive NE stage entirely.
  Status IndexWithEmbeddings(const corpus::Corpus& corpus,
                             std::vector<embed::DocumentEmbedding> embeddings);

  /// Append one document to a live index (incremental ingestion). The new
  /// document is searchable immediately; returns its document index.
  size_t AddDocument(const corpus::Document& doc);

  /// All document embeddings, aligned with corpus order (for persistence
  /// via embed::SaveEmbeddings).
  const std::vector<embed::DocumentEmbedding>& embeddings() const {
    return doc_embeddings_;
  }

  /// Thread-safe: any number of threads may call Search / SearchExplained
  /// concurrently on a fully indexed engine. Indexing and AddDocument are
  /// NOT safe to run concurrently with queries (see DESIGN.md Sec. 7).
  std::vector<baselines::SearchResult> Search(const std::string& query,
                                              size_t k) const override;

  /// Search with relationship-path explanations extracted from the overlap
  /// of the query and result embeddings.
  std::vector<ExplainedResult> SearchExplained(const std::string& query,
                                               size_t k,
                                               size_t max_paths = 5) const;

  /// Run the NLP + NE components on a standalone text (e.g. a query).
  embed::DocumentEmbedding EmbedText(const std::string& text) const;

  /// NLP output for a standalone text.
  text::SegmentedDocument SegmentText(const std::string& text) const;

  const embed::DocumentEmbedding& doc_embedding(size_t i) const {
    return doc_embeddings_[i];
  }
  size_t num_indexed_docs() const { return doc_embeddings_.size(); }

  /// Fraction of indexed documents with a non-empty embedding (the paper
  /// reports 96.3% / 91.2% corpus coverage).
  double EmbeddedDocumentFraction() const;

  /// Cumulative per-component times. Indexing fills `index_times()` with
  /// buckets "nlp"/"ne"/"ns" per document; every Search() adds the same
  /// buckets per query to `query_times()` (Fig. 7 and Table VIII). Each
  /// query collects its breakdown on the stack and merges it into the
  /// engine accumulator under a mutex, so concurrent searches are safe;
  /// query_times() therefore returns a snapshot by value.
  const TimeBreakdown& index_times() const { return index_times_; }
  TimeBreakdown query_times() const {
    std::lock_guard<std::mutex> lock(query_times_mu_);
    return query_times_;
  }
  void ResetQueryTimes() {
    std::lock_guard<std::mutex> lock(query_times_mu_);
    query_times_ = TimeBreakdown();
  }

  /// Cumulative retrieval / NE counters (thread-safe snapshot).
  EngineStats stats() const;

 private:
  struct ScoredFusion {
    std::vector<baselines::SearchResult> results;
  };

  /// Eq. 3 over the candidate union of both indexes; scores from each side
  /// are max-normalized per query before mixing so β is scale-free. By
  /// default each side contributes only its MaxScore top-k' candidates and
  /// the union is completed by random-access rescoring; the exhaustive
  /// oracle (config.exhaustive_fusion) scores every posting instead.
  std::vector<baselines::SearchResult> FusedSearch(
      const std::string& query, size_t k,
      embed::DocumentEmbedding* query_embedding_out) const;

  /// (Re)build the BM25 scorers + MaxScore retrievers over both indexes.
  void RebuildScorers();

  const kg::KnowledgeGraph* graph_;
  const kg::LabelIndex* label_index_;
  NewsLinkConfig config_;

  text::GazetteerNer ner_;
  std::unique_ptr<embed::SegmentEmbedder> embedder_;
  embed::PathExplainer explainer_;

  // NS component state.
  ir::TermDictionary text_dict_;
  ir::InvertedIndex text_index_;
  ir::InvertedIndex node_index_;  // BON: term ids are KG node ids
  std::unique_ptr<ir::Bm25Scorer> text_scorer_;
  std::unique_ptr<ir::Bm25Scorer> node_scorer_;
  std::unique_ptr<ir::MaxScoreRetriever> text_retriever_;
  std::unique_ptr<ir::MaxScoreRetriever> node_retriever_;
  std::vector<embed::DocumentEmbedding> doc_embeddings_;

  TimeBreakdown index_times_;
  mutable std::mutex query_times_mu_;
  mutable TimeBreakdown query_times_;  // guarded by query_times_mu_

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> bow_docs_scored_{0};
  mutable std::atomic<uint64_t> bon_docs_scored_{0};
};

}  // namespace newslink

#endif  // NEWSLINK_NEWSLINK_NEWSLINK_ENGINE_H_
