// NewsLinkEngine: the complete framework of the paper (Fig. 2). Indexing
// runs the NLP component (segmentation + NER + Def. 1), the NE component
// (G* subgraph embeddings, optionally the TreeEmb baseline), and builds the
// NS component's dual inverted indexes (BOW over text, BON over embedding
// nodes). Query processing fuses both scores with Equation 3 and can attach
// relationship-path explanations (Tables II/VI).
//
// Concurrency model (epoch-based snapshot isolation, DESIGN.md Sec. 7):
// queries and ingestion run concurrently. A writer (Index /
// IndexWithEmbeddings / AddDocument) appends under `writer_mu_` and then
// publishes a new immutable EngineSnapshot — index extents, collection
// statistics, and the epoch number — with a single pointer swap. Every
// query acquires the current snapshot at entry and evaluates entirely
// against it: it can never observe a half-appended document or mix
// statistics from two epochs. Old snapshots are reclaimed when their last
// reader releases them.

#ifndef NEWSLINK_NEWSLINK_NEWSLINK_ENGINE_H_
#define NEWSLINK_NEWSLINK_NEWSLINK_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/search_engine.h"
#include "common/timer.h"
#include "embed/document_embedding.h"
#include "embed/path_explainer.h"
#include "ir/append_only.h"
#include "ir/inverted_index.h"
#include "ir/max_score.h"
#include "ir/scorer.h"
#include "ir/term_dictionary.h"
#include "kg/knowledge_graph.h"
#include "kg/label_index.h"
#include "text/gazetteer_ner.h"
#include "text/news_segmenter.h"

namespace newslink {

/// \brief Which NE-component model embeds the news segments.
enum class EmbedderKind {
  kLcag,  // the paper's G* model
  kTree,  // the TreeEmb baseline (Table VII / Fig. 7)
};

struct NewsLinkConfig {
  /// β of Equation 3: 0 = pure text (reduces to Lucene), 1 = pure BON.
  /// This is the *default* for queries that do not carry their own β —
  /// per-query values travel in baselines::SearchRequest::beta.
  double beta = 0.2;
  EmbedderKind embedder = EmbedderKind::kLcag;
  embed::LcagOptions lcag;
  embed::TreeEmbedOptions tree;
  ir::Bm25Params bm25;
  /// BM25 parameters for the BON (node) index. b defaults to 0 (a large
  /// subgraph embedding is context richness, not verbosity); with the tf
  /// cap below, BON rewards *coverage* of the query subgraph plus whether
  /// each covered node is central to the document.
  ir::Bm25Params bon_bm25{0.8, 0.0};
  /// Cap on a node's document-side BON frequency (number of segment
  /// subgraphs containing it). 2 distinguishes central from incidental
  /// nodes without letting repetition races decide rankings.
  uint32_t bon_doc_tf_cap = 2;
  /// Query-side weight of *source* nodes (entities literally mentioned in
  /// the query) relative to induced context nodes (weight 1). Mentioned
  /// entities are first-class evidence; induced context enriches but must
  /// not dominate — a document whose segment grouping induced a
  /// different-but-equivalent context should not be punished.
  uint32_t bon_query_source_weight = 3;
  /// Worker threads for corpus embedding (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Ablation knob: false embeds EVERY news segment instead of only the
  /// maximal entity co-occurrence set of Definition 1.
  bool use_maximal_reduction = true;
  /// Default per-side candidate depth k' of the pruned NS path: each index
  /// side retrieves max(k, rerank_depth) candidates with MaxScore before
  /// fusion (overridable per request). Larger values close the (tiny) gap
  /// to the exhaustive oracle at the cost of scoring more documents.
  size_t rerank_depth = 64;
  /// Exactness oracle default: score every posting on both sides instead
  /// of MaxScore top-k' retrieval + union rescoring (overridable per
  /// request).
  bool exhaustive_fusion = false;
  /// Entry capacity of the LCAG result cache shared by the index-time
  /// workers and the query path (0 disables caching).
  size_t lcag_cache_capacity = 4096;
  /// Lock shards of the LCAG cache (parallel index builds contend here).
  size_t lcag_cache_shards = 16;
};

/// \brief Cumulative engine counters; safe to read while queries run.
struct EngineStats {
  uint64_t queries = 0;
  /// Documents fully BM25-scored on the text (BOW) / node (BON) side,
  /// including pruned-path union rescoring. The exhaustive oracle counts
  /// every accumulator it touches, so pruning shows up as a strictly
  /// smaller number on the same workload.
  uint64_t bow_docs_scored = 0;
  uint64_t bon_docs_scored = 0;
  /// Snapshot lifecycle: epochs published by writers (the empty epoch 0
  /// counts), snapshots handed to queries, snapshots whose last reader has
  /// released them, and the epoch currently installed.
  uint64_t epochs_published = 0;
  uint64_t snapshot_acquisitions = 0;
  uint64_t snapshots_reclaimed = 0;
  uint64_t current_epoch = 0;
  /// NE-component counters: LCAG cache hits/misses/evictions plus timeout
  /// and expansion-budget truncations (both index- and query-time).
  embed::EmbedderStats embedder;
};

/// \brief A search hit with optional relationship-path explanations.
using ExplainedResult = baselines::SearchHit;

/// \brief The NewsLink search engine.
class NewsLinkEngine : public baselines::SearchEngine {
 public:
  /// `graph` and `label_index` must outlive the engine.
  NewsLinkEngine(const kg::KnowledgeGraph* graph,
                 const kg::LabelIndex* label_index,
                 NewsLinkConfig config = {});

  std::string name() const override;

  /// Default fusion weight (Eq. 3) for requests that do not set their own.
  double beta() const { return config_.beta; }

  /// Build embeddings and indexes for the corpus, then publish one epoch.
  /// Embedding is parallelized across documents (paper Sec. VII-G).
  void Index(const corpus::Corpus& corpus) override;

  /// Index with precomputed embeddings (one per document, as produced by
  /// embed::LoadEmbeddings) — skips the expensive NE stage entirely.
  Status IndexWithEmbeddings(const corpus::Corpus& corpus,
                             std::vector<embed::DocumentEmbedding> embeddings);

  /// Append one document to a live index (incremental ingestion) and
  /// publish a new epoch. Safe to call while queries run: in-flight
  /// queries keep their acquired epoch; later queries see the new
  /// document. Concurrent AddDocument callers serialize on the writer
  /// lock (NLP + NE run outside it). Returns the new document's index.
  size_t AddDocument(const corpus::Document& doc);

  /// Copy of the embeddings visible in the current epoch, aligned with
  /// corpus order (for persistence via embed::SaveEmbeddings). A copy —
  /// not a reference — so the caller's view stays stable while ingestion
  /// continues.
  std::vector<embed::DocumentEmbedding> SnapshotEmbeddings() const;

  /// Request-scoped search: THE query entry point. Acquires the current
  /// epoch, resolves unset request fields from the engine config, scores
  /// both index sides against that one snapshot, fuses (Eq. 3), and —
  /// when request.explain is set — attaches relationship paths. Any
  /// number of threads may call this concurrently with each other and
  /// with AddDocument.
  baselines::SearchResponse Search(
      const baselines::SearchRequest& request) const override;

  /// Legacy adapters, rerouted through Search(SearchRequest).
  std::vector<baselines::SearchResult> Search(const std::string& query,
                                              size_t k) const override;
  std::vector<ExplainedResult> SearchExplained(const std::string& query,
                                               size_t k,
                                               size_t max_paths = 5) const;

  /// Run the NLP + NE components on a standalone text (e.g. a query).
  embed::DocumentEmbedding EmbedText(const std::string& text) const;

  /// NLP output for a standalone text.
  text::SegmentedDocument SegmentText(const std::string& text) const;

  /// Embedding of an indexed document. The reference is stable for the
  /// engine's lifetime (append-only storage never relocates elements);
  /// only call with i < num_indexed_docs() — or, under concurrent
  /// ingestion, i < a SearchResponse's snapshot_docs.
  const embed::DocumentEmbedding& doc_embedding(size_t i) const {
    return doc_embeddings_.At(i);
  }
  size_t num_indexed_docs() const { return doc_embeddings_.size(); }

  /// Fraction of indexed documents with a non-empty embedding (the paper
  /// reports 96.3% / 91.2% corpus coverage). Evaluated over the current
  /// epoch.
  double EmbeddedDocumentFraction() const;

  /// Cumulative per-component times. Indexing fills `index_times()` with
  /// buckets "nlp"/"ne"/"ns" per document; every Search() adds the same
  /// buckets per query to `query_times()` (Fig. 7 and Table VIII). Each
  /// query collects its breakdown on the stack (also returned in its
  /// SearchResponse) and merges it into the engine accumulator under a
  /// mutex, so concurrent searches are safe; query_times() therefore
  /// returns a snapshot by value.
  const TimeBreakdown& index_times() const { return index_times_; }
  TimeBreakdown query_times() const {
    std::lock_guard<std::mutex> lock(query_times_mu_);
    return query_times_;
  }
  void ResetQueryTimes() {
    std::lock_guard<std::mutex> lock(query_times_mu_);
    query_times_ = TimeBreakdown();
  }

  /// Cumulative retrieval / NE / snapshot counters (thread-safe snapshot).
  EngineStats stats() const;

 private:
  /// One published epoch: immutable extents + statistics of both indexes.
  /// Everything a query reads about the collection comes from here.
  struct EngineSnapshot {
    uint64_t epoch = 0;
    ir::IndexSnapshot text;
    ir::IndexSnapshot node;
    size_t num_docs = 0;  // == text.num_docs == node.num_docs
  };

  /// Current epoch for a query; the shared_ptr keeps it alive until the
  /// last reader releases it.
  std::shared_ptr<const EngineSnapshot> AcquireSnapshot() const;

  /// Capture both indexes and install a new epoch (caller holds
  /// writer_mu_, or is the constructor).
  void PublishSnapshot();

  const kg::KnowledgeGraph* graph_;
  const kg::LabelIndex* label_index_;
  NewsLinkConfig config_;

  text::GazetteerNer ner_;
  std::unique_ptr<embed::SegmentEmbedder> embedder_;
  embed::PathExplainer explainer_;

  // NS component state. The indexes are append-only and support bounded
  // (snapshot-scoped) reads; scorers and retrievers are stateless over
  // them and constructed exactly once.
  ir::TermDictionary text_dict_;
  ir::InvertedIndex text_index_;
  ir::InvertedIndex node_index_;  // BON: term ids are KG node ids
  ir::Bm25Scorer text_scorer_;
  ir::Bm25Scorer node_scorer_;
  ir::MaxScoreRetriever text_retriever_;
  ir::MaxScoreRetriever node_retriever_;
  ir::AppendOnlyStore<embed::DocumentEmbedding> doc_embeddings_;

  // Writer side: serializes ingestion; queries never take this lock.
  std::mutex writer_mu_;

  // Published-snapshot slot. A mutex-guarded shared_ptr swap (not
  // std::atomic<shared_ptr>) keeps the fast path simple and portable; the
  // critical section is two refcount operations.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EngineSnapshot> snapshot_;  // guarded by snapshot_mu_
  std::shared_ptr<std::atomic<uint64_t>> snapshots_reclaimed_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  std::atomic<uint64_t> epochs_published_{0};
  mutable std::atomic<uint64_t> snapshot_acquisitions_{0};

  TimeBreakdown index_times_;
  mutable std::mutex query_times_mu_;
  mutable TimeBreakdown query_times_;  // guarded by query_times_mu_

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> bow_docs_scored_{0};
  mutable std::atomic<uint64_t> bon_docs_scored_{0};
};

}  // namespace newslink

#endif  // NEWSLINK_NEWSLINK_NEWSLINK_ENGINE_H_
